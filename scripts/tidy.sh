#!/usr/bin/env bash
# clang-tidy lane of the lint wall (.clang-tidy holds the check set; the
# tree is kept at zero violations, WarningsAsErrors '*').
#
#   scripts/tidy.sh                  # full run over src/ (+ fuzz/ if present)
#   scripts/tidy.sh --diff [ref]     # only files changed vs ref (default:
#                                    #   origin/main, falling back to HEAD~1)
#   BUILD_DIR=ci-build scripts/tidy.sh
#   REQUIRE_TOOLS=1 scripts/tidy.sh  # hard-fail when clang-tidy is absent
#                                    #   (the CI posture); default is
#                                    #   skip-with-warning for local boxes
#                                    #   that only carry gcc
#
# Needs a compilation database; every configure exports one
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON in the root CMakeLists), so any
# existing build directory works. Configures one if missing.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

find_clang_tidy() {
  local candidate
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! CLANG_TIDY="$(find_clang_tidy)"; then
  if [[ "${REQUIRE_TOOLS:-0}" == "1" ]]; then
    echo "tidy.sh: FATAL: clang-tidy not found and REQUIRE_TOOLS=1" \
         "(install clang-tidy >= 14; CI images must carry it)" >&2
    exit 1
  fi
  echo "tidy.sh: WARNING: clang-tidy not found; skipping the tidy lane." \
       "Install clang-tidy (>= 14) to run it locally; CI enforces it" \
       "with REQUIRE_TOOLS=1." >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "tidy.sh: no ${BUILD_DIR}/compile_commands.json; configuring" >&2
  cmake -B "${BUILD_DIR}" -S . >/dev/null
fi

# File list: every first-party translation unit. Headers are covered via
# HeaderFilterRegex when their including .cc is scanned.
declare -a files
if [[ "${1:-}" == "--diff" ]]; then
  base="${2:-}"
  if [[ -z "${base}" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      base="origin/main"
    else
      base="HEAD~1"
    fi
  fi
  mapfile -t files < <(git diff --name-only --diff-filter=d "${base}" -- \
                         'src/*.cc' 'fuzz/*.cc')
  if [[ "${#files[@]}" -eq 0 ]]; then
    echo "tidy.sh: no changed .cc files vs ${base}; nothing to do"
    exit 0
  fi
  echo "tidy.sh: diff mode vs ${base}: ${#files[@]} file(s)"
else
  mapfile -t files < <(find src -name '*.cc' | sort)
  if [[ -d fuzz ]]; then
    # Fuzz TUs are only in the database when the build dir was configured
    # with -DSTREAMSC_FUZZ=ON; filter to what the database knows.
    while IFS= read -r f; do
      if grep -q "$(basename "${f}")" "${BUILD_DIR}/compile_commands.json"; then
        files+=("${f}")
      fi
    done < <(find fuzz -name '*.cc' | sort)
  fi
fi

echo "tidy.sh: ${CLANG_TIDY} over ${#files[@]} file(s), -j ${JOBS}"
# xargs -P fans the single-TU invocations out; clang-tidy exits non-zero
# on any warning because .clang-tidy sets WarningsAsErrors '*'.
printf '%s\n' "${files[@]}" \
  | xargs -P "${JOBS}" -n 1 "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet

echo "tidy.sh: clean"
