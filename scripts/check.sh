#!/usr/bin/env bash
# Tier-1 verification plus the correctness-tooling lanes. Exits non-zero
# on the first failure. Usable locally and as the CI entry point.
#
#   scripts/check.sh                 # Release build in ./build + project lint
#   BUILD_DIR=ci-build scripts/check.sh
#   CMAKE_ARGS="-DSTREAMSC_NATIVE=ON" scripts/check.sh
#   SANITIZE=1 scripts/check.sh      # + ASan/UBSan build over
#                                    #   unit|property|io + parallel +
#                                    #   alloc (zero-allocation) slices
#   TSAN=1 scripts/check.sh          # + ThreadSanitizer build over the
#                                    #   parallel-labeled suites at two
#                                    #   schedule widths (tsan.supp applies)
#   FUZZ=1 scripts/check.sh          # + fuzz harness build + fixed-iteration
#                                    #   smoke (ctest -L fuzz)
#   REQUIRE_TOOLS=1 ...              # hard-fail when a lane's toolchain is
#                                    #   missing instead of skip-with-warning
#                                    #   (CI posture; local boxes may lack
#                                    #   clang-tidy or a TSan runtime)
#   TIER1=0 TSAN=1 scripts/check.sh  # lane-only run: skip the Release
#                                    #   build/ctest (CI gives each lane its
#                                    #   own job; the release job owns tier-1)
#
# The clang-tidy lane lives in scripts/tidy.sh (same REQUIRE_TOOLS
# convention); CI runs it as its own job.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# Missing-tool policy: hard-fail under REQUIRE_TOOLS=1 (CI), otherwise
# skip the lane loudly so a local run on a lean box stays useful.
missing_tool() {
  local lane="$1" detail="$2"
  if [[ "${REQUIRE_TOOLS:-0}" == "1" ]]; then
    echo "check.sh: FATAL: ${lane}: ${detail} (REQUIRE_TOOLS=1)" >&2
    exit 1
  fi
  echo "check.sh: WARNING: skipping ${lane}: ${detail}" >&2
}

# True iff the compiler can link the given -fsanitize= runtime.
compiler_supports_sanitizer() {
  local flag="$1"
  local scratch
  scratch="$(mktemp -d)"
  local ok=0
  echo 'int main(){return 0;}' > "${scratch}/probe.cc"
  if c++ "-fsanitize=${flag}" "${scratch}/probe.cc" \
        -o "${scratch}/probe" >/dev/null 2>&1; then
    ok=1
  fi
  rm -rf "${scratch}"
  [[ "${ok}" == "1" ]]
}

# Registry smoke slice: exercises the string-keyed CLI surface headlessly
# — `workload_tool solvers` plus one registry-driven solve per registered
# solver (2-thread session pool) over a tiny generated instance. The
# instance plants a 2-set optimum so every solver, including pair_finder,
# genuinely succeeds; any solver erroring or reporting infeasible fails
# the run.
run_registry_smoke() {
  local build_dir="$1"
  local tool="${build_dir}/examples/workload_tool"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${tool}" gen planted 256 24 2 7 "${tmp}/smoke.ssc" >/dev/null
  "${tool}" convert "${tmp}/smoke.ssc" "${tmp}/smoke.sscb1" >/dev/null
  "${tool}" solvers >/dev/null
  local solver
  while IFS= read -r solver; do
    echo "registry smoke (${build_dir}): ${solver}"
    "${tool}" solve "${tmp}/smoke.sscb1" "${solver}" threads=2 >/dev/null
  done < <("${tool}" solvers --names)
  # Traced solve through the same CLI surface: arms a TraceRecorder
  # (--trace/--stats), then proves the chrome-trace sidecar is loadable
  # JSON with at least one complete span. Under the sanitizer lanes this
  # runs the whole emit/merge/export pipeline instrumented.
  echo "registry smoke (${build_dir}): traced assadi solve"
  "${tool}" solve "${tmp}/smoke.sscb1" assadi alpha=2 threads=2 \
    --trace="${tmp}/trace.json" --stats >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${tmp}/trace.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    trace = json.load(fh)
events = trace["traceEvents"]
assert any(e.get("ph") == "X" for e in events), "no complete spans"
print(f"registry smoke: trace ok ({len(events)} events)")
PYEOF
  fi
}

# Serve smoke slice: boots the solve daemon (workload_served) on a temp
# Unix socket over a tiny planted instance, then drives it through the
# client verb of workload_tool — ping, one remote solve per registered
# solver, a traced solve (--breakdown), the Prometheus stats page, and a
# clean client-initiated shutdown. Any wire error, infeasible solve, or
# daemon outliving its shutdown request fails the run. Under the
# sanitizer lanes the whole socket/ring/session path runs instrumented.
run_serve_smoke() {
  local build_dir="$1"
  local tool="${build_dir}/examples/workload_tool"
  local daemon="${build_dir}/examples/workload_served"
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand ${tmp} now; it is loop-local
  trap "rm -rf '${tmp}'" RETURN
  "${tool}" gen planted 256 24 2 7 "${tmp}/smoke.ssc" >/dev/null
  "${tool}" convert "${tmp}/smoke.ssc" "${tmp}/smoke.sscb1" >/dev/null
  local endpoint="unix:${tmp}/solve.sock"
  "${daemon}" --listen="${endpoint}" --instance="w=${tmp}/smoke.sscb1" \
    --workers=2 --ring=4 --trace > "${tmp}/daemon.log" 2>&1 &
  local daemon_pid=$!
  # The daemon prints `listening on <endpoint>` once the socket is bound.
  local tries=0
  until grep -q "listening on" "${tmp}/daemon.log" 2>/dev/null; do
    tries=$((tries + 1))
    if [[ "${tries}" -gt 100 ]] || ! kill -0 "${daemon_pid}" 2>/dev/null; then
      echo "check.sh: FATAL: serve smoke: daemon failed to start" >&2
      cat "${tmp}/daemon.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  "${tool}" client "${endpoint}" ping >/dev/null
  local solver
  while IFS= read -r solver; do
    echo "serve smoke (${build_dir}): ${solver}"
    "${tool}" client "${endpoint}" solve w "${solver}" >/dev/null
  done < <("${tool}" solvers --names)
  echo "serve smoke (${build_dir}): traced assadi solve"
  "${tool}" client "${endpoint}" solve w assadi alpha=2 --breakdown \
    >/dev/null
  "${tool}" client "${endpoint}" stats | grep -q "streamsc_serve_requests"
  # Live reload: re-mmap the instance under its name (reload without a
  # path would retire it), prove the daemon keeps serving, and require
  # the swap counter.
  echo "serve smoke (${build_dir}): live reload"
  "${tool}" client "${endpoint}" reload w "${tmp}/smoke.sscb1" >/dev/null
  "${tool}" client "${endpoint}" solve w assadi alpha=2 >/dev/null
  "${tool}" client "${endpoint}" stats | grep -q "streamsc_serve_reloads"
  "${tool}" client "${endpoint}" shutdown >/dev/null
  if ! wait "${daemon_pid}"; then
    echo "check.sh: FATAL: serve smoke: daemon exited non-zero" >&2
    cat "${tmp}/daemon.log" >&2
    exit 1
  fi
}

# Dynamic smoke slice: the delta-overlay surface through the CLI — init
# an empty sscd1 log against a tiny planted base, mutate it (uniform
# adds, a remove, a replace), solve through the composed overlay with
# --stats and require the dynamic.* Prometheus counters, run watch mode
# headlessly (--max-solves=1 exits after the open solve), then compact
# the overlay to a plain sscb1 and prove the folded instance still
# solves. Any rejected delta op, infeasible solve, or missing counter
# fails the run.
run_dynamic_smoke() {
  local build_dir="$1"
  local tool="${build_dir}/examples/workload_tool"
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand ${tmp} now; it is loop-local
  trap "rm -rf '${tmp}'" RETURN
  "${tool}" gen planted 256 24 2 7 "${tmp}/base.ssc" >/dev/null
  "${tool}" convert "${tmp}/base.ssc" "${tmp}/base.sscb1" >/dev/null
  "${tool}" delta "${tmp}/base.sscb1" "${tmp}/delta.sscd1" init >/dev/null
  "${tool}" delta "${tmp}/base.sscb1" "${tmp}/delta.sscd1" \
    add-uniform 3 16 7 >/dev/null
  "${tool}" delta "${tmp}/base.sscb1" "${tmp}/delta.sscd1" remove 5 \
    >/dev/null
  "${tool}" delta "${tmp}/base.sscb1" "${tmp}/delta.sscd1" replace 6 16 11 \
    >/dev/null
  echo "dynamic smoke (${build_dir}): overlay solve"
  "${tool}" solve "${tmp}/base.sscb1" assadi alpha=2 \
    --delta="${tmp}/delta.sscd1" --stats > "${tmp}/solve.out"
  grep -q "streamsc_dynamic_cold_solves 1" "${tmp}/solve.out"
  grep -q "streamsc_dynamic_delta_records 5" "${tmp}/solve.out"
  echo "dynamic smoke (${build_dir}): watch + compact"
  "${tool}" watch "${tmp}/base.sscb1" "${tmp}/delta.sscd1" assadi alpha=2 \
    --max-solves=1 --stats | grep -q "streamsc_dynamic_"
  "${tool}" compact "${tmp}/base.sscb1" "${tmp}/delta.sscd1" \
    "${tmp}/compacted.sscb1" >/dev/null
  "${tool}" solve "${tmp}/compacted.sscb1" assadi alpha=2 >/dev/null
}

# Project-invariant linter: cheap, dependency-free, runs on every
# check.sh invocation so layer/determinism/check-policy violations never
# land. (clang-tidy is the separate, heavier lane in scripts/tidy.sh.)
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/lint_streamsc.py
else
  missing_tool "lint_streamsc" "python3 not found"
fi

if [[ "${TIER1:-1}" == "1" ]]; then
  # shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
  cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
  # The zero-allocation steady-state proofs, named as their own slice:
  # all 9 registry solvers must perform zero heap allocations after
  # warm-up at 1 and 8 threads (operator-new interposer; see
  # tests/testing/alloc_counter.h). Already part of the full run above —
  # repeated here so the memory-model guarantee fails loudly under its
  # own name.
  ctest --test-dir "${BUILD_DIR}" -L 'alloc' --output-on-failure -j "${JOBS}"
  # Observability slice, named: trace-ring overflow policy, counter-merge
  # determinism, chrome-trace parse-back, Prometheus export shape, and
  # the traced halves of the alloc/conformance proofs (ctest -L obs).
  ctest --test-dir "${BUILD_DIR}" -L 'obs' --output-on-failure -j "${JOBS}"
  run_registry_smoke "${BUILD_DIR}"
  run_serve_smoke "${BUILD_DIR}"
  run_dynamic_smoke "${BUILD_DIR}"
fi

if [[ "${SANITIZE:-0}" == "1" ]]; then
  if ! compiler_supports_sanitizer "address,undefined"; then
    missing_tool "ASan/UBSan lane" "compiler cannot link ASan/UBSan"
  else
    SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
    cmake -B "${SAN_BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSTREAMSC_ASAN_UBSAN=ON
    cmake --build "${SAN_BUILD_DIR}" -j "${JOBS}"
    # Fast, high-signal slice under the sanitizers: the single-layer unit
    # suites, the randomized property suites, and the io suites so ASan
    # covers the mmap mapping lifetime end to end.
    # (-L matches regexes: 'io' must be anchored or it also selects every
    # 'integration' suite. -LE parallel: the parallel-labeled suites —
    # engine primitives, the solver conformance matrix — run only in the
    # dedicated slice below, at a different schedule width, so data races
    # still surface as ASan/UBSan-visible breakage without paying for the
    # heaviest suites twice.)
    ctest --test-dir "${SAN_BUILD_DIR}" -L 'unit|property|^io$' \
      -LE 'parallel' --output-on-failure -j "${JOBS}"
    # Conformance-matrix slice: the parallel-labeled suites (engine
    # primitives, the cross-algorithm solver matrix over
    # {memory,file,mmap} x {1,2,8} threads) under ASan/UBSan, scheduled 8
    # tests wide so the 8-thread pools genuinely contend while sanitized.
    ctest --test-dir "${SAN_BUILD_DIR}" -L 'parallel' \
      --output-on-failure -j 8
    # Zero-allocation slice under ASan: the interposed operator new
    # forwards to ASan's malloc, so the steady-state zero-alloc proof
    # holds with full heap poisoning armed (allocation decisions are
    # source-level and identical to the release build).
    ctest --test-dir "${SAN_BUILD_DIR}" -L 'alloc' \
      --output-on-failure -j "${JOBS}"
    # The registry smoke again under ASan/UBSan: the CLI surface (option
    # parsing, session source sniffing, per-run engine lifetime)
    # sanitized end to end.
    run_registry_smoke "${SAN_BUILD_DIR}"
    # And the solve daemon: sockets, ring admission, warm sessions, and
    # the mmap instance cache with full heap poisoning armed.
    run_serve_smoke "${SAN_BUILD_DIR}"
    # Delta-overlay surface under ASan/UBSan: log replay, overlay
    # composition, warm-start bookkeeping, and Materialize, poisoned.
    run_dynamic_smoke "${SAN_BUILD_DIR}"
  fi
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  if ! compiler_supports_sanitizer "thread"; then
    missing_tool "TSan lane" "compiler cannot link ThreadSanitizer"
  else
    TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
    cmake -B "${TSAN_BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSTREAMSC_TSAN=ON
    cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}"
    # The deterministic-commit contract must be provably race-free, not
    # just byte-identical: every parallel-labeled suite (engine
    # primitives, GainScanPass/TransformPass/IndependentScanPass, the
    # 9-solver conformance matrix) runs under TSan. Two schedule widths —
    # serialized (-j 1, worker pools contend only with themselves) and
    # wide (-j 8, pools from different suites contend for cores) — shake
    # out different interleavings. tsan.supp holds the (commented)
    # accepted suppressions; any other report fails the run.
    export TSAN_OPTIONS="suppressions=$(pwd)/tsan.supp ${TSAN_OPTIONS:-}"
    ctest --test-dir "${TSAN_BUILD_DIR}" -L 'parallel' \
      --output-on-failure -j 1
    ctest --test-dir "${TSAN_BUILD_DIR}" -L 'parallel' \
      --output-on-failure -j 8
    # Registry smoke under TSan: multi-threaded solves through the whole
    # session surface (option parsing -> engine pool -> commit).
    run_registry_smoke "${TSAN_BUILD_DIR}"
    # Serve smoke under TSan: acceptor + worker threads + client all
    # contend over the ring and shared instance cache, instrumented.
    run_serve_smoke "${TSAN_BUILD_DIR}"
  fi
fi

if [[ "${FUZZ:-0}" == "1" ]]; then
  FUZZ_BUILD_DIR="${FUZZ_BUILD_DIR:-build-fuzz}"
  FUZZ_CMAKE_ARGS="-DCMAKE_BUILD_TYPE=RelWithDebInfo -DSTREAMSC_FUZZ=ON"
  # The smoke is most valuable with ASan/UBSan armed; fall back to an
  # unsanitized build (aborts still fail) when the runtime is missing.
  if compiler_supports_sanitizer "address,undefined"; then
    FUZZ_CMAKE_ARGS="${FUZZ_CMAKE_ARGS} -DSTREAMSC_ASAN_UBSAN=ON"
  else
    missing_tool "fuzz smoke sanitizers" \
      "compiler cannot link ASan/UBSan; running the smoke unsanitized"
  fi
  # shellcheck disable=SC2086
  cmake -B "${FUZZ_BUILD_DIR}" -S . ${FUZZ_CMAKE_ARGS}
  cmake --build "${FUZZ_BUILD_DIR}" -j "${JOBS}" \
    --target fuzz_ssc1 fuzz_sscb1 fuzz_sscd1 fuzz_registry_options \
             fuzz_serve_frame
  # Fixed-iteration attack on the five untrusted-input parsers (ssc1
  # text, sscb1 binary, sscd1 delta log, registry options, serve wire
  # frames): corpus replay + deterministic mutations; any abort or
  # sanitizer report fails.
  ctest --test-dir "${FUZZ_BUILD_DIR}" -L 'fuzz' --output-on-failure
fi

echo "check.sh: all green"
