#!/usr/bin/env bash
# Tier-1 verification: configure -> build -> ctest. Exits non-zero on the
# first failure. Usable locally and as the CI entry point.
#
#   scripts/check.sh                 # Release build in ./build
#   BUILD_DIR=ci-build scripts/check.sh
#   CMAKE_ARGS="-DSTREAMSC_SANITIZE=ON" scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "check.sh: all green"
