#!/usr/bin/env bash
# Tier-1 verification: configure -> build -> ctest. Exits non-zero on the
# first failure. Usable locally and as the CI entry point.
#
#   scripts/check.sh                 # Release build in ./build
#   BUILD_DIR=ci-build scripts/check.sh
#   CMAKE_ARGS="-DSTREAMSC_SANITIZE=ON" scripts/check.sh
#   SANITIZE=1 scripts/check.sh      # + ASan/UBSan build (the asan-ubsan
#                                    #   preset) over unit+property labels
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# Registry smoke slice: exercises the string-keyed CLI surface headlessly
# — `workload_tool solvers` plus one registry-driven solve per registered
# solver (2-thread session pool) over a tiny generated instance. The
# instance plants a 2-set optimum so every solver, including pair_finder,
# genuinely succeeds; any solver erroring or reporting infeasible fails
# the run.
run_registry_smoke() {
  local build_dir="$1"
  local tool="${build_dir}/examples/workload_tool"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  "${tool}" gen planted 256 24 2 7 "${tmp}/smoke.ssc" >/dev/null
  "${tool}" convert "${tmp}/smoke.ssc" "${tmp}/smoke.sscb1" >/dev/null
  "${tool}" solvers >/dev/null
  local solver
  while IFS= read -r solver; do
    echo "registry smoke (${build_dir}): ${solver}"
    "${tool}" solve "${tmp}/smoke.sscb1" "${solver}" threads=2 >/dev/null
  done < <("${tool}" solvers --names)
}

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
run_registry_smoke "${BUILD_DIR}"

if [[ "${SANITIZE:-0}" == "1" ]]; then
  SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
  cmake -B "${SAN_BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSTREAMSC_SANITIZE=ON
  cmake --build "${SAN_BUILD_DIR}" -j "${JOBS}"
  # Fast, high-signal slice under the sanitizers: the single-layer unit
  # suites, the randomized property suites, and the io suites so ASan
  # covers the mmap mapping lifetime end to end.
  # (-L matches regexes: 'io' must be anchored or it also selects every
  # 'integration' suite. -LE parallel: the parallel-labeled suites —
  # engine primitives, the solver conformance matrix — run only in the
  # dedicated slice below, at a different schedule width, so data races
  # still surface as ASan/UBSan-visible breakage without paying for the
  # heaviest suites twice.)
  ctest --test-dir "${SAN_BUILD_DIR}" -L 'unit|property|^io$' \
    -LE 'parallel' --output-on-failure -j "${JOBS}"
  # Conformance-matrix slice: the parallel-labeled suites (engine
  # primitives, the cross-algorithm solver matrix over {memory,file,mmap}
  # x {1,2,8} threads) under ASan/UBSan, scheduled 8 tests wide so the
  # 8-thread pools genuinely contend while sanitized.
  ctest --test-dir "${SAN_BUILD_DIR}" -L 'parallel' \
    --output-on-failure -j 8
  # The registry smoke again under ASan/UBSan: the CLI surface (option
  # parsing, session source sniffing, per-run engine lifetime) sanitized
  # end to end.
  run_registry_smoke "${SAN_BUILD_DIR}"
fi

echo "check.sh: all green"
