#!/usr/bin/env python3
"""Project-invariant linter for streamsc.

Statically enforces repo rules that clang-tidy cannot express. Scans
`<root>/src` (never tests/, bench/, examples/ — those have their own,
looser conventions) and reports one `path:line: [rule] message` line per
violation; exit status 1 if anything was found, 0 on a clean tree.

Rules
-----
layer-dag     The layer dependency DAG is acyclic and explicit (mirrors
              src/CMakeLists.txt): a file in src/<layer>/ may only include
              "other/..." headers when `other` is reachable from <layer>
              in the DAG. Upward or sideways includes (util -> stream,
              storage -> core, ...) are build-order violations even when
              they happen to compile.
raw-assert    No raw `assert(` (or `#include <cassert>`) in src/: use
              STREAMSC_CHECK for API-boundary preconditions (always
              armed) or STREAMSC_DCHECK for debug-only hot-loop
              invariants (util/check.h). Raw assert silently compiles
              out under NDEBUG, hiding the armed/unarmed decision.
determinism   No `rand()`, `srand()`, or `std::random_device` in src/:
              all randomness flows through util/random.h's seeded Rng so
              every solver run is replayable bit-for-bit.
engine-ptr    No non-owning `ParallelPassEngine*` members in the solver
              layers (src/core, src/api): engines bind per run via
              RunContext (the PR-5 contract). A stored engine pointer
              couples a solver object to one pool's lifetime and breaks
              AnySolver reuse across runs.
arena-ptr     No non-owning `MonotonicArena*` members in the solver
              layers (src/core, src/api): same invariant as engine-ptr —
              arenas bind per run via RunContext (or per call via an
              explicit allocator argument), never stored in configs or
              solver objects. A stored arena pointer would couple a
              reusable solver to one run's memory lifetime. (SolveSession
              *owns* its arena via unique_ptr, which the rule does not
              match.)
chrono        No direct `std::chrono` (or `#include <chrono>`) in src/
              outside util/ and obs/: wall-clock timing flows through
              util/stopwatch.h (Stopwatch) or obs/trace.h
              (TraceRecorder::NowNs). A direct clock read bypasses the
              trace/export pipeline and scatters clock choices
              (steady vs system) across layers.

Usage
-----
  scripts/lint_streamsc.py               # lint the repo this script lives in
  scripts/lint_streamsc.py --root DIR    # lint DIR/src instead (fixtures)
  scripts/lint_streamsc.py --list-rules
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Direct layer dependencies, mirroring src/CMakeLists.txt. The checker
# uses the transitive closure: if core may use offline and offline may
# use instance, a core file may include instance headers directly.
LAYER_DEPS = {
    "util": set(),
    "obs": {"util"},
    "instance": {"util"},
    "stream": {"obs", "instance", "util"},
    "storage": {"stream", "instance", "util"},
    "dynamic": {"storage", "stream", "instance", "obs", "util"},
    "offline": {"instance", "util"},
    "core": {"offline", "stream", "instance", "util"},
    "comm": {"stream", "instance", "util"},
    "info": {"comm", "instance", "util"},
    "api": {"core", "dynamic", "storage", "stream", "instance", "util"},
    "serve": {"api", "storage", "obs", "util"},
}

# Layers whose headers/sources must not hold engine or arena pointers
# (rules engine-ptr / arena-ptr). stream/ itself legitimately passes
# ParallelPassEngine* / MonotonicArena* through pass primitives and owns
# RunContext, so it is exempt; instance/ holds the arena binding of
# arena-backed SetSystems by design.
ENGINE_PTR_LAYERS = {"core", "api"}

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
CASSERT_RE = re.compile(r"^\s*#\s*include\s+<cassert>")
ASSERT_RE = re.compile(r"(?<![_A-Za-z0-9])assert\s*\(")
RAND_RE = re.compile(r"(?<![_A-Za-z0-9])(?:s?rand\s*\(|random_device)")
ENGINE_PTR_RE = re.compile(
    r"ParallelPassEngine\s*\*\s*[A-Za-z_]\w*\s*(?:=|;|\{)")
ARENA_PTR_RE = re.compile(
    r"MonotonicArena\s*\*\s*[A-Za-z_]\w*\s*(?:=|;|\{)")
CHRONO_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<chrono>")
CHRONO_RE = re.compile(r"std\s*::\s*chrono")

# Layers that may touch std::chrono directly: util/ owns Stopwatch, obs/
# owns TraceRecorder's clock. Everything else must time through those.
CHRONO_EXEMPT_LAYERS = {"util", "obs"}


def transitive_closure(deps: dict[str, set[str]]) -> dict[str, set[str]]:
    closure = {layer: set(direct) for layer, direct in deps.items()}
    changed = True
    while changed:
        changed = False
        for layer, reach in closure.items():
            extra = set()
            for dep in reach:
                extra |= closure.get(dep, set())
            if not extra <= reach:
                reach |= extra
                changed = True
    for layer in closure:
        closure[layer].add(layer)  # a layer may always include itself
    return closure


LAYER_CLOSURE = transitive_closure(LAYER_DEPS)


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers match the file. Good enough for a
    conventionally formatted C++ tree (no raw strings spanning rules)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                result.append(ch)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                result.append(quote)
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


class Violation:
    def __init__(self, path: pathlib.Path, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def lint_file(path: pathlib.Path, layer: str,
              rel: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    try:
        raw = path.read_text(encoding="utf-8", errors="replace").split("\n")
    except OSError as err:
        return [Violation(rel, 0, "io", f"unreadable: {err}")]
    code = strip_comments_and_strings(raw)
    allowed = LAYER_CLOSURE.get(layer)
    for lineno, line in enumerate(code, start=1):
        # The stripper blanks string-literal contents, which would erase
        # the include path — match includes on the raw line, but only
        # when the stripped line is still a preprocessor directive (so a
        # commented-out include does not count).
        inc = (INCLUDE_RE.match(raw[lineno - 1])
               if line.lstrip().startswith("#") else None)
        if inc and allowed is not None:
            target = inc.group(1).split("/", 1)[0]
            if target in LAYER_DEPS and target not in allowed:
                direct = sorted(LAYER_DEPS[layer]) or ["(nothing)"]
                violations.append(Violation(
                    rel, lineno, "layer-dag",
                    f'layer "{layer}" must not include "{inc.group(1)}": '
                    f'"{target}" is not reachable from "{layer}" in the '
                    f"layer DAG (direct deps: {', '.join(direct)})"))
        if CASSERT_RE.match(line):
            violations.append(Violation(
                rel, lineno, "raw-assert",
                "#include <cassert> in src/ — use util/check.h "
                "(STREAMSC_CHECK / STREAMSC_DCHECK)"))
        if ASSERT_RE.search(line) and "static_assert" not in line:
            violations.append(Violation(
                rel, lineno, "raw-assert",
                "raw assert( in src/ — use STREAMSC_CHECK (API boundary, "
                "always armed) or STREAMSC_DCHECK (debug-only hot loop)"))
        if RAND_RE.search(line):
            violations.append(Violation(
                rel, lineno, "determinism",
                "rand()/srand()/std::random_device in src/ — all "
                "randomness must flow through util/random.h's seeded Rng"))
        if layer in ENGINE_PTR_LAYERS and ENGINE_PTR_RE.search(line):
            violations.append(Violation(
                rel, lineno, "engine-ptr",
                "ParallelPassEngine* member/variable in a solver layer — "
                "engines bind per run via RunContext "
                "(stream/stream_algorithm.h), never stored in configs"))
        if layer in ENGINE_PTR_LAYERS and ARENA_PTR_RE.search(line):
            violations.append(Violation(
                rel, lineno, "arena-ptr",
                "MonotonicArena* member/variable in a solver layer — "
                "arenas bind per run via RunContext (or per call via an "
                "allocator argument), never stored in configs"))
        if (layer not in CHRONO_EXEMPT_LAYERS
                and (CHRONO_INCLUDE_RE.match(line)
                     or CHRONO_RE.search(line))):
            violations.append(Violation(
                rel, lineno, "chrono",
                "direct std::chrono outside util//obs/ — time through "
                "util/stopwatch.h (Stopwatch) or obs/trace.h "
                "(TraceRecorder::NowNs) so clock choice and trace export "
                "stay centralized"))
    return violations


def lint_tree(root: pathlib.Path) -> list[Violation]:
    src = root / "src"
    if not src.is_dir():
        print(f"lint_streamsc: no src/ directory under {root}",
              file=sys.stderr)
        sys.exit(2)
    violations: list[Violation] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(root)
        parts = path.relative_to(src).parts
        layer = parts[0] if len(parts) > 1 else ""
        violations.extend(lint_file(path, layer, rel))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(
        description="streamsc project-invariant linter")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="tree to lint (expects <root>/src); defaults to the repo")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in ("layer-dag", "raw-assert", "determinism", "engine-ptr",
                     "arena-ptr", "chrono"):
            print(rule)
        return 0

    violations = lint_tree(args.root.resolve())
    for v in violations:
        print(v)
    if violations:
        print(f"lint_streamsc: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
