#include "instance/disj_distribution.h"
#include "util/check.h"


namespace streamsc {

DisjDistribution::DisjDistribution(std::size_t t) : t_(t) { STREAMSC_DCHECK(t >= 1); }

DisjInstance DisjDistribution::SampleBase(Rng& rng) const {
  DisjInstance inst{DynamicBitset(t_), DynamicBitset(t_)};
  for (std::size_t e = 0; e < t_; ++e) {
    switch (rng.UniformInt(3)) {
      case 0:
        break;  // dropped from both
      case 1:
        inst.b.Set(e);  // dropped from A only
        break;
      default:
        inst.a.Set(e);  // dropped from B only
        break;
    }
  }
  return inst;
}

DisjInstance DisjDistribution::Sample(Rng& rng, int* z_out) const {
  const int z = rng.Bernoulli(0.5) ? 1 : 0;
  if (z_out != nullptr) *z_out = z;
  return z == 0 ? SampleYes(rng) : SampleNo(rng);
}

DisjInstance DisjDistribution::SampleYes(Rng& rng) const {
  return SampleBase(rng);
}

DisjInstance DisjDistribution::SampleNo(Rng& rng,
                                        ElementId* e_star_out) const {
  DisjInstance inst = SampleBase(rng);
  const ElementId e_star = static_cast<ElementId>(rng.UniformInt(t_));
  inst.a.Set(e_star);
  inst.b.Set(e_star);
  if (e_star_out != nullptr) *e_star_out = e_star;
  return inst;
}

}  // namespace streamsc
