#include "instance/cover_free.h"
#include "util/check.h"


namespace streamsc {
namespace {

// Recursively extends `chosen` with sets from `from` onward until either
// `target` is covered (violation) or depth r is exhausted.
bool SearchCoverers(const SetSystem& system, SetId target,
                    const DynamicBitset& remaining, std::size_t budget,
                    SetId from, std::vector<SetId>& chosen) {
  if (remaining.None()) return true;
  if (budget == 0) return false;
  for (SetId j = from; j < system.num_sets(); ++j) {
    if (j == target) continue;
    if (!system.set(j).Intersects(remaining)) continue;
    chosen.push_back(j);
    DynamicBitset next = remaining;
    system.set(j).AndNotInto(next);
    if (SearchCoverers(system, target, next, budget - 1, j + 1, chosen)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

}  // namespace

std::optional<CoveringViolation> FindCoveringViolationExhaustive(
    const SetSystem& system, std::size_t r) {
  for (SetId target = 0; target < system.num_sets(); ++target) {
    std::vector<SetId> chosen;
    if (SearchCoverers(system, target, system.set(target).ToDense(), r, 0,
                       chosen)) {
      return CoveringViolation{target, std::move(chosen)};
    }
  }
  return std::nullopt;
}

std::optional<CoveringViolation> FindCoveringViolationRandom(
    const SetSystem& system, std::size_t r, std::size_t trials, Rng& rng) {
  const std::size_t m = system.num_sets();
  if (m < 2) return std::nullopt;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const SetId target = static_cast<SetId>(rng.UniformInt(m));
    DynamicBitset remaining = system.set(target).ToDense();
    std::vector<SetId> chosen;
    for (std::size_t pick = 0; pick < r && !remaining.None(); ++pick) {
      // Greedy random probe: pick a random set, keep it if it helps.
      const SetId j = static_cast<SetId>(rng.UniformInt(m));
      if (j == target) continue;
      if (!system.set(j).Intersects(remaining)) continue;
      system.set(j).AndNotInto(remaining);
      chosen.push_back(j);
    }
    if (remaining.None() && !chosen.empty()) {
      return CoveringViolation{target, std::move(chosen)};
    }
  }
  return std::nullopt;
}

SetSystem RandomCoverFreeCandidate(std::size_t n, std::size_t m,
                                   std::size_t s, Rng& rng) {
  STREAMSC_DCHECK(s <= n);
  SetSystem system(n);
  for (std::size_t i = 0; i < m; ++i) {
    system.AddSet(rng.RandomSubsetOfSize(n, s));
  }
  return system;
}

}  // namespace streamsc
