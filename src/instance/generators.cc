#include "instance/generators.h"
#include "util/check.h"

#include <algorithm>
#include <cmath>

namespace streamsc {
namespace {

// Appends one set covering everything the system currently misses, if any.
void PatchToFeasible(SetSystem& system) {
  DynamicBitset missing = system.UnionAll();
  missing.Complement();
  if (!missing.None()) {
    system.AddSet(std::move(missing));
  }
}

}  // namespace

SetSystem UniformRandomInstance(std::size_t n, std::size_t m,
                                std::size_t set_size, Rng& rng) {
  STREAMSC_DCHECK(set_size <= n);
  SetSystem system(n);
  for (std::size_t i = 0; i < m; ++i) {
    system.AddSet(rng.RandomSubsetOfSize(n, set_size));
  }
  PatchToFeasible(system);
  return system;
}

SetSystem PlantedCoverInstance(std::size_t n, std::size_t m,
                               std::size_t cover_size, Rng& rng,
                               std::vector<SetId>* planted_out) {
  STREAMSC_DCHECK(cover_size >= 1 && cover_size <= n && m >= cover_size);
  SetSystem system(n);

  // Random partition of [n] into cover_size blocks (sizes differ by <= 1).
  const std::vector<std::uint32_t> perm = rng.RandomPermutation(n);
  std::vector<DynamicBitset> blocks(cover_size, DynamicBitset(n));
  // The first element of each block is that block's "private" element: no
  // decoy may contain it, which keeps the planted cover optimal.
  std::vector<ElementId> private_elements(cover_size);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = i % cover_size;
    blocks[b].Set(perm[i]);
    if (i < cover_size) private_elements[b] = perm[i];
  }
  DynamicBitset privates(n);
  for (ElementId e : private_elements) privates.Set(e);

  std::vector<SetId> planted;
  planted.reserve(cover_size);
  for (auto& block : blocks) planted.push_back(system.AddSet(std::move(block)));

  // Decoys: random subsets that avoid all private elements.
  const std::size_t decoy_size = std::max<std::size_t>(1, n / cover_size);
  for (std::size_t i = cover_size; i < m; ++i) {
    DynamicBitset decoy =
        rng.RandomSubsetOfSize(n, std::min(decoy_size, n - cover_size));
    decoy.AndNot(privates);
    system.AddSet(std::move(decoy));
  }
  if (planted_out != nullptr) *planted_out = std::move(planted);
  return system;
}

SetSystem ZipfInstance(std::size_t n, std::size_t m, double zipf_exponent,
                       std::size_t max_size, Rng& rng) {
  STREAMSC_DCHECK(max_size >= 1 && max_size <= n);
  SetSystem system(n);
  for (std::size_t i = 0; i < m; ++i) {
    // Size of the i-th set follows rank^-exponent scaling.
    const double scale =
        std::pow(static_cast<double>(i + 1), -zipf_exponent);
    const std::size_t size = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(scale * max_size)));
    system.AddSet(rng.RandomSubsetOfSize(n, size));
  }
  PatchToFeasible(system);
  return system;
}

SetSystem BlogTopicInstance(std::size_t n, std::size_t m, double hub_fraction,
                            Rng& rng) {
  STREAMSC_DCHECK(hub_fraction >= 0.0 && hub_fraction <= 1.0);
  SetSystem system(n);
  const std::size_t num_hubs = std::max<std::size_t>(
      1, static_cast<std::size_t>(hub_fraction * static_cast<double>(m)));
  for (std::size_t i = 0; i < m; ++i) {
    if (i < num_hubs) {
      // Hubs cover a large random slice of topics.
      const std::size_t size =
          std::max<std::size_t>(n / 4, 1 + rng.UniformInt(std::max<std::uint64_t>(1, n / 2)));
      system.AddSet(rng.RandomSubsetOfSize(n, std::min(size, n)));
    } else {
      // Niche blogs cover a geometric number of topics; topic choice is
      // popularity-biased (low-index topics are popular).
      std::size_t size = 1;
      while (size < n / 8 && rng.Bernoulli(0.6)) ++size;
      DynamicBitset set(n);
      for (std::size_t j = 0; j < size; ++j) {
        // Bias toward popular topics: square a uniform variate.
        const double u = rng.UniformDouble();
        set.Set(static_cast<ElementId>(u * u * static_cast<double>(n)));
      }
      system.AddSet(std::move(set));
    }
  }
  PatchToFeasible(system);
  return system;
}

SetSystem NeedleInstance(std::size_t n, std::size_t m, std::size_t k,
                         Rng& rng) {
  STREAMSC_DCHECK(k >= 1 && k <= n && m >= k);
  SetSystem system(n);
  // Needles: a partition of [n] into k blocks.
  const std::vector<std::uint32_t> perm = rng.RandomPermutation(n);
  std::vector<DynamicBitset> needles(k, DynamicBitset(n));
  for (std::size_t i = 0; i < n; ++i) needles[i % k].Set(perm[i]);
  for (auto& needle : needles) system.AddSet(std::move(needle));
  // Private elements: one per needle (perm[0..k-1] land in distinct
  // blocks). No haystack set may contain them, so every feasible cover
  // includes all k needles and opt == k exactly.
  DynamicBitset privates(n);
  for (std::size_t i = 0; i < k; ++i) privates.Set(perm[i]);
  // Haystack: individually huge sets that all miss the private sliver.
  for (std::size_t i = k; i < m; ++i) {
    DynamicBitset dup = rng.BernoulliSubset(n, 0.9);
    dup.AndNot(privates);
    system.AddSet(std::move(dup));
  }
  return system;
}

}  // namespace streamsc
