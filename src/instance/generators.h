#ifndef STREAMSC_INSTANCE_GENERATORS_H_
#define STREAMSC_INSTANCE_GENERATORS_H_

#include <cstdint>

#include "instance/set_system.h"
#include "util/random.h"

/// \file generators.h
/// Synthetic workload generators. The paper evaluates on distributions it
/// constructs itself (D_SC, D_MC) plus "any collection of m subsets"; the
/// generators here provide the realistic-workload side: planted covers with
/// known optimum (ground truth for approximation ratios), uniform random
/// systems, heavy-tailed (Zipf) systems resembling web/document data
/// [Saha-Getoor 2009, Cormode et al. 2010], and a blog-topic coverage
/// workload for the examples.

namespace streamsc {

/// m sets, each a uniformly random subset of [n] of size \p set_size.
/// If the union misses elements, one patch set covering the residue is
/// appended so the instance is always feasible (so m may be size+1).
SetSystem UniformRandomInstance(std::size_t n, std::size_t m,
                                std::size_t set_size, Rng& rng);

/// A feasible instance with a *planted* optimal cover of size
/// \p cover_size: the universe is partitioned into cover_size blocks (the
/// planted optimum), and m - cover_size decoy sets are random subsets that
/// each avoid at least one planted block's private element, keeping the
/// planted cover optimal. Returns the planted ids through \p planted_out
/// when non-null.
SetSystem PlantedCoverInstance(std::size_t n, std::size_t m,
                               std::size_t cover_size, Rng& rng,
                               std::vector<SetId>* planted_out = nullptr);

/// m sets whose sizes follow a Zipf law with exponent \p zipf_exponent and
/// maximum size \p max_size; membership uniform. A patch set is appended if
/// needed for feasibility.
SetSystem ZipfInstance(std::size_t n, std::size_t m, double zipf_exponent,
                       std::size_t max_size, Rng& rng);

/// Blog-watch workload (Saha-Getoor motivation): n topics, m blogs. Each
/// blog covers a geometric number of topics with popularity-biased topic
/// choice (a few "hub" blogs cover many topics). Always feasible.
SetSystem BlogTopicInstance(std::size_t n, std::size_t m, double hub_fraction,
                            Rng& rng);

/// k pairwise-disjoint "needles" hidden among m - k near-duplicates of a
/// large block — a classic stress case where greedy and sampling disagree.
SetSystem NeedleInstance(std::size_t n, std::size_t m, std::size_t k,
                         Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_GENERATORS_H_
