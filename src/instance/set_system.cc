#include "instance/set_system.h"

#include <utility>

#include "util/check.h"

namespace streamsc {

bool SetSystem::WantsSparse(Count count) const {
  return static_cast<double>(count) <
         sparsity_threshold_ * static_cast<double>(universe_size_);
}

SetId SetSystem::PushDense(DynamicBitset set) {
  // Re-home payloads whose buffers live outside this system's storage —
  // including scratch-backed payloads entering a *heap* system: moving
  // one in would smuggle the scratch binding (and its pass-lifetime
  // buffer) into a structure that outlives the pass.
  const ArenaAllocator<DynamicBitset::Word> want{arena_};
  if (!(set.get_allocator() == want)) {
    dense_.emplace_back(set, want);
  } else {
    dense_.push_back(std::move(set));
  }
  slots_.push_back({Rep::kDense, static_cast<std::uint32_t>(dense_.size() - 1)});
  return static_cast<SetId>(slots_.size() - 1);
}

SetId SetSystem::PushSparse(SparseSet set) {
  const ArenaAllocator<ElementId> want{arena_};
  if (!(set.get_allocator() == want)) {
    sparse_.emplace_back(set, want);
  } else {
    sparse_.push_back(std::move(set));
  }
  slots_.push_back(
      {Rep::kSparse, static_cast<std::uint32_t>(sparse_.size() - 1)});
  return static_cast<SetId>(slots_.size() - 1);
}

SetId SetSystem::AddSet(DynamicBitset set) {
  STREAMSC_CHECK(set.size() == universe_size_,
                 "SetSystem::AddSet: set universe size mismatches the system");
  if (WantsSparse(set.CountSet())) {
    return PushSparse(
        SparseSet::FromBitset(set, ArenaAllocator<ElementId>(arena_)));
  }
  return PushDense(std::move(set));
}

SetId SetSystem::AddSet(SparseSet set) {
  STREAMSC_CHECK(set.size() == universe_size_,
                 "SetSystem::AddSet: set universe size mismatches the system");
  if (WantsSparse(set.CountSet())) return PushSparse(std::move(set));
  return PushDense(set.ToBitset(ArenaAllocator<DynamicBitset::Word>(arena_)));
}

SetId SetSystem::AddSetFromIndices(std::span<const ElementId> indices) {
  // Range validation happens inside FromIndices (one post-sort check).
  SparseSet sparse = SparseSet::FromIndices(universe_size_, indices,
                                            ArenaAllocator<ElementId>(arena_));
  if (WantsSparse(sparse.CountSet())) return PushSparse(std::move(sparse));
  return PushDense(
      sparse.ToBitset(ArenaAllocator<DynamicBitset::Word>(arena_)));
}

SetId SetSystem::AddSetFromView(SetView view) {
  STREAMSC_CHECK(view.valid() && view.size() == universe_size_,
                 "SetSystem::AddSetFromView: view mismatches the system");
  if (WantsSparse(view.CountSet())) {
    // ToSparse materializes straight into this system's allocator (its
    // emitted ids are sorted, unique, and in-range by construction).
    return PushSparse(view.ToSparse(ArenaAllocator<ElementId>(arena_)));
  }
  return PushDense(view.ToDense(ArenaAllocator<DynamicBitset::Word>(arena_)));
}

SetView SetSystem::set(SetId id) const {
  STREAMSC_DCHECK(id < slots_.size());
  const Slot& slot = slots_[id];
  if (slot.rep == Rep::kDense) return SetView(dense_[slot.index]);
  return SetView(sparse_[slot.index]);
}

bool SetSystem::IsSparse(SetId id) const {
  STREAMSC_DCHECK(id < slots_.size());
  return slots_[id].rep == Rep::kSparse;
}

SetSystem::Memory SetSystem::MemoryUsage() const {
  Memory memory;
  for (const auto& s : dense_) {
    memory.dense_bytes += s.ByteSize();
    ++memory.dense_sets;
  }
  for (const auto& s : sparse_) {
    memory.sparse_bytes += s.ByteSize();
    ++memory.sparse_sets;
  }
  return memory;
}

DynamicBitset SetSystem::UnionOf(std::span<const SetId> ids,
                                 DynamicBitset::Allocator alloc) const {
  DynamicBitset u(universe_size_, alloc);
  for (SetId id : ids) {
    STREAMSC_DCHECK(id < slots_.size());
    set(id).OrInto(u);
  }
  return u;
}

DynamicBitset SetSystem::UnionAll(DynamicBitset::Allocator alloc) const {
  DynamicBitset u(universe_size_, alloc);
  for (SetId id = 0; id < slots_.size(); ++id) set(id).OrInto(u);
  return u;
}

Count SetSystem::CoverageOf(std::span<const SetId> ids) const {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return UnionOf(ids, DynamicBitset::Allocator(&scratch)).CountSet();
}

bool SetSystem::IsFeasibleCover(std::span<const SetId> ids) const {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return UnionOf(ids, DynamicBitset::Allocator(&scratch)).All();
}

bool SetSystem::IsCoverable() const {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return UnionAll(DynamicBitset::Allocator(&scratch)).All();
}

Status SetSystem::Validate() const {
  for (SetId id = 0; id < slots_.size(); ++id) {
    if (set(id).size() != universe_size_) {
      return Status::Internal("set " + std::to_string(id) +
                              " has mismatched universe size");
    }
  }
  return Status::Ok();
}

Count SetSystem::TotalIncidences() const {
  Count total = 0;
  for (SetId id = 0; id < slots_.size(); ++id) total += set(id).CountSet();
  return total;
}

std::string SetSystem::DebugString() const {
  return "SetSystem(n=" + std::to_string(universe_size_) +
         ", m=" + std::to_string(slots_.size()) + ")";
}

}  // namespace streamsc
