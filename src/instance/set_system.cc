#include "instance/set_system.h"

#include <utility>

#include "util/check.h"

namespace streamsc {

bool SetSystem::WantsSparse(Count count) const {
  return static_cast<double>(count) <
         sparsity_threshold_ * static_cast<double>(universe_size_);
}

SetId SetSystem::PushDense(DynamicBitset set) {
  dense_.push_back(std::move(set));
  slots_.push_back({Rep::kDense, static_cast<std::uint32_t>(dense_.size() - 1)});
  return static_cast<SetId>(slots_.size() - 1);
}

SetId SetSystem::PushSparse(SparseSet set) {
  sparse_.push_back(std::move(set));
  slots_.push_back(
      {Rep::kSparse, static_cast<std::uint32_t>(sparse_.size() - 1)});
  return static_cast<SetId>(slots_.size() - 1);
}

SetId SetSystem::AddSet(DynamicBitset set) {
  STREAMSC_CHECK(set.size() == universe_size_,
                 "SetSystem::AddSet: set universe size mismatches the system");
  if (WantsSparse(set.CountSet())) {
    return PushSparse(SparseSet::FromBitset(set));
  }
  return PushDense(std::move(set));
}

SetId SetSystem::AddSet(SparseSet set) {
  STREAMSC_CHECK(set.size() == universe_size_,
                 "SetSystem::AddSet: set universe size mismatches the system");
  if (WantsSparse(set.CountSet())) return PushSparse(std::move(set));
  return PushDense(set.ToBitset());
}

SetId SetSystem::AddSetFromIndices(const std::vector<ElementId>& indices) {
  // Range validation happens inside FromIndices (one post-sort check).
  SparseSet sparse = SparseSet::FromIndices(universe_size_, indices);
  if (WantsSparse(sparse.CountSet())) return PushSparse(std::move(sparse));
  return PushDense(sparse.ToBitset());
}

SetId SetSystem::AddSetFromView(SetView view) {
  STREAMSC_CHECK(view.valid() && view.size() == universe_size_,
                 "SetSystem::AddSetFromView: view mismatches the system");
  if (WantsSparse(view.CountSet())) {
    if (const SparseSet* sparse = view.sparse()) return PushSparse(*sparse);
    // Dense or span representations: ToIndices() is sorted, unique, and
    // in-range by construction, so the sparse set can adopt it without
    // re-sorting or re-validating (the view's size was CHECKed above).
    return PushSparse(SparseSet::FromSortedIndicesUnchecked(
        universe_size_, view.ToIndices()));
  }
  return PushDense(view.ToDense());
}

SetView SetSystem::set(SetId id) const {
  STREAMSC_DCHECK(id < slots_.size());
  const Slot& slot = slots_[id];
  if (slot.rep == Rep::kDense) return SetView(dense_[slot.index]);
  return SetView(sparse_[slot.index]);
}

bool SetSystem::IsSparse(SetId id) const {
  STREAMSC_DCHECK(id < slots_.size());
  return slots_[id].rep == Rep::kSparse;
}

SetSystem::Memory SetSystem::MemoryUsage() const {
  Memory memory;
  for (const auto& s : dense_) {
    memory.dense_bytes += s.ByteSize();
    ++memory.dense_sets;
  }
  for (const auto& s : sparse_) {
    memory.sparse_bytes += s.ByteSize();
    ++memory.sparse_sets;
  }
  return memory;
}

DynamicBitset SetSystem::UnionOf(const std::vector<SetId>& ids) const {
  DynamicBitset u(universe_size_);
  for (SetId id : ids) {
    STREAMSC_DCHECK(id < slots_.size());
    set(id).OrInto(u);
  }
  return u;
}

DynamicBitset SetSystem::UnionAll() const {
  DynamicBitset u(universe_size_);
  for (SetId id = 0; id < slots_.size(); ++id) set(id).OrInto(u);
  return u;
}

Count SetSystem::CoverageOf(const std::vector<SetId>& ids) const {
  return UnionOf(ids).CountSet();
}

bool SetSystem::IsFeasibleCover(const std::vector<SetId>& ids) const {
  return UnionOf(ids).All();
}

bool SetSystem::IsCoverable() const { return UnionAll().All(); }

Status SetSystem::Validate() const {
  for (SetId id = 0; id < slots_.size(); ++id) {
    if (set(id).size() != universe_size_) {
      return Status::Internal("set " + std::to_string(id) +
                              " has mismatched universe size");
    }
  }
  return Status::Ok();
}

Count SetSystem::TotalIncidences() const {
  Count total = 0;
  for (SetId id = 0; id < slots_.size(); ++id) total += set(id).CountSet();
  return total;
}

std::string SetSystem::DebugString() const {
  return "SetSystem(n=" + std::to_string(universe_size_) +
         ", m=" + std::to_string(slots_.size()) + ")";
}

}  // namespace streamsc
