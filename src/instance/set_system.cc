#include "instance/set_system.h"

#include <cassert>

namespace streamsc {

SetId SetSystem::AddSet(DynamicBitset set) {
  assert(set.size() == universe_size_);
  sets_.push_back(std::move(set));
  return static_cast<SetId>(sets_.size() - 1);
}

SetId SetSystem::AddSetFromIndices(const std::vector<ElementId>& indices) {
  return AddSet(DynamicBitset::FromIndices(universe_size_, indices));
}

DynamicBitset SetSystem::UnionOf(const std::vector<SetId>& ids) const {
  DynamicBitset u(universe_size_);
  for (SetId id : ids) {
    assert(id < sets_.size());
    u |= sets_[id];
  }
  return u;
}

DynamicBitset SetSystem::UnionAll() const {
  DynamicBitset u(universe_size_);
  for (const auto& s : sets_) u |= s;
  return u;
}

Count SetSystem::CoverageOf(const std::vector<SetId>& ids) const {
  return UnionOf(ids).CountSet();
}

bool SetSystem::IsFeasibleCover(const std::vector<SetId>& ids) const {
  return UnionOf(ids).All();
}

bool SetSystem::IsCoverable() const { return UnionAll().All(); }

Status SetSystem::Validate() const {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (sets_[i].size() != universe_size_) {
      return Status::Internal("set " + std::to_string(i) +
                              " has mismatched universe size");
    }
  }
  return Status::Ok();
}

Count SetSystem::TotalIncidences() const {
  Count total = 0;
  for (const auto& s : sets_) total += s.CountSet();
  return total;
}

std::string SetSystem::DebugString() const {
  return "SetSystem(n=" + std::to_string(universe_size_) +
         ", m=" + std::to_string(sets_.size()) + ")";
}

}  // namespace streamsc
