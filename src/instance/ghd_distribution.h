#ifndef STREAMSC_INSTANCE_GHD_DISTRIBUTION_H_
#define STREAMSC_INSTANCE_GHD_DISTRIBUTION_H_

#include <cstdint>

#include "util/bitset.h"
#include "util/random.h"

/// \file ghd_distribution.h
/// The gap-hamming-distance problem GHD_t and the distribution D_GHD used
/// by the maximum coverage lower bound (paper, Section 4.1).
///
/// GHD(A, B) = Yes  if Δ(A,B) >= t/2 + sqrt(t)
///           = No   if Δ(A,B) <= t/2 - sqrt(t)
///           = ⋆    otherwise (any answer accepted),
/// where Δ is the symmetric-difference size. D_GHD fixes |A| = a, |B| = b
/// and mixes D^Y (the Yes-conditioned uniform distribution) and D^N (the
/// No-conditioned one) with weight 1/2 each.

namespace streamsc {

/// Ternary GHD answer.
enum class GhdAnswer { kYes, kNo, kStar };

/// One GHD_t input.
struct GhdInstance {
  DynamicBitset a;  ///< Alice's set, over universe [t].
  DynamicBitset b;  ///< Bob's set, over universe [t].

  /// Hamming distance Δ(A, B).
  Count Distance() const { return a.HammingDistance(b); }
};

/// Sampler for D_GHD and its Yes/No conditionals (rejection sampling from
/// the uniform distribution over (a,b)-size pairs).
class GhdDistribution {
 public:
  /// Distribution over GHD_t instances with |A| = a and |B| = b.
  /// Preconditions: t >= 4, a <= t, b <= t.
  GhdDistribution(std::size_t t, std::size_t a, std::size_t b);

  std::size_t t() const { return t_; }
  std::size_t a() const { return a_; }
  std::size_t b() const { return b_; }

  /// Yes threshold t/2 + sqrt(t).
  double YesThreshold() const;

  /// No threshold t/2 - sqrt(t).
  double NoThreshold() const;

  /// Classifies an instance per the gap promise.
  GhdAnswer Classify(const GhdInstance& inst) const;

  /// Samples from D_GHD (fair mix of D^Y and D^N). \p yes_out, when
  /// non-null, receives the branch taken.
  GhdInstance Sample(Rng& rng, bool* yes_out = nullptr) const;

  /// Samples from D^Y: uniform over size-constrained pairs conditioned on
  /// Δ >= t/2 + sqrt(t).
  GhdInstance SampleYes(Rng& rng) const;

  /// Samples from D^N: uniform conditioned on Δ <= t/2 - sqrt(t).
  GhdInstance SampleNo(Rng& rng) const;

 private:
  GhdInstance SampleUnconditioned(Rng& rng) const;

  std::size_t t_;
  std::size_t a_;
  std::size_t b_;
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_GHD_DISTRIBUTION_H_
