#ifndef STREAMSC_INSTANCE_COVER_FREE_H_
#define STREAMSC_INSTANCE_COVER_FREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "instance/set_system.h"
#include "util/random.h"

/// \file cover_free.h
/// r-covering / cover-free family utilities.
///
/// The paper (Section 1.2, footnote 2) notes that essentially all streaming
/// set cover lower bounds rest on a variant of the r-covering property of
/// Lund-Yannakakis: no small collection of sets in the family covers
/// another member entirely. These helpers let tests and benches certify
/// that property on sampled families (exhaustively for small r, by random
/// search otherwise).

namespace streamsc {

/// A witness that the r-covering property fails: sets `coverers` (|.| <= r)
/// jointly cover set `covered`.
struct CoveringViolation {
  SetId covered = kInvalidSetId;
  std::vector<SetId> coverers;
};

/// Exhaustively searches for a violation with at most \p r coverers.
/// Cost: O(m^{r+1}) unions — intended for small m and r <= 3.
std::optional<CoveringViolation> FindCoveringViolationExhaustive(
    const SetSystem& system, std::size_t r);

/// Randomized search: \p trials random (target, r coverers) probes.
/// Returns the first violation found, if any. One-sided: finding nothing
/// is evidence, not proof.
std::optional<CoveringViolation> FindCoveringViolationRandom(
    const SetSystem& system, std::size_t r, std::size_t trials, Rng& rng);

/// Generates a random family of m s-subsets of [n]; by the probabilistic
/// method such families are r-cover-free w.h.p. for suitable (n, m, s, r).
SetSystem RandomCoverFreeCandidate(std::size_t n, std::size_t m,
                                   std::size_t s, Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_COVER_FREE_H_
