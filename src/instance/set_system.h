#ifndef STREAMSC_INSTANCE_SET_SYSTEM_H_
#define STREAMSC_INSTANCE_SET_SYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/bitset.h"
#include "util/common.h"
#include "util/set_view.h"
#include "util/sparse_set.h"
#include "util/status.h"

/// \file set_system.h
/// SetSystem: a collection of m subsets of a universe [n]. This is the
/// shared input representation for the offline solvers, the streaming
/// algorithms (which consume it through SetStream), and the hard-instance
/// distributions.
///
/// Storage is *hybrid*: each set is kept either densely (DynamicBitset,
/// n bits) or sparsely (SparseSet, 32 bits per member), chosen per set at
/// insertion by a density threshold. Consumers read sets through SetView
/// (set(id)), which dispatches to the stored representation — sparse
/// instances scan in O(k) per set instead of O(n/64) and occupy memory
/// proportional to their incidences rather than m·n.

namespace streamsc {

/// An immutable-universe, growable collection of subsets of [n].
class SetSystem {
 public:
  /// Default density threshold below which a set is stored sparsely.
  /// 1/32 is the memory break-even point: a k-member sparse set costs
  /// 32k bits vs. n bits dense, so sparse wins exactly when k < n/32.
  static constexpr double kDefaultSparsityThreshold = 1.0 / 32.0;

  /// Creates an empty collection over a universe of \p universe_size.
  /// Sets with density (|S|/n) strictly below \p sparsity_threshold are
  /// stored sparsely; pass 0.0 to force dense storage, 1.1 to force
  /// sparse storage. With a non-null \p arena, all internal storage —
  /// slot table and set payloads — bump-allocates there; incoming sets
  /// whose buffers live elsewhere are re-homed on insertion.
  explicit SetSystem(std::size_t universe_size = 0,
                     double sparsity_threshold = kDefaultSparsityThreshold,
                     MonotonicArena* arena = nullptr)
      : universe_size_(universe_size),
        sparsity_threshold_(sparsity_threshold),
        arena_(arena),
        slots_(ArenaAllocator<Slot>(arena)),
        dense_(ArenaAllocator<DynamicBitset>(arena)),
        sparse_(ArenaAllocator<SparseSet>(arena)) {}

  /// The arena backing this system's storage (null = heap).
  MonotonicArena* arena() const { return arena_; }

  /// Appends \p set; returns its SetId. CHECK-fails (all build modes) if
  /// the set's universe size mismatches the system's.
  SetId AddSet(DynamicBitset set);

  /// Appends an already-sparse set, re-deciding the representation under
  /// this system's threshold (adopted without conversion when it stays
  /// sparse — the fast path for sparse-emitting producers such as
  /// SubUniverse::ProjectAdaptive). CHECK-fails on universe mismatch.
  SetId AddSet(SparseSet set);

  /// Appends a set given by its member elements (need not be sorted).
  /// CHECK-fails on out-of-universe elements. Builds the sparse
  /// representation directly when the set qualifies — no n-bit
  /// intermediate, so ingesting a sparse instance is O(incidences).
  SetId AddSetFromIndices(std::span<const ElementId> indices);

  /// Braced-list convenience (tests, hand-built instances): spans do not
  /// bind to initializer lists directly.
  SetId AddSetFromIndices(std::initializer_list<ElementId> indices) {
    return AddSetFromIndices(
        std::span<const ElementId>(indices.begin(), indices.size()));
  }

  /// Appends a copy of the viewed set, re-deciding the representation
  /// under this system's threshold.
  SetId AddSetFromView(SetView view);

  /// Universe size n.
  std::size_t universe_size() const { return universe_size_; }

  /// Number of sets m.
  std::size_t num_sets() const { return slots_.size(); }

  /// A view of the \p id-th set. Precondition: id < num_sets(). The view
  /// is invalidated by the next AddSet* call (storage may grow).
  SetView set(SetId id) const;

  /// True iff the \p id-th set is stored sparsely.
  bool IsSparse(SetId id) const;

  /// Stored bytes of the \p id-th set (its representation's ByteSize).
  Bytes SetBytes(SetId id) const { return set(id).ByteSize(); }

  /// Per-representation memory report.
  struct Memory {
    Bytes dense_bytes = 0;        ///< Total bytes of dense-stored sets.
    Bytes sparse_bytes = 0;       ///< Total bytes of sparse-stored sets.
    std::size_t dense_sets = 0;   ///< Number of dense-stored sets.
    std::size_t sparse_sets = 0;  ///< Number of sparse-stored sets.

    Bytes total_bytes() const { return dense_bytes + sparse_bytes; }
  };

  /// Reports stored bytes and set counts for both representations.
  Memory MemoryUsage() const;

  /// Union of the sets with the given ids, allocated from \p alloc.
  DynamicBitset UnionOf(std::span<const SetId> ids,
                        DynamicBitset::Allocator alloc = {}) const;

  /// Union of every set in the system, allocated from \p alloc.
  DynamicBitset UnionAll(DynamicBitset::Allocator alloc = {}) const;

  /// Number of universe elements covered by the given ids. (The n-bit
  /// union intermediate stages in the calling thread's scratch arena.)
  Count CoverageOf(std::span<const SetId> ids) const;

  /// True iff the given ids cover the whole universe. (Scratch-staged,
  /// like CoverageOf.)
  bool IsFeasibleCover(std::span<const SetId> ids) const;

  /// Braced-list conveniences (tests, hand-built queries).
  DynamicBitset UnionOf(std::initializer_list<SetId> ids,
                        DynamicBitset::Allocator alloc = {}) const {
    return UnionOf(std::span<const SetId>(ids.begin(), ids.size()), alloc);
  }
  Count CoverageOf(std::initializer_list<SetId> ids) const {
    return CoverageOf(std::span<const SetId>(ids.begin(), ids.size()));
  }
  bool IsFeasibleCover(std::initializer_list<SetId> ids) const {
    return IsFeasibleCover(std::span<const SetId>(ids.begin(), ids.size()));
  }

  /// True iff some subcollection covers the universe (i.e., UnionAll() is
  /// everything) — precondition for set cover feasibility.
  bool IsCoverable() const;

  /// Checks internal consistency (set sizes match the universe).
  Status Validate() const;

  /// Total number of (set, element) incidences — the paper's "input size
  /// mn" is the dense analogue; this is the sparse analogue.
  Count TotalIncidences() const;

  /// Short human-readable summary like "SetSystem(n=100, m=20)".
  std::string DebugString() const;

 private:
  enum class Rep : std::uint8_t { kDense, kSparse };

  struct Slot {
    Rep rep;
    std::uint32_t index;  // into dense_ or sparse_
  };

  // True iff a set with \p count members should be stored sparsely.
  bool WantsSparse(Count count) const;

  SetId PushDense(DynamicBitset set);
  SetId PushSparse(SparseSet set);

  std::size_t universe_size_;
  double sparsity_threshold_;
  MonotonicArena* arena_ = nullptr;
  ArenaVector<Slot> slots_;
  ArenaVector<DynamicBitset> dense_;
  ArenaVector<SparseSet> sparse_;
};

/// A set cover / max coverage solution: set ids plus bookkeeping helpers.
/// Arena-aware: solvers build it on the per-run arena (moves carry the
/// arena; copies land on the heap, so escaping a solution past the run is
/// an explicit heap copy).
struct Solution {
  ArenaVector<SetId> chosen;

  Solution() = default;
  explicit Solution(ArenaAllocator<SetId> alloc) : chosen(alloc) {}
  explicit Solution(MonotonicArena* arena)
      : chosen(ArenaAllocator<SetId>(arena)) {}
  /// Heap-backed braced-list construction (tests, hand-built solutions).
  Solution(std::initializer_list<SetId> ids) : chosen(ids) {}

  std::size_t size() const { return chosen.size(); }
  bool empty() const { return chosen.empty(); }
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_SET_SYSTEM_H_
