#ifndef STREAMSC_INSTANCE_SET_SYSTEM_H_
#define STREAMSC_INSTANCE_SET_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/common.h"
#include "util/set_view.h"
#include "util/sparse_set.h"
#include "util/status.h"

/// \file set_system.h
/// SetSystem: a collection of m subsets of a universe [n]. This is the
/// shared input representation for the offline solvers, the streaming
/// algorithms (which consume it through SetStream), and the hard-instance
/// distributions.
///
/// Storage is *hybrid*: each set is kept either densely (DynamicBitset,
/// n bits) or sparsely (SparseSet, 32 bits per member), chosen per set at
/// insertion by a density threshold. Consumers read sets through SetView
/// (set(id)), which dispatches to the stored representation — sparse
/// instances scan in O(k) per set instead of O(n/64) and occupy memory
/// proportional to their incidences rather than m·n.

namespace streamsc {

/// An immutable-universe, growable collection of subsets of [n].
class SetSystem {
 public:
  /// Default density threshold below which a set is stored sparsely.
  /// 1/32 is the memory break-even point: a k-member sparse set costs
  /// 32k bits vs. n bits dense, so sparse wins exactly when k < n/32.
  static constexpr double kDefaultSparsityThreshold = 1.0 / 32.0;

  /// Creates an empty collection over a universe of \p universe_size.
  /// Sets with density (|S|/n) strictly below \p sparsity_threshold are
  /// stored sparsely; pass 0.0 to force dense storage, 1.1 to force
  /// sparse storage.
  explicit SetSystem(std::size_t universe_size = 0,
                     double sparsity_threshold = kDefaultSparsityThreshold)
      : universe_size_(universe_size),
        sparsity_threshold_(sparsity_threshold) {}

  /// Appends \p set; returns its SetId. CHECK-fails (all build modes) if
  /// the set's universe size mismatches the system's.
  SetId AddSet(DynamicBitset set);

  /// Appends an already-sparse set, re-deciding the representation under
  /// this system's threshold (adopted without conversion when it stays
  /// sparse — the fast path for sparse-emitting producers such as
  /// SubUniverse::ProjectAdaptive). CHECK-fails on universe mismatch.
  SetId AddSet(SparseSet set);

  /// Appends a set given by its member elements (need not be sorted).
  /// CHECK-fails on out-of-universe elements. Builds the sparse
  /// representation directly when the set qualifies — no n-bit
  /// intermediate, so ingesting a sparse instance is O(incidences).
  SetId AddSetFromIndices(const std::vector<ElementId>& indices);

  /// Appends a copy of the viewed set, re-deciding the representation
  /// under this system's threshold.
  SetId AddSetFromView(SetView view);

  /// Universe size n.
  std::size_t universe_size() const { return universe_size_; }

  /// Number of sets m.
  std::size_t num_sets() const { return slots_.size(); }

  /// A view of the \p id-th set. Precondition: id < num_sets(). The view
  /// is invalidated by the next AddSet* call (storage may grow).
  SetView set(SetId id) const;

  /// True iff the \p id-th set is stored sparsely.
  bool IsSparse(SetId id) const;

  /// Stored bytes of the \p id-th set (its representation's ByteSize).
  Bytes SetBytes(SetId id) const { return set(id).ByteSize(); }

  /// Per-representation memory report.
  struct Memory {
    Bytes dense_bytes = 0;        ///< Total bytes of dense-stored sets.
    Bytes sparse_bytes = 0;       ///< Total bytes of sparse-stored sets.
    std::size_t dense_sets = 0;   ///< Number of dense-stored sets.
    std::size_t sparse_sets = 0;  ///< Number of sparse-stored sets.

    Bytes total_bytes() const { return dense_bytes + sparse_bytes; }
  };

  /// Reports stored bytes and set counts for both representations.
  Memory MemoryUsage() const;

  /// Union of the sets with the given ids.
  DynamicBitset UnionOf(const std::vector<SetId>& ids) const;

  /// Union of every set in the system.
  DynamicBitset UnionAll() const;

  /// Number of universe elements covered by the given ids.
  Count CoverageOf(const std::vector<SetId>& ids) const;

  /// True iff the given ids cover the whole universe.
  bool IsFeasibleCover(const std::vector<SetId>& ids) const;

  /// True iff some subcollection covers the universe (i.e., UnionAll() is
  /// everything) — precondition for set cover feasibility.
  bool IsCoverable() const;

  /// Checks internal consistency (set sizes match the universe).
  Status Validate() const;

  /// Total number of (set, element) incidences — the paper's "input size
  /// mn" is the dense analogue; this is the sparse analogue.
  Count TotalIncidences() const;

  /// Short human-readable summary like "SetSystem(n=100, m=20)".
  std::string DebugString() const;

 private:
  enum class Rep : std::uint8_t { kDense, kSparse };

  struct Slot {
    Rep rep;
    std::uint32_t index;  // into dense_ or sparse_
  };

  // True iff a set with \p count members should be stored sparsely.
  bool WantsSparse(Count count) const;

  SetId PushDense(DynamicBitset set);
  SetId PushSparse(SparseSet set);

  std::size_t universe_size_;
  double sparsity_threshold_;
  std::vector<Slot> slots_;
  std::vector<DynamicBitset> dense_;
  std::vector<SparseSet> sparse_;
};

/// A set cover / max coverage solution: set ids plus bookkeeping helpers.
struct Solution {
  std::vector<SetId> chosen;

  std::size_t size() const { return chosen.size(); }
  bool empty() const { return chosen.empty(); }
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_SET_SYSTEM_H_
