#ifndef STREAMSC_INSTANCE_SET_SYSTEM_H_
#define STREAMSC_INSTANCE_SET_SYSTEM_H_

#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/common.h"
#include "util/status.h"

/// \file set_system.h
/// SetSystem: a collection of m subsets of a universe [n]. This is the
/// shared input representation for the offline solvers, the streaming
/// algorithms (which consume it through SetStream), and the hard-instance
/// distributions.

namespace streamsc {

/// An immutable-universe, growable collection of subsets of [n].
class SetSystem {
 public:
  /// Creates an empty collection over a universe of \p universe_size.
  explicit SetSystem(std::size_t universe_size = 0)
      : universe_size_(universe_size) {}

  /// Appends \p set (must be over the same universe); returns its SetId.
  SetId AddSet(DynamicBitset set);

  /// Appends a set given by its member elements.
  SetId AddSetFromIndices(const std::vector<ElementId>& indices);

  /// Universe size n.
  std::size_t universe_size() const { return universe_size_; }

  /// Number of sets m.
  std::size_t num_sets() const { return sets_.size(); }

  /// The \p id-th set. Precondition: id < num_sets().
  const DynamicBitset& set(SetId id) const { return sets_[id]; }

  /// All sets, in insertion order.
  const std::vector<DynamicBitset>& sets() const { return sets_; }

  /// Union of the sets with the given ids.
  DynamicBitset UnionOf(const std::vector<SetId>& ids) const;

  /// Union of every set in the system.
  DynamicBitset UnionAll() const;

  /// Number of universe elements covered by the given ids.
  Count CoverageOf(const std::vector<SetId>& ids) const;

  /// True iff the given ids cover the whole universe.
  bool IsFeasibleCover(const std::vector<SetId>& ids) const;

  /// True iff some subcollection covers the universe (i.e., UnionAll() is
  /// everything) — precondition for set cover feasibility.
  bool IsCoverable() const;

  /// Checks internal consistency (set sizes match the universe).
  Status Validate() const;

  /// Total number of (set, element) incidences — the paper's "input size
  /// mn" is the dense analogue; this is the sparse analogue.
  Count TotalIncidences() const;

  /// Short human-readable summary like "SetSystem(n=100, m=20)".
  std::string DebugString() const;

 private:
  std::size_t universe_size_;
  std::vector<DynamicBitset> sets_;
};

/// A set cover / max coverage solution: set ids plus bookkeeping helpers.
struct Solution {
  std::vector<SetId> chosen;

  std::size_t size() const { return chosen.size(); }
  bool empty() const { return chosen.empty(); }
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_SET_SYSTEM_H_
