#include "instance/serialization.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/file_probe.h"

namespace streamsc {
namespace {

constexpr char kMagic[] = "ssc1";

// Reads the next non-comment, non-blank line into \p line. Returns false
// at end of stream. \p line_number tracks position for error messages.
bool NextContentLine(std::istream& in, std::string* line,
                     std::size_t* line_number) {
  while (std::getline(in, *line)) {
    ++*line_number;
    const std::size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;   // blank
    if ((*line)[start] == '#') continue;        // comment
    return true;
  }
  return false;
}

Status MalformedAt(std::size_t line_number, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 ": " + what);
}

}  // namespace

void WriteSetSystem(const SetSystem& system, std::ostream& out) {
  out << kMagic << ' ' << system.universe_size() << ' ' << system.num_sets()
      << '\n';
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const std::vector<ElementId> members = system.set(id).ToIndices();
    out << members.size();
    for (ElementId e : members) out << ' ' << e;
    out << '\n';
  }
}

std::string SetSystemToString(const SetSystem& system) {
  std::ostringstream out;
  WriteSetSystem(system, out);
  return out.str();
}

StatusOr<SetSystem> ReadSetSystem(std::istream& in) {
  std::string line;
  std::size_t line_number = 0;
  if (!NextContentLine(in, &line, &line_number)) {
    return Status::InvalidArgument("empty input (missing ssc1 header)");
  }

  std::istringstream header(line);
  std::string magic;
  std::uint64_t n = 0, m = 0;
  if (!(header >> magic >> n >> m) || magic != kMagic) {
    return MalformedAt(line_number,
                       "expected header 'ssc1 <n> <m>', got '" + line + "'");
  }
  // Sanity caps: a corrupt header must not drive allocation. 2^31 bits is
  // already a 256 MiB set — far beyond any workload this library targets.
  constexpr std::uint64_t kMaxDimension = std::uint64_t{1} << 31;
  if (n > kMaxDimension || m > kMaxDimension) {
    return MalformedAt(line_number, "header dimensions exceed 2^31");
  }
  std::string trailing;
  if (header >> trailing) {
    return MalformedAt(line_number, "trailing tokens after header");
  }

  SetSystem system(static_cast<std::size_t>(n));
  for (std::uint64_t set_index = 0; set_index < m; ++set_index) {
    if (!NextContentLine(in, &line, &line_number)) {
      return Status::InvalidArgument(
          "expected " + std::to_string(m) + " set lines, got " +
          std::to_string(set_index));
    }
    std::istringstream row(line);
    std::uint64_t k = 0;
    if (!(row >> k)) {
      return MalformedAt(line_number, "expected '<k> <elements...>'");
    }
    DynamicBitset set(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < k; ++i) {
      std::uint64_t e = 0;
      if (!(row >> e)) {
        return MalformedAt(line_number,
                           "set declares " + std::to_string(k) +
                               " elements but lists fewer");
      }
      if (e >= n) {
        return MalformedAt(line_number,
                           "element " + std::to_string(e) +
                               " out of range for universe " +
                               std::to_string(n));
      }
      set.Set(static_cast<std::size_t>(e));
    }
    if (row >> trailing) {
      return MalformedAt(line_number, "trailing tokens after set elements");
    }
    if (set.CountSet() != k) {
      return MalformedAt(line_number, "duplicate elements in set line");
    }
    system.AddSet(std::move(set));
  }

  if (NextContentLine(in, &line, &line_number)) {
    return MalformedAt(line_number, "trailing content after last set");
  }
  return system;
}

StatusOr<SetSystem> SetSystemFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadSetSystem(in);
}

Status SaveSetSystem(const SetSystem& system, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  WriteSetSystem(system, out);
  out.flush();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::Ok();
}

StatusOr<SetSystem> LoadSetSystem(const std::string& path) {
  // Probe before the blocking open: ifstream on an unfed FIFO hangs
  // forever instead of failing.
  const Status probe = ProbeRegularFile(path);
  if (!probe.ok() && probe.code() == StatusCode::kInvalidArgument) {
    return probe;
  }
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  return ReadSetSystem(in);
}

}  // namespace streamsc
