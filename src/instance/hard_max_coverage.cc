#include "instance/hard_max_coverage.h"
#include "util/check.h"

#include <cmath>

namespace streamsc {
namespace {

std::size_t T1FromEpsilon(double epsilon) {
  STREAMSC_DCHECK(epsilon > 0.0 && epsilon < 1.0);
  return static_cast<std::size_t>(
      std::ceil(1.0 / (epsilon * epsilon)));
}

}  // namespace

SetSystem HardMaxCoverageInstance::ToSetSystem() const {
  SetSystem system(n());
  for (const auto& s : s_sets) system.AddSet(s);
  for (const auto& t : t_sets) system.AddSet(t);
  return system;
}

HardMaxCoverageDistribution::HardMaxCoverageDistribution(
    HardMaxCoverageParams params)
    : params_(params),
      t1_(T1FromEpsilon(params.epsilon)),
      t2_(10 * t1_),
      ghd_dist_(std::max<std::size_t>(t1_, 4), std::max<std::size_t>(t1_, 4) / 2,
                std::max<std::size_t>(t1_, 4) / 2) {
  t1_ = std::max<std::size_t>(t1_, 4);  // GHD needs a minimal universe.
  t2_ = 10 * t1_;
  STREAMSC_DCHECK(params_.m >= 1);
}

double HardMaxCoverageDistribution::Tau() const {
  const double a = static_cast<double>(ghd_dist_.a());
  const double b = static_cast<double>(ghd_dist_.b());
  return static_cast<double>(t2_) + (a + b) / 2.0 +
         static_cast<double>(t1_) / 4.0;
}

HardMaxCoverageInstance HardMaxCoverageDistribution::Sample(Rng& rng) const {
  return SampleWithTheta(rng, rng.Bernoulli(0.5) ? 1 : 0);
}

HardMaxCoverageInstance HardMaxCoverageDistribution::SampleThetaZero(
    Rng& rng) const {
  return SampleWithTheta(rng, 0);
}

HardMaxCoverageInstance HardMaxCoverageDistribution::SampleThetaOne(
    Rng& rng) const {
  return SampleWithTheta(rng, 1);
}

HardMaxCoverageInstance HardMaxCoverageDistribution::SampleWithTheta(
    Rng& rng, int theta) const {
  HardMaxCoverageInstance out;
  out.params = params_;
  out.t1 = t1_;
  out.t2 = t2_;
  out.a = ghd_dist_.a();
  out.b = ghd_dist_.b();
  out.theta = theta;
  out.tau = Tau();
  const std::size_t n = t1_ + t2_;
  out.s_sets.reserve(params_.m);
  out.t_sets.reserve(params_.m);
  out.ghd.reserve(params_.m);

  // Embeds a subset of [t1] into the low-order slice U1 of [n], unioned
  // with a subset of U2 given as a bitset over [t2] shifted by t1.
  auto build_set = [&](const DynamicBitset& u1_part,
                       const DynamicBitset& u2_part) {
    DynamicBitset set(n);
    u1_part.ForEach([&](ElementId e) { set.Set(e); });
    u2_part.ForEach([&](ElementId e) { set.Set(t1_ + e); });
    return set;
  };

  std::vector<DynamicBitset> c_parts, d_parts;
  c_parts.reserve(params_.m);
  d_parts.reserve(params_.m);

  for (std::size_t i = 0; i < params_.m; ++i) {
    GhdInstance pair = ghd_dist_.SampleNo(rng);
    // Random 2-partition of U2: each element to C_i w.p. 1/2, else D_i.
    DynamicBitset c = rng.BernoulliSubset(t2_, 0.5);
    DynamicBitset d = c;
    d.Complement();
    out.s_sets.push_back(build_set(pair.a, c));
    out.t_sets.push_back(build_set(pair.b, d));
    out.ghd.push_back(std::move(pair));
    c_parts.push_back(std::move(c));
    d_parts.push_back(std::move(d));
  }

  if (theta == 1) {
    out.i_star = static_cast<SetId>(rng.UniformInt(params_.m));
    // Resample only the GHD part; C_i⋆ and D_i⋆ are kept, per D_MC.
    GhdInstance pair = ghd_dist_.SampleYes(rng);
    out.s_sets[out.i_star] = build_set(pair.a, c_parts[out.i_star]);
    out.t_sets[out.i_star] = build_set(pair.b, d_parts[out.i_star]);
    out.ghd[out.i_star] = std::move(pair);
  }
  return out;
}

}  // namespace streamsc
