#ifndef STREAMSC_INSTANCE_HARD_MAX_COVERAGE_H_
#define STREAMSC_INSTANCE_HARD_MAX_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "instance/ghd_distribution.h"
#include "instance/set_system.h"
#include "util/random.h"

/// \file hard_max_coverage.h
/// The hard input distribution D_MC for the maximum coverage lower bound
/// (paper, Section 4.2).
///
/// Parameters: ε, m. Let t1 = 1/ε², t2 = 10·t1, U1 = [t1] and U2 the next
/// t2 elements (n = t1 + t2, k = 2). For each i:
///   * (A_i, B_i) ~ D^N_GHD over U1 (sizes fixed to a = b = t1/2);
///   * (C_i, D_i): a uniformly random 2-partition of U2;
///   * S_i := A_i ∪ C_i, T_i := B_i ∪ D_i.
/// θ ∈R {0,1}; if θ = 1, resample (A_i⋆, B_i⋆) ~ D^Y_GHD (keeping C, D).
/// With τ := t2 + (a+b)/2 + t1/4, Lemma 4.3: opt ≥ (1+Θ(ε))τ when θ = 1
/// and opt ≤ (1−Θ(ε))τ when θ = 0, so any (1−ε)-approximation of the k=2
/// maximum coverage value determines θ.

namespace streamsc {

/// Parameters of D_MC.
struct HardMaxCoverageParams {
  double epsilon = 0.1;  ///< Gap parameter; t1 = ceil(1/ε²).
  std::size_t m = 64;    ///< Number of (S_i, T_i) pairs; 2m sets total.
};

/// One sampled D_MC instance with its latent variables.
struct HardMaxCoverageInstance {
  HardMaxCoverageParams params;
  std::size_t t1 = 0;  ///< |U1| = ceil(1/ε²).
  std::size_t t2 = 0;  ///< |U2| = 10·t1.
  std::size_t a = 0;   ///< Fixed |A_i| within U1.
  std::size_t b = 0;   ///< Fixed |B_i| within U1.
  int theta = 0;
  SetId i_star = kInvalidSetId;  ///< Valid iff theta == 1.
  double tau = 0.0;              ///< The pivot value τ of Lemma 4.3.

  std::vector<DynamicBitset> s_sets;  ///< Over [n] = [t1 + t2].
  std::vector<DynamicBitset> t_sets;

  /// The underlying GHD instances over [t1] (for tests and reductions).
  std::vector<GhdInstance> ghd;

  /// Universe size n = t1 + t2.
  std::size_t n() const { return t1 + t2; }

  /// Number of pairs m.
  std::size_t m() const { return s_sets.size(); }

  /// All 2m sets as one system: ids [0, m) are S_i, ids [m, 2m) are T_i.
  SetSystem ToSetSystem() const;

  /// The max-coverage budget: always k = 2 in this construction.
  static constexpr std::size_t kCoverageBudget = 2;
};

/// Sampler for D_MC.
class HardMaxCoverageDistribution {
 public:
  explicit HardMaxCoverageDistribution(HardMaxCoverageParams params);

  const HardMaxCoverageParams& params() const { return params_; }
  std::size_t t1() const { return t1_; }
  std::size_t t2() const { return t2_; }

  /// The pivot τ = t2 + (a+b)/2 + t1/4.
  double Tau() const;

  /// Samples a full instance (θ mixed fairly).
  HardMaxCoverageInstance Sample(Rng& rng) const;

  /// Samples conditioned on θ = 0 (all pairs from D^N; opt below τ).
  HardMaxCoverageInstance SampleThetaZero(Rng& rng) const;

  /// Samples conditioned on θ = 1 (planted D^Y pair; opt above τ).
  HardMaxCoverageInstance SampleThetaOne(Rng& rng) const;

 private:
  HardMaxCoverageInstance SampleWithTheta(Rng& rng, int theta) const;

  HardMaxCoverageParams params_;
  std::size_t t1_;
  std::size_t t2_;
  GhdDistribution ghd_dist_;
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_HARD_MAX_COVERAGE_H_
