#ifndef STREAMSC_INSTANCE_MAPPING_EXTENSION_H_
#define STREAMSC_INSTANCE_MAPPING_EXTENSION_H_

#include <vector>

#include "util/bitset.h"
#include "util/common.h"
#include "util/random.h"

/// \file mapping_extension.h
/// Mapping-extension of [t] to [n] (Definition 3 of the paper): a function
/// f : [t] -> 2^[n] mapping each i in [t] to a block of ~n/t unique
/// elements, with blocks pairwise disjoint. For A ⊆ [t],
/// f(A) := union of f(i) over i in A.
///
/// The paper assumes t | n so each block has exactly n/t elements. When
/// t does not divide n we distribute the remainder so block sizes differ by
/// at most one; all structural properties used in the constructions
/// (disjointness, f(A ∪ B) = f(A) ∪ f(B), |f(A)| ≈ |A|·n/t) are preserved.

namespace streamsc {

/// A uniformly random mapping-extension of [t] into [n].
class MappingExtension {
 public:
  /// Samples a uniform mapping-extension: a random permutation of [n]
  /// sliced into t nearly-equal blocks. Precondition: 1 <= t <= n.
  MappingExtension(std::size_t t, std::size_t n, Rng& rng);

  /// Source domain size t.
  std::size_t t() const { return t_; }

  /// Target universe size n.
  std::size_t n() const { return n_; }

  /// The block f(i) ⊆ [n]. Precondition: i < t.
  const DynamicBitset& Block(std::size_t i) const { return blocks_[i]; }

  /// f(A) = union of blocks of members of A. \p a must be over universe [t].
  DynamicBitset Extend(const DynamicBitset& a) const;

  /// [n] \ f(A) — the "complement extension" used to build the sets
  /// S_i = [n] \ f_i(A_i) of distribution D_SC.
  DynamicBitset ExtendComplement(const DynamicBitset& a) const;

  /// The block index i with e ∈ f(i). Precondition: e < n.
  std::size_t BlockOf(ElementId e) const { return element_block_[e]; }

 private:
  std::size_t t_;
  std::size_t n_;
  std::vector<DynamicBitset> blocks_;
  std::vector<std::uint32_t> element_block_;
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_MAPPING_EXTENSION_H_
