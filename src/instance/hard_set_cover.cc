#include "instance/hard_set_cover.h"


#include "instance/mapping_extension.h"
#include "util/check.h"
#include "util/math.h"

namespace streamsc {

SetSystem HardSetCoverInstance::ToSetSystem() const {
  SetSystem system(params.n);
  for (const auto& s : s_sets) system.AddSet(s);
  for (const auto& t : t_sets) system.AddSet(t);
  return system;
}

bool HardSetCoverInstance::IsPlantedPair(SetId combined_s,
                                         SetId combined_t) const {
  if (theta != 1) return false;
  const SetId m_count = static_cast<SetId>(s_sets.size());
  return combined_s == i_star && combined_t == m_count + i_star;
}

HardSetCoverDistribution::HardSetCoverDistribution(HardSetCoverParams params)
    : params_(params),
      t_(DisjUniverseSize(params.n, params.m, params.alpha, params.t_scale)),
      disj_dist_(std::max<std::size_t>(t_, 1)) {
  STREAMSC_DCHECK(params_.n >= 1 && params_.m >= 1 && params_.alpha >= 1.0);
  STREAMSC_DCHECK(t_ >= 1 && t_ <= params_.n);
}

HardSetCoverInstance HardSetCoverDistribution::Sample(Rng& rng) const {
  return SampleWithTheta(rng, rng.Bernoulli(0.5) ? 1 : 0);
}

HardSetCoverInstance HardSetCoverDistribution::SampleThetaZero(
    Rng& rng) const {
  return SampleWithTheta(rng, 0);
}

HardSetCoverInstance HardSetCoverDistribution::SampleThetaOne(Rng& rng) const {
  return SampleWithTheta(rng, 1);
}

HardSetCoverInstance HardSetCoverDistribution::SampleWithTheta(
    Rng& rng, int theta) const {
  HardSetCoverInstance out;
  out.params = params_;
  out.t = t_;
  out.theta = theta;
  out.s_sets.reserve(params_.m);
  out.t_sets.reserve(params_.m);
  out.disj.reserve(params_.m);

  for (std::size_t i = 0; i < params_.m; ++i) {
    DisjInstance pair = disj_dist_.SampleNo(rng);
    MappingExtension f(t_, params_.n, rng);
    out.s_sets.push_back(f.ExtendComplement(pair.a));
    out.t_sets.push_back(f.ExtendComplement(pair.b));
    out.disj.push_back(std::move(pair));
  }

  if (theta == 1) {
    out.i_star = static_cast<SetId>(rng.UniformInt(params_.m));
    // Resample the planted pair from D^Y and rebuild S_i⋆, T_i⋆ with a
    // fresh mapping-extension, exactly as the distribution specifies.
    DisjInstance pair = disj_dist_.SampleYes(rng);
    MappingExtension f(t_, params_.n, rng);
    out.s_sets[out.i_star] = f.ExtendComplement(pair.a);
    out.t_sets[out.i_star] = f.ExtendComplement(pair.b);
    out.disj[out.i_star] = std::move(pair);
  }
  return out;
}

RandomPartition SampleRandomPartition(const HardSetCoverInstance& instance,
                                      Rng& rng) {
  RandomPartition partition;
  const SetId m = static_cast<SetId>(instance.m());
  std::vector<bool> s_to_alice(m), t_to_alice(m);
  for (SetId i = 0; i < m; ++i) {
    s_to_alice[i] = rng.Bernoulli(0.5);
    t_to_alice[i] = rng.Bernoulli(0.5);
    (s_to_alice[i] ? partition.alice : partition.bob).push_back(i);
    (t_to_alice[i] ? partition.alice : partition.bob).push_back(m + i);
    if (s_to_alice[i] != t_to_alice[i]) {
      partition.good_indices.push_back(i);
    }
  }
  return partition;
}

}  // namespace streamsc
