#include "instance/mapping_extension.h"
#include "util/check.h"


namespace streamsc {

MappingExtension::MappingExtension(std::size_t t, std::size_t n, Rng& rng)
    : t_(t), n_(n), element_block_(n) {
  STREAMSC_DCHECK(t >= 1 && t <= n);
  const std::vector<std::uint32_t> perm = rng.RandomPermutation(n);
  blocks_.assign(t, DynamicBitset(n));
  // Slice the permuted universe into t nearly-equal consecutive runs.
  const std::size_t base = n / t;
  const std::size_t extra = n % t;  // first `extra` blocks get one more
  std::size_t pos = 0;
  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t block_size = base + (i < extra ? 1 : 0);
    for (std::size_t j = 0; j < block_size; ++j) {
      const ElementId e = perm[pos++];
      blocks_[i].Set(e);
      element_block_[e] = static_cast<std::uint32_t>(i);
    }
  }
  STREAMSC_DCHECK(pos == n);
}

DynamicBitset MappingExtension::Extend(const DynamicBitset& a) const {
  STREAMSC_DCHECK(a.size() == t_);
  DynamicBitset out(n_);
  a.ForEach([&](ElementId i) { out |= blocks_[i]; });
  return out;
}

DynamicBitset MappingExtension::ExtendComplement(
    const DynamicBitset& a) const {
  DynamicBitset out = Extend(a);
  out.Complement();
  return out;
}

}  // namespace streamsc
