#ifndef STREAMSC_INSTANCE_SERIALIZATION_H_
#define STREAMSC_INSTANCE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "instance/set_system.h"
#include "util/status.h"

/// \file serialization.h
/// Text serialization of SetSystem instances, so workloads can be
/// generated once, saved, and replayed across runs/tools (the benches and
/// the streamsc_gen example use this).
///
/// Format ("ssc1"): line-oriented, '#' comments allowed anywhere.
///
///   ssc1 <n> <m>
///   <k> <e_1> <e_2> ... <e_k>     # one line per set, elements ascending
///   ...
///
/// Element ids are 0-based and must be < n. The set count on the header
/// line must match the number of set lines.

namespace streamsc {

/// Writes \p system to \p out. Always succeeds on a good stream.
void WriteSetSystem(const SetSystem& system, std::ostream& out);

/// Serializes to a string (convenience wrapper over WriteSetSystem).
std::string SetSystemToString(const SetSystem& system);

/// Parses an "ssc1" stream. Returns InvalidArgument with a line-numbered
/// message on malformed input (bad magic, out-of-range element, set count
/// mismatch, trailing garbage).
StatusOr<SetSystem> ReadSetSystem(std::istream& in);

/// Parses from a string (convenience wrapper over ReadSetSystem).
StatusOr<SetSystem> SetSystemFromString(const std::string& text);

/// Writes \p system to \p path. Returns Internal if the file cannot be
/// opened or written.
Status SaveSetSystem(const SetSystem& system, const std::string& path);

/// Reads a system from \p path. NotFound if unreadable, InvalidArgument
/// if malformed.
StatusOr<SetSystem> LoadSetSystem(const std::string& path);

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_SERIALIZATION_H_
