#ifndef STREAMSC_INSTANCE_HARD_SET_COVER_H_
#define STREAMSC_INSTANCE_HARD_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "instance/disj_distribution.h"
#include "instance/set_system.h"
#include "util/random.h"

/// \file hard_set_cover.h
/// The hard input distribution D_SC for the streaming/communication set
/// cover lower bound (paper, Section 3.1), and its randomly-partitioned
/// variant D_SC^rnd (Section 3.3).
///
/// Construction, for parameters n, m, α and t = t_scale·(n/log m)^{1/α}:
///   * for each i ∈ [m]: (A_i, B_i) ~ D^N_Disj over [t], f_i a random
///     mapping-extension of [t] to [n];
///     S_i := [n] \ f_i(A_i),  T_i := [n] \ f_i(B_i);
///   * θ ∈R {0,1}; if θ = 1, resample (A_i⋆, B_i⋆) ~ D^Y_Disj for a random
///     i⋆ and rebuild S_i⋆, T_i⋆.
/// When θ = 1, {S_i⋆, T_i⋆} covers [n] (opt = 2). When θ = 0, every pair
/// S_i ∪ T_i misses the block f_i(A_i ∩ B_i) and Lemma 3.2 shows
/// opt > 2α w.h.p.
///
/// The paper's t_scale = 2^-15 exists for proof headroom; callers choose a
/// t_scale that keeps t >= 2 at laptop scale (see DESIGN.md substitutions).

namespace streamsc {

/// Parameters of D_SC.
struct HardSetCoverParams {
  std::size_t n = 1024;    ///< Universe size.
  std::size_t m = 64;      ///< Number of (S_i, T_i) pairs; 2m sets total.
  double alpha = 2.0;      ///< Approximation factor targeted by the bound.
  double t_scale = 1.0;    ///< Constant in t = t_scale·(n/log m)^{1/α}.
};

/// One sampled D_SC instance with its latent variables.
struct HardSetCoverInstance {
  HardSetCoverParams params;
  std::size_t t = 0;        ///< Disj universe size actually used.
  int theta = 0;            ///< Latent θ (1 = planted size-2 cover).
  SetId i_star = kInvalidSetId;  ///< Planted index (valid iff theta == 1).

  /// Alice's sets S_0..S_{m-1} and Bob's sets T_0..T_{m-1}, over [n].
  std::vector<DynamicBitset> s_sets;
  std::vector<DynamicBitset> t_sets;

  /// The underlying Disj instances (over [t]); kept for tests and for the
  /// communication reductions.
  std::vector<DisjInstance> disj;

  /// All 2m sets as one system: ids [0, m) are S_i, ids [m, 2m) are T_i.
  SetSystem ToSetSystem() const;

  /// Number of pairs m.
  std::size_t m() const { return s_sets.size(); }

  /// True iff sets S_i and T_j (by combined ids in [0, 2m)) form the
  /// planted pair.
  bool IsPlantedPair(SetId combined_s, SetId combined_t) const;
};

/// Sampler for D_SC.
class HardSetCoverDistribution {
 public:
  explicit HardSetCoverDistribution(HardSetCoverParams params);

  const HardSetCoverParams& params() const { return params_; }

  /// The Disj universe size t implied by the parameters.
  std::size_t DisjT() const { return t_; }

  /// Samples a full instance (θ mixed fairly).
  HardSetCoverInstance Sample(Rng& rng) const;

  /// Samples conditioned on θ = 0 (no planted cover; opt large w.h.p.).
  HardSetCoverInstance SampleThetaZero(Rng& rng) const;

  /// Samples conditioned on θ = 1 (planted size-2 cover at random i⋆).
  HardSetCoverInstance SampleThetaOne(Rng& rng) const;

 private:
  HardSetCoverInstance SampleWithTheta(Rng& rng, int theta) const;

  HardSetCoverParams params_;
  std::size_t t_;
  DisjDistribution disj_dist_;
};

/// A random two-player partition of a D_SC instance (distribution D_SC^rnd,
/// Section 3.3): each of the 2m sets goes to Alice w.p. 1/2, else to Bob.
/// Ids refer to HardSetCoverInstance::ToSetSystem() numbering.
struct RandomPartition {
  std::vector<SetId> alice;
  std::vector<SetId> bob;

  /// Indices i ∈ [m] whose S_i and T_i landed on *different* players
  /// ("good" indices in the proof of Lemma 3.7).
  std::vector<SetId> good_indices;
};

/// Samples the D_SC^rnd partition of \p instance.
RandomPartition SampleRandomPartition(const HardSetCoverInstance& instance,
                                      Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_HARD_SET_COVER_H_
