#ifndef STREAMSC_INSTANCE_DISJ_DISTRIBUTION_H_
#define STREAMSC_INSTANCE_DISJ_DISTRIBUTION_H_

#include "util/bitset.h"
#include "util/random.h"

/// \file disj_distribution.h
/// The set-disjointness problem Disj_t and its hard input distribution
/// D_Disj (paper, Section 2.2).
///
/// In Disj_t, Alice holds A ⊆ [t], Bob holds B ⊆ [t]; the answer is Yes iff
/// A ∩ B = ∅. The hard distribution:
///   * start with A = B = [t];
///   * per element e, w.p. 1/3 each: drop e from both / from A / from B
///     (so after this phase A ∩ B = ∅ always);
///   * flip Z ∈ {0,1}; if Z = 1, pick e* ∈R [t] and add it to both sets.
/// D^Y := (D | Z = 0) is supported on disjoint (Yes) instances;
/// D^N := (D | Z = 1) has |A ∩ B| = 1 (No instances).

namespace streamsc {

/// One Disj_t input with its ground truth.
struct DisjInstance {
  DynamicBitset a;  ///< Alice's set, over universe [t].
  DynamicBitset b;  ///< Bob's set, over universe [t].

  /// Ground truth: Yes iff a ∩ b = ∅.
  bool IsDisjoint() const { return !a.Intersects(b); }
};

/// Sampler for D_Disj and its Yes/No conditionals.
class DisjDistribution {
 public:
  /// Distribution over instances of Disj_t. Precondition: t >= 1.
  explicit DisjDistribution(std::size_t t);

  std::size_t t() const { return t_; }

  /// Samples from D_Disj (fair coin on Z). Sets \p z_out (when non-null)
  /// to the latent bit Z (1 means intersecting / No instance).
  DisjInstance Sample(Rng& rng, int* z_out = nullptr) const;

  /// Samples from D^Y (disjoint instances, Z = 0).
  DisjInstance SampleYes(Rng& rng) const;

  /// Samples from D^N (uniquely-intersecting instances, Z = 1). When
  /// \p e_star_out is non-null, receives the planted common element.
  DisjInstance SampleNo(Rng& rng, ElementId* e_star_out = nullptr) const;

 private:
  DisjInstance SampleBase(Rng& rng) const;

  std::size_t t_;
};

}  // namespace streamsc

#endif  // STREAMSC_INSTANCE_DISJ_DISTRIBUTION_H_
