#include "instance/ghd_distribution.h"
#include "util/check.h"

#include <algorithm>
#include <cmath>

namespace streamsc {

GhdDistribution::GhdDistribution(std::size_t t, std::size_t a, std::size_t b)
    : t_(t), a_(a), b_(b) {
  STREAMSC_DCHECK(t >= 4);
  STREAMSC_DCHECK(a <= t && b <= t);
  // Fail fast on unsatisfiable promises: Δ ranges over
  // [|a-b|, min(a+b, 2t-a-b)], so both conditionals must intersect it —
  // otherwise the rejection samplers below would never terminate.
  const double min_distance =
      static_cast<double>(a > b ? a - b : b - a);
  const double max_distance = static_cast<double>(
      std::min(a + b, 2 * t - a - b));
  STREAMSC_DCHECK(min_distance <= NoThreshold() &&
         "No-instances are unsatisfiable for these (t, a, b)");
  STREAMSC_DCHECK(max_distance >= YesThreshold() &&
         "Yes-instances are unsatisfiable for these (t, a, b)");
  (void)min_distance;
  (void)max_distance;
}

double GhdDistribution::YesThreshold() const {
  return static_cast<double>(t_) / 2.0 + std::sqrt(static_cast<double>(t_));
}

double GhdDistribution::NoThreshold() const {
  return static_cast<double>(t_) / 2.0 - std::sqrt(static_cast<double>(t_));
}

GhdAnswer GhdDistribution::Classify(const GhdInstance& inst) const {
  const double d = static_cast<double>(inst.Distance());
  if (d >= YesThreshold()) return GhdAnswer::kYes;
  if (d <= NoThreshold()) return GhdAnswer::kNo;
  return GhdAnswer::kStar;
}

GhdInstance GhdDistribution::SampleUnconditioned(Rng& rng) const {
  return GhdInstance{rng.RandomSubsetOfSize(t_, a_),
                     rng.RandomSubsetOfSize(t_, b_)};
}

GhdInstance GhdDistribution::Sample(Rng& rng, bool* yes_out) const {
  const bool yes = rng.Bernoulli(0.5);
  if (yes_out != nullptr) *yes_out = yes;
  return yes ? SampleYes(rng) : SampleNo(rng);
}

GhdInstance GhdDistribution::SampleYes(Rng& rng) const {
  // Rejection sampling; acceptance probability is a constant (the upper
  // tail past one standard deviation of Δ), so this terminates quickly.
  while (true) {
    GhdInstance inst = SampleUnconditioned(rng);
    if (Classify(inst) == GhdAnswer::kYes) return inst;
  }
}

GhdInstance GhdDistribution::SampleNo(Rng& rng) const {
  while (true) {
    GhdInstance inst = SampleUnconditioned(rng);
    if (Classify(inst) == GhdAnswer::kNo) return inst;
  }
}

}  // namespace streamsc
