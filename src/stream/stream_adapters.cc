#include "stream/stream_adapters.h"

#include <sstream>

#include "util/check.h"
#include "util/file_probe.h"

namespace streamsc {
namespace {

// Shifts an inner stream's item id into the combined id space.
StreamItem Shifted(StreamItem item, std::size_t offset) {
  item.id = static_cast<SetId>(item.id + offset);
  return item;
}

// Reads the next non-comment, non-blank line; false at end of stream.
bool NextContentLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::size_t start = line->find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if ((*line)[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

// ---- ConcatSetStream -------------------------------------------------------

ConcatSetStream::ConcatSetStream(SetStream& first, SetStream& second)
    : first_(first), second_(second) {
  STREAMSC_DCHECK(first_.universe_size() == second_.universe_size());
}

std::size_t ConcatSetStream::universe_size() const {
  return first_.universe_size();
}

std::size_t ConcatSetStream::num_sets() const {
  return first_.num_sets() + second_.num_sets();
}

void ConcatSetStream::BeginPass() {
  first_.BeginPass();
  second_.BeginPass();
  in_second_ = false;
  ++passes_;
}

bool ConcatSetStream::Next(StreamItem* item) {
  if (!in_second_) {
    if (first_.Next(item)) return true;
    in_second_ = true;
  }
  if (second_.Next(item)) {
    *item = Shifted(*item, first_.num_sets());
    return true;
  }
  return false;
}

// ---- InterleaveSetStream ---------------------------------------------------

InterleaveSetStream::InterleaveSetStream(SetStream& first, SetStream& second)
    : first_(first), second_(second) {
  STREAMSC_DCHECK(first_.universe_size() == second_.universe_size());
}

std::size_t InterleaveSetStream::universe_size() const {
  return first_.universe_size();
}

std::size_t InterleaveSetStream::num_sets() const {
  return first_.num_sets() + second_.num_sets();
}

void InterleaveSetStream::BeginPass() {
  first_.BeginPass();
  second_.BeginPass();
  first_done_ = false;
  second_done_ = false;
  next_is_second_ = false;
  ++passes_;
}

bool InterleaveSetStream::Next(StreamItem* item) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool take_second = next_is_second_;
    next_is_second_ = !next_is_second_;
    if (take_second && !second_done_) {
      if (second_.Next(item)) {
        *item = Shifted(*item, first_.num_sets());
        return true;
      }
      second_done_ = true;
    } else if (!take_second && !first_done_) {
      if (first_.Next(item)) return true;
      first_done_ = true;
    }
  }
  return false;
}

// ---- FileSetStream ---------------------------------------------------------

FileSetStream::FileSetStream(std::string path) : path_(std::move(path)) {
  Reopen();
  // BeginPass() re-opens; the constructor's open only validates the header.
  in_.close();
}

void FileSetStream::Reopen() {
  in_.close();
  in_.clear();
  // Probe before the blocking open: ifstream on an unfed FIFO (or a
  // device node) blocks forever, wedging whichever thread asked for the
  // pass. Missing files fall through so the open supplies NotFound.
  const Status probe = ProbeRegularFile(path_);
  if (!probe.ok() && probe.code() == StatusCode::kInvalidArgument) {
    status_ = probe;
    return;
  }
  in_.open(path_);
  if (!in_) {
    status_ = Status::NotFound("cannot open '" + path_ + "'");
    return;
  }
  std::string line;
  if (!NextContentLine(in_, &line)) {
    status_ = Status::InvalidArgument("empty file '" + path_ + "'");
    return;
  }
  std::istringstream header(line);
  std::string magic;
  std::uint64_t n = 0, m = 0;
  if (!(header >> magic >> n >> m) || magic != "ssc1") {
    status_ = Status::InvalidArgument("bad ssc1 header in '" + path_ + "'");
    return;
  }
  // Same header sanity cap as ReadSetSystem: never allocate off a corrupt
  // header.
  constexpr std::uint64_t kMaxDimension = std::uint64_t{1} << 31;
  if (n > kMaxDimension || m > kMaxDimension) {
    status_ = Status::InvalidArgument("header dimensions exceed 2^31 in '" +
                                      path_ + "'");
    return;
  }
  universe_size_ = static_cast<std::size_t>(n);
  num_sets_ = static_cast<std::size_t>(m);
  next_id_ = 0;
  status_ = Status::Ok();
}

std::size_t FileSetStream::universe_size() const { return universe_size_; }

std::size_t FileSetStream::num_sets() const { return num_sets_; }

void FileSetStream::BeginPass() {
  // A stream that was healthy on an earlier pass must stay consistent: the
  // file vanishing or changing shape between passes is an environment
  // fault no algorithm can recover from mid-run, so it fails loudly (in
  // all build modes) instead of silently streaming a different instance.
  const bool was_healthy = passes_ > 0 && status_.ok();
  const std::size_t prev_universe = universe_size_;
  const std::size_t prev_sets = num_sets_;
  Reopen();
  if (was_healthy) {
    STREAMSC_CHECK(status_.ok(),
                   "FileSetStream: file became unreadable between passes");
    STREAMSC_CHECK(
        universe_size_ == prev_universe && num_sets_ == prev_sets,
        "FileSetStream: file dimensions changed between passes");
  }
  ++passes_;
}

bool FileSetStream::Next(StreamItem* item) {
  if (!status_.ok() || next_id_ >= num_sets_) return false;
  // Errors on a file no pass has fully parsed yet report through
  // status() (the documented check-before-streaming contract; a pass
  // abandoned early by the algorithm may simply never have reached a
  // statically bad line). Once some pass has streamed all m sets
  // cleanly, though, a parse error can only mean the file was truncated
  // or modified out from under the multi-pass run — ending the stream
  // early would silently feed the algorithm a partial instance; abort
  // instead.
  const auto fail = [&](std::string message) {
    status_ = Status::InvalidArgument(std::move(message));
    STREAMSC_CHECK(!fully_parsed_once_,
                   "FileSetStream: file truncated or modified between passes");
    return false;
  };
  std::string line;
  if (!NextContentLine(in_, &line)) {
    return fail("file '" + path_ + "' ended before set " +
                std::to_string(next_id_));
  }
  std::istringstream row(line);
  std::uint64_t k = 0;
  if (!(row >> k)) {
    return fail("bad set line in '" + path_ + "'");
  }
  current_ = DynamicBitset(universe_size_);
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uint64_t e = 0;
    if (!(row >> e) || e >= universe_size_) {
      return fail("bad element in '" + path_ + "'");
    }
    current_.Set(static_cast<std::size_t>(e));
  }
  item->id = next_id_++;
  if (next_id_ == num_sets_) fully_parsed_once_ = true;
  item->set = SetView(current_);
  return true;
}

}  // namespace streamsc
