#include "stream/set_stream.h"


#include "util/check.h"

namespace streamsc {

VectorSetStream::VectorSetStream(const SetSystem& system, StreamOrder order,
                                 Rng* rng)
    : system_(system), order_kind_(order), rng_(rng) {
  order_.reserve(system.num_sets());
  for (SetId i = 0; i < system.num_sets(); ++i) order_.push_back(i);
  if (order_kind_ != StreamOrder::kAdversarial) {
    // A debug-only assert here would dereference nullptr in release
    // builds; random orders without randomness are a caller bug that must
    // fail loudly in every build mode.
    STREAMSC_CHECK(rng_ != nullptr,
                   "VectorSetStream: random orders need a non-null Rng");
    rng_->Shuffle(order_);
  }
}

std::size_t VectorSetStream::universe_size() const {
  return system_.universe_size();
}

std::size_t VectorSetStream::num_sets() const { return system_.num_sets(); }

void VectorSetStream::BeginPass() {
  if (order_kind_ == StreamOrder::kRandomEachPass && passes_ > 0) {
    rng_->Shuffle(order_);
  }
  cursor_ = 0;
  ++passes_;
}

bool VectorSetStream::Next(StreamItem* item) {
  STREAMSC_DCHECK(passes_ > 0 && "BeginPass() before Next()");
  if (cursor_ >= order_.size()) return false;
  const SetId id = order_[cursor_++];
  item->id = id;
  item->set = system_.set(id);
  return true;
}

}  // namespace streamsc
