#ifndef STREAMSC_STREAM_STREAM_ADAPTERS_H_
#define STREAMSC_STREAM_STREAM_ADAPTERS_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "stream/set_stream.h"
#include "util/status.h"

/// \file stream_adapters.h
/// Stream composition and external-storage adapters:
///
/// * ConcatSetStream — streams A's items then B's (the two-party
///   Alice-then-Bob composition behind the Theorem 1 simulation).
/// * InterleaveSetStream — alternates items from two streams (a different
///   two-party arrival pattern; with VectorSetStream::kRandomOnce halves
///   it approximates the D_SC^rnd random partition arrival).
/// * FileSetStream — re-parses an ssc1 file every pass, holding one set in
///   memory at a time: a genuinely o(mn)-memory stream source, which keeps
///   the streaming algorithms honest about what they retain.
///
/// All adapters renumber items to a single global id space [0, m_total):
/// the first stream's ids come first, then the second's shifted by
/// first.num_sets().

namespace streamsc {

/// Alice-then-Bob concatenation of two streams over the same universe.
/// The inner streams' pass counters advance with every outer pass.
class ConcatSetStream : public SetStream {
 public:
  /// Both streams must agree on universe_size(); neither is owned.
  ConcatSetStream(SetStream& first, SetStream& second);

  std::size_t universe_size() const override;
  std::size_t num_sets() const override;
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  bool ItemsRemainValid() const override {
    return first_.ItemsRemainValid() && second_.ItemsRemainValid();
  }

 private:
  SetStream& first_;
  SetStream& second_;
  bool in_second_ = false;
  std::uint64_t passes_ = 0;
};

/// Alternating merge of two streams over the same universe: a, b, a, b, …
/// (continuing with the longer stream once the shorter is exhausted).
class InterleaveSetStream : public SetStream {
 public:
  InterleaveSetStream(SetStream& first, SetStream& second);

  std::size_t universe_size() const override;
  std::size_t num_sets() const override;
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  bool ItemsRemainValid() const override {
    return first_.ItemsRemainValid() && second_.ItemsRemainValid();
  }

 private:
  SetStream& first_;
  SetStream& second_;
  bool first_done_ = false;
  bool second_done_ = false;
  bool next_is_second_ = false;
  std::uint64_t passes_ = 0;
};

/// Streams an ssc1 file (see instance/serialization.h), re-reading it on
/// every pass. Holds exactly one set in memory at a time.
///
/// Error contract: problems visible up front (missing file, bad header)
/// and parse errors on a file no pass has yet streamed end to end report
/// through status(). Once one pass has parsed all m sets cleanly,
/// later failures — file deleted, truncated, or reshaped between
/// passes — STREAMSC_CHECK-abort in all build modes: silently ending a
/// re-read early would hand the algorithm a different instance than the
/// one it already half-processed.
class FileSetStream : public SetStream {
 public:
  /// Opens \p path and validates the header eagerly; check status()
  /// before streaming.
  explicit FileSetStream(std::string path);

  /// Not copyable (owns a file handle position).
  FileSetStream(const FileSetStream&) = delete;
  FileSetStream& operator=(const FileSetStream&) = delete;

  /// Ok iff the file opened and the header parsed.
  const Status& status() const { return status_; }

  std::size_t universe_size() const override;
  std::size_t num_sets() const override;
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  // Holds exactly one set at a time: each Next() invalidates the previous
  // item's view, so a pass can never be buffered.
  bool ItemsRemainValid() const override { return false; }

 private:
  // (Re)opens the file and positions the cursor after the header.
  void Reopen();

  std::string path_;
  Status status_;
  std::size_t universe_size_ = 0;
  std::size_t num_sets_ = 0;
  std::ifstream in_;
  DynamicBitset current_;
  SetId next_id_ = 0;
  std::uint64_t passes_ = 0;
  // True once some pass parsed all m sets cleanly: from then on parse
  // errors are environment faults (file modified mid-run) and abort.
  bool fully_parsed_once_ = false;
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_STREAM_ADAPTERS_H_
