#ifndef STREAMSC_STREAM_STREAM_ALGORITHM_H_
#define STREAMSC_STREAM_STREAM_ALGORITHM_H_

#include <cstdint>
#include <string>

#include "instance/set_system.h"
#include "obs/counters.h"
#include "stream/set_stream.h"
#include "util/space_meter.h"

/// \file stream_algorithm.h
/// Interfaces for streaming set cover / maximum coverage algorithms and
/// the per-run statistics the benchmark harness reports (passes, peak
/// logical space, wall time).
///
/// Execution resources (the ParallelPassEngine) are bound **per run**
/// through a RunContext, not baked into solver configs: a solver object
/// holds only algorithm parameters and can be reused across runs with
/// different thread pools, streams, and sources. This is the one place a
/// future sharded/NUMA scheduler has to plug into.

namespace streamsc {

class ParallelPassEngine;
class MonotonicArena;
class TraceRecorder;

/// Per-run execution binding. Passed to Run() alongside the stream; a
/// default-constructed context means "sequential, heap-allocating".
/// Nothing in it is owned — the engine and arena (when present) must
/// outlive the run. Callers who want a pool resolve a thread count via
/// MakeEngine() (engine_context.h) or let SolveSession
/// (api/solve_session.h) own both lifetimes for them.
struct RunContext {
  /// Optional worker pool. When non-null and the stream can buffer a
  /// pass (SetStream::ItemsRemainValid()), engine-routed passes shard
  /// across it; results are bit-identical for any thread count.
  ParallelPassEngine* engine = nullptr;

  /// Optional per-run arena for the solver's working state and returned
  /// solution. Single-threaded: only the orchestrating thread allocates
  /// from it (workers stage in their thread-local scratch arenas).
  /// Null means every container falls back to the heap — results are
  /// byte-identical either way; only the physical memory source changes.
  /// A budgeted arena surfaces exhaustion as ArenaBudgetExceeded, which
  /// the api layer converts to a ResourceExhausted Status.
  MonotonicArena* arena = nullptr;

  /// Optional span recorder (obs/trace.h). Null — the default — reduces
  /// every trace hook in the engine and the solvers to a single branch,
  /// preserving the zero-alloc steady-state and TSan-clean contracts.
  /// When bound, the engine emits per-pass and per-shard spans and the
  /// solvers annotate their algorithm phases; the recorder must outlive
  /// the run and is merged by the caller after the run quiesces.
  /// Tracing never changes results: solutions are byte-identical with
  /// the recorder on or off (the conformance matrix pins this).
  TraceRecorder* trace = nullptr;
};

/// Per-run resource statistics. Everything except wall_seconds is
/// deterministic: for a fixed stream order the values are bit-identical
/// across thread counts and stream sources (the conformance matrix in
/// tests/testing/solver_matrix.h pins this down for every solver).
struct StreamRunStats {
  std::uint64_t passes = 0;       ///< Passes over the stream.
  Bytes peak_space_bytes = 0;     ///< Peak logical space (SpaceMeter).
  std::uint64_t items_seen = 0;   ///< Stream items consumed across passes.
  std::uint64_t sets_taken = 0;   ///< Committed takes, incl. recorded
                                  ///< offline sub-solver picks.
  std::uint64_t elements_covered = 0;  ///< Sum of committed marginal gains.
  double wall_seconds = 0.0;      ///< Wall-clock time of the run.

  /// Full interned-counter snapshot (obs/counters.h): every engine.*
  /// counter the run's EngineContexts accumulated, merged across guess
  /// iterations. The engine.* counters other than shard dispatch detail
  /// are deterministic like the scalar fields above.
  CounterSet counters;
};

/// Outcome of a streaming set cover run.
struct SetCoverRunResult {
  Solution solution;        ///< Chosen set ids (system numbering).
  bool feasible = false;    ///< True iff the solution covers the universe.
  StreamRunStats stats;
};

/// Outcome of a streaming maximum coverage run.
struct MaxCoverageRunResult {
  Solution solution;        ///< Chosen set ids (at most k).
  Count coverage = 0;       ///< Exact coverage of the returned sets.
  StreamRunStats stats;
};

/// A multi-pass streaming algorithm for minimum set cover.
class StreamingSetCoverAlgorithm {
 public:
  virtual ~StreamingSetCoverAlgorithm() = default;

  /// Human-readable algorithm name for tables.
  virtual std::string name() const = 0;

  /// Consumes \p stream (any number of passes) and returns a cover,
  /// binding the execution resources in \p context for this run only.
  virtual SetCoverRunResult Run(SetStream& stream,
                                const RunContext& context) = 0;

  /// Sequential convenience overload. (Derived classes re-expose it with
  /// `using StreamingSetCoverAlgorithm::Run;`.)
  SetCoverRunResult Run(SetStream& stream) { return Run(stream, {}); }
};

/// A multi-pass streaming algorithm for maximum k-coverage.
class StreamingMaxCoverageAlgorithm {
 public:
  virtual ~StreamingMaxCoverageAlgorithm() = default;

  /// Human-readable algorithm name for tables.
  virtual std::string name() const = 0;

  /// Consumes \p stream and returns (up to) k sets, binding the execution
  /// resources in \p context for this run only.
  virtual MaxCoverageRunResult Run(SetStream& stream, std::size_t k,
                                   const RunContext& context) = 0;

  /// Sequential convenience overload. (Derived classes re-expose it with
  /// `using StreamingMaxCoverageAlgorithm::Run;`.)
  MaxCoverageRunResult Run(SetStream& stream, std::size_t k) {
    return Run(stream, k, {});
  }
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_STREAM_ALGORITHM_H_
