#ifndef STREAMSC_STREAM_STREAM_ALGORITHM_H_
#define STREAMSC_STREAM_STREAM_ALGORITHM_H_

#include <cstdint>
#include <string>

#include "instance/set_system.h"
#include "stream/set_stream.h"
#include "util/space_meter.h"

/// \file stream_algorithm.h
/// Interfaces for streaming set cover / maximum coverage algorithms and
/// the per-run statistics the benchmark harness reports (passes, peak
/// logical space, wall time).

namespace streamsc {

/// Per-run resource statistics. Everything except wall_seconds is
/// deterministic: for a fixed stream order the values are bit-identical
/// across thread counts and stream sources (the conformance matrix in
/// tests/testing/solver_matrix.h pins this down for every solver).
struct StreamRunStats {
  std::uint64_t passes = 0;       ///< Passes over the stream.
  Bytes peak_space_bytes = 0;     ///< Peak logical space (SpaceMeter).
  std::uint64_t items_seen = 0;   ///< Stream items consumed across passes.
  std::uint64_t sets_taken = 0;   ///< Committed takes, incl. recorded
                                  ///< offline sub-solver picks.
  std::uint64_t elements_covered = 0;  ///< Sum of committed marginal gains.
  double wall_seconds = 0.0;      ///< Wall-clock time of the run.
};

/// Outcome of a streaming set cover run.
struct SetCoverRunResult {
  Solution solution;        ///< Chosen set ids (system numbering).
  bool feasible = false;    ///< True iff the solution covers the universe.
  StreamRunStats stats;
};

/// Outcome of a streaming maximum coverage run.
struct MaxCoverageRunResult {
  Solution solution;        ///< Chosen set ids (at most k).
  Count coverage = 0;       ///< Exact coverage of the returned sets.
  StreamRunStats stats;
};

/// A multi-pass streaming algorithm for minimum set cover.
class StreamingSetCoverAlgorithm {
 public:
  virtual ~StreamingSetCoverAlgorithm() = default;

  /// Human-readable algorithm name for tables.
  virtual std::string name() const = 0;

  /// Consumes \p stream (any number of passes) and returns a cover.
  virtual SetCoverRunResult Run(SetStream& stream) = 0;
};

/// A multi-pass streaming algorithm for maximum k-coverage.
class StreamingMaxCoverageAlgorithm {
 public:
  virtual ~StreamingMaxCoverageAlgorithm() = default;

  /// Human-readable algorithm name for tables.
  virtual std::string name() const = 0;

  /// Consumes \p stream and returns (up to) k sets.
  virtual MaxCoverageRunResult Run(SetStream& stream, std::size_t k) = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_STREAM_ALGORITHM_H_
