#include "stream/parallel_pass_engine.h"

#include <algorithm>

#include "util/check.h"

namespace streamsc {

ParallelPassEngine::ParallelPassEngine(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelPassEngine::~ParallelPassEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelPassEngine::RunJob(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    (*job.fn)(i);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ParallelPassEngine::WorkerLoop() {
  std::uint64_t last_job_id = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_->id != last_job_id);
      });
      if (shutdown_) return;
      job = job_;
      last_job_id = job->id;
    }
    // Each job owns its claim counters (shared_ptr keeps stale jobs
    // alive), so a late-waking worker can never claim into a newer job.
    RunJob(*job);
  }
}

void ParallelPassEngine::ParallelFor(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->count = count;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->id = next_job_id_++;
    job_ = job;
  }
  work_cv_.notify_all();
  RunJob(*job);  // the calling thread participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == count;
  });
}

std::vector<StreamItem> DrainPass(SetStream& stream) {
  STREAMSC_CHECK(stream.ItemsRemainValid(),
                 "DrainPass: stream invalidates items mid-pass; "
                 "buffering would read dangling views");
  std::vector<StreamItem> items;
  items.reserve(stream.num_sets());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) items.push_back(item);
  return items;
}

void GainFilteredScan(
    const std::vector<StreamItem>& items, DynamicBitset& uncovered,
    ParallelPassEngine* engine,
    const std::function<void(const StreamItem&, Count, bool)>& visit) {
  if (engine == nullptr || engine->num_threads() <= 1 || items.size() < 2) {
    for (const StreamItem& item : items) {
      if (uncovered.None()) return;
      const Count gain = item.set.CountAnd(uncovered);
      if (gain > 0) visit(item, gain, /*bound_is_exact=*/true);
    }
    return;
  }

  // Chunked parallel filter + in-order commit. The chunk size only
  // affects how stale the snapshot bounds are, never the outcome: bounds
  // only shrink as earlier commits subtract from `uncovered`, so a zero
  // bound is a proof of zero current gain, and survivors are handed to
  // visit in stream order against the live state.
  const std::size_t chunk =
      std::max<std::size_t>(64, items.size() / (8 * engine->num_threads()));
  std::vector<Count> bounds(chunk);
  for (std::size_t pos = 0; pos < items.size(); pos += chunk) {
    if (uncovered.None()) return;
    const std::size_t width = std::min(chunk, items.size() - pos);
    engine->ParallelFor(width, [&](std::size_t k) {
      bounds[k] = items[pos + k].set.CountAnd(uncovered);
    });
    for (std::size_t k = 0; k < width; ++k) {
      if (bounds[k] > 0) {
        visit(items[pos + k], bounds[k], /*bound_is_exact=*/false);
      }
    }
  }
}

std::function<void(const StreamItem&, Count, bool)> ThresholdTakeVisit(
    double threshold, DynamicBitset& uncovered,
    std::function<void(SetId, Count)> on_take) {
  return [threshold, &uncovered, on_take = std::move(on_take)](
             const StreamItem& item, Count bound, bool bound_is_exact) {
    // A below-threshold bound is a proof of ineligibility; survivors are
    // re-evaluated against the current state, in order.
    if (static_cast<double>(bound) < threshold) return;
    const Count gain = bound_is_exact ? bound : item.set.CountAnd(uncovered);
    if (gain > 0 && static_cast<double>(gain) >= threshold) {
      on_take(item.id, gain);
      item.set.AndNotInto(uncovered);
    }
  };
}

void ThresholdScan(const std::vector<StreamItem>& items, double threshold,
                   DynamicBitset& uncovered, ParallelPassEngine* engine,
                   const std::function<void(SetId)>& on_take) {
  GainFilteredScan(items, uncovered, engine,
                   ThresholdTakeVisit(threshold, uncovered,
                                      [&](SetId id, Count) { on_take(id); }));
}

}  // namespace streamsc
