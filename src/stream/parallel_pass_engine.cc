#include "stream/parallel_pass_engine.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace streamsc {

ParallelPassEngine::ParallelPassEngine(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads - 1);
  // Steady state keeps one live job plus at most one stale reference per
  // worker, so the pool never outgrows this reservation.
  job_pool_.reserve(num_threads + 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelPassEngine::~ParallelPassEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelPassEngine::RunJob(Job& job) {
  // One branch when untraced: the span start is read only when a
  // recorder rode in on the job.
  const std::int64_t start_ns =
      job.trace != nullptr ? TraceRecorder::NowNs() : 0;
  std::size_t claimed = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    (*job.fn)(i);
    ++claimed;
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
  if (job.trace != nullptr && claimed > 0) {
    const TraceArg args[] = {{"job", job.id}, {"items", claimed}};
    job.trace->Emit(TraceCategory::kShard, "shard", start_ns,
                    TraceRecorder::NowNs() - start_ns, args, 2);
  }
}

void ParallelPassEngine::WorkerLoop() {
  std::uint64_t last_job_id = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_->id != last_job_id);
      });
      if (shutdown_) return;
      job = job_;
      last_job_id = job->id;
      // Counted under mu_ so the orchestrator, which unpublishes the job
      // under the same lock, sees a complete roster of participants.
      ++job->pickups;
    }
    // Worker scratch is job-scoped: anything a previous job staged there
    // has been committed by the orchestrator before it posted this one
    // (the pass primitives copy worker-staged payloads out in their
    // in-order commit phase). Rewinding here, chunks retained, is what
    // keeps worker scratch from growing across passes.
    ThreadScratchArena().Reset();
    // Each job owns its claim counters (shared_ptr keeps stale jobs
    // alive), so a late-waking worker can never claim into a newer job.
    RunJob(*job);
    if (job->trace != nullptr) {
      // Traced jobs check out: the orchestrator waits for every
      // participant's shard span before it lets the caller touch the
      // recorder (see ParallelFor).
      std::lock_guard<std::mutex> lock(mu_);
      ++job->exits;
      done_cv_.notify_all();
    }
  }
}

std::shared_ptr<ParallelPassEngine::Job> ParallelPassEngine::AcquireJob() {
  // A slot with use_count() == 1 is referenced by the pool alone: the
  // engine's job_ was cleared when its ParallelFor finished and every
  // worker has dropped its copy. Workers that finished late may still pin
  // their last job, in which case the pool grows by one — bounded by the
  // worker count, after which ParallelFor is allocation-free.
  for (std::shared_ptr<Job>& slot : job_pool_) {
    if (slot.use_count() == 1) return slot;
  }
  job_pool_.push_back(std::make_shared<Job>());
  return job_pool_.back();
}

void ParallelPassEngine::ParallelFor(std::size_t count,
                                     FunctionRef<void(std::size_t)> fn,
                                     TraceRecorder* trace) {
  if (count == 0) return;
  items_dispatched_ += count;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::shared_ptr<Job> job = AcquireJob();
  job->count = count;
  job->fn = &fn;
  job->trace = trace;
  job->next.store(0, std::memory_order_relaxed);
  job->completed.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->pickups = 0;
    job->exits = 0;
    job->id = next_job_id_++;
    job_ = job;
  }
  work_cv_.notify_all();
  RunJob(*job);  // the calling thread participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == count;
  });
  // Drop the engine's reference while still under the lock: workers can
  // no longer pick this job up, so its pool slot recycles as soon as the
  // last straggler lets go.
  job_.reset();
  if (trace != nullptr) {
    // With the job unpublished there can be no new pickups; wait for
    // every worker that did pick it up to retire its shard span, so a
    // post-run merge of the recorder can never race an emit. Only traced
    // jobs pay for this rendezvous.
    done_cv_.wait(lock, [&] { return job->exits == job->pickups; });
  }
}

std::vector<StreamItem> DrainPass(SetStream& stream) {
  STREAMSC_CHECK(stream.ItemsRemainValid(),
                 "DrainPass: stream invalidates items mid-pass; "
                 "buffering would read dangling views");
  std::vector<StreamItem> items;
  items.reserve(stream.num_sets());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) items.push_back(item);
  return items;
}

void DrainPassInto(SetStream& stream, ArenaVector<StreamItem>& items) {
  STREAMSC_CHECK(stream.ItemsRemainValid(),
                 "DrainPassInto: stream invalidates items mid-pass; "
                 "buffering would read dangling views");
  items.clear();
  items.reserve(stream.num_sets());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) items.push_back(item);
}

void GainFilteredScan(
    std::span<const StreamItem> items, DynamicBitset& uncovered,
    ParallelPassEngine* engine,
    FunctionRef<void(const StreamItem&, Count, bool)> visit,
    TraceRecorder* trace) {
  if (engine == nullptr || engine->num_threads() <= 1 || items.size() < 2) {
    for (const StreamItem& item : items) {
      if (uncovered.None()) return;
      const Count gain = item.set.CountAnd(uncovered);
      if (gain > 0) visit(item, gain, /*bound_is_exact=*/true);
    }
    return;
  }

  // Chunked parallel filter + in-order commit. The chunk size only
  // affects how stale the snapshot bounds are, never the outcome: bounds
  // only shrink as earlier commits subtract from `uncovered`, so a zero
  // bound is a proof of zero current gain, and survivors are handed to
  // visit in stream order against the live state.
  const std::size_t chunk =
      std::max<std::size_t>(64, items.size() / (8 * engine->num_threads()));
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  Count* const bounds = scratch.Allocate<Count>(chunk);
  for (std::size_t pos = 0; pos < items.size(); pos += chunk) {
    if (uncovered.None()) return;
    const std::size_t width = std::min(chunk, items.size() - pos);
    engine->ParallelFor(
        width,
        [&](std::size_t k) {
          bounds[k] = items[pos + k].set.CountAnd(uncovered);
        },
        trace);
    for (std::size_t k = 0; k < width; ++k) {
      if (bounds[k] > 0) {
        visit(items[pos + k], bounds[k], /*bound_is_exact=*/false);
      }
    }
  }
}

void ThresholdScan(std::span<const StreamItem> items, double threshold,
                   DynamicBitset& uncovered, ParallelPassEngine* engine,
                   FunctionRef<void(SetId)> on_take) {
  const auto take = [&](SetId id, Count) { on_take(id); };
  const ThresholdTakeVisitor visitor(threshold, uncovered, take);
  GainFilteredScan(items, uncovered, engine, visitor);
}

}  // namespace streamsc
