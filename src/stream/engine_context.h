#ifndef STREAMSC_STREAM_ENGINE_CONTEXT_H_
#define STREAMSC_STREAM_ENGINE_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/counters.h"
#include "obs/trace.h"
#include "stream/parallel_pass_engine.h"
#include "stream/set_stream.h"
#include "stream/stream_algorithm.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/common.h"
#include "util/function_ref.h"

/// \file engine_context.h
/// EngineContext: the shared plumbing between a streaming solver and the
/// ParallelPassEngine. Before it existed, every solver that wanted sharded
/// passes hand-rolled the same four lines — "do I have an engine, can this
/// stream buffer a pass, DrainPass or BeginPass/Next, ThresholdScan or the
/// sequential loop" — so only the two solvers whose authors bothered
/// (Assadi, threshold-greedy) ever ran in parallel. EngineContext owns
/// that decision once, exposes the pass shapes every solver in core/ is
/// built from, and counts the work it drives so runs can be compared
/// across thread counts and stream sources.
///
/// Determinism contract (inherited from parallel_pass_engine.h and
/// preserved by every primitive here): for a fixed stream order, results
/// are **bit-identical** whether the context runs sequentially (null
/// engine, or a stream that cannot buffer a pass) or sharded over any
/// number of threads — and whether or not a run arena is bound.
///
/// Allocation contract: a context bound to a RunContext with an arena
/// reaches the zero-allocation steady state — the pass item buffer lives
/// in the run arena (chunks retained across Reset), snapshot and commit
/// staging lives in thread-local scratch arenas, and callbacks travel as
/// FunctionRef. The run arena is touched only by the orchestrating
/// thread; workers stage in their own scratch (rewound at job pickup) and
/// the commit phases copy staged payloads out in stream order before the
/// next job is posted.

namespace streamsc {

/// Deterministic counters of the work a context drove. Every field is part
/// of the bit-identical contract: for a fixed stream order the values are
/// the same for any thread count and any stream source (unlike wall time
/// or peak RSS). The conformance matrix asserts exactly that.
///
/// Since the observability layer landed this is a *view*: the context
/// accumulates everything in an interned CounterSet (obs/counters.h) and
/// stats() assembles this struct from the well-known engine.* ids below.
struct EnginePassStats {
  std::uint64_t passes = 0;            ///< Stream passes driven.
  std::uint64_t items_scanned = 0;     ///< Logical items: num_sets per pass.
  std::uint64_t sets_taken = 0;        ///< Committed takes (incl. recorded
                                       ///< offline sub-solver picks).
  std::uint64_t elements_covered = 0;  ///< Sum of committed marginal gains.
};

/// The well-known interned counters every EngineContext accumulates.
/// Handles are function-local statics: the first call interns, later
/// calls are one guarded load. The first four are deterministic (part of
/// the bit-identical contract); the shard pair describes how work was
/// dispatched and therefore varies with engine width — deterministic for
/// a fixed width, but not comparable across widths.
namespace engine_counters {
CounterId Passes();           ///< "engine.passes"
CounterId ItemsScanned();     ///< "engine.items_scanned"
CounterId SetsTaken();        ///< "engine.sets_taken"
CounterId ElementsCovered();  ///< "engine.elements_covered"
CounterId ShardJobs();        ///< "engine.shard_jobs" (width-dependent)
CounterId ShardItems();       ///< "engine.shard_items" (width-dependent)
}  // namespace engine_counters

/// Resolves a user-facing thread-count request: 1 yields a null engine
/// (the sequential path has no pool to pay for), anything larger a pool of
/// that size. CHECK-fails on 0 — "all cores" is a policy decision the
/// caller must make explicitly (std::thread::hardware_concurrency()), not
/// a default this helper guesses at.
std::unique_ptr<ParallelPassEngine> MakeEngine(std::size_t num_threads);

/// CHECK-fails unless \p engine is non-null and \p stream can buffer a
/// pass — i.e. unless an EngineContext over the pair would actually shard.
/// For harnesses that measure parallel speedups: a silent sequential
/// fallback would report a 1.0x "speedup" instead of the configuration
/// error it is.
void RequireSharded(const SetStream& stream, const ParallelPassEngine* engine);

/// A per-run binding of one stream, one (optional) engine, and one
/// (optional) arena, plus the deterministic pass primitives. Not
/// thread-safe itself (one context per run); the engine may be shared
/// across runs sequentially. Nothing is owned; stream, engine, and arena
/// must all outlive the context.
class EngineContext {
 public:
  /// Binds the execution resources of \p context for one run. The engine
  /// may be null (every pass runs sequentially) and is used only when
  /// \p stream can buffer a pass (ItemsRemainValid()); otherwise the
  /// context falls back to the sequential scan — same results, by
  /// contract. The arena may be null (buffers fall back to the heap).
  EngineContext(SetStream& stream, const RunContext& context)
      : stream_(stream),
        engine_(context.engine),
        arena_(context.arena),
        trace_(context.trace),
        sharded_(context.engine != nullptr && stream.ItemsRemainValid()),
        items_(ArenaAllocator<StreamItem>(context.arena)) {}

  /// Engine-only binding (no arena) for harnesses that exercise the pass
  /// machinery directly.
  EngineContext(SetStream& stream, ParallelPassEngine* engine)
      : EngineContext(stream, RunContext{engine, nullptr}) {}

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  SetStream& stream() { return stream_; }
  ParallelPassEngine* engine() const { return engine_; }

  /// The run arena (null means heap-backed run state).
  MonotonicArena* arena() const { return arena_; }

  /// Allocator handle over the run arena; degrades to the heap when no
  /// arena is bound. The idiom for solver-owned run state:
  /// `ArenaVector<SetId> chosen(ctx.alloc<SetId>());`.
  template <typename T>
  ArenaAllocator<T> alloc() const {
    return ArenaAllocator<T>(arena_);
  }

  /// True iff buffered passes will actually be sharded over a pool.
  bool sharded() const { return sharded_; }

  /// The span recorder bound for this run (null = tracing off). Solvers
  /// use it to annotate their algorithm phases:
  /// `TraceSpan span(ctx.trace(), TraceCategory::kPhase, "sample");`.
  TraceRecorder* trace() const { return trace_; }

  /// The deterministic counters accumulated so far, assembled from the
  /// interned counter set (a snapshot, not a reference).
  EnginePassStats stats() const {
    EnginePassStats snapshot;
    snapshot.passes = counters_.value(engine_counters::Passes());
    snapshot.items_scanned = counters_.value(engine_counters::ItemsScanned());
    snapshot.sets_taken = counters_.value(engine_counters::SetsTaken());
    snapshot.elements_covered =
        counters_.value(engine_counters::ElementsCovered());
    return snapshot;
  }

  /// The full interned counter set (engine.* plus anything the solver
  /// adds under its own ids). Mutable access so solvers can record
  /// algorithm-specific counters next to the engine's.
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }

  /// Records one committed take of \p gain newly covered elements.
  /// The threshold/cleanup passes call this themselves; solvers call it
  /// for takes the context cannot see (offline sub-solver picks, witness
  /// closures).
  void RecordTake(Count gain) { RecordTakes(1, gain); }

  /// Bulk form of RecordTake.
  void RecordTakes(std::uint64_t sets, std::uint64_t elements) {
    counters_.Add(engine_counters::SetsTaken(), sets);
    counters_.Add(engine_counters::ElementsCovered(), elements);
  }

  /// One pruning-scan pass: sequentially equivalent to
  ///
  ///   for item in stream:                      # in stream order
  ///     gain = |item.set & uncovered|
  ///     if gain > 0 and gain >= threshold:
  ///       on_take(item.id); uncovered \= item.set
  ///
  /// Sharded, gains are precomputed against chunk snapshots and committed
  /// in order (see GainScanPass). Takes are counted automatically.
  void ThresholdPass(double threshold, DynamicBitset& uncovered,
                     FunctionRef<void(SetId)> on_take);

  /// The generic monotone-gain scan underneath every threshold-style
  /// pass. Calls visit(item, gain_bound, bound_is_exact) in stream order
  /// for every item whose bound is positive, where
  ///
  ///   * sequential: gain_bound == |item.set & uncovered| at the item's
  ///     turn (bound_is_exact == true);
  ///   * sharded: gain_bound is the gain against a chunk-start snapshot
  ///     of `uncovered` (bound_is_exact == false). Because `uncovered`
  ///     only shrinks within a pass, the bound never underestimates:
  ///     current gain <= gain_bound always.
  ///
  /// visit may clear bits of `uncovered` (taking the item). For the
  /// results to be thread-count-invariant, visit must (a) treat an
  /// inexact bound as an upper bound — re-evaluate against `uncovered`
  /// before acting on its magnitude — and (b) be a no-op whenever the
  /// item's *current* gain is zero, since items whose snapshot gain is
  /// positive but current gain is zero are visited in sharded mode only.
  void GainScanPass(DynamicBitset& uncovered,
                    FunctionRef<void(const StreamItem&, Count, bool)> visit);

  /// One pass mapping every item through \p transform (pure, called
  /// concurrently when sharded) and handing the results to \p commit in
  /// stream order. The projection-storing pass of the sampling solvers.
  ///
  /// Sharded, transform runs on worker threads: any storage it allocates
  /// must come from the worker's thread-local scratch (allocator binding
  /// ArenaBinding::kScratch), never from the run arena. The staged
  /// results are handed to \p commit on the orchestrating thread before
  /// the next job is posted — commit re-homes whatever it keeps (the
  /// arena-aware containers' explicit-allocator copy constructors), since
  /// worker scratch is rewound at the worker's next job pickup.
  template <typename T, typename TransformFn, typename CommitFn>
  void TransformPass(TransformFn&& transform, CommitFn&& commit) {
    const PassScope scope(*this, "transform");
    BeginCountedPass();
    if (!sharded_) {
      stream_.BeginPass();
      StreamItem item;
      while (stream_.Next(&item)) commit(item, transform(item));
      return;
    }
    DrainPassInto(stream_, items_);
    // The staging slots live in the orchestrator's scratch; the payloads
    // the workers move into them live in each worker's own scratch. Both
    // are transient: commit copies out, the checkpoint rewinds the slots.
    MonotonicArena& scratch = ThreadScratchArena();
    const ArenaCheckpoint checkpoint(scratch);
    ArenaVector<T> out(items_.size(), ArenaAllocator<T>(&scratch));
    engine_->ParallelFor(
        items_.size(), [&](std::size_t i) { out[i] = transform(items_[i]); },
        trace_);
    for (std::size_t i = 0; i < items_.size(); ++i) {
      commit(items_[i], std::move(out[i]));
    }
  }

  /// One pass feeding every item to \p num_lanes independent state
  /// machines: visit(lane, item) for every (lane, item) combination, with
  /// items in stream order within each lane. Sequential the loop is
  /// item-major; sharded it is lane-major with lanes in parallel, which
  /// is equivalent exactly because lanes are independent — visit must
  /// touch only lane-local state (it is called concurrently for distinct
  /// lanes, from worker threads whose scratch arenas are job-scoped).
  /// The sieve-style algorithms' guess grids are lanes.
  void IndependentScanPass(
      std::size_t num_lanes,
      FunctionRef<void(std::size_t, const StreamItem&)> visit);

  /// One pass subtracting the contents of the \p chosen sets (ids, any
  /// order) from \p uncovered; newly covered elements are added to the
  /// element counter. The "recover the full contents of OPT'" pass of the
  /// sampling solvers.
  void SubtractPass(std::span<const SetId> chosen, DynamicBitset& uncovered);

  /// One pass OR-ing the contents of the \p chosen sets into \p covered
  /// (which must be sized to the universe). The verification pass of the
  /// max-coverage solvers.
  void UnionPass(std::span<const SetId> chosen, DynamicBitset& covered);

  /// One pass taking any set that still intersects \p uncovered, until it
  /// empties — the feasibility-cleanup pass shared by the guess-driven
  /// solvers. Takes are counted automatically.
  void CoverResiduePass(DynamicBitset& uncovered,
                        FunctionRef<void(SetId)> on_take);

  /// Index-parallel helper for pure per-index work on state the solver
  /// owns (candidate filtering, row seeding). Uses the engine whenever one
  /// is present — this does not touch the stream, so it shards even for
  /// streams that cannot buffer a pass. \p fn must be safe to call
  /// concurrently for distinct indices and must not depend on order.
  void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> fn);

 private:
  /// RAII bracket around one pass primitive: accumulates the shard
  /// dispatch counters (always — they are part of the counter registry's
  /// single-source-of-truth contract, and cost two integer reads per
  /// *pass*, not per item) and, when a recorder is bound, emits one
  /// kPass span whose args are the pass's own counter deltas
  /// (items/shards/takes/covered). With tracing off the span side is a
  /// single branch.
  class PassScope {
   public:
    PassScope(EngineContext& ctx, const char* name)
        : ctx_(ctx),
          name_(name),
          start_ns_(ctx.trace_ != nullptr ? TraceRecorder::NowNs() : 0),
          jobs0_(ctx.engine_ != nullptr ? ctx.engine_->jobs_posted() : 0),
          shard_items0_(
              ctx.engine_ != nullptr ? ctx.engine_->items_dispatched() : 0),
          items0_(ctx.counters_.value(engine_counters::ItemsScanned())),
          takes0_(ctx.counters_.value(engine_counters::SetsTaken())),
          covered0_(
              ctx.counters_.value(engine_counters::ElementsCovered())) {}

    ~PassScope() {
      const std::uint64_t jobs =
          (ctx_.engine_ != nullptr ? ctx_.engine_->jobs_posted() : 0) -
          jobs0_;
      const std::uint64_t shard_items =
          (ctx_.engine_ != nullptr ? ctx_.engine_->items_dispatched() : 0) -
          shard_items0_;
      ctx_.counters_.Add(engine_counters::ShardJobs(), jobs);
      ctx_.counters_.Add(engine_counters::ShardItems(), shard_items);
      if (ctx_.trace_ == nullptr) return;
      const TraceArg args[] = {
          {"items",
           ctx_.counters_.value(engine_counters::ItemsScanned()) - items0_},
          {"shards", jobs},
          {"takes",
           ctx_.counters_.value(engine_counters::SetsTaken()) - takes0_},
          {"covered",
           ctx_.counters_.value(engine_counters::ElementsCovered()) -
               covered0_}};
      ctx_.trace_->Emit(TraceCategory::kPass, name_, start_ns_,
                        TraceRecorder::NowNs() - start_ns_, args, 4);
    }

    PassScope(const PassScope&) = delete;
    PassScope& operator=(const PassScope&) = delete;

   private:
    EngineContext& ctx_;
    const char* name_;
    std::int64_t start_ns_;
    std::uint64_t jobs0_;
    std::uint64_t shard_items0_;
    std::uint64_t items0_;
    std::uint64_t takes0_;
    std::uint64_t covered0_;
  };

  // Counts one logical pass (stats only; the stream's own pass counter
  // advances via BeginPass/DrainPassInto inside the primitives).
  void BeginCountedPass() {
    counters_.Add(engine_counters::Passes(), 1);
    counters_.Add(engine_counters::ItemsScanned(), stream_.num_sets());
  }

  // The named core of GainScanPass, so ThresholdPass's span reads
  // "threshold" instead of the generic "gain_scan" it delegates to.
  void GainScanPassNamed(
      const char* name, DynamicBitset& uncovered,
      FunctionRef<void(const StreamItem&, Count, bool)> visit);

  SetStream& stream_;
  ParallelPassEngine* engine_;
  MonotonicArena* arena_;
  TraceRecorder* trace_;
  bool sharded_;
  CounterSet counters_;
  // Reused pass item buffer: run-arena-backed when an arena is bound, so
  // repeat runs bump inside retained chunks instead of reallocating.
  ArenaVector<StreamItem> items_;
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_ENGINE_CONTEXT_H_
