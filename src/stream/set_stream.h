#ifndef STREAMSC_STREAM_SET_STREAM_H_
#define STREAMSC_STREAM_SET_STREAM_H_

#include <cstdint>
#include <vector>

#include "instance/set_system.h"
#include "util/common.h"
#include "util/random.h"
#include "util/set_view.h"

/// \file set_stream.h
/// The streaming substrate: sets arrive one by one; algorithms may make
/// several passes, and every pass is counted. The stream hands out
/// *references* to the sets — an algorithm is only charged (by its
/// SpaceMeter) for what it chooses to retain, matching the paper's model
/// where reading an item is free but storing it costs space.

namespace streamsc {

/// One stream arrival: the set's id in the underlying system plus a
/// borrowed view of its contents. How long the view stays valid depends
/// on the stream (see SetStream::ItemsRemainValid()).
struct StreamItem {
  SetId id = kInvalidSetId;
  SetView set;
};

/// Abstract multi-pass stream of sets.
class SetStream {
 public:
  virtual ~SetStream() = default;

  /// Universe size n of the streamed system.
  virtual std::size_t universe_size() const = 0;

  /// Number of sets per pass (m).
  virtual std::size_t num_sets() const = 0;

  /// Starts a new pass. Must be called before the first Next() of each
  /// pass; increments the pass counter.
  virtual void BeginPass() = 0;

  /// Produces the next item of the current pass. Returns false at
  /// end-of-pass.
  virtual bool Next(StreamItem* item) = 0;

  /// Number of passes started so far.
  virtual std::uint64_t passes() const = 0;

  /// True iff every item view handed out during one pass stays valid
  /// until the end of that pass (required to buffer a pass, e.g. for the
  /// ParallelPassEngine). In-memory streams qualify; streams that hold
  /// one set at a time (FileSetStream) do not.
  virtual bool ItemsRemainValid() const { return false; }
};

/// How a VectorSetStream orders its items.
enum class StreamOrder {
  kAdversarial,     ///< The system's insertion order (fixed, worst-case-ish).
  kRandomOnce,      ///< One uniform permutation, same for every pass
                    ///< (the paper's random arrival model).
  kRandomEachPass,  ///< Fresh permutation each pass (robustness probes).
};

/// A SetStream over an in-memory SetSystem (not owned; must outlive the
/// stream).
class VectorSetStream : public SetStream {
 public:
  /// Streams \p system in \p order; \p rng is used for random orders (may
  /// be null for kAdversarial only — CHECK-fails loudly, in all build
  /// modes, when a random order is requested without an Rng).
  VectorSetStream(const SetSystem& system, StreamOrder order, Rng* rng);

  /// Adversarial-order convenience constructor.
  explicit VectorSetStream(const SetSystem& system)
      : VectorSetStream(system, StreamOrder::kAdversarial, nullptr) {}

  std::size_t universe_size() const override;
  std::size_t num_sets() const override;
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  bool ItemsRemainValid() const override { return true; }

  /// The permutation currently in effect (for tests).
  const std::vector<SetId>& order() const { return order_; }

 private:
  const SetSystem& system_;
  StreamOrder order_kind_;
  Rng* rng_;
  std::vector<SetId> order_;
  std::size_t cursor_ = 0;
  std::uint64_t passes_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_SET_STREAM_H_
