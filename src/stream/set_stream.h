#ifndef STREAMSC_STREAM_SET_STREAM_H_
#define STREAMSC_STREAM_SET_STREAM_H_

#include <cstdint>
#include <vector>

#include "instance/set_system.h"
#include "util/common.h"
#include "util/random.h"

/// \file set_stream.h
/// The streaming substrate: sets arrive one by one; algorithms may make
/// several passes, and every pass is counted. The stream hands out
/// *references* to the sets — an algorithm is only charged (by its
/// SpaceMeter) for what it chooses to retain, matching the paper's model
/// where reading an item is free but storing it costs space.

namespace streamsc {

/// One stream arrival: the set's id in the underlying system plus a
/// borrowed pointer to its contents (valid until the stream is destroyed).
struct StreamItem {
  SetId id = kInvalidSetId;
  const DynamicBitset* set = nullptr;
};

/// Abstract multi-pass stream of sets.
class SetStream {
 public:
  virtual ~SetStream() = default;

  /// Universe size n of the streamed system.
  virtual std::size_t universe_size() const = 0;

  /// Number of sets per pass (m).
  virtual std::size_t num_sets() const = 0;

  /// Starts a new pass. Must be called before the first Next() of each
  /// pass; increments the pass counter.
  virtual void BeginPass() = 0;

  /// Produces the next item of the current pass. Returns false at
  /// end-of-pass.
  virtual bool Next(StreamItem* item) = 0;

  /// Number of passes started so far.
  virtual std::uint64_t passes() const = 0;
};

/// How a VectorSetStream orders its items.
enum class StreamOrder {
  kAdversarial,     ///< The system's insertion order (fixed, worst-case-ish).
  kRandomOnce,      ///< One uniform permutation, same for every pass
                    ///< (the paper's random arrival model).
  kRandomEachPass,  ///< Fresh permutation each pass (robustness probes).
};

/// A SetStream over an in-memory SetSystem (not owned; must outlive the
/// stream).
class VectorSetStream : public SetStream {
 public:
  /// Streams \p system in \p order; \p rng used for random orders (may be
  /// null for kAdversarial).
  VectorSetStream(const SetSystem& system, StreamOrder order, Rng* rng);

  /// Adversarial-order convenience constructor.
  explicit VectorSetStream(const SetSystem& system)
      : VectorSetStream(system, StreamOrder::kAdversarial, nullptr) {}

  std::size_t universe_size() const override;
  std::size_t num_sets() const override;
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }

  /// The permutation currently in effect (for tests).
  const std::vector<SetId>& order() const { return order_; }

 private:
  const SetSystem& system_;
  StreamOrder order_kind_;
  Rng* rng_;
  std::vector<SetId> order_;
  std::size_t cursor_ = 0;
  std::uint64_t passes_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_STREAM_SET_STREAM_H_
