#include "stream/engine_context.h"

#include <algorithm>

#include "util/check.h"

namespace streamsc {

namespace engine_counters {

// Function-local statics: interned once, one guarded load afterwards.
CounterId Passes() {
  static const CounterId id = CounterId::Counter("engine.passes");
  return id;
}
CounterId ItemsScanned() {
  static const CounterId id = CounterId::Counter("engine.items_scanned");
  return id;
}
CounterId SetsTaken() {
  static const CounterId id = CounterId::Counter("engine.sets_taken");
  return id;
}
CounterId ElementsCovered() {
  static const CounterId id = CounterId::Counter("engine.elements_covered");
  return id;
}
CounterId ShardJobs() {
  static const CounterId id = CounterId::Counter("engine.shard_jobs");
  return id;
}
CounterId ShardItems() {
  static const CounterId id = CounterId::Counter("engine.shard_items");
  return id;
}

}  // namespace engine_counters

std::unique_ptr<ParallelPassEngine> MakeEngine(std::size_t num_threads) {
  STREAMSC_CHECK(num_threads >= 1,
                 "MakeEngine: thread count 0 is ambiguous — resolve "
                 "hardware_concurrency() explicitly if you mean all cores");
  if (num_threads == 1) return nullptr;
  return std::make_unique<ParallelPassEngine>(num_threads);
}

void RequireSharded(const SetStream& stream,
                    const ParallelPassEngine* engine) {
  STREAMSC_CHECK(engine != nullptr,
                 "RequireSharded: null engine where a sharded run is "
                 "required — the run would silently fall back to the "
                 "sequential scan");
  STREAMSC_CHECK(stream.ItemsRemainValid(),
                 "RequireSharded: the stream cannot buffer a pass "
                 "(ItemsRemainValid() is false), so passes would run "
                 "sequentially despite the engine");
}

void EngineContext::GainScanPass(
    DynamicBitset& uncovered,
    FunctionRef<void(const StreamItem&, Count, bool)> visit) {
  GainScanPassNamed("gain_scan", uncovered, visit);
}

void EngineContext::GainScanPassNamed(
    const char* name, DynamicBitset& uncovered,
    FunctionRef<void(const StreamItem&, Count, bool)> visit) {
  const PassScope scope(*this, name);
  BeginCountedPass();
  if (!sharded_) {
    stream_.BeginPass();
    StreamItem item;
    while (stream_.Next(&item) && !uncovered.None()) {
      const Count gain = item.set.CountAnd(uncovered);
      if (gain > 0) visit(item, gain, /*bound_is_exact=*/true);
    }
    return;
  }
  // One copy of the chunked snapshot-filter + in-order-commit logic lives
  // in GainFilteredScan (shared with the free-standing ThresholdScan).
  DrainPassInto(stream_, items_);
  GainFilteredScan(items_, uncovered, engine_, visit, trace_);
}

void EngineContext::ThresholdPass(double threshold, DynamicBitset& uncovered,
                                  FunctionRef<void(SetId)> on_take) {
  const auto take = [&](SetId id, Count gain) {
    on_take(id);
    RecordTake(gain);
  };
  const ThresholdTakeVisitor visitor(threshold, uncovered, take);
  GainScanPassNamed("threshold", uncovered, visitor);
}

void EngineContext::IndependentScanPass(
    std::size_t num_lanes,
    FunctionRef<void(std::size_t, const StreamItem&)> visit) {
  const PassScope scope(*this, "independent_scan");
  BeginCountedPass();
  if (!sharded_ || engine_->num_threads() <= 1 || num_lanes < 2) {
    stream_.BeginPass();
    StreamItem item;
    while (stream_.Next(&item)) {
      for (std::size_t lane = 0; lane < num_lanes; ++lane) visit(lane, item);
    }
    return;
  }
  DrainPassInto(stream_, items_);
  engine_->ParallelFor(
      num_lanes,
      [&](std::size_t lane) {
        for (const StreamItem& item : items_) visit(lane, item);
      },
      trace_);
}

void EngineContext::SubtractPass(std::span<const SetId> chosen,
                                 DynamicBitset& uncovered) {
  if (chosen.empty()) return;
  // Sort a scratch copy of the ids (the caller's order is not ours to
  // disturb) for the binary-search membership probe below.
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  SetId* const sorted = scratch.Allocate<SetId>(chosen.size());
  std::copy(chosen.begin(), chosen.end(), sorted);
  std::sort(sorted, sorted + chosen.size());
  const PassScope scope(*this, "subtract");
  BeginCountedPass();
  const Count before = uncovered.CountSet();
  stream_.BeginPass();
  StreamItem item;
  while (stream_.Next(&item) && !uncovered.None()) {
    if (std::binary_search(sorted, sorted + chosen.size(), item.id)) {
      item.set.AndNotInto(uncovered);
    }
  }
  counters_.Add(engine_counters::ElementsCovered(),
                before - uncovered.CountSet());
}

void EngineContext::UnionPass(std::span<const SetId> chosen,
                              DynamicBitset& covered) {
  if (chosen.empty()) return;
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  SetId* const sorted = scratch.Allocate<SetId>(chosen.size());
  std::copy(chosen.begin(), chosen.end(), sorted);
  std::sort(sorted, sorted + chosen.size());
  const PassScope scope(*this, "union");
  BeginCountedPass();
  stream_.BeginPass();
  StreamItem item;
  while (stream_.Next(&item)) {
    if (std::binary_search(sorted, sorted + chosen.size(), item.id)) {
      item.set.OrInto(covered);
    }
  }
}

void EngineContext::CoverResiduePass(DynamicBitset& uncovered,
                                     FunctionRef<void(SetId)> on_take) {
  const PassScope scope(*this, "cover_residue");
  BeginCountedPass();
  stream_.BeginPass();
  StreamItem item;
  while (stream_.Next(&item) && !uncovered.None()) {
    if (item.set.Intersects(uncovered)) {
      const Count gain = item.set.CountAnd(uncovered);
      on_take(item.id);
      item.set.AndNotInto(uncovered);
      RecordTake(gain);
    }
  }
}

void EngineContext::ParallelFor(std::size_t count,
                                FunctionRef<void(std::size_t)> fn) {
  if (engine_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  engine_->ParallelFor(count, fn, trace_);
}

}  // namespace streamsc
