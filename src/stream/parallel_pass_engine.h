#ifndef STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_
#define STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stream/set_stream.h"
#include "util/bitset.h"
#include "util/common.h"

/// \file parallel_pass_engine.h
/// ParallelPassEngine: a fixed worker pool that shards one stream pass's
/// items across threads, plus the deterministic scan primitives built on
/// it.
///
/// Determinism contract: every helper in this file produces results that
/// are **bit-identical for any thread count** (including the engine-less
/// sequential path). Parallelism is used only where item work is
/// independent (projection) or where a parallel phase can be proven
/// equivalent to the sequential loop (ThresholdScan's monotone-gain
/// filter + in-order commit). Merges happen in stream order at pass end;
/// no result ever depends on thread scheduling.

namespace streamsc {

/// A fixed pool of worker threads executing index-sharded jobs.
/// ParallelFor blocks until the job completes; jobs must not throw.
/// One engine can be reused across passes, algorithms, and runs; it is
/// not re-entrant (one ParallelFor at a time).
class ParallelPassEngine {
 public:
  /// Creates a pool of \p num_threads workers (the calling thread counts
  /// as one of them). 0 means std::thread::hardware_concurrency().
  explicit ParallelPassEngine(std::size_t num_threads = 0);
  ~ParallelPassEngine();

  ParallelPassEngine(const ParallelPassEngine&) = delete;
  ParallelPassEngine& operator=(const ParallelPassEngine&) = delete;

  /// Worker count (including the calling thread).
  std::size_t num_threads() const { return num_threads_; }

  /// Invokes fn(i) exactly once for every i in [0, count), distributed
  /// over the pool; blocks until all calls return. \p fn must be safe to
  /// call concurrently for distinct indices.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::uint64_t id = 0;
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  void WorkerLoop();
  // Claims and runs indices of \p job until exhausted.
  void RunJob(Job& job);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;           // guarded by mu_
  std::shared_ptr<Job> job_;        // guarded by mu_
  std::uint64_t next_job_id_ = 1;   // guarded by mu_
};

/// Starts a new pass on \p stream and buffers all its items. Requires
/// stream.ItemsRemainValid() (CHECK-fails otherwise): the returned views
/// borrow from the stream and stay valid until its next pass.
std::vector<StreamItem> DrainPass(SetStream& stream);

/// The monotone-gain filter core shared by ThresholdScan and
/// EngineContext::GainScanPass — the one copy of the chunked
/// snapshot-filter + in-order-commit logic. Calls
/// visit(item, gain_bound, bound_is_exact) in stream order for every item
/// whose bound is positive; sequentially (null/1-thread engine) the bound
/// is the exact current gain, sharded it is a chunk-snapshot upper bound
/// (`uncovered` only shrinks within a pass, and a zero bound proves zero
/// current gain). visit may clear bits of `uncovered`; for thread-count-
/// invariant results it must re-evaluate inexact bounds before acting on
/// their magnitude and be a no-op at zero current gain. Stops early once
/// `uncovered` is empty (every further visit would be such a no-op).
void GainFilteredScan(
    const std::vector<StreamItem>& items, DynamicBitset& uncovered,
    ParallelPassEngine* engine,
    const std::function<void(const StreamItem&, Count, bool)>& visit);

/// Builds the threshold-take visit for GainFilteredScan — the one copy of
/// the eligibility rule: a below-threshold bound is a proof of
/// ineligibility (gains only shrink); survivors re-evaluate against the
/// live `uncovered` and, when still eligible, are taken (on_take receives
/// the exact committed gain) and subtracted. Shared by ThresholdScan and
/// EngineContext::ThresholdPass. \p uncovered must outlive the returned
/// callable.
std::function<void(const StreamItem&, Count, bool)> ThresholdTakeVisit(
    double threshold, DynamicBitset& uncovered,
    std::function<void(SetId, Count)> on_take);

/// The pruning-scan primitive shared by the threshold-style passes:
/// sequentially equivalent to
///
///   for item in items:                       # in stream order
///     gain = |item.set & uncovered|
///     if gain > 0 and gain >= threshold:
///       on_take(item.id); uncovered \= item.set
///
/// With an engine, gains are precomputed in parallel against a chunk
/// snapshot of `uncovered` and candidates are re-evaluated in stream
/// order. Because `uncovered` only shrinks within a pass, a set whose
/// snapshot gain is below the threshold can never reach it later, so the
/// filter drops no taker — the output is bit-identical to the sequential
/// loop for every thread count. Pass engine == nullptr for the plain
/// sequential scan.
void ThresholdScan(const std::vector<StreamItem>& items, double threshold,
                   DynamicBitset& uncovered, ParallelPassEngine* engine,
                   const std::function<void(SetId)>& on_take);

}  // namespace streamsc

#endif  // STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_
