#ifndef STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_
#define STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "stream/set_stream.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/common.h"
#include "util/function_ref.h"

/// \file parallel_pass_engine.h
/// ParallelPassEngine: a fixed worker pool that shards one stream pass's
/// items across threads, plus the deterministic scan primitives built on
/// it.
///
/// Determinism contract: every helper in this file produces results that
/// are **bit-identical for any thread count** (including the engine-less
/// sequential path). Parallelism is used only where item work is
/// independent (projection) or where a parallel phase can be proven
/// equivalent to the sequential loop (ThresholdScan's monotone-gain
/// filter + in-order commit). Merges happen in stream order at pass end;
/// no result ever depends on thread scheduling.
///
/// Allocation contract: the engine's steady state is heap-allocation-free.
/// Pass callbacks travel as FunctionRef (two words, never allocates), jobs
/// are recycled from a small pool instead of make_shared per call, and the
/// scan primitives stage their snapshot buffers in the calling thread's
/// scratch arena. Worker threads get their scratch arena rewound at job
/// pickup, so worker-staged payloads must be committed (copied out) by the
/// orchestrator before it posts the next job — every primitive here does.

namespace streamsc {

class TraceRecorder;

/// A fixed pool of worker threads executing index-sharded jobs.
/// ParallelFor blocks until the job completes; jobs must not throw.
/// One engine can be reused across passes, algorithms, and runs; it is
/// not re-entrant (one ParallelFor at a time).
class ParallelPassEngine {
 public:
  /// Creates a pool of \p num_threads workers (the calling thread counts
  /// as one of them). 0 means std::thread::hardware_concurrency().
  explicit ParallelPassEngine(std::size_t num_threads = 0);
  ~ParallelPassEngine();

  ParallelPassEngine(const ParallelPassEngine&) = delete;
  ParallelPassEngine& operator=(const ParallelPassEngine&) = delete;

  /// Worker count (including the calling thread).
  std::size_t num_threads() const { return num_threads_; }

  /// Invokes fn(i) exactly once for every i in [0, count), distributed
  /// over the pool; blocks until all calls return. \p fn must be safe to
  /// call concurrently for distinct indices. Steady-state allocation-free:
  /// jobs come from a pool that is recycled once its workers let go.
  ///
  /// When \p trace is non-null every pool member that claimed at least
  /// one index emits one kShard span (with the job id and its claim
  /// count) into the recorder, and ParallelFor additionally waits for
  /// all participating workers to retire their spans before returning —
  /// so a post-run merge can never race an emit. Null \p trace (the
  /// default) keeps the exact pre-observability fast path.
  void ParallelFor(std::size_t count, FunctionRef<void(std::size_t)> fn,
                   TraceRecorder* trace = nullptr);

  /// Jobs posted since construction. Orchestrator-only read (the engine
  /// is not re-entrant, so the posting thread sees its own writes);
  /// pass machinery diffs this across a pass to count shard jobs.
  std::uint64_t jobs_posted() const { return next_job_id_ - 1; }

  /// Total indices handed to ParallelFor since construction
  /// (orchestrator-only read, like jobs_posted()).
  std::uint64_t items_dispatched() const { return items_dispatched_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    std::size_t count = 0;
    const FunctionRef<void(std::size_t)>* fn = nullptr;
    TraceRecorder* trace = nullptr;
    std::size_t pickups = 0;  // workers that took this job; guarded by mu_
    std::size_t exits = 0;    // workers done with it; guarded by mu_
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  void WorkerLoop();
  // Claims and runs indices of \p job until exhausted.
  void RunJob(Job& job);
  // Returns a pool slot no worker still references, carving a new one
  // only while the pool is growing toward its steady-state size (bounded
  // by the worker count; see ParallelFor).
  std::shared_ptr<Job> AcquireJob();

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;           // guarded by mu_
  std::shared_ptr<Job> job_;        // guarded by mu_
  std::uint64_t next_job_id_ = 1;   // guarded by mu_
  // Indices dispatched; orchestrator-only (ParallelFor is not re-entrant).
  std::uint64_t items_dispatched_ = 0;
  // Recycled jobs; touched only by the orchestrating thread.
  std::vector<std::shared_ptr<Job>> job_pool_;
};

/// Starts a new pass on \p stream and buffers all its items. Requires
/// stream.ItemsRemainValid() (CHECK-fails otherwise): the returned views
/// borrow from the stream and stay valid until its next pass.
std::vector<StreamItem> DrainPass(SetStream& stream);

/// Reusing-buffer form of DrainPass: clears \p items and refills it,
/// retaining capacity (and, with an arena-bound vector, retaining the
/// arena's chunks) across passes — the zero-allocation steady state.
void DrainPassInto(SetStream& stream, ArenaVector<StreamItem>& items);

/// The monotone-gain filter core shared by ThresholdScan and
/// EngineContext::GainScanPass — the one copy of the chunked
/// snapshot-filter + in-order-commit logic. Calls
/// visit(item, gain_bound, bound_is_exact) in stream order for every item
/// whose bound is positive; sequentially (null/1-thread engine) the bound
/// is the exact current gain, sharded it is a chunk-snapshot upper bound
/// (`uncovered` only shrinks within a pass, and a zero bound proves zero
/// current gain). visit may clear bits of `uncovered`; for thread-count-
/// invariant results it must re-evaluate inexact bounds before acting on
/// their magnitude and be a no-op at zero current gain. Stops early once
/// `uncovered` is empty (every further visit would be such a no-op).
/// The snapshot-bound buffer lives in the calling thread's scratch arena
/// for the duration of the scan. A non-null \p trace flows into the
/// chunk jobs so workers emit their kShard spans.
void GainFilteredScan(std::span<const StreamItem> items,
                      DynamicBitset& uncovered, ParallelPassEngine* engine,
                      FunctionRef<void(const StreamItem&, Count, bool)> visit,
                      TraceRecorder* trace = nullptr);

/// The threshold-take visit for GainFilteredScan — the one copy of the
/// eligibility rule: a below-threshold bound is a proof of ineligibility
/// (gains only shrink); survivors re-evaluate against the live `uncovered`
/// and, when still eligible, are taken (on_take receives the exact
/// committed gain) and subtracted. Shared by ThresholdScan and
/// EngineContext::ThresholdPass. Non-owning: \p uncovered and the
/// callable behind \p on_take must outlive the visitor.
class ThresholdTakeVisitor {
 public:
  ThresholdTakeVisitor(double threshold, DynamicBitset& uncovered,
                       FunctionRef<void(SetId, Count)> on_take)
      : threshold_(threshold), uncovered_(&uncovered), on_take_(on_take) {}

  void operator()(const StreamItem& item, Count bound,
                  bool bound_is_exact) const {
    // A below-threshold bound is a proof of ineligibility; survivors are
    // re-evaluated against the current state, in order.
    if (static_cast<double>(bound) < threshold_) return;
    const Count gain = bound_is_exact ? bound : item.set.CountAnd(*uncovered_);
    if (gain > 0 && static_cast<double>(gain) >= threshold_) {
      on_take_(item.id, gain);
      item.set.AndNotInto(*uncovered_);
    }
  }

 private:
  double threshold_;
  DynamicBitset* uncovered_;
  FunctionRef<void(SetId, Count)> on_take_;
};

/// The pruning-scan primitive shared by the threshold-style passes:
/// sequentially equivalent to
///
///   for item in items:                       # in stream order
///     gain = |item.set & uncovered|
///     if gain > 0 and gain >= threshold:
///       on_take(item.id); uncovered \= item.set
///
/// With an engine, gains are precomputed in parallel against a chunk
/// snapshot of `uncovered` and candidates are re-evaluated in stream
/// order. Because `uncovered` only shrinks within a pass, a set whose
/// snapshot gain is below the threshold can never reach it later, so the
/// filter drops no taker — the output is bit-identical to the sequential
/// loop for every thread count. Pass engine == nullptr for the plain
/// sequential scan.
void ThresholdScan(std::span<const StreamItem> items, double threshold,
                   DynamicBitset& uncovered, ParallelPassEngine* engine,
                   FunctionRef<void(SetId)> on_take);

}  // namespace streamsc

#endif  // STREAMSC_STREAM_PARALLEL_PASS_ENGINE_H_
