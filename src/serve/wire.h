#ifndef STREAMSC_SERVE_WIRE_H_
#define STREAMSC_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file wire.h
/// POSIX socket plumbing for the solve service: listen/connect on the two
/// supported endpoint forms, and framed I/O that survives everything a
/// socket can throw at a long-lived daemon:
///
///   * every syscall retries EINTR;
///   * short reads and short writes loop until the count is satisfied;
///   * writes use MSG_NOSIGNAL, so a peer that vanished mid-response
///     yields a Status instead of SIGPIPE killing the process;
///   * a clean EOF at a frame boundary is reported as `eof`, not as an
///     error — it is how clients hang up;
///   * a hostile or torn length prefix (> kMaxFrameBytes) is a typed
///     InvalidArgument, never an allocation of attacker-chosen size.
///
/// Endpoints are spelled `unix:/path/to.sock` or `tcp:PORT` (loopback
/// only; PORT may be 0 to let the kernel pick — the bound port is
/// reported back so tests can run fully parallel).

namespace streamsc::serve {

/// A parsed endpoint: exactly one of the two families.
struct Endpoint {
  bool is_unix = false;
  std::string path;         ///< unix: socket path.
  std::uint16_t port = 0;   ///< tcp: loopback port (0 = kernel-assigned).
};

/// Parses "unix:PATH" or "tcp:PORT". InvalidArgument otherwise.
StatusOr<Endpoint> ParseEndpoint(const std::string& spec);

/// Renders an endpoint back to its spec form (tcp shows the bound port).
std::string EndpointSpec(const Endpoint& endpoint);

/// Creates a listening socket for \p endpoint (CLOEXEC, backlog applied).
/// For tcp with port 0, \p endpoint is updated with the kernel-assigned
/// port. Unix sockets unlink a stale path first.
StatusOr<int> ListenOn(Endpoint* endpoint, int backlog);

/// Connects to \p endpoint. Returns the connected fd (CLOEXEC).
StatusOr<int> ConnectTo(const Endpoint& endpoint);

/// Accepts one connection from \p listen_fd (CLOEXEC, EINTR retried).
/// Returns the connected fd; a closed/shut-down listener surfaces as a
/// Status (the daemon's stop path).
StatusOr<int> AcceptOn(int listen_fd);

/// Writes all of \p data to \p fd (EINTR + short-write safe, no SIGPIPE).
Status SendAll(int fd, std::string_view data);

/// Writes one frame: u32 little-endian length prefix, then the payload.
/// Payloads over kMaxFrameBytes are an InvalidArgument (caller bug).
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame into \p payload. On a clean EOF before any prefix
/// byte, returns Ok with *eof = true and an untouched payload. A torn
/// prefix, mid-frame EOF, or an announced length over kMaxFrameBytes is
/// an error Status.
Status ReadFrame(int fd, std::string* payload, bool* eof);

/// close() with EINTR retry; safe on -1 (no-op).
void CloseFd(int fd);

}  // namespace streamsc::serve

#endif  // STREAMSC_SERVE_WIRE_H_
