#ifndef STREAMSC_SERVE_FRAME_H_
#define STREAMSC_SERVE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/solve_report.h"
#include "obs/counters.h"
#include "util/status.h"

/// \file frame.h
/// The solve service's wire format: length-prefixed frames with a small
/// versioned binary payload.
///
/// Framing (both directions):
///
///   [u32 payload_bytes (little-endian)] [payload_bytes bytes]
///
/// A frame's payload is capped at kMaxFrameBytes; a peer announcing more
/// is malformed (a torn or hostile length prefix, not a big request) and
/// the connection is dropped after a typed error. All multi-byte integers
/// are little-endian on the wire regardless of host. Strings are a u16
/// length followed by raw bytes (no NUL).
///
/// Request payload:
///   u8 version (kProtocolVersion)  u8 type (RequestType)  u8 flags  u8 0
///   type == kSolve only:
///     str instance   str solver   u16 argc   argc x str "key=value"
///   type == kReload only:
///     str instance   str path   (empty path = retire the instance)
///
/// Response payload:
///   u8 version  u8 type (ResponseType)  u8 0  u8 0
///   kError:     u8 status_code   str message
///   kReport:    u8 feasible  u8 kind  u16 0
///               u64 passes  u64 extra  u64 peak_space  u64 arena_high
///               u64 wall_ns
///               str solver  str algorithm  str source
///               u32 solution_count  solution_count x u32 set ids
///               u16 counter_count   counter_count x (str name, u8 kind,
///                                                    u64 value)
///               u16 row_count       row_count x (str name, u64 wall_ns,
///                                   u64 items, u64 shards, u64 takes,
///                                   u64 covered)
///   kStatsText: u32 text_bytes  text (Prometheus exposition format)
///   kPong/kBye: nothing
///
/// Every decoder is total: any truncated, oversized, or garbage payload
/// returns an InvalidArgument Status — never an abort, never an
/// out-of-bounds read (the fuzz harness fuzz_serve_frame attacks exactly
/// this surface).

namespace streamsc::serve {

/// Protocol version byte; bumped on any incompatible layout change.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on one frame's payload. Large enough for a solution over the
/// biggest supported instances (ids are 4 bytes each), small enough that
/// a hostile length prefix cannot balloon server memory.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{16} << 20;

/// What a client asks the daemon to do.
enum class RequestType : std::uint8_t {
  kSolve = 1,     ///< Run a registered solver over a cached instance.
  kStats = 2,     ///< Return service stats (Prometheus text).
  kPing = 3,      ///< Liveness probe.
  kShutdown = 4,  ///< Ask the daemon to stop accepting and exit.
  kReload = 5,    ///< Add/refresh (non-empty path) or retire (empty path)
                  ///< an instance without restarting the daemon.
};

/// What a daemon frame carries back.
enum class ResponseType : std::uint8_t {
  kReport = 1,     ///< A marshalled SolveReport.
  kError = 2,      ///< A typed Status (code + message). BUSY admission
                   ///< rejections use StatusCode::kUnavailable.
  kStatsText = 3,  ///< Prometheus exposition text.
  kPong = 4,       ///< Reply to kPing.
  kBye = 5,        ///< Reply to kShutdown (sent before the daemon stops).
  kReloadOk = 6,   ///< Reply to a successful kReload.
};

/// Request flag bits.
inline constexpr std::uint8_t kFlagWantBreakdown = 0x1;

/// One decoded client request.
struct SolveRequest {
  RequestType type = RequestType::kPing;
  /// kSolve only: ask for the per-pass breakdown (requires the daemon to
  /// run with tracing armed; silently empty otherwise).
  bool want_breakdown = false;
  std::string instance;           ///< kSolve/kReload: cached instance name.
  std::string solver;             ///< kSolve: registry key.
  std::vector<std::string> args;  ///< kSolve: "key=value" solver/session
                                  ///< options.
  std::string path;               ///< kReload: sscb1 file to (re)open;
                                  ///< empty retires the instance.
};

/// One counter from the run's snapshot, by interned name.
struct WireCounter {
  std::string name;
  CounterKind kind = CounterKind::kCounter;
  std::uint64_t value = 0;
};

/// One per-pass breakdown row (mirrors PassBreakdownRow with ns timing).
struct WireBreakdownRow {
  std::string name;
  std::uint64_t wall_ns = 0;
  std::uint64_t items_scanned = 0;
  std::uint64_t shard_jobs = 0;
  std::uint64_t sets_taken = 0;
  std::uint64_t elements_covered = 0;
};

/// One decoded daemon response (tagged union over ResponseType; only the
/// fields of the active type are meaningful).
struct SolveResponse {
  ResponseType type = ResponseType::kPong;

  // kError
  StatusCode code = StatusCode::kOk;
  std::string message;

  // kReport
  bool feasible = false;
  SolverKind kind = SolverKind::kSetCover;
  std::uint64_t passes = 0;
  std::uint64_t extra = 0;
  std::uint64_t peak_space_bytes = 0;
  std::uint64_t arena_high_water = 0;
  std::uint64_t wall_ns = 0;
  std::string solver;
  std::string algorithm;
  std::string source;
  std::vector<std::uint32_t> solution;
  std::vector<WireCounter> counters;
  std::vector<WireBreakdownRow> breakdown;

  // kStatsText
  std::string stats_text;
};

/// Serializes \p request into a frame payload (no length prefix).
std::string EncodeRequest(const SolveRequest& request);

/// Parses a frame payload into \p request. InvalidArgument on any
/// malformed input; \p request is only valid on Ok.
Status DecodeRequest(std::string_view payload, SolveRequest* request);

/// Serializes \p response into a frame payload (no length prefix).
std::string EncodeResponse(const SolveResponse& response);

/// Parses a frame payload into \p response. InvalidArgument on any
/// malformed input; \p response is only valid on Ok.
Status DecodeResponse(std::string_view payload, SolveResponse* response);

/// Builds a kReport response from a finished run. \p include_breakdown
/// copies report.pass_breakdown (present only for traced runs).
SolveResponse ResponseFromReport(const SolveReport& report,
                                 bool include_breakdown);

/// Builds a kError response carrying \p status (which must not be Ok).
SolveResponse ErrorResponse(const Status& status);

/// The Status a kError response carries; Ok for non-error responses.
Status ResponseStatus(const SolveResponse& response);

}  // namespace streamsc::serve

#endif  // STREAMSC_SERVE_FRAME_H_
