#include "serve/frame.h"

#include <utility>

namespace streamsc::serve {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("serve frame: " + what);
}

// --- Little-endian writers into a byte string --------------------------

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, std::uint16_t v) {
  PutU8(out, static_cast<std::uint8_t>(v & 0xFF));
  PutU8(out, static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    PutU8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    PutU8(out, static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view s) {
  // Callers keep strings (solver keys, option args, counter names) far
  // below 64 KiB; truncating here would silently corrupt, so clamp is a
  // CHECK-free hard cap enforced at encode time.
  const std::size_t n = s.size() < 0xFFFF ? s.size() : 0xFFFF;
  PutU16(out, static_cast<std::uint16_t>(n));
  out->append(s.data(), n);
}

// --- Bounds-checked little-endian reader -------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool U16(std::uint16_t* v) {
    std::uint8_t lo = 0, hi = 0;
    if (!U8(&lo) || !U8(&hi)) return false;
    *v = static_cast<std::uint16_t>(lo | (hi << 8));
    return true;
  }

  bool U32(std::uint32_t* v) {
    *v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      std::uint8_t b = 0;
      if (!U8(&b)) return false;
      *v |= static_cast<std::uint32_t>(b) << shift;
    }
    return true;
  }

  bool U64(std::uint64_t* v) {
    *v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      std::uint8_t b = 0;
      if (!U8(&b)) return false;
      *v |= static_cast<std::uint64_t>(b) << shift;
    }
    return true;
  }

  bool String(std::string* s) {
    std::uint16_t n = 0;
    if (!U16(&n)) return false;
    if (pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool Bytes(std::string* s, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EncodeRequest(const SolveRequest& request) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<std::uint8_t>(request.type));
  PutU8(&out, request.want_breakdown ? kFlagWantBreakdown : 0);
  PutU8(&out, 0);
  if (request.type == RequestType::kSolve) {
    PutString(&out, request.instance);
    PutString(&out, request.solver);
    const std::size_t argc =
        request.args.size() < 0xFFFF ? request.args.size() : 0xFFFF;
    PutU16(&out, static_cast<std::uint16_t>(argc));
    for (std::size_t i = 0; i < argc; ++i) PutString(&out, request.args[i]);
  }
  if (request.type == RequestType::kReload) {
    PutString(&out, request.instance);
    PutString(&out, request.path);
  }
  return out;
}

Status DecodeRequest(std::string_view payload, SolveRequest* request) {
  Reader in(payload);
  std::uint8_t version = 0, type = 0, flags = 0, reserved = 0;
  if (!in.U8(&version) || !in.U8(&type) || !in.U8(&flags) ||
      !in.U8(&reserved)) {
    return Malformed("request shorter than its fixed header");
  }
  if (version != kProtocolVersion) {
    return Malformed("unsupported protocol version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kProtocolVersion) + ")");
  }
  if (type < static_cast<std::uint8_t>(RequestType::kSolve) ||
      type > static_cast<std::uint8_t>(RequestType::kReload)) {
    return Malformed("unknown request type " + std::to_string(type));
  }
  *request = SolveRequest{};
  request->type = static_cast<RequestType>(type);
  request->want_breakdown = (flags & kFlagWantBreakdown) != 0;
  if (request->type == RequestType::kSolve) {
    if (!in.String(&request->instance) || !in.String(&request->solver)) {
      return Malformed("truncated solve request strings");
    }
    std::uint16_t argc = 0;
    if (!in.U16(&argc)) return Malformed("truncated solve request argc");
    request->args.resize(argc);
    for (std::uint16_t i = 0; i < argc; ++i) {
      if (!in.String(&request->args[i])) {
        return Malformed("truncated solve request arg " + std::to_string(i));
      }
    }
  }
  if (request->type == RequestType::kReload) {
    if (!in.String(&request->instance) || !in.String(&request->path)) {
      return Malformed("truncated reload request strings");
    }
  }
  if (!in.Done()) {
    return Malformed(std::to_string(in.remaining()) +
                     " trailing byte(s) after request");
  }
  return Status::Ok();
}

std::string EncodeResponse(const SolveResponse& response) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<std::uint8_t>(response.type));
  PutU8(&out, 0);
  PutU8(&out, 0);
  switch (response.type) {
    case ResponseType::kError:
      PutU8(&out, static_cast<std::uint8_t>(response.code));
      PutString(&out, response.message);
      break;
    case ResponseType::kReport: {
      PutU8(&out, response.feasible ? 1 : 0);
      PutU8(&out, static_cast<std::uint8_t>(response.kind));
      PutU16(&out, 0);
      PutU64(&out, response.passes);
      PutU64(&out, response.extra);
      PutU64(&out, response.peak_space_bytes);
      PutU64(&out, response.arena_high_water);
      PutU64(&out, response.wall_ns);
      PutString(&out, response.solver);
      PutString(&out, response.algorithm);
      PutString(&out, response.source);
      PutU32(&out, static_cast<std::uint32_t>(response.solution.size()));
      for (const std::uint32_t id : response.solution) PutU32(&out, id);
      const std::size_t counters = response.counters.size() < 0xFFFF
                                       ? response.counters.size()
                                       : 0xFFFF;
      PutU16(&out, static_cast<std::uint16_t>(counters));
      for (std::size_t i = 0; i < counters; ++i) {
        const WireCounter& c = response.counters[i];
        PutString(&out, c.name);
        PutU8(&out, static_cast<std::uint8_t>(c.kind));
        PutU64(&out, c.value);
      }
      const std::size_t rows = response.breakdown.size() < 0xFFFF
                                   ? response.breakdown.size()
                                   : 0xFFFF;
      PutU16(&out, static_cast<std::uint16_t>(rows));
      for (std::size_t i = 0; i < rows; ++i) {
        const WireBreakdownRow& row = response.breakdown[i];
        PutString(&out, row.name);
        PutU64(&out, row.wall_ns);
        PutU64(&out, row.items_scanned);
        PutU64(&out, row.shard_jobs);
        PutU64(&out, row.sets_taken);
        PutU64(&out, row.elements_covered);
      }
      break;
    }
    case ResponseType::kStatsText:
      PutU32(&out, static_cast<std::uint32_t>(response.stats_text.size()));
      out.append(response.stats_text);
      break;
    case ResponseType::kPong:
    case ResponseType::kBye:
    case ResponseType::kReloadOk:
      break;
  }
  return out;
}

Status DecodeResponse(std::string_view payload, SolveResponse* response) {
  Reader in(payload);
  std::uint8_t version = 0, type = 0, r1 = 0, r2 = 0;
  if (!in.U8(&version) || !in.U8(&type) || !in.U8(&r1) || !in.U8(&r2)) {
    return Malformed("response shorter than its fixed header");
  }
  if (version != kProtocolVersion) {
    return Malformed("unsupported protocol version " +
                     std::to_string(version));
  }
  if (type < static_cast<std::uint8_t>(ResponseType::kReport) ||
      type > static_cast<std::uint8_t>(ResponseType::kReloadOk)) {
    return Malformed("unknown response type " + std::to_string(type));
  }
  *response = SolveResponse{};
  response->type = static_cast<ResponseType>(type);
  switch (response->type) {
    case ResponseType::kError: {
      std::uint8_t code = 0;
      if (!in.U8(&code) || !in.String(&response->message)) {
        return Malformed("truncated error response");
      }
      if (code > static_cast<std::uint8_t>(StatusCode::kUnavailable) ||
          code == static_cast<std::uint8_t>(StatusCode::kOk)) {
        return Malformed("error response with invalid status code " +
                         std::to_string(code));
      }
      response->code = static_cast<StatusCode>(code);
      break;
    }
    case ResponseType::kReport: {
      std::uint8_t feasible = 0, kind = 0;
      std::uint16_t reserved = 0;
      if (!in.U8(&feasible) || !in.U8(&kind) || !in.U16(&reserved)) {
        return Malformed("truncated report header");
      }
      if (kind > static_cast<std::uint8_t>(SolverKind::kPairFinder)) {
        return Malformed("report with invalid solver kind " +
                         std::to_string(kind));
      }
      response->feasible = feasible != 0;
      response->kind = static_cast<SolverKind>(kind);
      if (!in.U64(&response->passes) || !in.U64(&response->extra) ||
          !in.U64(&response->peak_space_bytes) ||
          !in.U64(&response->arena_high_water) ||
          !in.U64(&response->wall_ns)) {
        return Malformed("truncated report scalars");
      }
      if (!in.String(&response->solver) ||
          !in.String(&response->algorithm) ||
          !in.String(&response->source)) {
        return Malformed("truncated report strings");
      }
      std::uint32_t count = 0;
      if (!in.U32(&count)) return Malformed("truncated solution count");
      // 4 bytes per id: reject counts the remaining payload cannot hold
      // before resizing, so a hostile count cannot balloon memory.
      if (in.remaining() / 4 < count) {
        return Malformed("solution count exceeds payload");
      }
      response->solution.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!in.U32(&response->solution[i])) {
          return Malformed("truncated solution ids");
        }
      }
      std::uint16_t counters = 0;
      if (!in.U16(&counters)) return Malformed("truncated counter count");
      response->counters.resize(counters);
      for (std::uint16_t i = 0; i < counters; ++i) {
        WireCounter& c = response->counters[i];
        std::uint8_t counter_kind = 0;
        if (!in.String(&c.name) || !in.U8(&counter_kind) ||
            !in.U64(&c.value)) {
          return Malformed("truncated counter " + std::to_string(i));
        }
        if (counter_kind > static_cast<std::uint8_t>(CounterKind::kGauge)) {
          return Malformed("counter with invalid kind " +
                           std::to_string(counter_kind));
        }
        c.kind = static_cast<CounterKind>(counter_kind);
      }
      std::uint16_t rows = 0;
      if (!in.U16(&rows)) return Malformed("truncated breakdown count");
      response->breakdown.resize(rows);
      for (std::uint16_t i = 0; i < rows; ++i) {
        WireBreakdownRow& row = response->breakdown[i];
        if (!in.String(&row.name) || !in.U64(&row.wall_ns) ||
            !in.U64(&row.items_scanned) || !in.U64(&row.shard_jobs) ||
            !in.U64(&row.sets_taken) || !in.U64(&row.elements_covered)) {
          return Malformed("truncated breakdown row " + std::to_string(i));
        }
      }
      break;
    }
    case ResponseType::kStatsText: {
      std::uint32_t bytes = 0;
      if (!in.U32(&bytes)) return Malformed("truncated stats length");
      if (in.remaining() < bytes) {
        return Malformed("stats length exceeds payload");
      }
      if (!in.Bytes(&response->stats_text, bytes)) {
        return Malformed("truncated stats text");
      }
      break;
    }
    case ResponseType::kPong:
    case ResponseType::kBye:
    case ResponseType::kReloadOk:
      break;
  }
  if (!in.Done()) {
    return Malformed(std::to_string(in.remaining()) +
                     " trailing byte(s) after response");
  }
  return Status::Ok();
}

SolveResponse ResponseFromReport(const SolveReport& report,
                                 bool include_breakdown) {
  SolveResponse response;
  response.type = ResponseType::kReport;
  response.feasible = report.feasible;
  response.kind = report.kind;
  response.passes = report.passes;
  response.extra = report.extra;
  response.peak_space_bytes = report.peak_space_bytes;
  response.arena_high_water = report.arena_high_water;
  response.wall_ns =
      static_cast<std::uint64_t>(report.wall_seconds * 1e9);
  response.solver = report.solver;
  response.algorithm = report.algorithm;
  response.source = report.source;
  response.solution.reserve(report.solution.size());
  for (const SetId id : report.solution.chosen) {
    response.solution.push_back(static_cast<std::uint32_t>(id));
  }
  report.counters.ForEachNonZero(
      [&](CounterId id, CounterKind kind, std::uint64_t value) {
        response.counters.push_back(
            WireCounter{std::string(id.name()), kind, value});
      });
  if (include_breakdown) {
    response.breakdown.reserve(report.pass_breakdown.size());
    for (const PassBreakdownRow& row : report.pass_breakdown) {
      response.breakdown.push_back(WireBreakdownRow{
          row.name, static_cast<std::uint64_t>(row.wall_seconds * 1e9),
          row.items_scanned, row.shard_jobs, row.sets_taken,
          row.elements_covered});
    }
  }
  return response;
}

SolveResponse ErrorResponse(const Status& status) {
  SolveResponse response;
  response.type = ResponseType::kError;
  response.code = status.ok() ? StatusCode::kInternal : status.code();
  response.message = status.message();
  return response;
}

Status ResponseStatus(const SolveResponse& response) {
  if (response.type != ResponseType::kError) return Status::Ok();
  return Status(response.code, response.message);
}

}  // namespace streamsc::serve
