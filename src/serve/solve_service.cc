#include "serve/solve_service.h"

#include <sys/socket.h>

#include <sstream>
#include <utility>

#include "obs/stats_sink.h"
#include "storage/mmap_set_stream.h"
#include "util/stopwatch.h"

namespace streamsc::serve {

namespace {

// Interned once; the serve layer's stats vocabulary.
CounterId ConnectionsId() { return CounterId::Counter("serve.connections"); }
CounterId BusyId() { return CounterId::Counter("serve.busy_rejected"); }
CounterId RequestsId() { return CounterId::Counter("serve.requests"); }
CounterId RequestsOkId() { return CounterId::Counter("serve.requests_ok"); }
CounterId RequestsErrorId() {
  return CounterId::Counter("serve.requests_error");
}
CounterId QueueDepthId() { return CounterId::Gauge("serve.queue_depth"); }
CounterId RingCapacityId() {
  return CounterId::Gauge("serve.ring_capacity");
}
CounterId WorkersId() { return CounterId::Gauge("serve.workers"); }
CounterId InstancesId() { return CounterId::Gauge("serve.instances"); }
CounterId ReloadsId() { return CounterId::Counter("serve.reloads"); }
CounterId ReloadErrorsId() {
  return CounterId::Counter("serve.reload_errors");
}

// True when args[i] sets the given session option key.
bool SetsKey(const std::string& arg, const char* key) {
  const std::size_t eq = arg.find('=');
  return eq != std::string::npos && arg.compare(0, eq, key) == 0;
}

}  // namespace

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

SolveService::~SolveService() {
  if (started_) Stop();
  CloseFd(listen_fd_);
}

Status SolveService::AddInstance(const std::string& name,
                                 const std::string& path) {
  return cache_.Add(name, path);
}

Status SolveService::ReloadInstance(const std::string& name,
                                    const std::string& path) {
  return path.empty() ? cache_.Remove(name) : cache_.Refresh(name, path);
}

Status SolveService::Start() {
  if (started_) {
    return Status::FailedPrecondition("SolveService: Start called twice");
  }
  StatusOr<Endpoint> endpoint = ParseEndpoint(options_.endpoint);
  if (!endpoint.ok()) return endpoint.status();
  endpoint_ = std::move(*endpoint);
  StatusOr<int> listen_fd = ListenOn(&endpoint_, options_.backlog);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;

  ring_ = std::make_unique<RequestRing>(options_.ring_capacity);
  slots_.clear();
  for (std::size_t i = 0; i < options_.workers; ++i) {
    auto slot = std::make_unique<Slot>();
    if (options_.enable_trace) {
      slot->trace = std::make_unique<TraceRecorder>();
    }
    slots_.push_back(std::move(slot));
  }
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(slots_.size());
  for (auto& slot : slots_) {
    workers_.emplace_back([this, raw = slot.get()] { WorkerLoop(raw); });
  }
  return Status::Ok();
}

void SolveService::RequestShutdown() {
  if (!stopping_.exchange(true)) {
    // Unblocks the acceptor's accept(2); the fd itself is closed in the
    // destructor so a late Wait() still has a valid handle to shut down.
    // shutdown() wakes a listening AF_UNIX accept but is a no-op
    // (ENOTCONN) on a listening TCP socket on Linux, so also poke the
    // acceptor with a throwaway connection; it sees stopping_ and exits.
    // Both are best-effort — whichever lands first does the job.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    StatusOr<int> poke = ConnectTo(endpoint_);
    if (poke.ok()) CloseFd(*poke);
    if (ring_ != nullptr) ring_->Close();
    // Half-close every in-flight connection: a worker parked in recv()
    // on an idle connection wakes to EOF and exits; SHUT_RD (not RDWR)
    // so the response of a request still being solved is written in
    // full before the worker notices.
    for (auto& slot : slots_) {
      std::lock_guard<std::mutex> lock(slot->conn_mutex);
      if (slot->active_fd >= 0) ::shutdown(slot->active_fd, SHUT_RD);
    }
  }
}

void SolveService::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  started_ = false;
}

void SolveService::Stop() {
  RequestShutdown();
  Wait();
}

void SolveService::AcceptLoop() {
  for (;;) {
    StatusOr<int> accepted = AcceptOn(listen_fd_);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (accepted.ok()) CloseFd(*accepted);
      return;
    }
    if (!accepted.ok()) return;  // Listener died outside shutdown.
    const int fd = *accepted;
    {
      std::lock_guard<std::mutex> lock(accept_stats_mutex_);
      accept_counters_.Add(ConnectionsId(), 1);
    }
    if (!ring_->TryPush(fd)) {
      // Full ring: answer a typed BUSY and close. The write is
      // best-effort — a peer that already vanished just loses the
      // courtesy note.
      {
        std::lock_guard<std::mutex> lock(accept_stats_mutex_);
        accept_counters_.Add(BusyId(), 1);
      }
      const SolveResponse busy = ErrorResponse(Status::Unavailable(
          "service busy: all " + std::to_string(ring_->capacity()) +
          " queue slots in use; retry"));
      (void)WriteFrame(fd, EncodeResponse(busy));
      CloseFd(fd);
    }
  }
}

void SolveService::WorkerLoop(Slot* slot) {
  int fd = -1;
  while (ring_->Pop(&fd)) {
    {
      std::lock_guard<std::mutex> lock(slot->conn_mutex);
      slot->active_fd = fd;
    }
    ServeConnection(slot, fd);
    {
      // Clear before close, under the mutex, so a concurrent
      // RequestShutdown can never shutdown(2) a recycled fd number.
      std::lock_guard<std::mutex> lock(slot->conn_mutex);
      slot->active_fd = -1;
    }
    CloseFd(fd);
  }
}

void SolveService::ServeConnection(Slot* slot, int fd) {
  std::string payload;
  for (;;) {
    bool eof = false;
    const Status read = ReadFrame(fd, &payload, &eof);
    if (!read.ok()) {
      // Torn frame or hostile prefix: one typed error, then drop — the
      // stream is not resynchronizable.
      (void)WriteFrame(fd, EncodeResponse(ErrorResponse(read)));
      return;
    }
    if (eof) return;

    SolveRequest request;
    const Status decoded = DecodeRequest(payload, &request);
    if (!decoded.ok()) {
      (void)WriteFrame(fd, EncodeResponse(ErrorResponse(decoded)));
      return;
    }

    SolveResponse response;
    switch (request.type) {
      case RequestType::kPing:
        response.type = ResponseType::kPong;
        break;
      case RequestType::kStats:
        response.type = ResponseType::kStatsText;
        response.stats_text = RenderStats();
        break;
      case RequestType::kShutdown:
        response.type = ResponseType::kBye;
        (void)WriteFrame(fd, EncodeResponse(response));
        RequestShutdown();
        return;
      case RequestType::kReload: {
        const Status reloaded =
            ReloadInstance(request.instance, request.path);
        {
          std::lock_guard<std::mutex> lock(slot->stats_mutex);
          slot->counters.Add(ReloadsId(), 1);
          if (!reloaded.ok()) slot->counters.Add(ReloadErrorsId(), 1);
        }
        if (reloaded.ok()) {
          response.type = ResponseType::kReloadOk;
        } else {
          response = ErrorResponse(reloaded);
        }
        break;
      }
      case RequestType::kSolve: {
        Stopwatch timer;
        response = HandleSolve(slot, request);
        const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
            timer.ElapsedSeconds() * 1e9);
        std::lock_guard<std::mutex> lock(slot->stats_mutex);
        slot->counters.Add(RequestsId(), 1);
        slot->counters.Add(response.type == ResponseType::kError
                               ? RequestsErrorId()
                               : RequestsOkId(),
                           1);
        slot->latency.Record(elapsed_ns);
        break;
      }
    }
    if (!WriteFrame(fd, EncodeResponse(response)).ok()) return;
  }
}

SolveResponse SolveService::HandleSolve(Slot* slot,
                                        const SolveRequest& request) {
  // Bind (or reuse) this slot's session for the instance. Bindings are
  // slot-private, so the map needs no lock; the cache lookup is the only
  // synchronized step. A binding is reused only while its generation
  // matches the cache's — a reload swaps the cache entry, so the next
  // request here rebinds over the new mapping while the old one stays
  // pinned by any slot still mid-solve on it.
  StatusOr<InstanceCache::Snapshot> snapshot = cache_.Get(request.instance);
  if (!snapshot.ok()) {
    // Retired (or never-registered) instance: drop any stale binding so
    // the slot does not pin a removed mapping forever.
    slot->sessions.erase(request.instance);
    return ErrorResponse(snapshot.status());
  }
  auto it = slot->sessions.find(request.instance);
  if (it == slot->sessions.end() ||
      it->second.generation != snapshot->generation) {
    BoundInstance bound;
    bound.stream = snapshot->stream;
    bound.generation = snapshot->generation;
    bound.session = SolveSession::OverStream(
        std::make_unique<MmapStreamView>(*snapshot->stream),
        SolveSession::Source::kMmap);
    it = slot->sessions.insert_or_assign(request.instance, std::move(bound))
             .first;
  }
  SolveSession& session = it->second.session;

  const bool traced = request.want_breakdown && slot->trace != nullptr;
  if (traced) slot->trace->Reset();
  session.BindTrace(traced ? slot->trace.get() : nullptr);

  // Session options the service owns: engine width always, the arena cap
  // when the operator set one (the server's ceiling beats the client's
  // ask). With no server cap the client's own memory_budget rides
  // through untouched.
  std::vector<std::string> args;
  args.reserve(request.args.size() + 2);
  for (const std::string& arg : request.args) {
    if (SetsKey(arg, "threads")) continue;
    if (options_.memory_budget > 0 && SetsKey(arg, "memory_budget")) {
      continue;
    }
    args.push_back(arg);
  }
  args.push_back("threads=" + std::to_string(options_.solve_threads));
  if (options_.memory_budget > 0) {
    args.push_back("memory_budget=" +
                   std::to_string(options_.memory_budget));
  }

  StatusOr<SolveReport> report = session.Solve(request.solver, args);
  session.BindTrace(nullptr);
  if (!report.ok()) return ErrorResponse(report.status());
  return ResponseFromReport(*report, traced);
}

std::string SolveService::RenderStats() const {
  std::ostringstream out;
  WriteStats(out);
  return std::move(out).str();
}

void SolveService::WriteStats(std::ostream& out) const {
  CounterSet merged;
  LatencyHistogram latency;
  {
    std::lock_guard<std::mutex> lock(accept_stats_mutex_);
    merged.MergeFrom(accept_counters_);
  }
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->stats_mutex);
    merged.MergeFrom(slot->counters);
    latency.Merge(slot->latency);
  }
  merged.RecordMax(QueueDepthId(), ring_ != nullptr ? ring_->size() : 0);
  merged.RecordMax(RingCapacityId(),
                   ring_ != nullptr ? ring_->capacity()
                                    : options_.ring_capacity);
  merged.RecordMax(WorkersId(), options_.workers);
  merged.RecordMax(InstancesId(), cache_.size());
  WritePrometheusStats(out, merged);
  WritePrometheusHistogram(out, latency, "serve.request_latency_ns");
}

}  // namespace streamsc::serve
