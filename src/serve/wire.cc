#include "serve/wire.h"

#include <cerrno>
#include <cstring>

#if defined(_WIN32)
#error "serve/wire.cc is POSIX-only (gated out of the build elsewhere)"
#endif

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/frame.h"

namespace streamsc::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// accept4 is Linux/BSD; fall back to accept + FD_CLOEXEC elsewhere.
int AcceptCloexec(int listen_fd) {
#if defined(SOCK_CLOEXEC)
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
#else
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
#endif
}

int SocketCloexec(int domain) {
#if defined(SOCK_CLOEXEC)
  return ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd >= 0) ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
#endif
}

}  // namespace

StatusOr<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("endpoint 'unix:' needs a path");
    }
    // -1 leaves room for sun_path's trailing NUL.
    if (endpoint.path.size() >= sizeof(sockaddr_un{}.sun_path) - 1) {
      return Status::InvalidArgument("unix socket path too long (" +
                                     std::to_string(endpoint.path.size()) +
                                     " bytes): " + endpoint.path);
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string digits = spec.substr(4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos ||
        digits.size() > 5) {
      return Status::InvalidArgument("endpoint 'tcp:' needs a port number, "
                                     "got '" +
                                     digits + "'");
    }
    const unsigned long port = std::stoul(digits);
    if (port > 65535) {
      return Status::InvalidArgument("tcp port out of range: " + digits);
    }
    endpoint.is_unix = false;
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  return Status::InvalidArgument(
      "endpoint must be 'unix:PATH' or 'tcp:PORT', got '" + spec + "'");
}

std::string EndpointSpec(const Endpoint& endpoint) {
  return endpoint.is_unix ? "unix:" + endpoint.path
                          : "tcp:" + std::to_string(endpoint.port);
}

StatusOr<int> ListenOn(Endpoint* endpoint, int backlog) {
  if (endpoint->is_unix) {
    const int fd = SocketCloexec(AF_UNIX);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint->path.c_str(),
                endpoint->path.size() + 1);
    // A previous daemon that died uncleanly leaves the path behind;
    // rebinding over it is the expected restart behaviour.
    ::unlink(endpoint->path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status = Errno("bind(" + endpoint->path + ")");
      CloseFd(fd);
      return status;
    }
    if (::listen(fd, backlog) != 0) {
      const Status status = Errno("listen(" + endpoint->path + ")");
      CloseFd(fd);
      return status;
    }
    return fd;
  }
  const int fd = SocketCloexec(AF_INET);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoint->port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Errno("bind(127.0.0.1:" + std::to_string(endpoint->port) + ")");
    CloseFd(fd);
    return status;
  }
  if (endpoint->port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status status = Errno("getsockname");
      CloseFd(fd);
      return status;
    }
    endpoint->port = ntohs(bound.sin_port);
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = Errno("listen(tcp)");
    CloseFd(fd);
    return status;
  }
  return fd;
}

StatusOr<int> ConnectTo(const Endpoint& endpoint) {
  if (endpoint.is_unix) {
    const int fd = SocketCloexec(AF_UNIX);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const Status status = Errno("connect(" + endpoint.path + ")");
      CloseFd(fd);
      return status;
    }
    return fd;
  }
  const int fd = SocketCloexec(AF_INET);
  if (fd < 0) return Errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoint.port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status status =
        Errno("connect(127.0.0.1:" + std::to_string(endpoint.port) + ")");
    CloseFd(fd);
    return status;
  }
  return fd;
}

StatusOr<int> AcceptOn(int listen_fd) {
  for (;;) {
    const int fd = AcceptCloexec(listen_fd);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    // ECONNABORTED: the peer gave up between connect and accept — keep
    // serving, it is their problem, not the daemon's.
    if (errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

Status SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

namespace {

// Reads exactly n bytes into buf. Returns 1 on success, 0 on clean EOF
// before the first byte, and a negative errno on failure / mid-read EOF
// (reported as ECONNRESET).
int RecvExact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -errno;
    }
    if (r == 0) return got == 0 ? 0 : -ECONNRESET;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload too large: " + std::to_string(payload.size()) +
        " bytes (cap " + std::to_string(kMaxFrameBytes) + ")");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((n >> (8 * i)) & 0xFF);
  }
  // One send for the common small frame avoids a cross-packet split that
  // a naive peer might mistake for a torn prefix.
  std::string wire;
  wire.reserve(4 + payload.size());
  wire.append(prefix, 4);
  wire.append(payload.data(), payload.size());
  return SendAll(fd, wire);
}

Status ReadFrame(int fd, std::string* payload, bool* eof) {
  *eof = false;
  char prefix[4];
  const int rc = RecvExact(fd, prefix, 4);
  if (rc == 0) {
    *eof = true;
    return Status::Ok();
  }
  if (rc < 0) {
    errno = -rc;
    return Errno("recv(frame prefix)");
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame announces " + std::to_string(n) + " bytes (cap " +
        std::to_string(kMaxFrameBytes) + "); dropping connection");
  }
  payload->resize(n);
  if (n > 0) {
    const int body = RecvExact(fd, payload->data(), n);
    if (body <= 0) {
      errno = body == 0 ? ECONNRESET : -body;
      return Errno("recv(frame body)");
    }
  }
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace streamsc::serve
