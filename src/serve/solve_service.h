#ifndef STREAMSC_SERVE_SOLVE_SERVICE_H_
#define STREAMSC_SERVE_SOLVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/solve_session.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "serve/frame.h"
#include "serve/request_ring.h"
#include "serve/wire.h"
#include "storage/instance_cache.h"

/// \file solve_service.h
/// SolveService: the long-lived solve daemon.
///
/// Shape (one acceptor, N workers, one bounded ring between them):
///
///   clients ──► acceptor ──► RequestRing (fds) ──► worker[0..N)
///                  │ full?                            │
///                  └── BUSY (kUnavailable) + close    └── per-slot
///                                                         SolveSessions
///
/// * **Admission control**: the ring's capacity is the daemon's entire
///   queueing policy. A full ring never blocks the acceptor and never
///   queues unboundedly — the client gets a typed BUSY frame immediately
///   and can retry. The e2e tests pin this: a filled ring answers
///   kUnavailable, it does not abort or hang.
/// * **Open-once / serve-many**: instances are registered into an
///   InstanceCache (one mmap + one validation pass per load). Each worker
///   slot lazily binds a per-slot SolveSession over an MmapStreamView of
///   the cached mapping, so concurrent solves of the same instance share
///   bytes but never a cursor.
/// * **Live reload**: a kReload request (or ReloadInstance()) adds,
///   refreshes, or retires instances while the daemon serves. Slots pin
///   the mapping they bound via shared ownership and compare cache
///   generations per request, so an in-flight solve finishes on the
///   bytes it started with and the next request on that slot rebinds the
///   new generation — zero failed in-flight requests across a swap.
/// * **Warm slots**: a slot's sessions persist across requests — the run
///   arena reaches its zero-alloc steady state exactly as in embedded
///   use, and `memory_budget` makes an oversized request return
///   RESOURCE_EXHAUSTED while the daemon keeps serving.
/// * **Stats**: every slot owns a mutex-guarded CounterSet +
///   LatencyHistogram shard; a kStats request (or WriteStats) merges the
///   shards with the acceptor's and renders Prometheus exposition text —
///   queue-depth/capacity gauges, request/busy counters, and the
///   request-latency summary with p50/p90/p99.
/// * **Tracing**: with ServiceOptions::enable_trace each slot arms a
///   TraceRecorder; a request with the want-breakdown flag gets the
///   per-pass breakdown marshalled into its report response.
///
/// Every failure a client can cause — malformed frame, unknown instance
/// or solver, bad option, over-budget run, vanished peer — is a Status
/// answered on the wire or a dropped connection; the daemon itself never
/// aborts on request input.

namespace streamsc::serve {

/// Configuration for one SolveService.
struct ServiceOptions {
  /// "unix:PATH" or "tcp:PORT" (loopback; 0 picks a free port, see
  /// SolveService::endpoint() for the resolved one).
  std::string endpoint = "tcp:0";
  /// Worker threads == concurrently served connections.
  std::size_t workers = 2;
  /// Ring slots: connections accepted-but-unclaimed before BUSY.
  std::size_t ring_capacity = 4;
  /// listen(2) backlog (kernel-side, below the ring).
  int backlog = 16;
  /// Engine width passed to every solve (`threads=` session option).
  std::size_t solve_threads = 1;
  /// Server-side arena cap per request. 0 = no server cap: a client's
  /// own memory_budget option passes through. Non-zero overrides
  /// whatever the client sent — the operator's ceiling wins.
  std::size_t memory_budget = 0;
  /// Arms one TraceRecorder per worker slot so requests may ask for the
  /// per-pass breakdown. Off by default (tracing costs ring storage).
  bool enable_trace = false;
};

/// The daemon. Construct, AddInstance() for every servable file, Start(),
/// then Wait() (or Stop() from another thread / a kShutdown request).
class SolveService {
 public:
  explicit SolveService(ServiceOptions options);
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Registers \p path (sscb1 binary) as instance \p name; opens and
  /// validates immediately. Safe before or after Start() (the cache is
  /// concurrent); InvalidArgument if the name is already registered —
  /// use ReloadInstance() to replace.
  Status AddInstance(const std::string& name, const std::string& path);

  /// Adds or refreshes (\p path non-empty) or retires (\p path empty)
  /// instance \p name while serving. In-flight solves finish on the
  /// mapping they bound; subsequent requests see the new state. On
  /// failure the previous binding, if any, keeps serving.
  Status ReloadInstance(const std::string& name, const std::string& path);

  /// Binds the endpoint and launches the acceptor and worker threads.
  Status Start();

  /// Signals shutdown (idempotent, safe from any thread and from the
  /// serving path itself): stops admission, wakes the acceptor, closes
  /// the ring. Queued connections still get served.
  void RequestShutdown();

  /// Blocks until the service has shut down (acceptor and workers
  /// joined). Call from the owning thread after Start().
  void Wait();

  /// RequestShutdown() + Wait().
  void Stop();

  /// The bound endpoint; for "tcp:0" the port is the kernel-assigned one
  /// (valid after a successful Start()).
  const Endpoint& endpoint() const { return endpoint_; }

  /// Registered instance names, sorted.
  std::vector<std::string> InstanceNames() const { return cache_.Names(); }

  /// Renders current service stats as Prometheus exposition text: merged
  /// serve.* counters, queue gauges, and the request-latency summary.
  void WriteStats(std::ostream& out) const;

 private:
  /// One slot's binding of a cached instance: the shared mapping (pinned
  /// so a reload cannot unmap bytes mid-solve), the generation it came
  /// from (staleness check against the cache per request), and the warm
  /// per-slot session over it.
  struct BoundInstance {
    std::shared_ptr<const MmapSetStream> stream;
    std::uint64_t generation = 0;
    SolveSession session;
  };

  /// One worker's private state. Sessions and the trace recorder are
  /// only ever touched by the owning worker thread; the stats shard is
  /// mutex-guarded because kStats scrapes read it cross-thread.
  struct Slot {
    std::map<std::string, BoundInstance> sessions;
    std::unique_ptr<TraceRecorder> trace;
    mutable std::mutex stats_mutex;
    CounterSet counters;
    LatencyHistogram latency;
    // The connection this slot's worker is currently serving (-1 when
    // idle). RequestShutdown half-closes it under conn_mutex so a worker
    // parked in recv() on an idle-but-open connection wakes to a clean
    // EOF instead of pinning Wait() forever; the mutex orders that
    // shutdown(2) against the worker's own clear-then-close.
    std::mutex conn_mutex;
    int active_fd = -1;
  };

  void AcceptLoop();
  void WorkerLoop(Slot* slot);
  /// Serves one connection's frames until EOF/error; returns true if a
  /// kShutdown was processed (the worker then exits its loop naturally
  /// as the ring closes).
  void ServeConnection(Slot* slot, int fd);
  SolveResponse HandleSolve(Slot* slot, const SolveRequest& request);
  std::string RenderStats() const;

  ServiceOptions options_;
  Endpoint endpoint_;
  InstanceCache cache_;
  int listen_fd_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<RequestRing> ring_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  /// Acceptor-side stats (connections seen, BUSY rejections).
  mutable std::mutex accept_stats_mutex_;
  CounterSet accept_counters_;
};

}  // namespace streamsc::serve

#endif  // STREAMSC_SERVE_SOLVE_SERVICE_H_
