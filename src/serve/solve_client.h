#ifndef STREAMSC_SERVE_SOLVE_CLIENT_H_
#define STREAMSC_SERVE_SOLVE_CLIENT_H_

#include <string>
#include <vector>

#include "serve/frame.h"
#include "serve/wire.h"

/// \file solve_client.h
/// SolveClient: one connection to a running solve daemon.
///
/// The client is a thin, synchronous wrapper over the frame protocol:
/// Connect, then any number of Solve/Ping/Stats calls on the same
/// connection (the daemon serves a connection's frames in order), then
/// drop it. Every transport or protocol failure is a Status; a BUSY
/// admission rejection surfaces as StatusCode::kUnavailable from the
/// first call on the connection.

namespace streamsc::serve {

/// A connected client. Movable; closing happens on destruction.
class SolveClient {
 public:
  /// Connects to \p endpoint_spec ("unix:PATH" or "tcp:PORT").
  static StatusOr<SolveClient> Connect(const std::string& endpoint_spec);

  SolveClient() = default;
  ~SolveClient();
  SolveClient(SolveClient&& other) noexcept;
  SolveClient& operator=(SolveClient&& other) noexcept;
  SolveClient(const SolveClient&) = delete;
  SolveClient& operator=(const SolveClient&) = delete;

  /// Runs \p solver over cached instance \p instance with key=value
  /// \p args. Returns the marshalled report response (kReport) on
  /// success; server-side failures (unknown instance/solver, bad option,
  /// RESOURCE_EXHAUSTED, BUSY) come back as their typed Status.
  StatusOr<SolveResponse> Solve(const std::string& instance,
                                const std::string& solver,
                                const std::vector<std::string>& args,
                                bool want_breakdown = false);

  /// Liveness round-trip.
  Status Ping();

  /// Fetches the daemon's Prometheus stats text.
  StatusOr<std::string> Stats();

  /// Asks the daemon to add/refresh instance \p name from \p path, or to
  /// retire it when \p path is empty (acknowledged with kReloadOk).
  Status Reload(const std::string& name, const std::string& path);

  /// Asks the daemon to shut down (acknowledged with kBye).
  Status Shutdown();

  bool connected() const { return fd_ >= 0; }

 private:
  /// Sends \p request and reads one response frame, surfacing kError
  /// responses as their Status.
  StatusOr<SolveResponse> Call(const SolveRequest& request);

  int fd_ = -1;
};

}  // namespace streamsc::serve

#endif  // STREAMSC_SERVE_SOLVE_CLIENT_H_
