#include "serve/solve_client.h"

#include <utility>

namespace streamsc::serve {

StatusOr<SolveClient> SolveClient::Connect(
    const std::string& endpoint_spec) {
  StatusOr<Endpoint> endpoint = ParseEndpoint(endpoint_spec);
  if (!endpoint.ok()) return endpoint.status();
  StatusOr<int> fd = ConnectTo(*endpoint);
  if (!fd.ok()) return fd.status();
  SolveClient client;
  client.fd_ = *fd;
  return client;
}

SolveClient::~SolveClient() { CloseFd(fd_); }

SolveClient::SolveClient(SolveClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

SolveClient& SolveClient::operator=(SolveClient&& other) noexcept {
  if (this != &other) {
    CloseFd(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

StatusOr<SolveResponse> SolveClient::Call(const SolveRequest& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("SolveClient: not connected");
  }
  // A failed write is not yet a failed call: the daemon may have
  // answered-and-closed before reading our request (the typed-BUSY
  // admission path does exactly that), leaving its response queued on
  // our side of the socket. Always attempt the read; surface the write
  // error only when no frame was salvaged.
  const Status sent = WriteFrame(fd_, EncodeRequest(request));
  std::string payload;
  bool eof = false;
  const Status read = ReadFrame(fd_, &payload, &eof);
  if (!read.ok()) return sent.ok() ? read : sent;
  if (eof) {
    if (!sent.ok()) return sent;
    return Status::Internal(
        "solve daemon closed the connection before responding");
  }
  SolveResponse response;
  const Status decoded = DecodeResponse(payload, &response);
  if (!decoded.ok()) return decoded;
  const Status status = ResponseStatus(response);
  if (!status.ok()) return status;
  return response;
}

StatusOr<SolveResponse> SolveClient::Solve(
    const std::string& instance, const std::string& solver,
    const std::vector<std::string>& args, bool want_breakdown) {
  SolveRequest request;
  request.type = RequestType::kSolve;
  request.want_breakdown = want_breakdown;
  request.instance = instance;
  request.solver = solver;
  request.args = args;
  StatusOr<SolveResponse> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->type != ResponseType::kReport) {
    return Status::Internal("solve daemon answered a solve with frame type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  return response;
}

Status SolveClient::Ping() {
  SolveRequest request;
  request.type = RequestType::kPing;
  StatusOr<SolveResponse> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->type != ResponseType::kPong) {
    return Status::Internal("solve daemon answered a ping with frame type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  return Status::Ok();
}

StatusOr<std::string> SolveClient::Stats() {
  SolveRequest request;
  request.type = RequestType::kStats;
  StatusOr<SolveResponse> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->type != ResponseType::kStatsText) {
    return Status::Internal("solve daemon answered a stats request with "
                            "frame type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  return std::move(response->stats_text);
}

Status SolveClient::Reload(const std::string& name, const std::string& path) {
  SolveRequest request;
  request.type = RequestType::kReload;
  request.instance = name;
  request.path = path;
  StatusOr<SolveResponse> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->type != ResponseType::kReloadOk) {
    return Status::Internal("solve daemon answered a reload with frame "
                            "type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  return Status::Ok();
}

Status SolveClient::Shutdown() {
  SolveRequest request;
  request.type = RequestType::kShutdown;
  StatusOr<SolveResponse> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->type != ResponseType::kBye) {
    return Status::Internal("solve daemon answered a shutdown with frame "
                            "type " +
                            std::to_string(static_cast<int>(response->type)));
  }
  return Status::Ok();
}

}  // namespace streamsc::serve
