#ifndef STREAMSC_SERVE_REQUEST_RING_H_
#define STREAMSC_SERVE_REQUEST_RING_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "util/check.h"

/// \file request_ring.h
/// The daemon's admission queue: a fixed-capacity ring of accepted
/// connection fds between the acceptor thread and the worker pool.
///
/// The ring IS the backpressure policy. Capacity is fixed at construction
/// (one slot per queued connection); a full ring makes TryPush fail
/// immediately — the acceptor then answers the client with a typed BUSY
/// (StatusCode::kUnavailable) frame and closes, instead of queueing
/// unboundedly or blocking the accept loop. Workers block in Pop until a
/// connection arrives or the ring is closed; Close() wakes every waiter
/// so shutdown drains deterministically (queued connections are still
/// popped and served before workers observe the closed+empty state).

namespace streamsc::serve {

/// Bounded MPMC fd queue. All operations are O(1) under one mutex — the
/// queue moves file descriptors, never request bytes.
class RequestRing {
 public:
  explicit RequestRing(std::size_t capacity) : slots_(capacity) {
    STREAMSC_CHECK(capacity > 0, "RequestRing needs at least one slot");
  }

  RequestRing(const RequestRing&) = delete;
  RequestRing& operator=(const RequestRing&) = delete;

  /// Admits \p fd if a slot is free. False = ring full (caller answers
  /// BUSY) or closed (caller rejects — the daemon is stopping). Never
  /// blocks.
  bool TryPush(int fd) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ == slots_.size()) return false;
      slots_[(head_ + size_) % slots_.size()] = fd;
      ++size_;
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until a connection is available or the ring is closed and
  /// drained. Returns true with *fd set, or false when no connection
  /// will ever arrive again (closed + empty) — the worker's exit signal.
  bool Pop(int* fd) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    *fd = slots_[head_];
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return true;
  }

  /// Stops admission and wakes every blocked Pop. Queued fds remain
  /// poppable (drain-then-exit); idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Connections currently queued (racy by nature; for the stats gauge).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<int> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace streamsc::serve

#endif  // STREAMSC_SERVE_REQUEST_RING_H_
