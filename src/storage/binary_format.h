#ifndef STREAMSC_STORAGE_BINARY_FORMAT_H_
#define STREAMSC_STORAGE_BINARY_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "util/common.h"
#include "util/status.h"

/// \file binary_format.h
/// The "sscb1" on-disk binary instance format: the mmap-friendly sibling
/// of the ssc1 text format (instance/serialization.h). A file is
///
///   [FileHeader | set payloads ... | SetIndexEntry x m]
///
/// with every payload 8-byte aligned so dense words can be read in place
/// as std::uint64_t and sparse ids as std::uint32_t, directly out of a
/// read-only mapping. All integers are little-endian; the reader rejects
/// files on big-endian hosts rather than byte-swapping (no such target is
/// supported by this project).
///
/// Per set, the payload is one of two representations, chosen by the same
/// 1/32 density rule as SetSystem's hybrid store:
///
///   kDense  — ceil(n/64) 64-bit words, tail bits beyond n zero.
///   kSparse — count sorted, duplicate-free 32-bit element ids, zero-padded
///             to the next 8-byte boundary.
///
/// The index lives at the *end* of the file (header field index_offset)
/// so a writer can stream payloads without knowing their sizes up front,
/// then append the index and patch the header. file_size in the header
/// makes truncation detectable before any payload is dereferenced.

namespace streamsc {
namespace sscb1 {

/// Magic bytes at offset 0 ("sscb1" + NUL padding).
inline constexpr unsigned char kMagic[8] = {'s', 's', 'c', 'b', '1',
                                            '\0', '\0', '\0'};

/// Current (and only) format version.
inline constexpr std::uint32_t kVersion = 1;

/// Payload alignment; every set payload offset is a multiple of this.
inline constexpr std::uint64_t kPayloadAlign = 8;

/// Same sanity cap as the ssc1 reader: a corrupt header must never drive
/// allocation.
inline constexpr std::uint64_t kMaxDimension = std::uint64_t{1} << 31;

/// Set payload representation tag (SetIndexEntry::rep).
enum Rep : std::uint16_t {
  kDense = 0,   ///< ceil(n/64) x u64 words.
  kSparse = 1,  ///< count x u32 sorted ids, padded to 8 bytes.
};

/// Fixed-size file header at offset 0.
struct FileHeader {
  unsigned char magic[8];      ///< kMagic.
  std::uint32_t version;       ///< kVersion.
  std::uint32_t reserved;      ///< Zero.
  std::uint64_t universe_size; ///< n.
  std::uint64_t num_sets;      ///< m.
  std::uint64_t index_offset;  ///< Byte offset of the SetIndexEntry array.
  std::uint64_t file_size;     ///< Total file size in bytes.
};
static_assert(sizeof(FileHeader) == 48, "sscb1 header layout drifted");

/// One per set, in SetId order, at index_offset.
struct SetIndexEntry {
  std::uint64_t offset;   ///< Payload byte offset from file start (8-aligned).
  std::uint32_t count;    ///< Number of member elements.
  std::uint16_t rep;      ///< Rep tag.
  std::uint16_t reserved; ///< Zero.
};
static_assert(sizeof(SetIndexEntry) == 16, "sscb1 index layout drifted");

/// Bytes of a dense payload for a universe of \p n bits.
constexpr std::uint64_t DensePayloadBytes(std::uint64_t n) {
  return (n + 63) / 64 * sizeof(std::uint64_t);
}

/// Bytes of a sparse payload of \p count ids, including alignment padding.
constexpr std::uint64_t SparsePayloadBytes(std::uint64_t count) {
  const std::uint64_t raw = count * sizeof(std::uint32_t);
  return (raw + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
}

/// Ok iff this host can read/write sscb1 in place (little-endian).
Status CheckHostEndianness();

/// Structural validation of a header against the actual byte count of the
/// file it came from: magic, version, dimension caps, index placement.
/// Payload-level validation happens per entry in MmapSetStream.
Status ValidateHeader(const FileHeader& header, std::uint64_t actual_size);

/// Structural validation of one index entry against a validated header:
/// representation tag, alignment, count range, and that the payload lies
/// entirely inside [header size, index_offset).
Status ValidateIndexEntry(const FileHeader& header, const SetIndexEntry& entry,
                          std::size_t set_id);

}  // namespace sscb1
}  // namespace streamsc

#endif  // STREAMSC_STORAGE_BINARY_FORMAT_H_
