#include "storage/mmap_set_stream.h"

#include <cstring>
#include <fstream>

#include "util/check.h"
#include "util/file_probe.h"

namespace streamsc {

namespace {

using sscb1::FileHeader;
using sscb1::SetIndexEntry;
using Word = DynamicBitset::Word;

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("sscb1: " + what);
}

}  // namespace

MmapSetStream::MmapSetStream(const std::string& path) {
  status_ = Load(path);
  if (!status_.ok()) {
    // Leave a well-defined empty stream so accidental use without a
    // status check streams nothing instead of reading junk.
    universe_size_ = 0;
    slots_.clear();
    dense_.clear();
    sparse_.clear();
  }
}

Status MmapSetStream::Load(const std::string& path) {
  Status endian = sscb1::CheckHostEndianness();
  if (!endian.ok()) return endian;

  StatusOr<MmapFile> mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  file_ = std::move(*mapped);

  if (file_.size() < sizeof(FileHeader)) {
    return Malformed("file too small for an sscb1 header");
  }
  // The header/index are copied out of the mapping into aligned structs;
  // payload spans read in place (their 8-byte alignment is validated).
  FileHeader header;
  std::memcpy(&header, file_.data(), sizeof(header));
  Status status = sscb1::ValidateHeader(header, file_.size());
  if (!status.ok()) return status;

  universe_size_ = static_cast<std::size_t>(header.universe_size);
  const std::size_t m = static_cast<std::size_t>(header.num_sets);
  slots_.reserve(m);

  std::size_t dense_count = 0, sparse_count = 0;
  std::vector<SetIndexEntry> entries(m);
  if (m > 0) {
    std::memcpy(entries.data(), file_.data() + header.index_offset,
                m * sizeof(SetIndexEntry));
  }
  for (std::size_t id = 0; id < m; ++id) {
    status = sscb1::ValidateIndexEntry(header, entries[id], id);
    if (!status.ok()) return status;
    (entries[id].rep == sscb1::kDense ? dense_count : sparse_count) += 1;
  }
  dense_.reserve(dense_count);
  sparse_.reserve(sparse_count);

  const std::size_t word_count = (universe_size_ + 63) / 64;
  for (std::size_t id = 0; id < m; ++id) {
    const SetIndexEntry& entry = entries[id];
    const std::byte* payload = file_.data() + entry.offset;
    if (entry.rep == sscb1::kDense) {
      const Word* words = reinterpret_cast<const Word*>(payload);
      // Tail invariant: bits beyond n must be zero, or CountSet /
      // projection results would silently include phantom elements.
      if (universe_size_ % 64 != 0 && word_count > 0) {
        const Word tail_mask = ~Word{0} << (universe_size_ % 64);
        if ((words[word_count - 1] & tail_mask) != 0) {
          return Malformed("set " + std::to_string(id) +
                           ": dense tail bits beyond the universe are set");
        }
      }
      DenseSpan span(words, universe_size_);
      if (span.CountSet() != entry.count) {
        return Malformed("set " + std::to_string(id) +
                         ": payload popcount mismatches the index count");
      }
      dense_.push_back(span);
      slots_.push_back(
          {sscb1::kDense, static_cast<std::uint32_t>(dense_.size() - 1)});
    } else {
      const ElementId* ids = reinterpret_cast<const ElementId*>(payload);
      // Sorted, unique, in-range: everything SparseSpan's O(k) operations
      // assume. Validating once here is what makes serving the payload
      // verbatim safe.
      for (std::size_t i = 0; i < entry.count; ++i) {
        if (ids[i] >= universe_size_) {
          return Malformed("set " + std::to_string(id) +
                           ": element out of range");
        }
        if (i > 0 && ids[i] <= ids[i - 1]) {
          return Malformed("set " + std::to_string(id) +
                           ": elements not strictly increasing");
        }
      }
      sparse_.push_back(SparseSpan(ids, entry.count, universe_size_));
      slots_.push_back(
          {sscb1::kSparse, static_cast<std::uint32_t>(sparse_.size() - 1)});
    }
  }
  return Status::Ok();
}

void MmapSetStream::BeginPass() {
  cursor_ = 0;
  ++passes_;
}

bool MmapSetStream::Next(StreamItem* item) {
  STREAMSC_DCHECK(passes_ > 0 && "BeginPass() before Next()");
  if (cursor_ >= slots_.size()) return false;
  const SetId id = static_cast<SetId>(cursor_++);
  item->id = id;
  item->set = set(id);
  return true;
}

SetView MmapSetStream::set(SetId id) const {
  STREAMSC_CHECK(status_.ok() && id < slots_.size(),
                 "MmapSetStream::set: invalid stream or id");
  const Slot& slot = slots_[id];
  if (slot.rep == sscb1::kDense) return SetView(dense_[slot.index]);
  return SetView(sparse_[slot.index]);
}

bool IsBinaryInstanceFile(const std::string& path) {
  // Probe before the blocking open: an ifstream open of an unfed FIFO
  // hangs forever, and format sniffing runs before any hardened reader
  // gets a look at the path.
  if (!ProbeRegularFile(path).ok()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  unsigned char magic[sizeof(sscb1::kMagic)] = {};
  in.read(reinterpret_cast<char*>(magic), sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, sscb1::kMagic, sizeof(magic)) == 0;
}

StatusOr<SetSystem> LoadBinarySetSystem(const std::string& path) {
  MmapSetStream stream(path);
  if (!stream.status().ok()) return stream.status();
  SetSystem system(stream.universe_size());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) system.AddSetFromView(item.set);
  return system;
}

}  // namespace streamsc
