#include "storage/binary_instance_writer.h"

#include <cstring>

#include "stream/stream_adapters.h"

namespace streamsc {

namespace {

using sscb1::FileHeader;
using sscb1::SetIndexEntry;

FileHeader ProvisionalHeader(std::size_t universe_size, std::size_t num_sets) {
  FileHeader header = {};
  std::memcpy(header.magic, sscb1::kMagic, sizeof(sscb1::kMagic));
  header.version = sscb1::kVersion;
  header.universe_size = universe_size;
  header.num_sets = num_sets;
  // index_offset / file_size are back-patched by Finish().
  return header;
}

}  // namespace

BinaryInstanceWriter::BinaryInstanceWriter(const std::string& path,
                                           std::size_t universe_size,
                                           std::size_t num_sets,
                                           double sparsity_threshold)
    : path_(path),
      universe_size_(universe_size),
      num_sets_(num_sets),
      sparsity_threshold_(sparsity_threshold) {
  status_ = sscb1::CheckHostEndianness();
  if (!status_.ok()) return;
  if (universe_size > sscb1::kMaxDimension || num_sets > sscb1::kMaxDimension) {
    status_ = Status::InvalidArgument(
        "sscb1: instance dimensions exceed the 2^31 format cap");
    return;
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    status_ = Status::Internal("cannot open '" + path + "' for writing");
    return;
  }
  index_.reserve(num_sets);
  const FileHeader header = ProvisionalHeader(universe_size, num_sets);
  if (!WriteBytes(&header, sizeof(header))) {
    status_ = Status::Internal("write to '" + path + "' failed");
  }
}

Status BinaryInstanceWriter::Fail(Status status) {
  status_ = std::move(status);
  return status_;
}

bool BinaryInstanceWriter::WriteBytes(const void* bytes, std::size_t count) {
  if (count == 0) return static_cast<bool>(out_);  // empty payloads/indexes
  out_.write(static_cast<const char*>(bytes),
             static_cast<std::streamsize>(count));
  offset_ += count;
  return static_cast<bool>(out_);
}

Status BinaryInstanceWriter::AddSet(SetView set) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Fail(Status::FailedPrecondition("AddSet after Finish"));
  }
  if (!set.valid() || set.size() != universe_size_) {
    return Fail(Status::InvalidArgument(
        "sscb1: set universe size mismatches the file header"));
  }
  if (index_.size() >= num_sets_) {
    return Fail(Status::FailedPrecondition(
        "sscb1: more AddSet calls than the declared set count"));
  }

  const Count count = set.CountSet();
  const bool sparse = static_cast<double>(count) <
                      sparsity_threshold_ * static_cast<double>(universe_size_);

  SetIndexEntry entry = {};
  entry.offset = offset_;
  entry.count = static_cast<std::uint32_t>(count);
  entry.rep = sparse ? sscb1::kSparse : sscb1::kDense;

  bool written = true;
  if (sparse) {
    scratch_ids_.clear();
    scratch_ids_.reserve(static_cast<std::size_t>(count));
    set.ForEach([&](ElementId e) { scratch_ids_.push_back(e); });
    if (!scratch_ids_.empty()) {
      written = WriteBytes(scratch_ids_.data(),
                           scratch_ids_.size() * sizeof(ElementId));
    }
    const std::uint64_t raw = scratch_ids_.size() * sizeof(ElementId);
    const std::uint64_t padded = sscb1::SparsePayloadBytes(count);
    if (written && padded > raw) {
      const std::uint64_t zero = 0;
      written = WriteBytes(&zero, static_cast<std::size_t>(padded - raw));
    }
  } else if (const DynamicBitset* dense = set.dense()) {
    written = WriteBytes(dense->WordData(),
                         dense->WordCount() * sizeof(DynamicBitset::Word));
  } else if (const DenseSpan* span = set.dense_span()) {
    written = WriteBytes(span->WordData(),
                         span->WordCount() * sizeof(DynamicBitset::Word));
  } else {
    // Sparse-represented set dense enough to store dense: materialize once.
    const DynamicBitset dense = set.ToDense();
    written = WriteBytes(dense.WordData(),
                         dense.WordCount() * sizeof(DynamicBitset::Word));
  }
  if (!written) {
    return Fail(Status::Internal("write to '" + path_ + "' failed"));
  }
  index_.push_back(entry);
  return status_;
}

Status BinaryInstanceWriter::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return status_;
  if (index_.size() != num_sets_) {
    return Fail(Status::FailedPrecondition(
        "sscb1: Finish after " + std::to_string(index_.size()) +
        " AddSet calls; header declares " + std::to_string(num_sets_)));
  }
  finished_ = true;

  FileHeader header = ProvisionalHeader(universe_size_, num_sets_);
  header.index_offset = offset_;
  if (!WriteBytes(index_.data(), index_.size() * sizeof(SetIndexEntry))) {
    return Fail(Status::Internal("write to '" + path_ + "' failed"));
  }
  header.file_size = offset_;

  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
  if (!out_) {
    return Fail(Status::Internal("header patch of '" + path_ + "' failed"));
  }
  out_.close();
  return status_;
}

Status BinaryInstanceWriter::WriteSystem(const SetSystem& system,
                                         const std::string& path) {
  BinaryInstanceWriter writer(path, system.universe_size(), system.num_sets());
  for (SetId id = 0; id < system.num_sets(); ++id) {
    if (!writer.AddSet(system.set(id)).ok()) break;
  }
  if (!writer.status().ok()) return writer.status();
  return writer.Finish();
}

Status BinaryInstanceWriter::TranscodeText(const std::string& text_path,
                                           const std::string& binary_path) {
  FileSetStream source(text_path);
  if (!source.status().ok()) return source.status();
  BinaryInstanceWriter writer(binary_path, source.universe_size(),
                              source.num_sets());
  if (!writer.status().ok()) return writer.status();
  source.BeginPass();
  StreamItem item;
  while (source.Next(&item)) {
    if (!writer.AddSet(item.set).ok()) return writer.status();
  }
  // A clean end-of-stream and a mid-file parse error both end the pass;
  // only the stream's status tells them apart.
  if (!source.status().ok()) return source.status();
  return writer.Finish();
}

}  // namespace streamsc
