#ifndef STREAMSC_STORAGE_INSTANCE_CACHE_H_
#define STREAMSC_STORAGE_INSTANCE_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/mmap_set_stream.h"
#include "util/status.h"

/// \file instance_cache.h
/// InstanceCache: open-once / serve-many sscb1 instances.
///
/// Opening an sscb1 file costs one full sequential validation read
/// (deliberately — see mmap_set_stream.h); a service that re-opened the
/// instance per request would pay that on every solve. The cache opens
/// and validates each path exactly once, keyed by name, and thereafter
/// hands out borrowed `const MmapSetStream*` that any number of readers
/// may share: the stream is immutable after construction, and each
/// reader streams through its own MmapStreamView cursor.
///
/// Thread safety: Add/Get/Names are mutex-guarded; the returned streams
/// are safe for concurrent use by contract (read-only + per-view
/// cursors). Cached streams live until the cache is destroyed, so views
/// and the SetViews they hand out stay valid for the cache's lifetime.

namespace streamsc {

/// A named, immutable, process-lifetime set of open instances.
class InstanceCache {
 public:
  InstanceCache() = default;

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  /// Opens and validates \p path as an sscb1 instance under \p name.
  /// Re-adding an existing name is InvalidArgument (entries are
  /// immutable); a file that fails to open or validate reports its
  /// status and caches nothing.
  Status Add(const std::string& name, const std::string& path);

  /// The cached instance registered under \p name, or NotFound. The
  /// pointer stays valid for the cache's lifetime.
  StatusOr<const MmapSetStream*> Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Number of cached instances.
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MmapSetStream>> entries_;
};

}  // namespace streamsc

#endif  // STREAMSC_STORAGE_INSTANCE_CACHE_H_
