#ifndef STREAMSC_STORAGE_INSTANCE_CACHE_H_
#define STREAMSC_STORAGE_INSTANCE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/mmap_set_stream.h"
#include "util/status.h"

/// \file instance_cache.h
/// InstanceCache: open-once / serve-many sscb1 instances, with live
/// reload.
///
/// Opening an sscb1 file costs one full sequential validation read
/// (deliberately — see mmap_set_stream.h); a service that re-opened the
/// instance per request would pay that on every solve. The cache opens
/// and validates each path exactly once per (re)load, keyed by name, and
/// hands out Snapshot handles: a shared, immutable mapping plus the
/// generation it was loaded under. Any number of readers may share one
/// snapshot's stream (read-only + per-view cursors by contract).
///
/// Reload model: Refresh() upserts a name — the new file is opened and
/// validated *outside* the lock, then swapped in under it with a fresh
/// generation; Remove() retires a name. Neither invalidates snapshots
/// already handed out: the shared_ptr keeps the old mapping alive until
/// the last in-flight reader drops it, so solves started before a reload
/// finish on the bytes they began with. Readers detect staleness by
/// comparing generations (each successful Add/Refresh gets a globally
/// unique one, so retire-then-re-add never aliases an old binding).
///
/// Thread safety: all members are mutex-guarded and safe to call
/// concurrently, including Refresh/Remove racing Get from serving
/// threads.

namespace streamsc {

/// A named, reloadable set of open instances.
class InstanceCache {
 public:
  /// One handed-out instance binding: the mapping (shared — keeps the
  /// bytes alive independent of later reloads) and the generation it was
  /// loaded under.
  struct Snapshot {
    std::shared_ptr<const MmapSetStream> stream;
    std::uint64_t generation = 0;
  };

  InstanceCache() = default;

  InstanceCache(const InstanceCache&) = delete;
  InstanceCache& operator=(const InstanceCache&) = delete;

  /// Opens and validates \p path as an sscb1 instance under \p name.
  /// Re-adding an existing name is InvalidArgument (use Refresh() to
  /// replace); a file that fails to open or validate reports its status
  /// and caches nothing.
  Status Add(const std::string& name, const std::string& path);

  /// Upserts \p name from \p path: opens and validates the file outside
  /// the lock, then swaps it in under a fresh generation (whether or not
  /// the name existed). On failure the previous entry, if any, is kept
  /// untouched — a bad reload never takes a serving instance down.
  Status Refresh(const std::string& name, const std::string& path);

  /// Retires \p name; NotFound if it is not registered. Snapshots already
  /// handed out stay valid (shared ownership).
  Status Remove(const std::string& name);

  /// The current snapshot of \p name, or NotFound. The snapshot's stream
  /// stays valid as long as the snapshot is held, across any number of
  /// later Refresh/Remove calls.
  StatusOr<Snapshot> Get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Number of cached instances.
  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const MmapSetStream> stream;
    std::uint64_t generation = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace streamsc

#endif  // STREAMSC_STORAGE_INSTANCE_CACHE_H_
