#ifndef STREAMSC_STORAGE_BINARY_INSTANCE_WRITER_H_
#define STREAMSC_STORAGE_BINARY_INSTANCE_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "instance/set_system.h"
#include "storage/binary_format.h"
#include "util/set_view.h"
#include "util/status.h"

/// \file binary_instance_writer.h
/// BinaryInstanceWriter: produces sscb1 files (storage/binary_format.h),
/// either from an in-memory SetSystem or by transcoding an ssc1 text file
/// set-by-set — the transcode path never holds more than one set in
/// memory, so multi-GB instances convert in o(mn) space.
///
/// Streaming protocol: construct with the final (n, m), call AddSet()
/// exactly m times, then Finish(). The writer streams payloads, buffers
/// only the 16-byte index entries (O(m)), appends the index at the end,
/// and back-patches the header. Errors are sticky: once any call fails,
/// every later call returns the same status and the output is not usable.

namespace streamsc {

/// Incremental sscb1 writer. Not copyable.
class BinaryInstanceWriter {
 public:
  /// Opens \p path for writing and emits a provisional header. Check
  /// status() before use. Each added set is stored dense or sparse by
  /// \p sparsity_threshold, the same rule as SetSystem.
  BinaryInstanceWriter(
      const std::string& path, std::size_t universe_size, std::size_t num_sets,
      double sparsity_threshold = SetSystem::kDefaultSparsityThreshold);

  BinaryInstanceWriter(const BinaryInstanceWriter&) = delete;
  BinaryInstanceWriter& operator=(const BinaryInstanceWriter&) = delete;

  /// Ok iff every operation so far succeeded.
  const Status& status() const { return status_; }

  /// Appends the next set's payload. The view's universe must match;
  /// returns the sticky status.
  Status AddSet(SetView set);

  /// Writes the index, patches the header, and flushes. Must be called
  /// after exactly num_sets AddSet() calls.
  Status Finish();

  /// Writes \p system to \p path in one call.
  static Status WriteSystem(const SetSystem& system, const std::string& path);

  /// Transcodes the ssc1 text file at \p text_path to an sscb1 file at
  /// \p binary_path, streaming one set at a time (never materializing the
  /// instance).
  static Status TranscodeText(const std::string& text_path,
                              const std::string& binary_path);

 private:
  // Records a failure and returns it (sticky).
  Status Fail(Status status);
  // Writes raw bytes at the current position, tracking the offset.
  bool WriteBytes(const void* bytes, std::size_t count);

  Status status_;
  std::ofstream out_;
  std::string path_;
  std::size_t universe_size_ = 0;
  std::size_t num_sets_ = 0;
  double sparsity_threshold_ = 0.0;
  std::uint64_t offset_ = 0;  // current write position
  std::vector<sscb1::SetIndexEntry> index_;
  std::vector<ElementId> scratch_ids_;  // reused per sparse payload
  bool finished_ = false;
};

}  // namespace streamsc

#endif  // STREAMSC_STORAGE_BINARY_INSTANCE_WRITER_H_
