#include "storage/instance_cache.h"

#include <utility>

namespace streamsc {

Status InstanceCache::Add(const std::string& name, const std::string& path) {
  // Open outside the lock: validation reads the whole file, and other
  // requests should keep being served while a new instance loads.
  auto stream = std::make_shared<MmapSetStream>(path);
  if (!stream->status().ok()) return stream->status();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    return Status::InvalidArgument("instance cache: name '" + name +
                                   "' is already registered");
  }
  entries_.emplace(name, Entry{std::move(stream), next_generation_++});
  return Status::Ok();
}

Status InstanceCache::Refresh(const std::string& name,
                              const std::string& path) {
  // Same open-outside-the-lock discipline as Add: a slow or failing load
  // never stalls Get(), and a failed one leaves the old entry serving.
  auto stream = std::make_shared<MmapSetStream>(path);
  if (!stream->status().ok()) return stream->status();
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[name] = Entry{std::move(stream), next_generation_++};
  return Status::Ok();
}

Status InstanceCache::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("instance cache: no instance named '" + name +
                            "'");
  }
  return Status::Ok();
}

StatusOr<InstanceCache::Snapshot> InstanceCache::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("instance cache: no instance named '" + name +
                            "'");
  }
  return Snapshot{it->second.stream, it->second.generation};
}

std::vector<std::string> InstanceCache::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::size_t InstanceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace streamsc
