#include "storage/instance_cache.h"

#include <utility>

namespace streamsc {

Status InstanceCache::Add(const std::string& name, const std::string& path) {
  // Open outside the lock: validation reads the whole file, and other
  // requests should keep being served while a new instance loads.
  auto stream = std::make_unique<MmapSetStream>(path);
  if (!stream->status().ok()) return stream->status();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(name, std::move(stream));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("instance cache: name '" + name +
                                   "' is already registered");
  }
  return Status::Ok();
}

StatusOr<const MmapSetStream*> InstanceCache::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("instance cache: no instance named '" + name +
                            "'");
  }
  return static_cast<const MmapSetStream*>(it->second.get());
}

std::vector<std::string> InstanceCache::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, stream] : entries_) names.push_back(name);
  return names;
}

std::size_t InstanceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace streamsc
