#ifndef STREAMSC_STORAGE_MMAP_SET_STREAM_H_
#define STREAMSC_STORAGE_MMAP_SET_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "instance/set_system.h"
#include "storage/binary_format.h"
#include "storage/mmap_file.h"
#include "stream/set_stream.h"
#include "util/set_span.h"
#include "util/status.h"

/// \file mmap_set_stream.h
/// MmapSetStream: a multi-pass SetStream over an sscb1 file, serving each
/// set as a zero-copy SetView (DenseSpan / SparseSpan) directly over the
/// read-only mapping. Compared to FileSetStream this changes the cost
/// model completely:
///
///   * a pass costs zero parsing — BeginPass() is a cursor reset, and a
///     set's bytes are only touched when the algorithm reads them;
///   * ItemsRemainValid() is true — views stay valid for the stream's
///     whole lifetime, so DrainPass / ParallelPassEngine can buffer and
///     shard a disk-resident pass across workers;
///   * resident memory is O(m) span bookkeeping plus whatever pages the
///     OS keeps warm — never O(mn), preserving the streaming model's
///     honesty at multi-GB scale.
///
/// The whole file structure (header, index, every payload's bounds, sparse
/// sortedness, dense tail bits) is validated once at construction; after
/// an Ok status() no later operation can read out of bounds, so a corrupt
/// or truncated file is rejected up front instead of aborting mid-pass.
/// That validation is one sequential read of the file — a deliberate
/// trade: open costs O(file) once (still far cheaper than a single text
/// parse, and it doubles as page-cache warmup), and in exchange the
/// per-pass hot paths can serve payloads verbatim with no checks at all.

namespace streamsc {

/// A SetStream over an sscb1 file. Move-constructible via the usual
/// pattern of constructing in place; not copyable (owns the mapping).
class MmapSetStream : public SetStream {
 public:
  /// Maps \p path and validates it eagerly; check status() before
  /// streaming. An error status leaves an empty stream (0 sets).
  explicit MmapSetStream(const std::string& path);

  MmapSetStream(const MmapSetStream&) = delete;
  MmapSetStream& operator=(const MmapSetStream&) = delete;

  /// Ok iff the file mapped and validated end to end.
  const Status& status() const { return status_; }

  std::size_t universe_size() const override { return universe_size_; }
  std::size_t num_sets() const override { return slots_.size(); }
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  /// Views borrow the mapping, which lives as long as the stream: a
  /// buffered pass (DrainPass / ParallelPassEngine) is safe.
  bool ItemsRemainValid() const override { return true; }

  /// Random access to the \p id-th set (the index makes this O(1) — a
  /// capability FileSetStream fundamentally lacks). Precondition:
  /// status().ok() and id < num_sets().
  SetView set(SetId id) const;

  /// Number of sets stored sparsely (for tooling/info output).
  std::size_t sparse_sets() const { return sparse_.size(); }

  /// Mapped file size in bytes.
  std::uint64_t file_bytes() const { return file_.size(); }

 private:
  // Validates everything and builds the span tables.
  Status Load(const std::string& path);

  struct Slot {
    sscb1::Rep rep;
    std::uint32_t index;  // into dense_ or sparse_
  };

  Status status_;
  MmapFile file_;
  std::size_t universe_size_ = 0;
  std::vector<Slot> slots_;
  std::vector<DenseSpan> dense_;
  std::vector<SparseSpan> sparse_;
  std::size_t cursor_ = 0;
  std::uint64_t passes_ = 0;
};

/// An independent cursor over a shared, already-validated MmapSetStream.
///
/// MmapSetStream is read-only after construction except for its pass
/// cursor — which is exactly what stops one validated mapping from
/// serving many concurrent readers. MmapStreamView splits the cursor out:
/// each view carries its own cursor/pass state and reads sets through the
/// shared stream's O(1) random access, so N views over one stream can
/// stream passes concurrently with zero additional validation, mapping,
/// or payload copies. This is the open-once / serve-many shape the solve
/// daemon's instance cache hands to its worker slots.
///
/// The underlying stream is borrowed and must outlive every view; its
/// own BeginPass()/Next() cursor is never touched by views.
class MmapStreamView : public SetStream {
 public:
  /// Views \p stream, which must have an Ok status() and must outlive
  /// this view.
  explicit MmapStreamView(const MmapSetStream& stream) : stream_(stream) {}

  std::size_t universe_size() const override {
    return stream_.universe_size();
  }
  std::size_t num_sets() const override { return stream_.num_sets(); }
  void BeginPass() override {
    cursor_ = 0;
    ++passes_;
  }
  bool Next(StreamItem* item) override {
    if (cursor_ >= stream_.num_sets()) return false;
    const SetId id = static_cast<SetId>(cursor_++);
    item->id = id;
    item->set = stream_.set(id);
    return true;
  }
  std::uint64_t passes() const override { return passes_; }
  /// Views borrow the shared mapping, which outlives the view by
  /// contract: buffered/sharded passes are safe.
  bool ItemsRemainValid() const override { return true; }

 private:
  const MmapSetStream& stream_;
  std::size_t cursor_ = 0;
  std::uint64_t passes_ = 0;
};

/// True iff \p path starts with the sscb1 magic (cheap format sniff for
/// tools that accept both text and binary instances).
bool IsBinaryInstanceFile(const std::string& path);

/// Reads an sscb1 file into an in-memory SetSystem (for tool paths that
/// need the offline solvers). The inverse of BinaryInstanceWriter::
/// WriteSystem up to representation choices.
StatusOr<SetSystem> LoadBinarySetSystem(const std::string& path);

}  // namespace streamsc

#endif  // STREAMSC_STORAGE_MMAP_SET_STREAM_H_
