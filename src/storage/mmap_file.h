#ifndef STREAMSC_STORAGE_MMAP_FILE_H_
#define STREAMSC_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file mmap_file.h
/// MmapFile: a read-only, whole-file memory mapping with RAII lifetime.
///
/// On POSIX hosts the file is mmap'd PROT_READ/MAP_PRIVATE and the
/// descriptor is closed immediately (the mapping keeps the pages alive);
/// mapping itself costs O(1) and the OS pages bytes in on demand and can
/// evict them under pressure, so resident memory tracks what the caller
/// actually touches (MmapSetStream touches everything once up front to
/// validate, then only what the algorithm reads). On hosts without mmap
/// the class degrades to reading the whole file into a heap buffer — same
/// API, no zero-copy or paging claim. Either way data() stays valid and
/// immutable until destruction, which is what lets MmapSetStream hand out
/// SetViews that survive a whole pass.

namespace streamsc {

/// A read-only byte view of an entire file. Move-only.
class MmapFile {
 public:
  /// An empty (unopened) file; data() is null, size() is 0.
  MmapFile() = default;

  /// Maps \p path read-only. NotFound if the file cannot be opened,
  /// InvalidArgument if the path is not a regular file (a FIFO, directory,
  /// device node, or socket — rejected up front, without blocking, rather
  /// than hanging or failing later with a confusing mmap error), Internal
  /// on stat/map failures. Empty files map successfully with size() == 0.
  /// The descriptor is opened O_CLOEXEC and closed before returning, so a
  /// successful Open leaves the fd table exactly as it found it.
  static StatusOr<MmapFile> Open(const std::string& path);

  ~MmapFile() { Reset(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// First mapped byte; nullptr iff unopened or empty.
  const std::byte* data() const { return data_; }

  /// Mapped byte count.
  std::size_t size() const { return size_; }

  /// True iff a file is mapped (possibly empty).
  bool mapped() const { return mapped_; }

 private:
  // Unmaps / frees and returns to the empty state.
  void Reset();

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool owns_mapping_ = false;        // true: munmap on destruction
  std::vector<std::byte> fallback_;  // non-POSIX read-whole-file path
};

}  // namespace streamsc

#endif  // STREAMSC_STORAGE_MMAP_FILE_H_
