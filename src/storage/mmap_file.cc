#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define STREAMSC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STREAMSC_HAVE_MMAP 0
#include <fstream>
#endif

namespace streamsc {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    owns_mapping_ = std::exchange(other.owns_mapping_, false);
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) data_ = fallback_.data();
  }
  return *this;
}

void MmapFile::Reset() {
#if STREAMSC_HAVE_MMAP
  if (owns_mapping_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owns_mapping_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

#if STREAMSC_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  // O_NONBLOCK makes opening a FIFO with no writer return immediately
  // instead of blocking this thread forever (a daemon handed a FIFO path
  // must reject it, not hang); O_CLOEXEC keeps the descriptor out of any
  // fork/exec'd child during the open window. Both flags are cleared from
  // the file's semantics below: the fd is read via mmap only and closed
  // before returning.
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_NONBLOCK);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal("fstat('" + path + "') failed: " +
                                           std::strerror(errno));
    ::close(fd);
    return status;
  }
  // Only regular files can be mapped: a directory would fail later with a
  // confusing mmap/read error, and a FIFO or device node has no stable
  // byte range at all. Say what the path actually is.
  if (!S_ISREG(st.st_mode)) {
    const char* what = S_ISDIR(st.st_mode)    ? "a directory"
                       : S_ISFIFO(st.st_mode) ? "a FIFO"
                       : S_ISCHR(st.st_mode)  ? "a character device"
                       : S_ISBLK(st.st_mode)  ? "a block device"
                       : S_ISSOCK(st.st_mode) ? "a socket"
                                              : "not a regular file";
    const Status status = Status::InvalidArgument(
        "cannot map '" + path + "': it is " + what +
        " (only regular files can be memory-mapped)");
    ::close(fd);
    return status;
  }
  // Drop O_NONBLOCK now that the probe is done — mmap of a regular file
  // never blocks, but keep the descriptor's semantics conventional.
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  MmapFile file;
  file.mapped_ = true;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Status::Internal("mmap('" + path + "') failed: " +
                                             std::strerror(errno));
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const std::byte*>(addr);
    file.owns_mapping_ = true;
  }
  // The mapping holds its own reference to the pages; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

#else  // !STREAMSC_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  const std::streamoff end = in.tellg();
  MmapFile file;
  file.mapped_ = true;
  file.fallback_.resize(static_cast<std::size_t>(end));
  if (end > 0) {
    in.seekg(0);
    if (!in.read(reinterpret_cast<char*>(file.fallback_.data()), end)) {
      return Status::Internal("read of '" + path + "' failed");
    }
    file.data_ = file.fallback_.data();
    file.size_ = file.fallback_.size();
  }
  return file;
}

#endif  // STREAMSC_HAVE_MMAP

}  // namespace streamsc
