#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define STREAMSC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STREAMSC_HAVE_MMAP 0
#include <fstream>
#endif

namespace streamsc {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    owns_mapping_ = std::exchange(other.owns_mapping_, false);
    fallback_ = std::move(other.fallback_);
    if (!fallback_.empty()) data_ = fallback_.data();
  }
  return *this;
}

void MmapFile::Reset() {
#if STREAMSC_HAVE_MMAP
  if (owns_mapping_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owns_mapping_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

#if STREAMSC_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::Internal("fstat('" + path + "') failed: " +
                                           std::strerror(errno));
    ::close(fd);
    return status;
  }
  MmapFile file;
  file.mapped_ = true;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Status::Internal("mmap('" + path + "') failed: " +
                                             std::strerror(errno));
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const std::byte*>(addr);
    file.owns_mapping_ = true;
  }
  // The mapping holds its own reference to the pages; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

#else  // !STREAMSC_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  const std::streamoff end = in.tellg();
  MmapFile file;
  file.mapped_ = true;
  file.fallback_.resize(static_cast<std::size_t>(end));
  if (end > 0) {
    in.seekg(0);
    if (!in.read(reinterpret_cast<char*>(file.fallback_.data()), end)) {
      return Status::Internal("read of '" + path + "' failed");
    }
    file.data_ = file.fallback_.data();
    file.size_ = file.fallback_.size();
  }
  return file;
}

#endif  // STREAMSC_HAVE_MMAP

}  // namespace streamsc
