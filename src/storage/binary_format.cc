#include "storage/binary_format.h"

#include <bit>
#include <cstring>
#include <string>

namespace streamsc {
namespace sscb1 {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("sscb1: " + what);
}

}  // namespace

Status CheckHostEndianness() {
  if constexpr (std::endian::native == std::endian::little) {
    return Status::Ok();
  }
  return Status::FailedPrecondition(
      "sscb1 is a little-endian in-place format; this host is big-endian");
}

Status ValidateHeader(const FileHeader& header, std::uint64_t actual_size) {
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Malformed("bad magic (not an sscb1 file)");
  }
  if (header.version != kVersion) {
    return Malformed("unsupported version " + std::to_string(header.version));
  }
  if (header.reserved != 0) return Malformed("nonzero reserved header field");
  if (header.universe_size > kMaxDimension ||
      header.num_sets > kMaxDimension) {
    return Malformed("header dimensions exceed 2^31");
  }
  if (header.file_size != actual_size) {
    return Malformed("file size mismatch: header says " +
                     std::to_string(header.file_size) + " bytes, file has " +
                     std::to_string(actual_size) + " (truncated or modified)");
  }
  const std::uint64_t index_bytes = header.num_sets * sizeof(SetIndexEntry);
  if (header.index_offset < sizeof(FileHeader) ||
      header.index_offset % kPayloadAlign != 0 ||
      header.index_offset > actual_size ||
      actual_size - header.index_offset != index_bytes) {
    return Malformed("index placement invalid (truncated index?)");
  }
  return Status::Ok();
}

Status ValidateIndexEntry(const FileHeader& header, const SetIndexEntry& entry,
                          std::size_t set_id) {
  const std::string where = "set " + std::to_string(set_id) + ": ";
  if (entry.rep != kDense && entry.rep != kSparse) {
    return Malformed(where + "unknown representation tag " +
                     std::to_string(entry.rep));
  }
  if (entry.reserved != 0) {
    return Malformed(where + "nonzero reserved index field");
  }
  if (entry.count > header.universe_size) {
    return Malformed(where + "count exceeds universe size");
  }
  if (entry.offset % kPayloadAlign != 0) {
    return Malformed(where + "payload offset not 8-byte aligned");
  }
  const std::uint64_t payload_bytes =
      entry.rep == kDense ? DensePayloadBytes(header.universe_size)
                          : SparsePayloadBytes(entry.count);
  if (entry.offset < sizeof(FileHeader) ||
      entry.offset > header.index_offset ||
      header.index_offset - entry.offset < payload_bytes) {
    return Malformed(where + "payload out of range");
  }
  return Status::Ok();
}

}  // namespace sscb1
}  // namespace streamsc
