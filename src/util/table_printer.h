#ifndef STREAMSC_UTIL_TABLE_PRINTER_H_
#define STREAMSC_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table_printer.h
/// Aligned plain-text table rendering for the benchmark harness. Every
/// experiment binary prints its results as one or more of these tables so
/// that EXPERIMENTS.md rows can be regenerated mechanically.

namespace streamsc {

/// Collects rows of string/number cells and renders an aligned table.
class TablePrinter {
 public:
  /// Creates a table with the given column \p headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new (empty) row.
  void BeginRow();

  /// Appends a cell to the current row.
  void AddCell(const std::string& value);
  void AddCell(const char* value);
  void AddCell(std::uint64_t value);
  void AddCell(std::int64_t value);
  void AddCell(int value);
  /// Doubles are rendered with \p precision significant decimals.
  void AddCell(double value, int precision = 4);

  /// Number of data rows added so far.
  std::size_t NumRows() const { return rows_.size(); }

  /// Renders the table (headers, rule, rows) to \p os.
  void Print(std::ostream& os) const;

  /// Renders with a "== title ==" banner above the table.
  void PrintWithTitle(std::ostream& os, const std::string& title) const;

  /// Renders as comma-separated values (headers then rows).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as a human-readable string ("1.5 KiB").
std::string HumanBytes(std::uint64_t bytes);

}  // namespace streamsc

#endif  // STREAMSC_UTIL_TABLE_PRINTER_H_
