#ifndef STREAMSC_UTIL_CHECK_H_
#define STREAMSC_UTIL_CHECK_H_

/// \file check.h
/// STREAMSC_CHECK / STREAMSC_DCHECK: the project's only invariant macros.
///
/// `assert` compiles out under NDEBUG, which turns precondition violations
/// into silent memory corruption in release builds (the builds every bench
/// and production caller actually runs). STREAMSC_CHECK stays armed in all
/// build modes: on failure it prints the location, the failed expression,
/// and a caller-supplied message to stderr, then aborts. Use it for
/// API-boundary preconditions (caller bugs).
///
/// For hot-loop internal invariants where the release-mode branch cost
/// matters, use STREAMSC_DCHECK: like assert it vanishes under NDEBUG
/// (the condition is not evaluated), but in debug builds it funnels
/// through the same located CheckFailed diagnostic. Raw `assert(` is
/// banned in src/ — scripts/lint_streamsc.py enforces the policy — so
/// that the debug-only/always-armed decision is always explicit at the
/// call site.

namespace streamsc {
namespace internal {

/// Prints the diagnostic and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message);

}  // namespace internal
}  // namespace streamsc

/// Aborts with a diagnostic unless \p condition holds. Always armed.
#define STREAMSC_CHECK(condition, message)                                \
  (static_cast<bool>(condition)                                           \
       ? static_cast<void>(0)                                             \
       : ::streamsc::internal::CheckFailed(__FILE__, __LINE__,            \
                                           #condition, (message)))

/// Debug-only invariant: compiles to nothing under NDEBUG (the condition
/// is NOT evaluated — do not put side effects in it). Use for hot-loop
/// internal invariants; use STREAMSC_CHECK for API-boundary
/// preconditions. An `&& "explanation"` inside the condition shows up in
/// the printed expression, mirroring the assert idiom.
#ifdef NDEBUG
#define STREAMSC_DCHECK(condition) static_cast<void>(0)
#else
#define STREAMSC_DCHECK(condition)                                        \
  STREAMSC_CHECK(condition, "debug-only invariant (STREAMSC_DCHECK)")
#endif

#endif  // STREAMSC_UTIL_CHECK_H_
