#ifndef STREAMSC_UTIL_CHECK_H_
#define STREAMSC_UTIL_CHECK_H_

/// \file check.h
/// STREAMSC_CHECK: release-mode invariant enforcement.
///
/// `assert` compiles out under NDEBUG, which turns precondition violations
/// into silent memory corruption in release builds (the builds every bench
/// and production caller actually runs). STREAMSC_CHECK stays armed in all
/// build modes: on failure it prints the location, the failed expression,
/// and a caller-supplied message to stderr, then aborts. Use it for
/// API-boundary preconditions (caller bugs); keep `assert` for hot-loop
/// internal invariants where the branch cost matters.

namespace streamsc {
namespace internal {

/// Prints the diagnostic and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message);

}  // namespace internal
}  // namespace streamsc

/// Aborts with a diagnostic unless \p condition holds. Always armed.
#define STREAMSC_CHECK(condition, message)                                \
  (static_cast<bool>(condition)                                           \
       ? static_cast<void>(0)                                             \
       : ::streamsc::internal::CheckFailed(__FILE__, __LINE__,            \
                                           #condition, (message)))

#endif  // STREAMSC_UTIL_CHECK_H_
