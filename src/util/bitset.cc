#include "util/bitset.h"
#include "util/check.h"

#include <algorithm>
#include <bit>

namespace streamsc {

DynamicBitset DynamicBitset::FromIndices(std::size_t size,
                                         std::span<const ElementId> indices,
                                         Allocator alloc) {
  DynamicBitset bs(size, alloc);
  for (ElementId i : indices) bs.Set(i);
  return bs;
}

DynamicBitset DynamicBitset::Full(std::size_t size, Allocator alloc) {
  DynamicBitset bs(size, alloc);
  bs.Fill();
  return bs;
}

void DynamicBitset::Clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::Fill() {
  std::fill(words_.begin(), words_.end(), ~Word{0});
  TrimTail();
}

Count DynamicBitset::CountSet() const {
  Count total = 0;
  for (Word w : words_) total += static_cast<Count>(std::popcount(w));
  return total;
}

bool DynamicBitset::None() const {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  STREAMSC_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  STREAMSC_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::AndNot(const DynamicBitset& other) {
  STREAMSC_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

void DynamicBitset::Complement() {
  for (Word& w : words_) w = ~w;
  TrimTail();
}

DynamicBitset DynamicBitset::Difference(const DynamicBitset& other) const {
  DynamicBitset out = *this;
  out.AndNot(other);
  return out;
}

Count DynamicBitset::CountAnd(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size_);
  Count total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<Count>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

Count DynamicBitset::CountAndNot(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size_);
  Count total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<Count>(std::popcount(words_[i] & ~other.words_[i]));
  }
  return total;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

ElementId DynamicBitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<ElementId>(w * kBitsPerWord +
                                    std::countr_zero(words_[w]));
    }
  }
  return kInvalidElementId;
}

ElementId DynamicBitset::FindNext(std::size_t i) const {
  if (i + 1 >= size_) return kInvalidElementId;
  std::size_t start = i + 1;
  std::size_t w = start / kBitsPerWord;
  Word word = words_[w] & (~Word{0} << (start % kBitsPerWord));
  while (true) {
    if (word != 0) {
      return static_cast<ElementId>(w * kBitsPerWord + std::countr_zero(word));
    }
    ++w;
    if (w >= words_.size()) return kInvalidElementId;
    word = words_[w];
  }
}

std::vector<ElementId> DynamicBitset::ToIndices() const {
  std::vector<ElementId> out;
  out.reserve(static_cast<std::size_t>(CountSet()));
  ForEach([&out](ElementId e) { out.push_back(e); });
  return out;
}

Count DynamicBitset::HammingDistance(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size_);
  Count total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<Count>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](ElementId e) {
    if (!first) out += ", ";
    out += std::to_string(e);
    first = false;
  });
  out += "}";
  return out;
}

std::uint64_t DynamicBitset::Hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (Word w : words_) {
    h ^= w;
    h *= 1099511628211ull;  // FNV prime.
  }
  h ^= size_;
  h *= 1099511628211ull;
  return h;
}

void DynamicBitset::TrimTail() {
  const std::size_t tail = size_ % kBitsPerWord;
  if (!words_.empty() && tail != 0) {
    words_.back() &= (Word{1} << tail) - 1;
  }
}

}  // namespace streamsc
