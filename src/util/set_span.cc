#include "util/check.h"
#include "util/set_span.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace streamsc {
namespace {

using Word = DynamicBitset::Word;

std::string RenderIndices(const std::vector<ElementId>& ids) {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ", ";
    out << ids[i];
  }
  out << '}';
  return out.str();
}

}  // namespace

// ---- DenseSpan -------------------------------------------------------------

Count DenseSpan::CountSet() const {
  Count total = 0;
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) total += std::popcount(words_[w]);
  return total;
}

bool DenseSpan::None() const {
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) {
    if (words_[w] != 0) return false;
  }
  return true;
}

Count DenseSpan::CountAnd(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  Count total = 0;
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) {
    total += std::popcount(words_[w] & other.GetWord(w));
  }
  return total;
}

Count DenseSpan::CountAndNot(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  Count total = 0;
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) {
    total += std::popcount(words_[w] & ~other.GetWord(w));
  }
  return total;
}

bool DenseSpan::Intersects(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) {
    if ((words_[w] & other.GetWord(w)) != 0) return true;
  }
  return false;
}

bool DenseSpan::IsSubsetOf(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) {
    if ((words_[w] & ~other.GetWord(w)) != 0) return false;
  }
  return true;
}

void DenseSpan::AndNotInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(target.size() == size_);
  const std::size_t words = WordCount();
  // Target tail bits are already zero, so ANDing with ~word keeps them so.
  for (std::size_t w = 0; w < words; ++w) target.AndWord(w, ~words_[w]);
}

void DenseSpan::OrInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(target.size() == size_);
  const std::size_t words = WordCount();
  // The span's tail invariant (no bits beyond size()) carries over.
  for (std::size_t w = 0; w < words; ++w) target.OrWord(w, words_[w]);
}

DynamicBitset DenseSpan::ToBitset() const {
  DynamicBitset out(size_);
  const std::size_t words = WordCount();
  for (std::size_t w = 0; w < words; ++w) out.OrWord(w, words_[w]);
  return out;
}

std::vector<ElementId> DenseSpan::ToIndices() const {
  std::vector<ElementId> out;
  out.reserve(static_cast<std::size_t>(CountSet()));
  ForEach([&](ElementId e) { out.push_back(e); });
  return out;
}

std::string DenseSpan::ToString() const { return RenderIndices(ToIndices()); }

// ---- SparseSpan ------------------------------------------------------------

bool SparseSpan::Test(std::size_t i) const {
  STREAMSC_DCHECK(i < size_);
  return std::binary_search(elements_, elements_ + count_,
                            static_cast<ElementId>(i));
}

Count SparseSpan::CountAnd(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  Count total = 0;
  for (std::size_t i = 0; i < count_; ++i) total += other.Test(elements_[i]);
  return total;
}

Count SparseSpan::CountAndNot(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  Count total = 0;
  for (std::size_t i = 0; i < count_; ++i) total += !other.Test(elements_[i]);
  return total;
}

bool SparseSpan::Intersects(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  for (std::size_t i = 0; i < count_; ++i) {
    if (other.Test(elements_[i])) return true;
  }
  return false;
}

bool SparseSpan::IsSubsetOf(const DynamicBitset& other) const {
  STREAMSC_DCHECK(other.size() == size_);
  for (std::size_t i = 0; i < count_; ++i) {
    if (!other.Test(elements_[i])) return false;
  }
  return true;
}

void SparseSpan::AndNotInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(target.size() == size_);
  for (std::size_t i = 0; i < count_; ++i) target.Reset(elements_[i]);
}

void SparseSpan::OrInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(target.size() == size_);
  for (std::size_t i = 0; i < count_; ++i) target.Set(elements_[i]);
}

DynamicBitset SparseSpan::ToBitset() const {
  DynamicBitset out(size_);
  for (std::size_t i = 0; i < count_; ++i) out.Set(elements_[i]);
  return out;
}

std::string SparseSpan::ToString() const { return RenderIndices(ToIndices()); }

}  // namespace streamsc
