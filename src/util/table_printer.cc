#include "util/check.h"
#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace streamsc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::BeginRow() { rows_.emplace_back(); }

void TablePrinter::AddCell(const std::string& value) {
  STREAMSC_DCHECK(!rows_.empty() && "call BeginRow() first");
  rows_.back().push_back(value);
}

void TablePrinter::AddCell(const char* value) { AddCell(std::string(value)); }

void TablePrinter::AddCell(std::uint64_t value) {
  AddCell(std::to_string(value));
}

void TablePrinter::AddCell(std::int64_t value) {
  AddCell(std::to_string(value));
}

void TablePrinter::AddCell(int value) { AddCell(std::to_string(value)); }

void TablePrinter::AddCell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  AddCell(std::string(buf));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintWithTitle(std::ostream& os,
                                  const std::string& title) const {
  os << "\n== " << title << " ==\n";
  Print(os);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string HumanBytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return std::string(buf);
}

}  // namespace streamsc
