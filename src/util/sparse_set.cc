#include "util/sparse_set.h"

#include <algorithm>

#include "util/check.h"

namespace streamsc {

SparseSet SparseSet::FromIndices(std::size_t universe_size,
                                 ArenaVector<ElementId> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  // Sortedness/uniqueness hold by construction; only the range needs a
  // check, and after sorting one back() probe covers every element.
  STREAMSC_CHECK(indices.empty() || indices.back() < universe_size,
                 "SparseSet element id outside the universe");
  SparseSet out(universe_size);
  out.elements_ = std::move(indices);
  return out;
}

SparseSet SparseSet::FromIndices(std::size_t universe_size,
                                 std::span<const ElementId> indices,
                                 Allocator alloc) {
  return FromIndices(universe_size,
                     ArenaVector<ElementId>(indices.begin(), indices.end(),
                                            alloc));
}

SparseSet SparseSet::FromSortedIndices(std::size_t universe_size,
                                       ArenaVector<ElementId> indices) {
  STREAMSC_CHECK(
      std::is_sorted(indices.begin(), indices.end()) &&
          std::adjacent_find(indices.begin(), indices.end()) == indices.end(),
      "SparseSet indices must be sorted and duplicate-free");
  STREAMSC_CHECK(indices.empty() || indices.back() < universe_size,
                 "SparseSet element id outside the universe");
  SparseSet out(universe_size);
  out.elements_ = std::move(indices);
  return out;
}

SparseSet SparseSet::FromSortedIndicesUnchecked(
    std::size_t universe_size, ArenaVector<ElementId> indices) {
  STREAMSC_DCHECK(std::is_sorted(indices.begin(), indices.end()) &&
         std::adjacent_find(indices.begin(), indices.end()) == indices.end());
  STREAMSC_DCHECK(indices.empty() || indices.back() < universe_size);
  SparseSet out(universe_size);
  out.elements_ = std::move(indices);
  return out;
}

SparseSet SparseSet::FromBitset(const DynamicBitset& dense, Allocator alloc) {
  SparseSet out(dense.size(), alloc);
  out.elements_.reserve(static_cast<std::size_t>(dense.CountSet()));
  dense.ForEach([&out](ElementId e) { out.elements_.push_back(e); });
  return out;
}

DynamicBitset SparseSet::ToBitset(DynamicBitset::Allocator alloc) const {
  DynamicBitset out(size_, alloc);
  for (ElementId e : elements_) out.Set(e);
  return out;
}

bool SparseSet::Test(std::size_t i) const {
  STREAMSC_DCHECK(i < size_);
  return std::binary_search(elements_.begin(), elements_.end(),
                            static_cast<ElementId>(i));
}

Count SparseSet::CountAnd(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size());
  Count total = 0;
  for (ElementId e : elements_) total += other.Test(e) ? 1 : 0;
  return total;
}

Count SparseSet::CountAndNot(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size());
  Count total = 0;
  for (ElementId e : elements_) total += other.Test(e) ? 0 : 1;
  return total;
}

bool SparseSet::Intersects(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size());
  for (ElementId e : elements_) {
    if (other.Test(e)) return true;
  }
  return false;
}

bool SparseSet::IsSubsetOf(const DynamicBitset& other) const {
  STREAMSC_DCHECK(size_ == other.size());
  for (ElementId e : elements_) {
    if (!other.Test(e)) return false;
  }
  return true;
}

void SparseSet::AndNotInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(size_ == target.size());
  for (ElementId e : elements_) target.Reset(e);
}

void SparseSet::OrInto(DynamicBitset& target) const {
  STREAMSC_DCHECK(size_ == target.size());
  for (ElementId e : elements_) target.Set(e);
}

std::string SparseSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (ElementId e : elements_) {
    if (!first) out += ", ";
    out += std::to_string(e);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace streamsc
