#include "util/check.h"
#include "util/space_meter.h"

#include <algorithm>

namespace streamsc {

void SpaceMeter::Charge(Bytes bytes, const std::string& category) {
  current_ += bytes;
  categories_[category] += bytes;
  peak_ = std::max(peak_, current_);
}

void SpaceMeter::Release(Bytes bytes, const std::string& category) {
  Bytes& cat = categories_[category];
  STREAMSC_DCHECK(bytes <= cat && "releasing more than charged in category");
  STREAMSC_DCHECK(bytes <= current_ && "releasing more than charged in total");
  const Bytes clamped = std::min({bytes, cat, current_});
  cat -= clamped;
  current_ -= clamped;
}

void SpaceMeter::SetCategory(Bytes bytes, const std::string& category) {
  const Bytes cur = categories_[category];
  if (bytes >= cur) {
    Charge(bytes - cur, category);
  } else {
    Release(cur - bytes, category);
  }
}

Bytes SpaceMeter::CategoryCurrent(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second;
}

void SpaceMeter::Reset() {
  current_ = 0;
  peak_ = 0;
  categories_.clear();
}

}  // namespace streamsc
