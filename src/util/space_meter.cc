#include "util/space_meter.h"

#include <algorithm>
#include <mutex>

#include "util/check.h"

namespace streamsc {
namespace {

/// Process-wide category registry. Never shrinks; names are stable for
/// the process lifetime, so SpaceCategory::name() views stay valid.
struct CategoryRegistry {
  std::mutex mu;
  std::array<std::string, kMaxSpaceCategories> names;
  std::size_t count = 0;
};

CategoryRegistry& Registry() {
  static CategoryRegistry* const kRegistry = new CategoryRegistry();
  return *kRegistry;
}

}  // namespace

SpaceCategory::SpaceCategory(std::string_view name) {
  CategoryRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (std::size_t i = 0; i < registry.count; ++i) {
    if (registry.names[i] == name) {
      index_ = i;
      return;
    }
  }
  STREAMSC_CHECK(registry.count < kMaxSpaceCategories,
                 "SpaceCategory: more than kMaxSpaceCategories distinct "
                 "category names — categories are hand-written labels; a "
                 "data-driven name here is a bug");
  registry.names[registry.count] = std::string(name);
  index_ = registry.count++;
}

std::string_view SpaceCategory::name() const {
  // No lock: the slot was written before this handle existed and names
  // are never mutated afterwards.
  return Registry().names[index_];
}

void SpaceMeter::Charge(Bytes bytes, SpaceCategory category) {
  current_ += bytes;
  categories_[category.index()] += bytes;
  peak_ = std::max(peak_, current_);
}

void SpaceMeter::Release(Bytes bytes, SpaceCategory category) {
  Bytes& cat = categories_[category.index()];
  STREAMSC_DCHECK(bytes <= cat && "releasing more than charged in category");
  STREAMSC_DCHECK(bytes <= current_ && "releasing more than charged in total");
  const Bytes clamped = std::min({bytes, cat, current_});
  cat -= clamped;
  current_ -= clamped;
}

void SpaceMeter::SetCategory(Bytes bytes, SpaceCategory category) {
  const Bytes cur = categories_[category.index()];
  if (bytes >= cur) {
    Charge(bytes - cur, category);
  } else {
    Release(cur - bytes, category);
  }
}

void SpaceMeter::Reset() {
  current_ = 0;
  peak_ = 0;
  categories_.fill(0);
}

}  // namespace streamsc
