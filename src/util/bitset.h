#ifndef STREAMSC_UTIL_BITSET_H_
#define STREAMSC_UTIL_BITSET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/check.h"
#include "util/common.h"

/// \file bitset.h
/// DynamicBitset: a fixed-universe bit vector used to represent subsets of
/// the universe [n]. This is the core data representation for sets in the
/// set cover / maximum coverage machinery, so it favours tight loops
/// (popcount-based counting, word-wise boolean algebra) over generality.

namespace streamsc {

/// A set over a fixed universe {0, ..., size()-1}, stored as packed bits.
///
/// Copyable and movable. All binary operations require equal sizes
/// (checked with assert in debug builds).
///
/// Storage is arena-aware: every constructor takes an optional
/// ArenaAllocator, so per-run temporaries bump-allocate while
/// default-constructed bitsets keep heap semantics. Moves carry the arena
/// with the buffer; plain copies land on the heap (re-home explicitly via
/// the clone constructor).
class DynamicBitset {
 public:
  using Word = std::uint64_t;
  using Allocator = ArenaAllocator<Word>;
  static constexpr std::size_t kBitsPerWord = 64;

  /// Creates an empty (all-zero) set over a universe of \p size elements.
  explicit DynamicBitset(std::size_t size = 0, Allocator alloc = {})
      : size_(size),
        words_((size + kBitsPerWord - 1) / kBitsPerWord, 0, alloc) {}

  /// Clone with an explicit allocator (the re-homing copy: arena -> arena,
  /// arena -> heap, heap -> arena are all spelled the same way).
  DynamicBitset(const DynamicBitset& other, Allocator alloc)
      : size_(other.size_),
        words_(other.words_.begin(), other.words_.end(), alloc) {}

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) noexcept = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  /// Builds a set over [size) containing exactly \p indices.
  static DynamicBitset FromIndices(std::size_t size,
                                   std::span<const ElementId> indices,
                                   Allocator alloc = {});

  /// Builds the full set {0, ..., size-1}.
  static DynamicBitset Full(std::size_t size, Allocator alloc = {});

  /// The allocator backing the words (heap-bound when default-built).
  Allocator get_allocator() const { return words_.get_allocator(); }

  /// Universe size (number of addressable bits).
  std::size_t size() const { return size_; }

  /// True iff the universe is empty (size() == 0).
  bool empty_universe() const { return size_ == 0; }

  /// Inserts element \p i.
  void Set(std::size_t i) {
    STREAMSC_DCHECK(i < size_);
    words_[i / kBitsPerWord] |= Word{1} << (i % kBitsPerWord);
  }

  /// Removes element \p i.
  void Reset(std::size_t i) {
    STREAMSC_DCHECK(i < size_);
    words_[i / kBitsPerWord] &= ~(Word{1} << (i % kBitsPerWord));
  }

  /// Membership test.
  bool Test(std::size_t i) const {
    STREAMSC_DCHECK(i < size_);
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
  }

  /// Removes all elements.
  void Clear();

  /// Inserts every universe element.
  void Fill();

  /// Number of elements in the set (popcount).
  Count CountSet() const;

  /// True iff the set is empty.
  bool None() const;

  /// True iff the set equals the whole universe.
  bool All() const { return CountSet() == size_; }

  /// In-place union: *this |= other.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// In-place intersection: *this &= other.
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// In-place difference: *this \= other.
  DynamicBitset& AndNot(const DynamicBitset& other);

  /// In-place complement (within the universe).
  void Complement();

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  /// Returns *this \ other without modifying either operand.
  DynamicBitset Difference(const DynamicBitset& other) const;

  /// |*this & other| computed without allocating.
  Count CountAnd(const DynamicBitset& other) const;

  /// |*this \ other| computed without allocating.
  Count CountAndNot(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// Index of the smallest element, or kInvalidElementId if empty.
  ElementId FindFirst() const;

  /// Index of the smallest element strictly greater than \p i, or
  /// kInvalidElementId if none.
  ElementId FindNext(std::size_t i) const;

  /// All member elements in increasing order.
  std::vector<ElementId> ToIndices() const;

  /// Appends the member elements (increasing order) to any push_back-able
  /// container — the allocation-free alternative to ToIndices for
  /// arena-backed consumers.
  template <typename Vec>
  void AppendIndicesInto(Vec& out) const {
    ForEach([&out](ElementId e) { out.push_back(e); });
  }

  /// Hamming distance |*this Δ other| (symmetric difference size).
  Count HammingDistance(const DynamicBitset& other) const;

  /// Logical size of this bitset in bytes (for space accounting):
  /// one bit per universe element, rounded up to whole words.
  Bytes ByteSize() const { return words_.size() * sizeof(Word); }

  /// Number of backing 64-bit words (word-level fast paths, e.g. the
  /// SubUniverse projection gather).
  std::size_t WordCount() const { return words_.size(); }

  /// The \p w-th backing word. Precondition: w < WordCount().
  Word GetWord(std::size_t w) const {
    STREAMSC_DCHECK(w < words_.size());
    return words_[w];
  }

  /// ORs \p bits into the \p w-th backing word. The caller must preserve
  /// the tail invariant: no bits at positions >= size().
  void OrWord(std::size_t w, Word bits) {
    STREAMSC_DCHECK(w < words_.size());
    words_[w] |= bits;
  }

  /// ANDs the \p w-th backing word with \p mask (clears the bits outside
  /// \p mask). The tail invariant holds automatically: AND never sets bits.
  void AndWord(std::size_t w, Word mask) {
    STREAMSC_DCHECK(w < words_.size());
    words_[w] &= mask;
  }

  /// Contiguous backing words (read-only; for word-level bulk consumers
  /// like the sscb1 writer). Valid while the bitset is alive and unsized.
  const Word* WordData() const { return words_.data(); }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// 64-bit content hash (FNV-1a over words); suitable for hash maps.
  std::uint64_t Hash() const;

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<ElementId>(w * kBitsPerWord + bit));
        word &= word - 1;
      }
    }
  }

 private:
  // Zeroes bits beyond size_ in the last word (invariant after Complement /
  // Fill).
  void TrimTail();

  std::size_t size_;
  ArenaVector<Word> words_;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_BITSET_H_
