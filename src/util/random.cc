#include "util/check.h"
#include "util/random.h"

#include <cmath>

namespace streamsc {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  STREAMSC_DCHECK(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInRange(std::int64_t lo, std::int64_t hi) {
  STREAMSC_DCHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

DynamicBitset Rng::RandomSubsetOfSize(std::size_t universe, std::size_t k,
                                      DynamicBitset::Allocator alloc) {
  STREAMSC_DCHECK(k <= universe);
  DynamicBitset out(universe, alloc);
  // Floyd's algorithm: for j = universe-k .. universe-1, insert a random
  // element of [0, j]; on collision insert j itself.
  for (std::size_t j = universe - k; j < universe; ++j) {
    const std::size_t r = static_cast<std::size_t>(UniformInt(j + 1));
    if (out.Test(r)) {
      out.Set(j);
    } else {
      out.Set(r);
    }
  }
  return out;
}

DynamicBitset Rng::BernoulliSubset(std::size_t universe, double p,
                                   DynamicBitset::Allocator alloc) {
  DynamicBitset out(universe, alloc);
  if (!(p > 0.0)) return out;  // also catches NaN
  if (p >= 1.0) {
    out.Fill();
    return out;
  }
  // Geometric skipping: expected O(p * universe) work.
  const double log1mp = std::log1p(-p);
  std::size_t i = 0;
  while (true) {
    const double u = UniformDouble();
    const double skip = std::floor(std::log1p(-u) / log1mp);
    if (skip >= static_cast<double>(universe - i)) break;
    i += static_cast<std::size_t>(skip);
    out.Set(i);
    ++i;
    if (i >= universe) break;
  }
  return out;
}

DynamicBitset Rng::BernoulliSubsample(const DynamicBitset& base, double p,
                                      DynamicBitset::Allocator alloc) {
  if (!(p > 0.0)) return DynamicBitset(base.size(), alloc);  // catches NaN
  if (p >= 1.0) return DynamicBitset(base, alloc);
  DynamicBitset out(base.size(), alloc);
  base.ForEach([&](ElementId e) {
    if (Bernoulli(p)) out.Set(e);
  });
  return out;
}

std::vector<std::uint32_t> Rng::RandomPermutation(std::size_t size) {
  std::vector<std::uint32_t> perm(size);
  for (std::size_t i = 0; i < size; ++i) perm[i] = static_cast<uint32_t>(i);
  Shuffle(perm);
  return perm;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace streamsc
