#ifndef STREAMSC_UTIL_STATUS_H_
#define STREAMSC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

/// \file status.h
/// Minimal Status / StatusOr error-propagation vocabulary (RocksDB-style:
/// no exceptions cross public API boundaries).

namespace streamsc {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kNotFound,
  kInternal,
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with \p code and diagnostic \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers mirroring absl::*Error.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// Error category; kOk iff ok().
  StatusCode code() const { return code_; }

  /// Diagnostic message (empty for OK statuses).
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Move-friendly; asserts on
/// value access when holding an error (callers must check ok() first).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    STREAMSC_DCHECK(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    STREAMSC_DCHECK(ok());
    return value_;
  }
  T& value() & {
    STREAMSC_DCHECK(ok());
    return value_;
  }
  T&& value() && {
    STREAMSC_DCHECK(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_STATUS_H_
