#ifndef STREAMSC_UTIL_SPACE_METER_H_
#define STREAMSC_UTIL_SPACE_METER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/common.h"

/// \file space_meter.h
/// Logical space accounting for streaming algorithms.
///
/// The paper's model charges algorithms for the bits they retain between
/// stream items, not for transient computation. SpaceMeter implements that
/// model: algorithms Charge() bytes when they begin retaining state and
/// Release() when they drop it. The meter tracks the current and peak
/// logical footprint, optionally per labelled category (so benches can
/// report "stored projections" separately from "uncovered-elements bitset").

namespace streamsc {

/// Tracks current and peak logical space of one algorithm run.
/// Not thread-safe (one meter per run).
class SpaceMeter {
 public:
  SpaceMeter() = default;

  /// Charges \p bytes under \p category.
  void Charge(Bytes bytes, const std::string& category = "default");

  /// Releases \p bytes from \p category. Releasing more than charged in a
  /// category is an accounting bug; asserts in debug builds and clamps in
  /// release builds.
  void Release(Bytes bytes, const std::string& category = "default");

  /// Adjusts a category to an absolute level (charge or release the delta).
  void SetCategory(Bytes bytes, const std::string& category);

  /// Current total logical footprint in bytes.
  Bytes current() const { return current_; }

  /// Peak total logical footprint in bytes since construction/Reset().
  Bytes peak() const { return peak_; }

  /// Current footprint of one category (0 if never charged).
  Bytes CategoryCurrent(const std::string& category) const;

  /// Zeroes all counters and categories.
  void Reset();

 private:
  Bytes current_ = 0;
  Bytes peak_ = 0;
  std::unordered_map<std::string, Bytes> categories_;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SPACE_METER_H_
