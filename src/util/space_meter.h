#ifndef STREAMSC_UTIL_SPACE_METER_H_
#define STREAMSC_UTIL_SPACE_METER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/common.h"

/// \file space_meter.h
/// Logical space accounting for streaming algorithms.
///
/// The paper's model charges algorithms for the bits they retain between
/// stream items, not for transient computation. SpaceMeter implements that
/// model: algorithms Charge() bytes when they begin retaining state and
/// Release() when they drop it. The meter tracks the current and peak
/// logical footprint, optionally per labelled category (so benches can
/// report "stored projections" separately from "uncovered-elements bitset").
///
/// Categories are *interned*: a SpaceCategory resolves its name to a small
/// integer once (process-wide registry; the only allocation in the whole
/// metering path), after which every Charge/Release is an array index into
/// the meter's inline counters. Solver hot loops keep a static handle per
/// label; the string overloads below remain as thin intern-per-call
/// wrappers for cold paths and tests.

namespace streamsc {

/// Hard cap on distinct category names per process. Categories are
/// hand-written labels, not data-driven: a handful per solver.
inline constexpr std::size_t kMaxSpaceCategories = 32;

/// An interned metering category: name -> stable small index, resolved
/// once at construction (first intern of a name takes a mutex and may
/// allocate; later interns of the same name just find it). CHECK-fails
/// when a process exceeds kMaxSpaceCategories distinct names.
/// Copyable, trivially passable by value.
class SpaceCategory {
 public:
  explicit SpaceCategory(std::string_view name);

  /// The stable per-process index of this category.
  std::size_t index() const { return index_; }

  /// The interned name (points into the process-wide registry).
  std::string_view name() const;

 private:
  std::size_t index_;
};

/// Tracks current and peak logical space of one algorithm run.
/// Not thread-safe (one meter per run). Allocation-free: the per-category
/// counters are an inline array indexed by interned category.
class SpaceMeter {
 public:
  SpaceMeter() = default;

  /// Charges \p bytes under \p category.
  void Charge(Bytes bytes, SpaceCategory category);

  /// Releases \p bytes from \p category. Releasing more than charged in a
  /// category is an accounting bug; asserts in debug builds and clamps in
  /// release builds.
  void Release(Bytes bytes, SpaceCategory category);

  /// Adjusts a category to an absolute level (charge or release the delta).
  void SetCategory(Bytes bytes, SpaceCategory category);

  /// Current footprint of one category (0 if never charged).
  Bytes CategoryCurrent(SpaceCategory category) const {
    return categories_[category.index()];
  }

  /// String-keyed convenience wrappers: intern on every call. Fine for
  /// cold paths and tests; hot loops should hold a SpaceCategory.
  void Charge(Bytes bytes, const std::string& category = "default") {
    Charge(bytes, SpaceCategory(category));
  }
  void Release(Bytes bytes, const std::string& category = "default") {
    Release(bytes, SpaceCategory(category));
  }
  void SetCategory(Bytes bytes, const std::string& category) {
    SetCategory(bytes, SpaceCategory(category));
  }
  Bytes CategoryCurrent(const std::string& category) const {
    return CategoryCurrent(SpaceCategory(category));
  }

  /// Current total logical footprint in bytes.
  Bytes current() const { return current_; }

  /// Peak total logical footprint in bytes since construction/Reset().
  Bytes peak() const { return peak_; }

  /// Zeroes all counters and categories.
  void Reset();

 private:
  Bytes current_ = 0;
  Bytes peak_ = 0;
  std::array<Bytes, kMaxSpaceCategories> categories_{};
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SPACE_METER_H_
