#ifndef STREAMSC_UTIL_RANDOM_H_
#define STREAMSC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/common.h"

/// \file random.h
/// Deterministic pseudo-randomness for all randomized components.
///
/// Every randomized algorithm and distribution in this library takes an
/// explicit Rng&, so experiments are reproducible from a single seed. The
/// generator is splitmix64-seeded xoshiro256**, which is fast and has
/// state small enough that "public randomness" in the communication module
/// can be modeled as a shared seed.

namespace streamsc {

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from \p seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t UniformInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// A uniformly random k-subset of {0, ..., universe-1} as a bitset
  /// allocated from \p alloc (heap by default).
  /// Precondition: k <= universe. (Floyd's algorithm; O(k) expected.)
  DynamicBitset RandomSubsetOfSize(std::size_t universe, std::size_t k,
                                   DynamicBitset::Allocator alloc = {});

  /// Includes each of {0, ..., universe-1} independently with prob. \p p.
  /// \p p is clamped to [0, 1] (NaN treated as 0): p <= 0 yields the empty
  /// set, p >= 1 the full universe. Allocated from \p alloc.
  DynamicBitset BernoulliSubset(std::size_t universe, double p,
                                DynamicBitset::Allocator alloc = {});

  /// Includes each member of \p base independently with probability \p p.
  /// \p p is clamped to [0, 1] (NaN treated as 0): p <= 0 yields the empty
  /// set, p >= 1 a copy of \p base. Allocated from \p alloc.
  DynamicBitset BernoulliSubsample(const DynamicBitset& base, double p,
                                   DynamicBitset::Allocator alloc = {});

  /// A uniformly random permutation of {0, ..., size-1}.
  std::vector<std::uint32_t> RandomPermutation(std::size_t size);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (for parallel experiment arms).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_RANDOM_H_
