#ifndef STREAMSC_UTIL_SET_VIEW_H_
#define STREAMSC_UTIL_SET_VIEW_H_

#include <cassert>
#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/common.h"
#include "util/sparse_set.h"

/// \file set_view.h
/// SetView: a non-owning, representation-agnostic view of one set.
///
/// The hybrid set substrate stores each set either densely (DynamicBitset)
/// or sparsely (SparseSet); SetView is the uniform read API the algorithms
/// consume, so a pruning scan or projection pass runs at the cost of the
/// *representation* (n/64 word ops dense, k element ops sparse) without
/// the algorithm knowing which it got. Views are two pointers wide — pass
/// by value. A view borrows its target: it is invalidated by anything
/// that invalidates the target (e.g. SetSystem::AddSet growing storage).

namespace streamsc {

/// A borrowed view of a dense or sparse set. Cheap to copy.
class SetView {
 public:
  /// An invalid (detached) view; valid() is false.
  SetView() = default;

  /// Views a dense set. Implicit: any DynamicBitset is usable as a view.
  SetView(const DynamicBitset& dense) : dense_(&dense) {}  // NOLINT

  /// Views a sparse set.
  SetView(const SparseSet& sparse) : sparse_(&sparse) {}  // NOLINT

  /// True iff the view points at a set.
  bool valid() const { return dense_ != nullptr || sparse_ != nullptr; }

  /// True iff the underlying representation is a DynamicBitset.
  bool is_dense() const { return dense_ != nullptr; }

  /// The underlying dense set, or nullptr when sparse/invalid.
  const DynamicBitset* dense() const { return dense_; }

  /// The underlying sparse set, or nullptr when dense/invalid.
  const SparseSet* sparse() const { return sparse_; }

  /// Universe size of the viewed set.
  std::size_t size() const {
    assert(valid());
    return dense_ ? dense_->size() : sparse_->size();
  }

  /// Number of elements in the set.
  Count CountSet() const {
    assert(valid());
    return dense_ ? dense_->CountSet() : sparse_->CountSet();
  }

  /// True iff the set is empty.
  bool None() const {
    assert(valid());
    return dense_ ? dense_->None() : sparse_->None();
  }

  /// True iff the set equals the whole universe.
  bool All() const {
    assert(valid());
    return dense_ ? dense_->All() : sparse_->All();
  }

  /// Membership test.
  bool Test(std::size_t i) const {
    assert(valid());
    return dense_ ? dense_->Test(i) : sparse_->Test(i);
  }

  /// |*this & other|.
  Count CountAnd(const DynamicBitset& other) const {
    assert(valid());
    return dense_ ? dense_->CountAnd(other) : sparse_->CountAnd(other);
  }

  /// |*this \ other|.
  Count CountAndNot(const DynamicBitset& other) const {
    assert(valid());
    return dense_ ? dense_->CountAndNot(other) : sparse_->CountAndNot(other);
  }

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const {
    assert(valid());
    return dense_ ? dense_->Intersects(other) : sparse_->Intersects(other);
  }

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const {
    assert(valid());
    return dense_ ? dense_->IsSubsetOf(other) : sparse_->IsSubsetOf(other);
  }

  /// target \= *this (clears this set's members in \p target).
  void AndNotInto(DynamicBitset& target) const {
    assert(valid());
    if (dense_) {
      target.AndNot(*dense_);
    } else {
      sparse_->AndNotInto(target);
    }
  }

  /// target |= *this.
  void OrInto(DynamicBitset& target) const {
    assert(valid());
    if (dense_) {
      target |= *dense_;
    } else {
      sparse_->OrInto(target);
    }
  }

  /// Materializes a dense copy of the viewed set.
  DynamicBitset ToDense() const {
    assert(valid());
    return dense_ ? *dense_ : sparse_->ToBitset();
  }

  /// All member elements in increasing order.
  std::vector<ElementId> ToIndices() const {
    assert(valid());
    return dense_ ? dense_->ToIndices() : sparse_->ToIndices();
  }

  /// Logical size in bytes of the *viewed representation*.
  Bytes ByteSize() const {
    assert(valid());
    return dense_ ? dense_->ByteSize() : sparse_->ByteSize();
  }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const {
    assert(valid());
    return dense_ ? dense_->ToString() : sparse_->ToString();
  }

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    assert(valid());
    if (dense_) {
      dense_->ForEach(static_cast<Fn&&>(fn));
    } else {
      sparse_->ForEach(static_cast<Fn&&>(fn));
    }
  }

  /// Content equality across representations (same universe, same
  /// members). Invalid views compare equal only to invalid views.
  friend bool operator==(const SetView& a, const SetView& b);

 private:
  const DynamicBitset* dense_ = nullptr;
  const SparseSet* sparse_ = nullptr;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SET_VIEW_H_
