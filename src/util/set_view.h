#ifndef STREAMSC_UTIL_SET_VIEW_H_
#define STREAMSC_UTIL_SET_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"
#include "util/common.h"
#include "util/set_span.h"
#include "util/sparse_set.h"

/// \file set_view.h
/// SetView: a non-owning, representation-agnostic view of one set.
///
/// The hybrid set substrate stores each set in one of four shapes — owning
/// dense (DynamicBitset), owning sparse (SparseSet), or the borrowed span
/// forms DenseSpan / SparseSpan that the mmap-backed instance store serves
/// straight out of a mapped file — and SetView is the uniform read API the
/// algorithms consume. A pruning scan or projection pass runs at the cost
/// of the *representation* (n/64 word ops dense, k element ops sparse)
/// without the algorithm knowing which it got. Views are a tagged pointer
/// — pass by value. A view borrows its target: it is invalidated by
/// anything that invalidates the target (e.g. SetSystem::AddSet growing
/// storage, or an MmapSetStream being destroyed).

namespace streamsc {

/// A borrowed view of a dense or sparse set, owning or span. Cheap to copy.
class SetView {
 public:
  /// An invalid (detached) view; valid() is false.
  SetView() = default;

  /// Views a dense set. Implicit: any DynamicBitset is usable as a view.
  SetView(const DynamicBitset& dense)  // NOLINT
      : target_(&dense), rep_(Rep::kDense) {}

  /// Views a sparse set.
  SetView(const SparseSet& sparse)  // NOLINT
      : target_(&sparse), rep_(Rep::kSparse) {}

  /// Views a borrowed dense word span (e.g. an mmap'd sscb1 payload).
  SetView(const DenseSpan& span)  // NOLINT
      : target_(&span), rep_(Rep::kDenseSpan) {}

  /// Views a borrowed sorted-id span (e.g. an mmap'd sscb1 payload).
  SetView(const SparseSpan& span)  // NOLINT
      : target_(&span), rep_(Rep::kSparseSpan) {}

 private:
  // Invokes \p fn with the concrete representation reference. Defined
  // before its uses so the deduced return type is available to the
  // dispatching methods below.
  template <typename Fn>
  decltype(auto) Visit(Fn&& fn) const {
    STREAMSC_DCHECK(valid());
    switch (rep_) {
      case Rep::kSparse:
        return fn(*static_cast<const SparseSet*>(target_));
      case Rep::kDenseSpan:
        return fn(*static_cast<const DenseSpan*>(target_));
      case Rep::kSparseSpan:
        return fn(*static_cast<const SparseSpan*>(target_));
      case Rep::kDense:
      case Rep::kNone:
      default:
        // kNone is excluded by the assert above; dispatch kDense here so
        // every path returns.
        return fn(*static_cast<const DynamicBitset*>(target_));
    }
  }

 public:
  /// True iff the view points at a set.
  bool valid() const { return rep_ != Rep::kNone; }

  /// True iff the underlying representation is an owning DynamicBitset.
  /// (Word-level consumers that also handle DenseSpan should test
  /// dense_words() instead.)
  bool is_dense() const { return rep_ == Rep::kDense; }

  /// The underlying owning dense set, or nullptr otherwise.
  const DynamicBitset* dense() const {
    return rep_ == Rep::kDense ? static_cast<const DynamicBitset*>(target_)
                               : nullptr;
  }

  /// The underlying owning sparse set, or nullptr otherwise.
  const SparseSet* sparse() const {
    return rep_ == Rep::kSparse ? static_cast<const SparseSet*>(target_)
                                : nullptr;
  }

  /// The underlying dense span, or nullptr otherwise.
  const DenseSpan* dense_span() const {
    return rep_ == Rep::kDenseSpan ? static_cast<const DenseSpan*>(target_)
                                   : nullptr;
  }

  /// The underlying sparse span, or nullptr otherwise.
  const SparseSpan* sparse_span() const {
    return rep_ == Rep::kSparseSpan ? static_cast<const SparseSpan*>(target_)
                                    : nullptr;
  }

  /// True iff the representation is word-addressable (dense or dense span).
  bool is_dense_rep() const {
    return rep_ == Rep::kDense || rep_ == Rep::kDenseSpan;
  }

  /// Universe size of the viewed set.
  std::size_t size() const {
    return Visit([](const auto& s) { return s.size(); });
  }

  /// Number of elements in the set.
  Count CountSet() const {
    return Visit([](const auto& s) { return s.CountSet(); });
  }

  /// True iff the set is empty.
  bool None() const {
    return Visit([](const auto& s) { return s.None(); });
  }

  /// True iff the set equals the whole universe.
  bool All() const {
    return Visit([](const auto& s) { return s.All(); });
  }

  /// Membership test.
  bool Test(std::size_t i) const {
    return Visit([i](const auto& s) { return s.Test(i); });
  }

  /// |*this & other|.
  Count CountAnd(const DynamicBitset& other) const {
    return Visit([&other](const auto& s) { return s.CountAnd(other); });
  }

  /// |*this \ other|.
  Count CountAndNot(const DynamicBitset& other) const {
    return Visit([&other](const auto& s) { return s.CountAndNot(other); });
  }

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const {
    return Visit([&other](const auto& s) { return s.Intersects(other); });
  }

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const {
    return Visit([&other](const auto& s) { return s.IsSubsetOf(other); });
  }

  /// target \= *this (clears this set's members in \p target).
  void AndNotInto(DynamicBitset& target) const {
    switch (rep_) {
      case Rep::kDense:
        target.AndNot(*static_cast<const DynamicBitset*>(target_));
        return;
      case Rep::kSparse:
        static_cast<const SparseSet*>(target_)->AndNotInto(target);
        return;
      case Rep::kDenseSpan:
        static_cast<const DenseSpan*>(target_)->AndNotInto(target);
        return;
      case Rep::kSparseSpan:
        static_cast<const SparseSpan*>(target_)->AndNotInto(target);
        return;
      case Rep::kNone:
        break;
    }
    STREAMSC_DCHECK(false && "AndNotInto on an invalid SetView");
  }

  /// target |= *this.
  void OrInto(DynamicBitset& target) const {
    switch (rep_) {
      case Rep::kDense:
        target |= *static_cast<const DynamicBitset*>(target_);
        return;
      case Rep::kSparse:
        static_cast<const SparseSet*>(target_)->OrInto(target);
        return;
      case Rep::kDenseSpan:
        static_cast<const DenseSpan*>(target_)->OrInto(target);
        return;
      case Rep::kSparseSpan:
        static_cast<const SparseSpan*>(target_)->OrInto(target);
        return;
      case Rep::kNone:
        break;
    }
    STREAMSC_DCHECK(false && "OrInto on an invalid SetView");
  }

  /// Materializes a dense copy of the viewed set.
  DynamicBitset ToDense() const {
    switch (rep_) {
      case Rep::kDense:
        return *static_cast<const DynamicBitset*>(target_);
      case Rep::kSparse:
        return static_cast<const SparseSet*>(target_)->ToBitset();
      case Rep::kDenseSpan:
        return static_cast<const DenseSpan*>(target_)->ToBitset();
      case Rep::kSparseSpan:
        return static_cast<const SparseSpan*>(target_)->ToBitset();
      case Rep::kNone:
        break;
    }
    STREAMSC_DCHECK(false && "ToDense on an invalid SetView");
    return DynamicBitset();
  }

  /// Materializes a dense copy into \p alloc (the re-homing form: works
  /// for every representation at that representation's scan cost).
  DynamicBitset ToDense(DynamicBitset::Allocator alloc) const {
    DynamicBitset out(size(), alloc);
    OrInto(out);
    return out;
  }

  /// Materializes a sparse copy into \p alloc. The viewed members are
  /// emitted in increasing order, so the sorted-unchecked adoption holds
  /// by construction.
  SparseSet ToSparse(SparseSet::Allocator alloc) const {
    ArenaVector<ElementId> ids(alloc);
    ids.reserve(static_cast<std::size_t>(CountSet()));
    ForEach([&ids](ElementId e) { ids.push_back(e); });
    return SparseSet::FromSortedIndicesUnchecked(size(), std::move(ids));
  }

  /// All member elements in increasing order.
  std::vector<ElementId> ToIndices() const {
    return Visit([](const auto& s) { return s.ToIndices(); });
  }

  /// Appends the member elements (increasing order) to any push_back-able
  /// container — the allocation-free alternative to ToIndices.
  template <typename Vec>
  void AppendIndicesInto(Vec& out) const {
    ForEach([&out](ElementId e) { out.push_back(e); });
  }

  /// Logical size in bytes of the *viewed representation*.
  Bytes ByteSize() const {
    return Visit([](const auto& s) { return s.ByteSize(); });
  }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const {
    return Visit([](const auto& s) { return s.ToString(); });
  }

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (rep_) {
      case Rep::kDense:
        static_cast<const DynamicBitset*>(target_)->ForEach(
            static_cast<Fn&&>(fn));
        return;
      case Rep::kSparse:
        static_cast<const SparseSet*>(target_)->ForEach(static_cast<Fn&&>(fn));
        return;
      case Rep::kDenseSpan:
        static_cast<const DenseSpan*>(target_)->ForEach(static_cast<Fn&&>(fn));
        return;
      case Rep::kSparseSpan:
        static_cast<const SparseSpan*>(target_)->ForEach(
            static_cast<Fn&&>(fn));
        return;
      case Rep::kNone:
        break;
    }
    STREAMSC_DCHECK(false && "ForEach on an invalid SetView");
  }

  /// Content equality across representations (same universe, same
  /// members). Invalid views compare equal only to invalid views.
  friend bool operator==(const SetView& a, const SetView& b);

 private:
  enum class Rep : std::uint8_t {
    kNone,
    kDense,
    kSparse,
    kDenseSpan,
    kSparseSpan,
  };

  const void* target_ = nullptr;
  Rep rep_ = Rep::kNone;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SET_VIEW_H_
