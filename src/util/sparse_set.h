#ifndef STREAMSC_UTIL_SPARSE_SET_H_
#define STREAMSC_UTIL_SPARSE_SET_H_

#include <span>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/bitset.h"
#include "util/common.h"

/// \file sparse_set.h
/// SparseSet: a subset of a fixed universe [n] stored as a sorted vector
/// of member ids. The memory/speed complement of DynamicBitset: a
/// DynamicBitset always costs n bits and scans in n/64 word operations,
/// while a SparseSet with k members costs 32k bits and scans in k
/// operations — a large win whenever the density k/n is below ~1/32.
/// SetSystem picks between the two per set (see instance/set_system.h);
/// algorithms consume either through SetView (util/set_view.h).

namespace streamsc {

/// A set over a fixed universe {0, ..., size()-1}, stored as a sorted,
/// duplicate-free vector of member ids. Immutable after construction
/// (build a new one to change membership). Copyable and movable.
///
/// Arena-aware like DynamicBitset: factories take the member-id payload
/// as an ArenaVector (adopted, allocator and all) or copy from a borrowed
/// span into an explicit allocator; default everything stays on the heap.
class SparseSet {
 public:
  using Allocator = ArenaAllocator<ElementId>;

  /// Creates an empty set over a universe of \p universe_size elements.
  explicit SparseSet(std::size_t universe_size = 0, Allocator alloc = {})
      : size_(universe_size), elements_(alloc) {}

  /// Clone with an explicit allocator (the re-homing copy).
  SparseSet(const SparseSet& other, Allocator alloc)
      : size_(other.size_),
        elements_(other.elements_.begin(), other.elements_.end(), alloc) {}

  SparseSet(const SparseSet&) = default;
  SparseSet(SparseSet&&) noexcept = default;
  SparseSet& operator=(const SparseSet&) = default;
  SparseSet& operator=(SparseSet&&) = default;

  /// Builds a set from arbitrary member ids (sorted and deduplicated
  /// here; the vector is adopted along with its allocator). CHECK-fails
  /// on ids outside the universe.
  static SparseSet FromIndices(std::size_t universe_size,
                               ArenaVector<ElementId> indices);

  /// Convenience overload copying from a borrowed id sequence into
  /// \p alloc.
  static SparseSet FromIndices(std::size_t universe_size,
                               std::span<const ElementId> indices,
                               Allocator alloc = {});

  /// Builds a set from ids that are already sorted and duplicate-free
  /// (adopted without a sort; order and range CHECKed).
  static SparseSet FromSortedIndices(std::size_t universe_size,
                                     ArenaVector<ElementId> indices);

  /// Like FromSortedIndices but trusts the caller (debug-only asserts,
  /// no release-mode scan). Only for ids produced by code that
  /// guarantees order and range *by construction* — e.g. another
  /// representation's ForEach, or SubUniverse's monotone re-indexing —
  /// where re-validating would double the cost of the per-item hot path.
  static SparseSet FromSortedIndicesUnchecked(std::size_t universe_size,
                                              ArenaVector<ElementId> indices);

  /// Converts a dense bitset to sparse form.
  static SparseSet FromBitset(const DynamicBitset& dense, Allocator alloc = {});

  /// The allocator backing the member ids.
  Allocator get_allocator() const { return elements_.get_allocator(); }

  /// Converts to dense form (into \p alloc; heap by default).
  DynamicBitset ToBitset(DynamicBitset::Allocator alloc = {}) const;

  /// Universe size (matches DynamicBitset::size() semantics).
  std::size_t size() const { return size_; }

  /// Number of elements in the set.
  Count CountSet() const { return elements_.size(); }

  /// True iff the set is empty.
  bool None() const { return elements_.empty(); }

  /// True iff the set equals the whole universe.
  bool All() const { return elements_.size() == size_; }

  /// Membership test (binary search, O(log k)).
  bool Test(std::size_t i) const;

  /// The member ids, sorted ascending.
  const ArenaVector<ElementId>& elements() const { return elements_; }

  /// All member elements in increasing order (a heap copy; see elements()
  /// for the borrowed form).
  std::vector<ElementId> ToIndices() const {
    return std::vector<ElementId>(elements_.begin(), elements_.end());
  }

  /// |*this & other| — O(k) membership probes into \p other.
  Count CountAnd(const DynamicBitset& other) const;

  /// |*this \ other| — O(k) membership probes into \p other.
  Count CountAndNot(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// target \= *this (clears this set's members in \p target).
  void AndNotInto(DynamicBitset& target) const;

  /// target |= *this.
  void OrInto(DynamicBitset& target) const;

  /// Logical size in bytes for space accounting: the member-id payload.
  Bytes ByteSize() const { return elements_.size() * sizeof(ElementId); }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const;

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (ElementId e : elements_) fn(e);
  }

  friend bool operator==(const SparseSet& a, const SparseSet& b) {
    return a.size_ == b.size_ && a.elements_ == b.elements_;
  }

 private:
  std::size_t size_ = 0;
  ArenaVector<ElementId> elements_;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SPARSE_SET_H_
