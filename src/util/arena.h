#ifndef STREAMSC_UTIL_ARENA_H_
#define STREAMSC_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "util/check.h"

/// \file arena.h
/// Per-run bump-allocation: the physical memory model behind the logical
/// SpaceMeter accounting.
///
/// A MonotonicArena is a chunked bump allocator: allocation is a pointer
/// increment inside the current chunk, falling back to carving a new chunk
/// (geometrically grown) from the heap only when the current one is full.
/// Individual deallocation is a no-op; memory is reclaimed wholesale via
/// watermarks (Position/Rewind), Reset (rewind to empty, *retain* chunks),
/// or destruction. Retaining chunks across Reset is what makes steady-state
/// solver runs allocation-free: the first run warms the arena up to its
/// high-water mark, every later run bumps inside already-owned chunks.
///
/// An optional byte *budget* bounds the total bytes handed out. Exceeding
/// it throws ArenaBudgetExceeded (a std::bad_alloc subtype), which the api
/// layer converts to a ResourceExhausted Status — user-sized input never
/// aborts the process. The budget is checked against bytes_used(), so the
/// verdict is deterministic: it does not depend on chunk geometry or on
/// how warm the arena is.
///
/// Threading contract: a MonotonicArena is single-threaded. Engine workers
/// never touch the per-run arena; they stage transient payloads in their
/// own thread-local scratch arenas (ThreadScratchArena / ThreadTableArena)
/// which the pass machinery rewinds at job boundaries.

namespace streamsc {

/// Thrown when an allocation would push a MonotonicArena past its byte
/// budget. Derives std::bad_alloc so budget-oblivious code still unwinds
/// through the standard out-of-memory path.
class ArenaBudgetExceeded : public std::bad_alloc {
 public:
  ArenaBudgetExceeded(std::size_t budget, std::size_t attempted)
      : budget_(budget), attempted_(attempted) {}

  const char* what() const noexcept override {
    return "streamsc: arena memory budget exceeded";
  }

  /// The configured budget in bytes.
  std::size_t budget() const { return budget_; }
  /// bytes_used() the allocation would have reached.
  std::size_t attempted() const { return attempted_; }

 private:
  std::size_t budget_;
  std::size_t attempted_;
};

/// Chunked bump allocator. Not copyable, not movable (containers hold
/// raw pointers to it). Not thread-safe: one arena per run / per thread.
class MonotonicArena {
 public:
  struct Options {
    /// Size of the first chunk carved from the heap.
    std::size_t initial_chunk_bytes = std::size_t{64} << 10;
    /// Chunk growth is geometric (x2) but capped here, so a huge run
    /// does not over-reserve its final chunk.
    std::size_t max_chunk_bytes = std::size_t{8} << 20;
    /// Hard cap on bytes_used(); 0 means unlimited. Exceeding throws
    /// ArenaBudgetExceeded.
    std::size_t budget_bytes = 0;
  };

  MonotonicArena() : MonotonicArena(Options{}) {}
  explicit MonotonicArena(Options options);
  ~MonotonicArena();

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Allocates \p bytes aligned to \p align (a power of two). Never
  /// returns nullptr; throws ArenaBudgetExceeded past the budget.
  /// Zero-byte requests return a valid, unique, aligned pointer.
  void* AllocateBytes(std::size_t bytes, std::size_t align);

  /// Typed allocation of \p count objects (uninitialized storage).
  template <typename T>
  T* Allocate(std::size_t count = 1) {
    static_assert(!std::is_const_v<T>, "allocating const storage");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  /// A watermark: the bump position at some instant.
  struct Mark {
    std::size_t chunk_index = 0;
    std::size_t chunk_offset = 0;
    std::size_t used = 0;
  };

  /// Captures the current bump position.
  Mark Position() const {
    return Mark{current_chunk_, current_offset_, used_};
  }

  /// Rewinds to a previously captured position, releasing (logically)
  /// everything allocated after it. Chunks are retained. Objects with
  /// non-trivial destructors allocated past \p mark must already have
  /// been destroyed by the caller.
  void Rewind(const Mark& mark);

  /// Rewinds to empty, retaining all chunks for reuse. This is the
  /// per-run reset: after the first (warm-up) run, later runs of the
  /// same shape perform zero heap allocations.
  void Reset();

  /// Returns all chunk memory to the heap (arena becomes cold).
  void ReleaseChunks();

  /// Bytes currently handed out (requested bytes; alignment slack is
  /// excluded so the count — and the budget verdict — is a pure function
  /// of the allocation sequence).
  std::size_t bytes_used() const { return used_; }

  /// Maximum bytes_used() observed since construction / ResetHighWater.
  std::size_t high_water() const { return high_water_; }

  /// Total chunk capacity owned (the physical footprint).
  std::size_t bytes_reserved() const { return reserved_; }

  /// Number of chunks carved from the heap so far.
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Current budget in bytes (0 = unlimited).
  std::size_t budget() const { return options_.budget_bytes; }

  /// Adjusts the budget. Takes effect on the next allocation; already
  /// handed-out bytes are unaffected.
  void set_budget(std::size_t budget_bytes) {
    options_.budget_bytes = budget_bytes;
  }

  /// Restarts high-water tracking from the current usage.
  void ResetHighWater() { high_water_ = used_; }

 private:
  struct Chunk {
    unsigned char* data = nullptr;
    std::size_t capacity = 0;
  };

  /// Slow path: advances to (or carves) a chunk that fits the request.
  void* AllocateSlow(std::size_t bytes, std::size_t align);

  Options options_;
  std::vector<Chunk> chunks_;
  std::size_t current_chunk_ = 0;  // valid only when !chunks_.empty()
  std::size_t current_offset_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
};

/// Thread-local scratch arena for pass-transient staging (snapshot and
/// commit buffers, per-node search temporaries). Each thread — engine
/// worker or orchestrator — gets its own; the engine rewinds a worker's
/// scratch at job entry, so scratch-backed storage must never outlive the
/// pass that staged it.
MonotonicArena& ThreadScratchArena();

/// Second thread-local arena for call-scoped tables (e.g. the exact
/// subsolver's transposition table) that must survive interleaved LIFO
/// rewinds of ThreadScratchArena. Callers bracket use with
/// Position/Rewind.
MonotonicArena& ThreadTableArena();

/// How an ArenaAllocator resolves its backing storage.
enum class ArenaBinding : unsigned char {
  kHeap = 0,   ///< Global operator new/delete (the default).
  kPinned,     ///< A specific MonotonicArena, captured at construction.
  kScratch,    ///< ThreadScratchArena() of the *allocating* thread.
  kTable,      ///< ThreadTableArena() of the *allocating* thread.
};

/// std-compatible allocator over a MonotonicArena, with a heap fallback
/// so default-constructed containers keep working unchanged.
///
/// Propagation traits are chosen for per-run ownership semantics:
///  - moves carry the arena with the buffer (POCMA / POCS true);
///  - copies fall back to the heap (select_on_container_copy_construction
///    returns a heap allocator, POCCA false), so a copied container never
///    silently pins an arena whose lifetime the copier may not control.
/// Re-homing a container *into* an arena is therefore always explicit:
/// construct with an ArenaAllocator and copy-assign / insert the contents.
///
/// The kScratch / kTable bindings resolve the thread-local arena at each
/// allocate() call, which makes the allocator stateless across threads: a
/// container may be constructed on one thread and grown on another (the
/// engine's lane-major passes do this); each thread's bytes come from its
/// own arena and deallocate is a no-op everywhere.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  /// Heap-backed (drop-in for std::allocator).
  ArenaAllocator() noexcept = default;

  /// Pinned to \p arena; nullptr degrades to the heap binding.
  explicit ArenaAllocator(MonotonicArena* arena) noexcept
      : arena_(arena),
        binding_(arena ? ArenaBinding::kPinned : ArenaBinding::kHeap) {}

  /// Thread-local scratch binding (resolved per allocate call).
  static ArenaAllocator Scratch() noexcept {
    return ArenaAllocator(ArenaBinding::kScratch);
  }

  /// Thread-local table binding (resolved per allocate call).
  static ArenaAllocator Table() noexcept {
    return ArenaAllocator(ArenaBinding::kTable);
  }

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()), binding_(other.binding()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    switch (binding_) {
      case ArenaBinding::kPinned:
        return static_cast<T*>(arena_->AllocateBytes(bytes, alignof(T)));
      case ArenaBinding::kScratch:
        return static_cast<T*>(
            ThreadScratchArena().AllocateBytes(bytes, alignof(T)));
      case ArenaBinding::kTable:
        return static_cast<T*>(
            ThreadTableArena().AllocateBytes(bytes, alignof(T)));
      case ArenaBinding::kHeap:
        break;
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (binding_ == ArenaBinding::kHeap) {
      ::operator delete(p, n * sizeof(T));
    }
    // Arena-backed storage is reclaimed by Rewind/Reset, never piecewise.
  }

  /// Copied containers land on the heap (see class comment).
  ArenaAllocator select_on_container_copy_construction() const noexcept {
    return ArenaAllocator();
  }

  MonotonicArena* arena() const noexcept { return arena_; }
  ArenaBinding binding() const noexcept { return binding_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return binding_ == other.binding() && arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return !(*this == other);
  }

 private:
  explicit ArenaAllocator(ArenaBinding binding) noexcept
      : binding_(binding) {}

  template <typename U>
  friend class ArenaAllocator;

  MonotonicArena* arena_ = nullptr;
  ArenaBinding binding_ = ArenaBinding::kHeap;
};

/// The project's arena-aware vector: identical to std::vector when
/// default-constructed (heap binding), bump-allocated when given an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Cross-allocator equality so arena-backed vectors compare against plain
/// std::vector literals in tests and call sites. Found via ADL through
/// ArenaAllocator's namespace; constrained away from the same-allocator
/// case, which std::operator== already covers.
template <typename T, typename A,
          typename = std::enable_if_t<!std::is_same_v<A, ArenaAllocator<T>>>>
bool operator==(const std::vector<T, ArenaAllocator<T>>& a,
                const std::vector<T, A>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T, typename A,
          typename = std::enable_if_t<!std::is_same_v<A, ArenaAllocator<T>>>>
bool operator==(const std::vector<T, A>& a,
                const std::vector<T, ArenaAllocator<T>>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T, typename A,
          typename = std::enable_if_t<!std::is_same_v<A, ArenaAllocator<T>>>>
bool operator!=(const std::vector<T, ArenaAllocator<T>>& a,
                const std::vector<T, A>& b) {
  return !(a == b);
}

template <typename T, typename A,
          typename = std::enable_if_t<!std::is_same_v<A, ArenaAllocator<T>>>>
bool operator!=(const std::vector<T, A>& a,
                const std::vector<T, ArenaAllocator<T>>& b) {
  return !(a == b);
}

/// RAII watermark: captures an arena position and rewinds on destruction.
/// For LIFO scratch discipline around recursion / per-item temporaries.
class ArenaCheckpoint {
 public:
  explicit ArenaCheckpoint(MonotonicArena& arena)
      : arena_(&arena), mark_(arena.Position()) {}
  ~ArenaCheckpoint() { arena_->Rewind(mark_); }

  ArenaCheckpoint(const ArenaCheckpoint&) = delete;
  ArenaCheckpoint& operator=(const ArenaCheckpoint&) = delete;

 private:
  MonotonicArena* arena_;
  MonotonicArena::Mark mark_;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_ARENA_H_
