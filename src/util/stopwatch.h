#ifndef STREAMSC_UTIL_STOPWATCH_H_
#define STREAMSC_UTIL_STOPWATCH_H_

#include <chrono>

/// \file stopwatch.h
/// Wall-clock timing helper for the benchmark harness.

namespace streamsc {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_STOPWATCH_H_
