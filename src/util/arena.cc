#include "util/arena.h"

#include <algorithm>
#include <cstdint>

namespace streamsc {
namespace {

constexpr std::size_t kMinChunkBytes = 1024;

std::size_t AlignUp(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

MonotonicArena::MonotonicArena(Options options) : options_(options) {
  options_.initial_chunk_bytes =
      std::max(options_.initial_chunk_bytes, kMinChunkBytes);
  options_.max_chunk_bytes =
      std::max(options_.max_chunk_bytes, options_.initial_chunk_bytes);
}

MonotonicArena::~MonotonicArena() { ReleaseChunks(); }

void* MonotonicArena::AllocateBytes(std::size_t bytes, std::size_t align) {
  STREAMSC_DCHECK(align != 0 && (align & (align - 1)) == 0);
  STREAMSC_DCHECK(align <= alignof(std::max_align_t));
  if (!chunks_.empty()) {
    Chunk& chunk = chunks_[current_chunk_];
    const std::size_t offset = AlignUp(current_offset_, align);
    if (offset + bytes <= chunk.capacity && offset + bytes >= offset) {
      // used_ counts requested bytes only (not alignment slack), so the
      // budget verdict is a pure function of the allocation sequence —
      // independent of chunk geometry and arena warmth.
      const std::size_t new_used = used_ + bytes;
      if (options_.budget_bytes != 0 && new_used > options_.budget_bytes) {
        throw ArenaBudgetExceeded(options_.budget_bytes, new_used);
      }
      current_offset_ = offset + bytes;
      used_ = new_used;
      high_water_ = std::max(high_water_, used_);
      return chunk.data + offset;
    }
  }
  return AllocateSlow(bytes, align);
}

void* MonotonicArena::AllocateSlow(std::size_t bytes, std::size_t align) {
  // Fresh chunks are max_align_t-aligned and the allocation starts at
  // offset 0, so align (already validated <= max_align_t) is satisfied.
  (void)align;
  // Budget check first, against requested bytes only (see fast path).
  const std::size_t new_used = used_ + bytes;
  if (options_.budget_bytes != 0 &&
      (new_used > options_.budget_bytes || new_used < used_)) {
    throw ArenaBudgetExceeded(options_.budget_bytes, new_used);
  }

  // Try already-owned chunks after the current one (warm restart after
  // Reset walks through the retained chunk list before carving new).
  std::size_t next = chunks_.empty() ? 0 : current_chunk_ + 1;
  for (; next < chunks_.size(); ++next) {
    if (bytes <= chunks_[next].capacity) break;
  }
  if (next >= chunks_.size()) {
    std::size_t want = options_.initial_chunk_bytes;
    if (!chunks_.empty()) {
      want = std::min(chunks_.back().capacity * 2, options_.max_chunk_bytes);
    }
    want = std::max(want, AlignUp(bytes, kMinChunkBytes));
    Chunk chunk;
    chunk.data = static_cast<unsigned char*>(
        ::operator new(want, std::align_val_t{alignof(std::max_align_t)}));
    chunk.capacity = want;
    chunks_.push_back(chunk);
    reserved_ += want;
    next = chunks_.size() - 1;
  }
  current_chunk_ = next;
  current_offset_ = bytes;
  used_ = new_used;
  high_water_ = std::max(high_water_, used_);
  return chunks_[current_chunk_].data;
}

void MonotonicArena::Rewind(const Mark& mark) {
  STREAMSC_DCHECK(mark.used <= used_);
  STREAMSC_DCHECK(chunks_.empty() || mark.chunk_index <= current_chunk_);
  current_chunk_ = mark.chunk_index;
  current_offset_ = mark.chunk_offset;
  used_ = mark.used;
}

void MonotonicArena::Reset() {
  current_chunk_ = 0;
  current_offset_ = 0;
  used_ = 0;
}

void MonotonicArena::ReleaseChunks() {
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.data, chunk.capacity,
                      std::align_val_t{alignof(std::max_align_t)});
  }
  chunks_.clear();
  current_chunk_ = 0;
  current_offset_ = 0;
  used_ = 0;
  reserved_ = 0;
}

MonotonicArena& ThreadScratchArena() {
  thread_local MonotonicArena arena;
  return arena;
}

MonotonicArena& ThreadTableArena() {
  thread_local MonotonicArena arena;
  return arena;
}

}  // namespace streamsc
