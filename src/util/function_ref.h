#ifndef STREAMSC_UTIL_FUNCTION_REF_H_
#define STREAMSC_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

/// \file function_ref.h
/// Non-owning type-erased callable (the shape of C++26 std::function_ref).
///
/// std::function heap-allocates whenever the callable exceeds the
/// small-buffer (two pointers on libstdc++) — which every multi-capture
/// pass lambda does. The engine invokes callbacks millions of times per
/// solve, so its pass APIs take FunctionRef: two raw words, no ownership,
/// no allocation, trivially copyable.
///
/// Lifetime contract: a FunctionRef must not outlive the callable it was
/// constructed from. Pass it down the stack; never store it beyond the
/// call that received it.

namespace streamsc {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...). The callable is
  /// captured by reference.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* object, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(
              object))(std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_FUNCTION_REF_H_
