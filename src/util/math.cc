#include "util/check.h"
#include "util/math.h"

#include <algorithm>
#include <cmath>

namespace streamsc {

double SafeLog(double x) { return std::log(std::max(x, 1.0)); }

double SafeLog2(double x) { return std::log2(std::max(x, 2.0)); }

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  STREAMSC_DCHECK(b > 0);
  return (a + b - 1) / b;
}

double HarmonicNumber(std::uint64_t n) {
  // Exact summation below a threshold; asymptotic expansion above.
  if (n == 0) return 0.0;
  if (n <= 1024) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double kEulerMascheroni = 0.57721566490153286;
  const double nd = static_cast<double>(n);
  return std::log(nd) + kEulerMascheroni + 1.0 / (2 * nd) -
         1.0 / (12 * nd * nd);
}

double LogBinomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1) -
         std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

double Pow(double x, double y) {
  if (y == 0.0) return 1.0;
  return std::pow(x, y);
}

double NthRoot(double n, double alpha) {
  STREAMSC_DCHECK(alpha > 0);
  return std::pow(n, 1.0 / alpha);
}

std::uint64_t DisjUniverseSize(std::uint64_t n, std::uint64_t m, double alpha,
                               double t_scale) {
  const double base = static_cast<double>(n) / SafeLog(static_cast<double>(m));
  const double t = t_scale * std::pow(std::max(base, 1.0), 1.0 / alpha);
  return static_cast<std::uint64_t>(std::max(1.0, std::floor(t)));
}

double ElementSamplingRate(std::uint64_t n, std::uint64_t m, std::uint64_t k,
                           double rho, double boost) {
  STREAMSC_DCHECK(rho > 0);
  const double p = boost * 16.0 * static_cast<double>(k) *
                   SafeLog(static_cast<double>(m)) /
                   (rho * static_cast<double>(n));
  return std::clamp(p, 1e-12, 1.0);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace streamsc
