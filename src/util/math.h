#ifndef STREAMSC_UTIL_MATH_H_
#define STREAMSC_UTIL_MATH_H_

#include <cstdint>
#include <vector>

/// \file math.h
/// Small numeric helpers shared by the distributions, samplers, and
/// benchmark harness (log-space binomials, harmonic numbers, the paper's
/// parameter formulas).

namespace streamsc {

/// Natural logarithm of max(x, 1) — the paper's "log" with the usual
/// convention that log of small arguments never goes negative in
/// parameter formulas.
double SafeLog(double x);

/// Base-2 logarithm of max(x, 2) (always >= 1).
double SafeLog2(double x);

/// ceil(a / b) for positive integers.
std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b);

/// n-th harmonic number H_n = sum_{i=1..n} 1/i (greedy set cover bound).
double HarmonicNumber(std::uint64_t n);

/// log(n choose k) computed stably via lgamma.
double LogBinomial(std::uint64_t n, std::uint64_t k);

/// x^y for doubles with the convention 0^0 = 1.
double Pow(double x, double y);

/// n^{1/alpha} — the space-exponent term of the tradeoff.
double NthRoot(double n, double alpha);

/// The paper's Disj universe size for D_SC (Section 3.1):
///   t = t_scale * (n / log m)^{1/alpha},
/// where the paper uses t_scale = 2^-15 for proof headroom; benches use a
/// configurable t_scale so t >= 2 at laptop scale. Result clamped to >= 1.
std::uint64_t DisjUniverseSize(std::uint64_t n, std::uint64_t m, double alpha,
                               double t_scale);

/// Element-sampling rate from Lemma 3.12 / Algorithm 1 step 3(a):
///   p = boost * 16 * k * log(m) / (rho * n),
/// clamped to (0, 1]. \p boost = 1 reproduces the paper's constant.
double ElementSamplingRate(std::uint64_t n, std::uint64_t m, std::uint64_t k,
                           double rho, double boost);

/// Mean of a sample.
double Mean(const std::vector<double>& xs);

/// Population standard deviation of a sample (0 for size < 2).
double StdDev(const std::vector<double>& xs);

/// \p q-quantile (0 <= q <= 1) using nearest-rank on a sorted copy.
double Quantile(std::vector<double> xs, double q);

}  // namespace streamsc

#endif  // STREAMSC_UTIL_MATH_H_
