#include "util/file_probe.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define STREAMSC_HAVE_STAT 1
#include <sys/stat.h>
#else
#define STREAMSC_HAVE_STAT 0
#endif

namespace streamsc {

#if STREAMSC_HAVE_STAT

Status ProbeRegularFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  if (S_ISREG(st.st_mode)) return Status::Ok();
  // Same per-type wording as MmapFile::Open: say what the path actually
  // is, so "why won't it load my file" is answerable from the message.
  const char* what = S_ISDIR(st.st_mode)    ? "a directory"
                     : S_ISFIFO(st.st_mode) ? "a FIFO"
                     : S_ISCHR(st.st_mode)  ? "a character device"
                     : S_ISBLK(st.st_mode)  ? "a block device"
                     : S_ISSOCK(st.st_mode) ? "a socket"
                                            : "not a regular file";
  return Status::InvalidArgument("cannot read '" + path + "': it is " +
                                 std::string(what) +
                                 " (only regular files can be opened)");
}

FileSignature ProbeSignature(const std::string& path) {
  FileSignature sig;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return sig;
  sig.exists = true;
  sig.size = static_cast<std::uint64_t>(st.st_size);
#if defined(__APPLE__)
  sig.mtime_ns = static_cast<std::int64_t>(st.st_mtimespec.tv_sec) *
                     1'000'000'000 +
                 st.st_mtimespec.tv_nsec;
#else
  sig.mtime_ns =
      static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
      st.st_mtim.tv_nsec;
#endif
  return sig;
}

#else  // !STREAMSC_HAVE_STAT

Status ProbeRegularFile(const std::string& path) {
  (void)path;
  return Status::Ok();
}

FileSignature ProbeSignature(const std::string& path) {
  (void)path;
  return FileSignature{};
}

#endif  // STREAMSC_HAVE_STAT

}  // namespace streamsc
