#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace streamsc {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", file, line, expr,
               message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace streamsc
