#include "util/set_view.h"

namespace streamsc {

bool operator==(const SetView& a, const SetView& b) {
  if (!a.valid() || !b.valid()) return a.valid() == b.valid();
  if (a.size() != b.size()) return false;
  if (a.dense_ && b.dense_) return *a.dense_ == *b.dense_;
  if (a.sparse_ && b.sparse_) return *a.sparse_ == *b.sparse_;
  // Mixed representations: compare the sparse side's members against the
  // dense side, plus cardinality (subset + equal count => equal).
  const SparseSet* sparse = a.sparse_ ? a.sparse_ : b.sparse_;
  const DynamicBitset* dense = a.dense_ ? a.dense_ : b.dense_;
  if (sparse->CountSet() != dense->CountSet()) return false;
  return sparse->IsSubsetOf(*dense);
}

}  // namespace streamsc
