#include "util/set_view.h"

namespace streamsc {

bool operator==(const SetView& a, const SetView& b) {
  if (!a.valid() || !b.valid()) return a.valid() == b.valid();
  if (a.size() != b.size()) return false;
  // Same-representation fast paths.
  if (a.rep_ == b.rep_ && a.target_ == b.target_) return true;
  if (a.dense() && b.dense()) return *a.dense() == *b.dense();
  if (a.sparse() && b.sparse()) return *a.sparse() == *b.sparse();
  // Mixed representations: equal cardinality plus one-sided containment
  // (subset + equal count => equal). Membership probes are O(1) dense and
  // O(log k) sparse — fine for the comparison-heavy test paths this
  // serves.
  if (a.CountSet() != b.CountSet()) return false;
  bool subset = true;
  a.ForEach([&](ElementId e) { subset = subset && b.Test(e); });
  return subset;
}

}  // namespace streamsc
