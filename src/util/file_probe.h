#ifndef STREAMSC_UTIL_FILE_PROBE_H_
#define STREAMSC_UTIL_FILE_PROBE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

/// \file file_probe.h
/// Non-blocking "is this a regular file?" probe.
///
/// Every reader in the stack that opens a user-supplied path with a
/// blocking primitive (std::ifstream, O_RDONLY open) must probe first:
/// opening a FIFO with no writer blocks the calling thread *forever*,
/// which turns a bad --instance flag or an attacker-chosen path into a
/// wedged daemon worker. stat(2) never blocks on FIFOs or devices, so
/// the probe answers immediately.

namespace streamsc {

/// Returns Ok iff \p path names an existing regular file.
///
///   * missing path        -> NotFound
///   * FIFO / directory /
///     device / socket     -> InvalidArgument naming what the path is
///
/// On platforms without stat(2) the probe is a no-op returning Ok; the
/// caller's own open supplies the error there.
Status ProbeRegularFile(const std::string& path);

/// A point-in-time identity snapshot of a path: existence, byte size, and
/// modification time. Two equal signatures mean "no observable change" at
/// stat(2) granularity — the polling primitive behind watch mode, which
/// deliberately avoids inotify so it works on any filesystem (NFS,
/// overlayfs, containers) with zero extra descriptors.
struct FileSignature {
  bool exists = false;
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;  ///< Nanoseconds where the platform has them,
                              ///< else whole seconds scaled up.

  friend bool operator==(const FileSignature& a,
                         const FileSignature& b) = default;
};

/// Stats \p path and returns its signature. A missing (or stat-failing)
/// path yields {exists=false, 0, 0} — a valid, comparable value, so a
/// watch loop treats deletion as just another change. Never blocks.
FileSignature ProbeSignature(const std::string& path);

}  // namespace streamsc

#endif  // STREAMSC_UTIL_FILE_PROBE_H_
