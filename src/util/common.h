#ifndef STREAMSC_UTIL_COMMON_H_
#define STREAMSC_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>

/// \file common.h
/// Project-wide scalar type aliases.
///
/// The paper works with a universe [n] = {1, ..., n} and a collection of m
/// sets. We use zero-based element ids {0, ..., n-1} and set ids
/// {0, ..., m-1} throughout.

// The library requires C++20: util/bitset.cc uses std::popcount from <bit>,
// which is absent in C++17 and earlier. The build pins -std=c++20; this
// guard turns a stray-toolchain misconfiguration into a clear diagnostic
// instead of a cascade of template errors.
static_assert(__cplusplus >= 202002L,
              "streamsc requires C++20 (std::popcount from <bit>); "
              "compile with -std=c++20 or newer");

namespace streamsc {

/// Identifier of an element of the universe [n]. Zero-based.
using ElementId = std::uint32_t;

/// Identifier of a set in a set system. Zero-based.
using SetId = std::uint32_t;

/// A count of elements / sets (always fits the universe).
using Count = std::uint64_t;

/// Logical space in bytes as charged by the space-accounting layer.
using Bytes = std::uint64_t;

/// Sentinel for "no set".
inline constexpr SetId kInvalidSetId = ~SetId{0};

/// Sentinel for "no element".
inline constexpr ElementId kInvalidElementId = ~ElementId{0};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_COMMON_H_
