#ifndef STREAMSC_UTIL_SET_SPAN_H_
#define STREAMSC_UTIL_SET_SPAN_H_

#include <string>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"
#include "util/common.h"

/// \file set_span.h
/// Non-owning span representations of one set, mirroring the owning pair
/// DynamicBitset / SparseSet:
///
/// * DenseSpan  — a borrowed run of packed 64-bit words (n bits).
/// * SparseSpan — a borrowed run of sorted, duplicate-free member ids.
///
/// These exist so storage that is not heap-resident — most importantly the
/// mmap'd payloads of an sscb1 file (storage/mmap_set_stream.h) — can be
/// read through SetView without copying a single byte. The spans implement
/// the same const surface as their owning counterparts; SetView dispatches
/// to whichever representation it holds.
///
/// Invariants are the *storage side's* responsibility (they are what
/// MmapSetStream validates at open): a DenseSpan's tail bits beyond size()
/// are zero, a SparseSpan's ids are strictly increasing and < size().

namespace streamsc {

/// A borrowed dense set: \p word_count = ceil(size / 64) packed words.
/// The span does not own the words; they must outlive it.
class DenseSpan {
 public:
  using Word = DynamicBitset::Word;
  static constexpr std::size_t kBitsPerWord = DynamicBitset::kBitsPerWord;

  DenseSpan() = default;

  /// Views \p size bits backed by the words at \p words. Tail bits beyond
  /// \p size must be zero.
  DenseSpan(const Word* words, std::size_t size) : words_(words), size_(size) {
    STREAMSC_DCHECK(size == 0 || words != nullptr);
  }

  /// Universe size (number of addressable bits).
  std::size_t size() const { return size_; }

  /// Number of backing words.
  std::size_t WordCount() const {
    return (size_ + kBitsPerWord - 1) / kBitsPerWord;
  }

  /// The \p w-th backing word. Precondition: w < WordCount().
  Word GetWord(std::size_t w) const {
    STREAMSC_DCHECK(w < WordCount());
    return words_[w];
  }

  /// Contiguous backing words (read-only; WordCount() of them).
  const Word* WordData() const { return words_; }

  /// Membership test.
  bool Test(std::size_t i) const {
    STREAMSC_DCHECK(i < size_);
    return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
  }

  /// Number of elements in the set (popcount over the words).
  Count CountSet() const;

  /// True iff the set is empty.
  bool None() const;

  /// True iff the set equals the whole universe.
  bool All() const { return CountSet() == size_; }

  /// |*this & other|.
  Count CountAnd(const DynamicBitset& other) const;

  /// |*this \ other|.
  Count CountAndNot(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// target \= *this.
  void AndNotInto(DynamicBitset& target) const;

  /// target |= *this.
  void OrInto(DynamicBitset& target) const;

  /// Materializes an owning dense copy.
  DynamicBitset ToBitset() const;

  /// All member elements in increasing order.
  std::vector<ElementId> ToIndices() const;

  /// Logical size in bytes of the viewed representation.
  Bytes ByteSize() const { return WordCount() * sizeof(Word); }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const;

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::size_t words = WordCount();
    for (std::size_t w = 0; w < words; ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<ElementId>(w * kBitsPerWord + bit));
        word &= word - 1;
      }
    }
  }

 private:
  const Word* words_ = nullptr;
  std::size_t size_ = 0;
};

/// A borrowed sparse set: \p count sorted, duplicate-free member ids of a
/// universe of \p size elements. The span does not own the ids.
class SparseSpan {
 public:
  SparseSpan() = default;

  /// Views \p count member ids at \p elements over a universe of
  /// \p size elements. The ids must be strictly increasing and < size.
  SparseSpan(const ElementId* elements, std::size_t count, std::size_t size)
      : elements_(elements), count_(count), size_(size) {
    STREAMSC_DCHECK(count == 0 || elements != nullptr);
  }

  /// Universe size.
  std::size_t size() const { return size_; }

  /// The member ids, sorted ascending.
  const ElementId* elements() const { return elements_; }

  /// Number of elements in the set.
  Count CountSet() const { return count_; }

  /// True iff the set is empty.
  bool None() const { return count_ == 0; }

  /// True iff the set equals the whole universe.
  bool All() const { return count_ == size_; }

  /// Membership test (binary search, O(log k)).
  bool Test(std::size_t i) const;

  /// |*this & other| — O(k) membership probes into \p other.
  Count CountAnd(const DynamicBitset& other) const;

  /// |*this \ other| — O(k) membership probes into \p other.
  Count CountAndNot(const DynamicBitset& other) const;

  /// True iff the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  /// True iff *this ⊆ other.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// target \= *this.
  void AndNotInto(DynamicBitset& target) const;

  /// target |= *this.
  void OrInto(DynamicBitset& target) const;

  /// Materializes an owning dense copy.
  DynamicBitset ToBitset() const;

  /// All member elements in increasing order (a copy).
  std::vector<ElementId> ToIndices() const {
    return std::vector<ElementId>(elements_, elements_ + count_);
  }

  /// Logical size in bytes of the viewed representation.
  Bytes ByteSize() const { return count_ * sizeof(ElementId); }

  /// "{0, 3, 7}" style debug rendering.
  std::string ToString() const;

  /// Calls \p fn(ElementId) for every member element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) fn(elements_[i]);
  }

 private:
  const ElementId* elements_ = nullptr;
  std::size_t count_ = 0;
  std::size_t size_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_UTIL_SET_SPAN_H_
