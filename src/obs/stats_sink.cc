#include "obs/stats_sink.h"

#include <ostream>
#include <string>

namespace streamsc {

namespace {

/// Maps an interned dotted label onto the Prometheus metric charset
/// [a-zA-Z0-9_:]; anything else becomes '_'.
std::string Sanitize(std::string_view prefix, std::string_view name) {
  std::string result;
  result.reserve(prefix.size() + 1 + name.size());
  result.append(prefix);
  result.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    result.push_back(ok ? c : '_');
  }
  return result;
}

}  // namespace

void WritePrometheusStats(std::ostream& out, const CounterSet& counters,
                          std::string_view prefix) {
  counters.ForEachNonZero(
      [&](CounterId id, CounterKind kind, std::uint64_t value) {
        const std::string metric = Sanitize(prefix, id.name());
        out << "# TYPE " << metric << ' ' << CounterKindName(kind) << '\n'
            << metric << ' ' << value << '\n';
      });
}

void WritePrometheusHistogram(std::ostream& out,
                              const LatencyHistogram& histogram,
                              std::string_view name,
                              std::string_view prefix) {
  const std::string metric = Sanitize(prefix, name);
  out << "# TYPE " << metric << " summary\n";
  constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
  for (const double q : kQuantiles) {
    out << metric << "{quantile=\"" << q << "\"} "
        << histogram.ValueAtPercentile(q * 100.0) << '\n';
  }
  out << metric << "_sum " << histogram.sum() << '\n'
      << metric << "_count " << histogram.count() << '\n';
}

}  // namespace streamsc
