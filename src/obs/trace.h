#ifndef STREAMSC_OBS_TRACE_H_
#define STREAMSC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/function_ref.h"

/// \file trace.h
/// Pass-level tracing: per-thread preallocated span ring buffers that
/// engine workers write lock-free and the session merges at run end,
/// exported as chrome://tracing JSON (about:tracing / Perfetto loadable).
///
/// Memory model — tracing is opt-in and preserves the repo's zero-alloc
/// steady-state contract:
///  - *Armed off* (no recorder bound): every hook in the engine and the
///    solvers is a single null-pointer branch. No allocation, no clock
///    read, no atomic.
///  - *Arm time* (recorder construction): ALL ring storage is allocated
///    up front — max_threads rings of events_per_thread fixed-size slots.
///  - *Emit* (hot path): resolve the caller's ring via a thread_local
///    slot cache, write one fixed-size TraceEvent in place, bump the
///    ring head. Never allocates, never locks, never blocks.
///  - *Overflow*: the ring overwrites its oldest events; the number
///    dropped is derivable from the head position and reported by
///    dropped(). A full ring NEVER reallocates.
///
/// Threading model: each OS thread claims one ring slot on first emit
/// (an atomic slot counter + thread_local cache); after that the thread
/// is the ring's only writer. The ring head is a release-store /
/// acquire-load atomic, so the merge phase — which runs on one thread
/// after the workers quiesce — observes fully written events without any
/// extra synchronization. Threads past max_threads drop their events
/// into a (counted) void instead of racing for a ring.
///
/// Merge/export (ForEachEvent, WriteChromeTrace, Reset) are quiesced-only
/// operations: no thread may be emitting concurrently. They are allowed
/// to allocate — they run outside the measured solve window.

namespace streamsc {

/// What a span describes; becomes the chrome-trace "cat" field.
enum class TraceCategory : unsigned char {
  kSession = 0,  ///< One whole SolveSession::Solve call.
  kSolver,       ///< One solver Run (named by registry key).
  kPhase,        ///< An algorithm phase (sample, project, subsolve, ...).
  kPass,         ///< One stream pass (engine primitive granularity).
  kShard,        ///< One worker's share of one parallel job.
};

/// Printable name of a trace category ("session", "solver", ...).
const char* TraceCategoryName(TraceCategory category);

/// A named integer attached to a span. The name must be a string with
/// static storage duration (a literal): only the pointer is stored.
struct TraceArg {
  const char* name;
  std::uint64_t value;
};

/// One completed span. Fixed size; the name is copied (truncated) into
/// inline storage at emit time, so dynamically built names are safe.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 31;
  static constexpr std::size_t kMaxArgs = 4;

  std::int64_t start_ns = 0;                  ///< Steady-clock, ns.
  std::int64_t dur_ns = 0;                    ///< Span duration, ns.
  const char* arg_names[kMaxArgs] = {};       ///< Static-storage names.
  std::uint64_t arg_values[kMaxArgs] = {};
  char name[kNameCapacity + 1] = {};          ///< NUL-terminated copy.
  TraceCategory category = TraceCategory::kSession;
  unsigned char num_args = 0;
  std::uint32_t tid = 0;                      ///< Ring slot index.
};

/// The per-thread ring-buffer span recorder. Construct (arm) before the
/// run, pass through RunContext, merge after. Not copyable, not movable
/// (emitters cache raw pointers into it).
class TraceRecorder {
 public:
  struct Options {
    /// Ring capacity per thread slot, in events. Oldest events are
    /// overwritten past this; never a reallocation.
    std::size_t events_per_thread = 8192;
    /// Distinct OS threads that can claim a ring. Threads past this
    /// drop (counted) instead of recording.
    std::size_t max_threads = 16;
  };

  TraceRecorder() : TraceRecorder(Options{}) {}
  explicit TraceRecorder(Options options);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Steady-clock timestamp in nanoseconds (the recorder's time base).
  static std::int64_t NowNs();

  /// Records one completed span. Lock-free, allocation-free; safe to
  /// call from any thread, including engine workers inside jobs.
  /// \p arg_names entries must have static storage duration.
  void Emit(TraceCategory category, const char* name,
            std::int64_t start_ns, std::int64_t dur_ns,
            const TraceArg* args = nullptr, std::size_t num_args = 0);

  // --- Quiesced-only API (no concurrent emitters) -----------------------

  /// Events currently held across all rings (post-overwrite survivors).
  std::size_t events_recorded() const;

  /// Events lost: ring overwrites plus emits from threads that found
  /// every slot taken.
  std::uint64_t events_dropped() const;

  /// Thread slots claimed so far.
  std::size_t threads_seen() const;

  /// Visits every surviving event merged across rings in ascending
  /// start_ns order (ties broken by slot then sequence). Allocates a
  /// merge buffer; call only outside the measured window.
  void ForEachEvent(FunctionRef<void(const TraceEvent&)> fn) const;

  /// Writes the merged events as chrome://tracing "Trace Event Format"
  /// JSON (complete events, microsecond timestamps rebased to the
  /// earliest span). Loadable in about:tracing and Perfetto.
  void WriteChromeTrace(std::ostream& out) const;

  /// Forgets all recorded events and drop counts. Thread slots stay
  /// claimed, so warm emitters keep their rings across runs.
  void Reset();

  const Options& options() const { return options_; }

 private:
  struct ThreadLog;

  /// Returns the calling thread's ring, claiming a slot on first use;
  /// nullptr when all slots are taken.
  ThreadLog* AcquireLog();

  Options options_;
  std::uint64_t generation_;                 ///< Distinguishes recorders.
  std::vector<TraceEvent> storage_;          ///< All rings, contiguous.
  std::unique_ptr<ThreadLog[]> logs_;
  std::atomic<std::size_t> slots_used_{0};
  std::atomic<std::uint64_t> unslotted_dropped_{0};
};

/// RAII span: captures the start time at construction (when a recorder
/// is bound; a null recorder reduces every operation to one branch) and
/// emits one complete event at destruction.
///
/// The \p name pointer must outlive the span (string literals and
/// registry-owned solver keys qualify); its characters are copied into
/// the event at destruction time.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, TraceCategory category,
            const char* name)
      : recorder_(recorder),
        name_(name),
        category_(category),
        start_ns_(recorder ? TraceRecorder::NowNs() : 0) {}

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->Emit(category_, name_, start_ns_,
                    TraceRecorder::NowNs() - start_ns_, args_, num_args_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a named integer (up to TraceEvent::kMaxArgs; extras are
  /// ignored). \p name must have static storage duration.
  void AddArg(const char* name, std::uint64_t value) {
    if (recorder_ == nullptr) return;
    if (num_args_ >= TraceEvent::kMaxArgs) return;
    args_[num_args_++] = TraceArg{name, value};
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  TraceCategory category_;
  std::int64_t start_ns_;
  TraceArg args_[TraceEvent::kMaxArgs] = {};
  std::size_t num_args_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_OBS_TRACE_H_
