#ifndef STREAMSC_OBS_COUNTERS_H_
#define STREAMSC_OBS_COUNTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/function_ref.h"

/// \file counters.h
/// String-interned counter registry: the single place pass/scan/shard/
/// arena statistics live.
///
/// A CounterId resolves a name to a small process-wide index once (the
/// same interning model as SpaceCategory: mutex + fixed name table, first
/// intern may allocate, later interns just find the entry). After that,
/// every update is an array index into a CounterSet's inline values — no
/// hashing, no allocation, no locking on the hot path.
///
/// Two kinds exist:
///  - kCounter: monotonic (Add); shards merge by summation.
///  - kGauge:   high-water (RecordMax); shards merge by max.
/// Interning the same name under both kinds is a registration bug and
/// CHECK-fails, so a name's merge semantics are process-wide consistent.
///
/// Determinism contract: a CounterSet is plain data (an inline uint64
/// array). Per-worker sets merged via MergeFrom produce identical totals
/// for any merge order — summation and max are commutative and
/// associative — which keeps the repo's bit-identical-for-any-thread-count
/// guarantee intact when counters replace ad-hoc stats fields.

namespace streamsc {

/// Merge/export semantics of an interned counter name.
enum class CounterKind : unsigned char {
  kCounter = 0,  ///< Monotonic; merged by summation.
  kGauge = 1,    ///< High-water; merged by max.
};

/// Printable name of a counter kind ("counter" / "gauge").
const char* CounterKindName(CounterKind kind);

/// Hard cap on distinct counter names per process. Counters are
/// hand-written labels, not data-driven: a handful per layer.
inline constexpr std::size_t kMaxCounters = 64;

/// An interned counter handle: name -> stable small index, resolved once.
/// Copyable, trivially passable by value. CHECK-fails past kMaxCounters
/// distinct names or when a name is re-interned under the other kind.
class CounterId {
 public:
  /// Interns \p name as a monotonic counter.
  static CounterId Counter(std::string_view name);

  /// Interns \p name as a high-water gauge.
  static CounterId Gauge(std::string_view name);

  /// The stable per-process index of this counter.
  std::size_t index() const { return index_; }

  /// The interned name (points into the process-wide registry).
  std::string_view name() const;

  /// The merge kind this name was registered under.
  CounterKind kind() const;

  friend bool operator==(CounterId a, CounterId b) {
    return a.index_ == b.index_;
  }
  friend bool operator!=(CounterId a, CounterId b) { return !(a == b); }

 private:
  friend class CounterSet;

  explicit CounterId(std::size_t index) : index_(index) {}

  std::size_t index_;
};

/// One shard of counter values: an inline array indexed by interned id.
/// Trivially copyable, allocation-free, not thread-safe (one set per
/// worker / per run; merge after the workers quiesce).
class CounterSet {
 public:
  /// Adds \p delta to a monotonic counter.
  void Add(CounterId id, std::uint64_t delta) {
    values_[id.index()] += delta;
  }

  /// Raises a high-water gauge to at least \p value.
  void RecordMax(CounterId id, std::uint64_t value) {
    if (value > values_[id.index()]) values_[id.index()] = value;
  }

  /// Current value of one counter (0 if never touched).
  std::uint64_t value(CounterId id) const { return values_[id.index()]; }

  /// Deterministic shard merge: counters sum, gauges max. The result is
  /// independent of merge order and of how work was split across shards
  /// for every counter whose per-shard totals are themselves
  /// deterministic.
  void MergeFrom(const CounterSet& other);

  /// Zeroes every value (interned names are unaffected).
  void Clear() { values_.fill(0); }

  /// True when every value is zero.
  bool Empty() const;

  /// Visits the non-zero values in interned-index order (stable within a
  /// process run).
  void ForEachNonZero(
      FunctionRef<void(CounterId, CounterKind, std::uint64_t)> fn) const;

 private:
  std::array<std::uint64_t, kMaxCounters> values_{};
};

}  // namespace streamsc

#endif  // STREAMSC_OBS_COUNTERS_H_
