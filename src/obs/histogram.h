#ifndef STREAMSC_OBS_HISTOGRAM_H_
#define STREAMSC_OBS_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

/// \file histogram.h
/// HdrHistogram-style fixed-bucket latency histogram.
///
/// Log-linear bucketing: values below 2^kSubBits land in exact unit
/// buckets; above that, each power-of-two octave is split into
/// 2^(kSubBits-1) linear sub-buckets, giving a bounded relative error of
/// 2^-(kSubBits-1) (~6% at kSubBits=5) across the full uint64 range.
/// Everything is inline storage: Record is an index computation plus one
/// increment — no allocation, ready for the solve daemon's per-request
/// p50/p99 tracking.

namespace streamsc {

/// Fixed-bucket value histogram (latencies in ns, sizes in bytes, ...).
/// Trivially copyable; not thread-safe (one per worker, Merge after).
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kHalfCount = std::size_t{1}
                                            << (kSubBits - 1);
  /// Max exponent for 64-bit values is 64 - kSubBits; one extra row
  /// rounds the table up.
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 2)
                                              << (kSubBits - 1);

  /// Adds one observation.
  void Record(std::uint64_t value) {
    ++buckets_[BucketIndex(value)];
    ++count_;
    if (value > max_) max_ = value;
    if (count_ == 1 || value < min_) min_ = value;
    sum_ += value;
  }

  /// Observations recorded since construction / Clear.
  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }

  /// The value at-or-below which \p percentile (in [0,100]) of the
  /// observations fall; reported as the containing bucket's inclusive
  /// upper bound (HdrHistogram's "highest equivalent value"), clamped to
  /// the observed max. Returns 0 on an empty histogram.
  std::uint64_t ValueAtPercentile(double percentile) const {
    if (count_ == 0) return 0;
    if (percentile < 0.0) percentile = 0.0;
    if (percentile > 100.0) percentile = 100.0;
    // Rank of the target observation, 1-based, rounded up.
    std::uint64_t rank =
        static_cast<std::uint64_t>(percentile * 0.01 *
                                   static_cast<double>(count_) +
                                   0.5);
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        const std::uint64_t high = BucketHigh(i);
        return high < max_ ? high : max_;
      }
    }
    return max_;
  }

  /// Adds another histogram's observations into this one.
  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
      count_ += other.count_;
      sum_ += other.sum_;
    }
  }

  /// Forgets all observations.
  void Clear() { *this = LatencyHistogram(); }

  /// Bucket index for \p value (exposed for tests).
  static std::size_t BucketIndex(std::uint64_t value) {
    const int width = std::bit_width(value);
    if (width <= static_cast<int>(kSubBits)) {
      return static_cast<std::size_t>(value);
    }
    const int exponent = width - static_cast<int>(kSubBits);
    // The top kSubBits bits of value, in [kHalfCount, 2*kHalfCount).
    const std::uint64_t sub = value >> exponent;
    return static_cast<std::size_t>(exponent) * kHalfCount +
           static_cast<std::size_t>(sub);
  }

  /// Inclusive upper bound of bucket \p index (exposed for tests).
  static std::uint64_t BucketHigh(std::size_t index) {
    if (index < (std::size_t{1} << kSubBits)) {
      return static_cast<std::uint64_t>(index);
    }
    const std::size_t exponent = index / kHalfCount - 1;
    const std::uint64_t sub = index - exponent * kHalfCount;
    return ((sub + 1) << exponent) - 1;
  }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_OBS_HISTOGRAM_H_
