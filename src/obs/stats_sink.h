#ifndef STREAMSC_OBS_STATS_SINK_H_
#define STREAMSC_OBS_STATS_SINK_H_

#include <iosfwd>
#include <string_view>

#include "obs/counters.h"
#include "obs/histogram.h"

/// \file stats_sink.h
/// Text export of counters and histograms in the Prometheus exposition
/// format (text/plain; version 0.0.4) — the service-stats surface the
/// solve daemon will serve from its /metrics endpoint.
///
/// Counter names are interned dotted labels ("engine.items_scanned");
/// the sink sanitizes them to the Prometheus charset (dots and dashes
/// become underscores) and prefixes them with the exporter name:
///   streamsc_engine_items_scanned 123456
/// Monotonic counters export as TYPE counter, high-water gauges as TYPE
/// gauge. Histograms export as TYPE summary with p50/p90/p99 quantiles
/// plus _sum and _count.

namespace streamsc {

/// Writes every non-zero counter of \p counters, prefixed by \p prefix.
void WritePrometheusStats(std::ostream& out, const CounterSet& counters,
                          std::string_view prefix = "streamsc");

/// Writes \p histogram as a Prometheus summary named
/// "<prefix>_<name>" with p50/p90/p99 quantiles, _sum and _count.
void WritePrometheusHistogram(std::ostream& out,
                              const LatencyHistogram& histogram,
                              std::string_view name,
                              std::string_view prefix = "streamsc");

}  // namespace streamsc

#endif  // STREAMSC_OBS_STATS_SINK_H_
