#include "obs/counters.h"

#include <mutex>
#include <string>

#include "util/check.h"

namespace streamsc {

namespace {

/// Process-wide intern table. Mirrors the SpaceCategory registry: a
/// mutex-guarded fixed array of names, linear-scanned on intern (the
/// table is tiny and interning is cold — hot paths hold a CounterId).
struct CounterRegistry {
  std::mutex mu;
  std::array<std::string, kMaxCounters> names;
  std::array<CounterKind, kMaxCounters> kinds;
  std::size_t count = 0;
};

CounterRegistry& Registry() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

std::size_t Intern(std::string_view name, CounterKind kind) {
  CounterRegistry& registry = Registry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (std::size_t i = 0; i < registry.count; ++i) {
    if (registry.names[i] == name) {
      STREAMSC_CHECK(registry.kinds[i] == kind,
                     "counter name re-interned under a different kind");
      return i;
    }
  }
  STREAMSC_CHECK(registry.count < kMaxCounters,
                 "too many distinct counter names (kMaxCounters)");
  registry.names[registry.count] = std::string(name);
  registry.kinds[registry.count] = kind;
  return registry.count++;
}

}  // namespace

const char* CounterKindName(CounterKind kind) {
  return kind == CounterKind::kCounter ? "counter" : "gauge";
}

CounterId CounterId::Counter(std::string_view name) {
  return CounterId(Intern(name, CounterKind::kCounter));
}

CounterId CounterId::Gauge(std::string_view name) {
  return CounterId(Intern(name, CounterKind::kGauge));
}

std::string_view CounterId::name() const {
  // Registered names are immutable once interned; reading without the
  // mutex is safe because index_ proves the entry was fully published.
  return Registry().names[index_];
}

CounterKind CounterId::kind() const { return Registry().kinds[index_]; }

void CounterSet::MergeFrom(const CounterSet& other) {
  CounterRegistry& registry = Registry();
  std::size_t count;
  {
    const std::lock_guard<std::mutex> lock(registry.mu);
    count = registry.count;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (registry.kinds[i] == CounterKind::kCounter) {
      values_[i] += other.values_[i];
    } else if (other.values_[i] > values_[i]) {
      values_[i] = other.values_[i];
    }
  }
}

bool CounterSet::Empty() const {
  for (const std::uint64_t value : values_) {
    if (value != 0) return false;
  }
  return true;
}

void CounterSet::ForEachNonZero(
    FunctionRef<void(CounterId, CounterKind, std::uint64_t)> fn) const {
  CounterRegistry& registry = Registry();
  std::size_t count;
  {
    const std::lock_guard<std::mutex> lock(registry.mu);
    count = registry.count;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (values_[i] != 0) fn(CounterId(i), registry.kinds[i], values_[i]);
  }
}

}  // namespace streamsc
