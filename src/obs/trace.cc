#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace streamsc {

namespace {

/// Process-unique id per OS thread: lets a thread re-find its claimed
/// ring slot after the thread_local cache was evicted by a different
/// recorder.
std::uint64_t ThreadUid() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t uid =
      next.fetch_add(1, std::memory_order_relaxed);
  return uid;
}

std::atomic<std::uint64_t> g_next_generation{1};

/// One-entry per-thread cache of the last recorder's resolved ring.
/// `resolved` distinguishes "cache empty" from "resolved to unslotted".
struct SlotCache {
  std::uint64_t generation = 0;
  void* log = nullptr;
  bool resolved = false;
};
thread_local SlotCache g_slot_cache;

void AppendEscapedJson(std::ostream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out << '\\' << *p;
    } else if (c < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out << buffer;
    } else {
      out << *p;
    }
  }
}

/// Chrome-trace timestamps are microseconds; emit ns-resolution as a
/// fixed-point decimal so span nesting stays exact.
void AppendMicros(std::ostream& out, std::int64_t ns) {
  if (ns < 0) ns = 0;  // steady-clock spans can't be negative; be safe
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out << buffer;
}

}  // namespace

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kSession:
      return "session";
    case TraceCategory::kSolver:
      return "solver";
    case TraceCategory::kPhase:
      return "phase";
    case TraceCategory::kPass:
      return "pass";
    case TraceCategory::kShard:
      return "shard";
  }
  return "unknown";
}

struct TraceRecorder::ThreadLog {
  TraceEvent* events = nullptr;
  std::size_t capacity = 0;
  /// Total events ever emitted to this ring; the ring index is
  /// head % capacity, and head - capacity (when positive) is the count
  /// of overwritten (dropped-oldest) events. Release-stored after the
  /// event body is written, acquire-loaded by the merge phase.
  std::atomic<std::uint64_t> head{0};
  /// ThreadUid of the claiming thread (0 = unclaimed).
  std::atomic<std::uint64_t> owner{0};
};

TraceRecorder::TraceRecorder(Options options)
    : options_(options),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {
  STREAMSC_CHECK(options_.events_per_thread > 0,
                 "TraceRecorder needs at least one event per thread");
  STREAMSC_CHECK(options_.max_threads > 0,
                 "TraceRecorder needs at least one thread slot");
  // Arm time: the one place the recorder allocates. Every ring lives in
  // one contiguous block; emits only ever write into it in place.
  storage_.resize(options_.max_threads * options_.events_per_thread);
  logs_ = std::make_unique<ThreadLog[]>(options_.max_threads);
  for (std::size_t i = 0; i < options_.max_threads; ++i) {
    logs_[i].events = storage_.data() + i * options_.events_per_thread;
    logs_[i].capacity = options_.events_per_thread;
  }
}

TraceRecorder::~TraceRecorder() = default;

std::int64_t TraceRecorder::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::ThreadLog* TraceRecorder::AcquireLog() {
  SlotCache& cache = g_slot_cache;
  if (cache.resolved && cache.generation == generation_) {
    return static_cast<ThreadLog*>(cache.log);
  }
  // Slow path: first emit from this thread to this recorder since the
  // cache last pointed elsewhere. Re-attach to an already-claimed slot
  // if one exists, else claim the next free one.
  const std::uint64_t uid = ThreadUid();
  const std::size_t used = std::min(
      slots_used_.load(std::memory_order_acquire), options_.max_threads);
  ThreadLog* log = nullptr;
  for (std::size_t i = 0; i < used; ++i) {
    if (logs_[i].owner.load(std::memory_order_acquire) == uid) {
      log = &logs_[i];
      break;
    }
  }
  if (log == nullptr) {
    const std::size_t slot =
        slots_used_.fetch_add(1, std::memory_order_acq_rel);
    if (slot < options_.max_threads) {
      log = &logs_[slot];
      log->owner.store(uid, std::memory_order_release);
    }
  }
  cache.generation = generation_;
  cache.log = log;
  cache.resolved = true;
  return log;
}

void TraceRecorder::Emit(TraceCategory category, const char* name,
                         std::int64_t start_ns, std::int64_t dur_ns,
                         const TraceArg* args, std::size_t num_args) {
  ThreadLog* log = AcquireLog();
  if (log == nullptr) {
    unslotted_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t head = log->head.load(std::memory_order_relaxed);
  TraceEvent& event = log->events[head % log->capacity];
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.category = category;
  event.tid = static_cast<std::uint32_t>(log - logs_.get());
  const std::size_t n =
      num_args < TraceEvent::kMaxArgs ? num_args : TraceEvent::kMaxArgs;
  for (std::size_t i = 0; i < n; ++i) {
    event.arg_names[i] = args[i].name;
    event.arg_values[i] = args[i].value;
  }
  event.num_args = static_cast<unsigned char>(n);
  std::size_t i = 0;
  for (; i < TraceEvent::kNameCapacity && name[i] != '\0'; ++i) {
    event.name[i] = name[i];
  }
  event.name[i] = '\0';
  log->head.store(head + 1, std::memory_order_release);
}

std::size_t TraceRecorder::threads_seen() const {
  return std::min(slots_used_.load(std::memory_order_acquire),
                  options_.max_threads);
}

std::size_t TraceRecorder::events_recorded() const {
  std::size_t total = 0;
  const std::size_t used = threads_seen();
  for (std::size_t i = 0; i < used; ++i) {
    const std::uint64_t head = logs_[i].head.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(head, logs_[i].capacity));
  }
  return total;
}

std::uint64_t TraceRecorder::events_dropped() const {
  std::uint64_t total = unslotted_dropped_.load(std::memory_order_relaxed);
  const std::size_t used = threads_seen();
  for (std::size_t i = 0; i < used; ++i) {
    const std::uint64_t head = logs_[i].head.load(std::memory_order_acquire);
    if (head > logs_[i].capacity) total += head - logs_[i].capacity;
  }
  return total;
}

void TraceRecorder::ForEachEvent(
    FunctionRef<void(const TraceEvent&)> fn) const {
  struct Entry {
    const TraceEvent* event;
    std::uint64_t seq;
  };
  std::vector<Entry> merged;
  merged.reserve(events_recorded());
  const std::size_t used = threads_seen();
  for (std::size_t i = 0; i < used; ++i) {
    const ThreadLog& log = logs_[i];
    const std::uint64_t head = log.head.load(std::memory_order_acquire);
    const std::uint64_t first = head > log.capacity ? head - log.capacity : 0;
    for (std::uint64_t seq = first; seq < head; ++seq) {
      merged.push_back(Entry{&log.events[seq % log.capacity], seq});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Entry& a, const Entry& b) {
    if (a.event->start_ns != b.event->start_ns) {
      return a.event->start_ns < b.event->start_ns;
    }
    if (a.event->tid != b.event->tid) return a.event->tid < b.event->tid;
    return a.seq < b.seq;
  });
  for (const Entry& entry : merged) fn(*entry.event);
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  // Rebase timestamps to the earliest span so the viewer opens at t=0.
  std::int64_t base_ns = 0;
  bool have_base = false;
  ForEachEvent([&](const TraceEvent& event) {
    if (!have_base || event.start_ns < base_ns) {
      base_ns = event.start_ns;
      have_base = true;
    }
  });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"streamsc\"}}";
  const std::size_t used = threads_seen();
  for (std::size_t i = 0; i < used; ++i) {
    out << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << i
        << ",\"args\":{\"name\":\"slot-" << i << "\"}}";
  }
  ForEachEvent([&](const TraceEvent& event) {
    out << ",\n{\"name\":\"";
    AppendEscapedJson(out, event.name);
    out << "\",\"cat\":\"" << TraceCategoryName(event.category)
        << "\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, event.start_ns - base_ns);
    out << ",\"dur\":";
    AppendMicros(out, event.dur_ns);
    out << ",\"pid\":1,\"tid\":" << event.tid;
    if (event.num_args > 0) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < event.num_args; ++i) {
        if (i > 0) out << ',';
        out << '"';
        AppendEscapedJson(out, event.arg_names[i]);
        out << "\":" << event.arg_values[i];
      }
      out << '}';
    }
    out << '}';
  });
  out << "\n]}\n";
}

void TraceRecorder::Reset() {
  const std::size_t used = threads_seen();
  for (std::size_t i = 0; i < used; ++i) {
    logs_[i].head.store(0, std::memory_order_relaxed);
  }
  unslotted_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace streamsc
