#include "offline/exact_set_cover.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>

#include "offline/greedy.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/math.h"

namespace streamsc {
namespace {

/// 128-bit content key for a bitset (two independent multiplicative
/// hashes), used by the transposition table. Collision probability over
/// millions of entries is negligible (~2^-90).
struct StateKey {
  std::uint64_t h1;
  std::uint64_t h2;
  bool operator==(const StateKey& o) const { return h1 == o.h1 && h2 == o.h2; }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    return static_cast<std::size_t>(k.h1 ^ (k.h2 * 0x9e3779b97f4a7c15ull));
  }
};

StateKey KeyOf(const DynamicBitset& bs) {
  std::uint64_t h1 = 0x243f6a8885a308d3ull;
  std::uint64_t h2 = 0x13198a2e03707344ull;
  bs.ForEach([&](ElementId e) {
    h1 = (h1 ^ (e + 0x9e3779b97f4a7c15ull)) * 0xff51afd7ed558ccdull;
    h2 = (h2 + e) * 0xc4ceb9fe1a85ec53ull + (h2 >> 29);
  });
  return {h1, h2};
}

/// Shared search state for the branch-and-bound recursion. Call-scoped
/// (outlives the interleaved LIFO rewinds of the scratch arena), so its
/// containers live on the thread's table arena — the solve entry point
/// brackets it with a checkpoint.
struct SearchState {
  const SetSystem* system = nullptr;
  ExactSetCoverOptions options;
  ArenaVector<SetId> current{ArenaAllocator<SetId>::Table()};
  ArenaVector<SetId> best{ArenaAllocator<SetId>::Table()};
  bool best_feasible = false;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  // Transposition table: uncovered-state -> smallest depth at which it was
  // fully explored. Re-visiting at the same or greater depth is redundant.
  using SeenAlloc = ArenaAllocator<std::pair<const StateKey, std::size_t>>;
  std::unordered_map<StateKey, std::size_t, StateKeyHash,
                     std::equal_to<StateKey>, SeenAlloc>
      seen{SeenAlloc::Table()};
};

// Returns an uncovered element with (approximately) the fewest covering
// sets. Scans at most 64 uncovered elements: min-degree is a branching
// heuristic, so an approximate argmin is fine and keeps node cost bounded.
ElementId PickBranchElement(const SearchState& state,
                            const DynamicBitset& uncovered,
                            std::size_t& degree_out) {
  ElementId best_e = kInvalidElementId;
  std::size_t best_degree = ~std::size_t{0};
  std::size_t scanned = 0;
  for (ElementId e = uncovered.FindFirst();
       e != kInvalidElementId && scanned < 64 && best_degree > 1;
       e = uncovered.FindNext(e), ++scanned) {
    std::size_t degree = 0;
    for (SetId i = 0; i < state.system->num_sets(); ++i) {
      if (state.system->set(i).Test(e)) {
        if (++degree >= best_degree) break;
      }
    }
    if (degree < best_degree) {
      best_degree = degree;
      best_e = e;
    }
  }
  degree_out = (best_e == kInvalidElementId) ? 0 : best_degree;
  return best_e;
}

void Search(SearchState& state, const DynamicBitset& uncovered) {
  if (state.budget_exhausted) return;
  if (++state.nodes > state.options.max_nodes) {
    state.budget_exhausted = true;
    return;
  }
  if (uncovered.None()) {
    if (!state.best_feasible || state.current.size() < state.best.size()) {
      state.best = state.current;
      state.best_feasible = true;
    }
    return;
  }

  const std::size_t budget =
      std::min(state.options.size_limit,
               state.best_feasible ? state.best.size() - 1 : ~std::size_t{0});
  if (state.current.size() >= budget) return;

  // Transposition pruning: if this uncovered state was already explored at
  // a depth <= ours, nothing new can be found here.
  const StateKey key = KeyOf(uncovered);
  auto [it, inserted] = state.seen.try_emplace(key, state.current.size());
  if (!inserted) {
    if (it->second <= state.current.size()) return;
    it->second = state.current.size();
  }

  // Per-node counting lower bound using the best achievable single-set
  // gain against the *current* uncovered region.
  const Count remaining = uncovered.CountSet();
  Count max_gain = 0;
  for (SetId i = 0; i < state.system->num_sets(); ++i) {
    max_gain = std::max(max_gain, state.system->set(i).CountAnd(uncovered));
  }
  if (max_gain == 0) return;  // infeasible branch
  const std::size_t lb =
      static_cast<std::size_t>(CeilDiv(remaining, max_gain));
  if (state.current.size() + lb > budget) return;

  std::size_t degree = 0;
  const ElementId e = PickBranchElement(state, uncovered, degree);
  if (degree == 0) return;  // e is coverable by no set: infeasible branch

  // Per-node temporaries stage LIFO in the scratch arena: the candidate
  // list under a node checkpoint, each branch bitset under a per-child
  // checkpoint so sibling subtrees reuse the same bytes.
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint node_checkpoint(scratch);

  // Candidate sets containing e, largest marginal gain first.
  using Candidate = std::pair<Count, SetId>;
  ArenaVector<Candidate> candidates{ArenaAllocator<Candidate>(&scratch)};
  candidates.reserve(degree);
  for (SetId i = 0; i < state.system->num_sets(); ++i) {
    if (state.system->set(i).Test(e)) {
      candidates.emplace_back(state.system->set(i).CountAnd(uncovered), i);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });

  for (const auto& [gain, id] : candidates) {
    (void)gain;
    if (state.budget_exhausted) return;
    state.current.push_back(id);
    {
      const ArenaCheckpoint child_checkpoint(scratch);
      DynamicBitset next(uncovered, DynamicBitset::Allocator(&scratch));
      state.system->set(id).AndNotInto(next);
      Search(state, next);
    }
    state.current.pop_back();
  }
}

}  // namespace

ExactSetCoverResult SolveExactSetCover(const SetSystem& system,
                                       const DynamicBitset& universe,
                                       const ExactSetCoverOptions& options,
                                       ArenaAllocator<SetId> result_alloc) {
  STREAMSC_DCHECK(universe.size() == system.universe_size());
  ExactSetCoverResult result;
  result.solution = Solution(result_alloc);
  if (universe.None()) {
    result.feasible = true;
    result.proven_optimal = true;
    return result;
  }

  // Bracket the call-scoped search state (incumbent vectors, transposition
  // table) on the table arena. The checkpoint outlives the inner scope, so
  // the containers are destroyed (deallocate is a no-op) before the bytes
  // are reclaimed; the result was copied into result_alloc by then.
  const ArenaCheckpoint table_checkpoint(ThreadTableArena());
  {
    SearchState state;
    state.system = &system;
    state.options = options;

    // Greedy warm start gives the incumbent upper bound (if feasible and
    // within the requested size limit). The warm-start solution is
    // call-scoped too, so it lands on the table arena alongside the state.
    const Solution greedy =
        GreedySetCover(system, universe, ArenaAllocator<SetId>::Table());
    {
      MonotonicArena& scratch = ThreadScratchArena();
      const ArenaCheckpoint checkpoint(scratch);
      if (universe.IsSubsetOf(system.UnionOf(
              greedy.chosen, DynamicBitset::Allocator(&scratch))) &&
          greedy.chosen.size() <= options.size_limit) {
        state.best.assign(greedy.chosen.begin(), greedy.chosen.end());
        state.best_feasible = true;
      }
    }

    Search(state, universe);

    result.solution.chosen.assign(state.best.begin(), state.best.end());
    result.feasible = state.best_feasible;
    result.complete = !state.budget_exhausted;
    result.proven_optimal = state.best_feasible && result.complete;
    result.nodes = state.nodes;
  }
  return result;
}

ExactSetCoverResult SolveExactSetCover(const SetSystem& system,
                                       const ExactSetCoverOptions& options,
                                       ArenaAllocator<SetId> result_alloc) {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return SolveExactSetCover(
      system,
      DynamicBitset::Full(system.universe_size(),
                          DynamicBitset::Allocator(&scratch)),
      options, result_alloc);
}

}  // namespace streamsc
