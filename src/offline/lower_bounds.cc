#include "offline/lower_bounds.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace streamsc {
namespace {

// Max |S_i ∩ universe| over all sets; 0 when every set misses universe.
Count MaxRestrictedSize(const SetSystem& system,
                        const DynamicBitset& universe) {
  Count best = 0;
  for (SetId id = 0; id < system.num_sets(); ++id) {
    best = std::max(best, system.set(id).CountAnd(universe));
  }
  return best;
}

}  // namespace

std::size_t SizeLowerBound(const SetSystem& system,
                           const DynamicBitset& universe) {
  const Count coverable = (system.UnionAll() & universe).CountSet();
  if (coverable == 0) return 0;
  const Count max_size = MaxRestrictedSize(system, universe);
  return static_cast<std::size_t>(
      (coverable + max_size - 1) / max_size);
}

std::size_t PackingLowerBound(const SetSystem& system,
                              const DynamicBitset& universe) {
  const std::size_t n = system.universe_size();

  // Frequency (number of containing sets) per element; 0-frequency
  // elements are uncoverable and excluded.
  std::vector<std::uint32_t> frequency(n, 0);
  for (SetId id = 0; id < system.num_sets(); ++id) {
    system.set(id).ForEach([&](ElementId e) { ++frequency[e]; });
  }

  std::vector<ElementId> candidates;
  universe.ForEach([&](ElementId e) {
    if (frequency[e] > 0) candidates.push_back(e);
  });
  // Low-frequency elements first: they block the fewest future picks.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](ElementId a, ElementId b) {
                     return frequency[a] < frequency[b];
                   });

  DynamicBitset blocked(n);  // union of all sets containing a picked element
  std::size_t picked = 0;
  for (const ElementId e : candidates) {
    if (blocked.Test(e)) continue;
    ++picked;
    for (SetId id = 0; id < system.num_sets(); ++id) {
      if (system.set(id).Test(e)) system.set(id).OrInto(blocked);
    }
  }
  return picked;
}

std::size_t DualLowerBound(const SetSystem& system,
                           const DynamicBitset& universe) {
  const std::size_t n = system.universe_size();
  // max restricted size of a set containing each element.
  std::vector<Count> max_containing(n, 0);
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const Count restricted = system.set(id).CountAnd(universe);
    if (restricted == 0) continue;
    system.set(id).ForEach([&](ElementId e) {
      max_containing[e] = std::max(max_containing[e], restricted);
    });
  }
  double dual = 0.0;
  universe.ForEach([&](ElementId e) {
    if (max_containing[e] > 0) {
      dual += 1.0 / static_cast<double>(max_containing[e]);
    }
  });
  // Guard against FP dust pushing e.g. 3.0000000001 up to 4.
  return static_cast<std::size_t>(std::ceil(dual - 1e-9));
}

std::size_t BestLowerBound(const SetSystem& system,
                           const DynamicBitset& universe) {
  return std::max({SizeLowerBound(system, universe),
                   PackingLowerBound(system, universe),
                   DualLowerBound(system, universe)});
}

std::size_t SizeLowerBound(const SetSystem& system) {
  return SizeLowerBound(system, DynamicBitset::Full(system.universe_size()));
}

std::size_t PackingLowerBound(const SetSystem& system) {
  return PackingLowerBound(system,
                           DynamicBitset::Full(system.universe_size()));
}

std::size_t DualLowerBound(const SetSystem& system) {
  return DualLowerBound(system, DynamicBitset::Full(system.universe_size()));
}

std::size_t BestLowerBound(const SetSystem& system) {
  return BestLowerBound(system, DynamicBitset::Full(system.universe_size()));
}

}  // namespace streamsc
