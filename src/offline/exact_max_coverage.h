#ifndef STREAMSC_OFFLINE_EXACT_MAX_COVERAGE_H_
#define STREAMSC_OFFLINE_EXACT_MAX_COVERAGE_H_

#include <cstdint>

#include "instance/set_system.h"
#include "util/arena.h"

/// \file exact_max_coverage.h
/// Exact maximum k-coverage via branch-and-bound with a top-k marginal
/// upper bound. Intended for the small k the paper uses (k = 2 in D_MC,
/// k = õpt in Algorithm 1's sub-instances); complexity grows as roughly
/// m^k without pruning.
///
/// Arena discipline mirrors exact_set_cover.h: per-node temporaries stage
/// LIFO in the thread's scratch arena, the call-scoped incumbent brackets
/// the table arena, and \p result_alloc (which must be neither binding)
/// backs the returned solution.

namespace streamsc {

/// Tuning knobs for the exact max coverage search.
struct ExactMaxCoverageOptions {
  std::uint64_t max_nodes = 50'000'000;
};

/// Result of an exact max coverage solve.
struct ExactMaxCoverageResult {
  Solution solution;       ///< Best k (or fewer) sets found.
  Count coverage = 0;      ///< Elements of the target universe covered.
  bool proven_optimal = false;
  std::uint64_t nodes = 0;
};

/// Maximizes |union of k chosen sets ∩ universe|.
ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, const DynamicBitset& universe, std::size_t k,
    const ExactMaxCoverageOptions& options = {},
    ArenaAllocator<SetId> result_alloc = {});

/// Full-universe variant.
ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, std::size_t k,
    const ExactMaxCoverageOptions& options = {},
    ArenaAllocator<SetId> result_alloc = {});

}  // namespace streamsc

#endif  // STREAMSC_OFFLINE_EXACT_MAX_COVERAGE_H_
