#include "offline/verifier.h"

#include <limits>

namespace streamsc {

CoverVerdict VerifyCover(const SetSystem& system, const Solution& solution,
                         const DynamicBitset& universe) {
  CoverVerdict verdict;
  verdict.universe_size = universe.CountSet();
  verdict.solution_size = solution.chosen.size();
  const DynamicBitset covered = system.UnionOf(solution.chosen);
  verdict.covered = covered.CountAnd(universe);
  verdict.feasible = verdict.covered == verdict.universe_size;
  return verdict;
}

CoverVerdict VerifyCover(const SetSystem& system, const Solution& solution) {
  return VerifyCover(system, solution,
                     DynamicBitset::Full(system.universe_size()));
}

double ApproximationRatio(std::size_t solution_size, std::size_t opt_size) {
  if (opt_size == 0) {
    return solution_size == 0 ? 1.0
                              : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(solution_size) / static_cast<double>(opt_size);
}

}  // namespace streamsc
