#ifndef STREAMSC_OFFLINE_EXACT_SET_COVER_H_
#define STREAMSC_OFFLINE_EXACT_SET_COVER_H_

#include <cstdint>

#include "instance/set_system.h"
#include "util/arena.h"

/// \file exact_set_cover.h
/// Exact minimum set cover via branch-and-bound.
///
/// The streaming model of the paper does not restrict computation time, and
/// Algorithm 1 (step 3c) explicitly requires an *optimal* cover of the
/// in-memory sub-instance. This solver provides that: min-degree element
/// branching, greedy warm start, a counting lower bound, and a node budget
/// after which it degrades gracefully to the best solution found (flagged
/// as not proven optimal).
///
/// Arena discipline: per-node temporaries (candidate lists, branch
/// bitsets) stage LIFO in the calling thread's scratch arena; the
/// call-scoped search state (incumbent, transposition table) brackets the
/// thread's table arena and is rewound before returning. \p result_alloc
/// backs the returned solution and therefore must be neither the scratch
/// nor the table binding — pass a pinned run arena or the heap default.

namespace streamsc {

/// Tuning knobs for the branch-and-bound search.
struct ExactSetCoverOptions {
  /// Maximum number of search nodes before giving up on optimality.
  std::uint64_t max_nodes = 50'000'000;
  /// Optional upper bound on solution size; the search only looks for
  /// covers strictly smaller than incumbent bounds anyway, but callers
  /// with a known budget (e.g. õpt) can prune harder.
  std::size_t size_limit = ~std::size_t{0};
};

/// Result of an exact solve.
struct ExactSetCoverResult {
  /// Best cover found (empty if the target universe is empty; also empty
  /// if infeasible — check `feasible`).
  Solution solution;
  /// True iff `solution` covers the requested universe.
  bool feasible = false;
  /// True iff the search ran to completion (node budget not hit). When
  /// complete && !feasible, there is provably no cover within
  /// options.size_limit — the decision primitive the D_SC experiments use.
  bool complete = false;
  /// True iff the solver proved `solution` minimum among covers of size
  /// <= options.size_limit.
  bool proven_optimal = false;
  /// Search nodes expanded.
  std::uint64_t nodes = 0;
};

/// Finds a minimum collection of sets covering \p universe.
ExactSetCoverResult SolveExactSetCover(
    const SetSystem& system, const DynamicBitset& universe,
    const ExactSetCoverOptions& options = {},
    ArenaAllocator<SetId> result_alloc = {});

/// Finds a minimum cover of the system's full universe.
ExactSetCoverResult SolveExactSetCover(
    const SetSystem& system, const ExactSetCoverOptions& options = {},
    ArenaAllocator<SetId> result_alloc = {});

}  // namespace streamsc

#endif  // STREAMSC_OFFLINE_EXACT_SET_COVER_H_
