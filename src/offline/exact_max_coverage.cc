#include "offline/exact_max_coverage.h"

#include <algorithm>
#include <vector>

#include "offline/greedy.h"
#include "util/check.h"

namespace streamsc {
namespace {

struct SearchState {
  const SetSystem* system = nullptr;
  ExactMaxCoverageOptions options;
  std::size_t k = 0;
  std::vector<SetId> current;
  std::vector<SetId> best;
  Count best_coverage = 0;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  // Sets ordered by raw size (descending) — the branch order.
  std::vector<SetId> order;
};

void Search(SearchState& state, const DynamicBitset& covered,
            Count covered_count, std::size_t order_pos) {
  if (state.budget_exhausted) return;
  if (++state.nodes > state.options.max_nodes) {
    state.budget_exhausted = true;
    return;
  }
  if (covered_count > state.best_coverage) {
    state.best_coverage = covered_count;
    state.best = state.current;
  }
  if (state.current.size() == state.k || order_pos >= state.order.size()) {
    return;
  }

  // Upper bound: current coverage + sum of the top (k - depth) marginal
  // gains among remaining sets. Computing exact marginals for all
  // remaining sets is the dominant node cost but prunes aggressively.
  const std::size_t picks_left = state.k - state.current.size();
  std::vector<std::pair<Count, SetId>> gains;
  gains.reserve(state.order.size() - order_pos);
  for (std::size_t p = order_pos; p < state.order.size(); ++p) {
    const SetId id = state.order[p];
    const Count gain = state.system->set(id).CountAndNot(covered);
    if (gain > 0) gains.emplace_back(gain, id);
  }
  std::sort(gains.begin(), gains.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  Count ub = covered_count;
  for (std::size_t j = 0; j < picks_left && j < gains.size(); ++j) {
    ub += gains[j].first;
  }
  if (ub <= state.best_coverage) return;

  // Branch: for each candidate (in gain order), either take it (recurse
  // with it added) — candidates after position p in gain order are handled
  // by later iterations, which effectively enumerates subsets.
  for (std::size_t p = 0; p < gains.size(); ++p) {
    if (state.budget_exhausted) return;
    const SetId id = gains[p].second;
    state.current.push_back(id);
    DynamicBitset next = covered;
    state.system->set(id).OrInto(next);
    // Re-derive a position list: sets ranked after `p` in this node's gain
    // order form the remaining candidate pool. To keep the recursion
    // simple we rebuild `order` as the tail of the gain ranking.
    std::vector<SetId> saved_order = state.order;
    std::vector<SetId> tail;
    tail.reserve(gains.size() - p - 1);
    for (std::size_t q = p + 1; q < gains.size(); ++q) {
      tail.push_back(gains[q].second);
    }
    state.order = std::move(tail);
    Search(state, next, covered_count + gains[p].first, 0);
    state.order = std::move(saved_order);
    state.current.pop_back();
  }
}

}  // namespace

ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, const DynamicBitset& universe, std::size_t k,
    const ExactMaxCoverageOptions& options) {
  STREAMSC_DCHECK(universe.size() == system.universe_size());
  ExactMaxCoverageResult result;
  if (k == 0 || system.num_sets() == 0) {
    result.proven_optimal = true;
    return result;
  }

  SearchState state;
  state.system = &system;
  state.options = options;
  state.k = std::min(k, system.num_sets());

  // Work on the restriction to `universe`: coverage outside it is free but
  // irrelevant, so we track "covered" as (chosen union) restricted later.
  // We instead mark non-universe elements as pre-covered, which makes
  // CountAndNot directly measure marginal gain within the universe.
  DynamicBitset pre_covered = universe;
  pre_covered.Complement();

  // Greedy warm start.
  Solution greedy = GreedyMaxCoverage(system, universe, state.k);
  state.best = greedy.chosen;
  state.best_coverage = system.UnionOf(greedy.chosen).CountAnd(universe);

  state.order.reserve(system.num_sets());
  for (SetId i = 0; i < system.num_sets(); ++i) state.order.push_back(i);
  std::sort(state.order.begin(), state.order.end(), [&](SetId x, SetId y) {
    return system.set(x).CountAnd(universe) > system.set(y).CountAnd(universe);
  });

  Search(state, pre_covered, 0, 0);

  result.solution.chosen = state.best;
  result.coverage = state.best_coverage;
  result.proven_optimal = !state.budget_exhausted;
  result.nodes = state.nodes;
  return result;
}

ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, std::size_t k,
    const ExactMaxCoverageOptions& options) {
  return SolveExactMaxCoverage(
      system, DynamicBitset::Full(system.universe_size()), k, options);
}

}  // namespace streamsc
