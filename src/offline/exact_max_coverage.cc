#include "offline/exact_max_coverage.h"

#include <algorithm>
#include <span>
#include <utility>

#include "offline/greedy.h"
#include "util/arena.h"
#include "util/check.h"

namespace streamsc {
namespace {

/// Call-scoped search state: incumbent vectors on the thread's table
/// arena (the solve entry point brackets them), per-node temporaries in
/// the scratch arena (LIFO checkpoints inside Search).
struct SearchState {
  const SetSystem* system = nullptr;
  ExactMaxCoverageOptions options;
  std::size_t k = 0;
  ArenaVector<SetId> current{ArenaAllocator<SetId>::Table()};
  ArenaVector<SetId> best{ArenaAllocator<SetId>::Table()};
  Count best_coverage = 0;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
};

/// \p pool is this node's candidate list (a tail of the parent's gain
/// ranking), staged in the parent's scratch frame — valid for the whole
/// call by LIFO discipline.
void Search(SearchState& state, const DynamicBitset& covered,
            Count covered_count, std::span<const SetId> pool) {
  if (state.budget_exhausted) return;
  if (++state.nodes > state.options.max_nodes) {
    state.budget_exhausted = true;
    return;
  }
  if (covered_count > state.best_coverage) {
    state.best_coverage = covered_count;
    state.best = state.current;
  }
  if (state.current.size() == state.k || pool.empty()) {
    return;
  }

  // Upper bound: current coverage + sum of the top (k - depth) marginal
  // gains among remaining sets. Computing exact marginals for all
  // remaining sets is the dominant node cost but prunes aggressively.
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint node_checkpoint(scratch);
  const std::size_t picks_left = state.k - state.current.size();
  using Gain = std::pair<Count, SetId>;
  ArenaVector<Gain> gains{ArenaAllocator<Gain>(&scratch)};
  gains.reserve(pool.size());
  for (const SetId id : pool) {
    const Count gain = state.system->set(id).CountAndNot(covered);
    if (gain > 0) gains.emplace_back(gain, id);
  }
  std::sort(gains.begin(), gains.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  Count ub = covered_count;
  for (std::size_t j = 0; j < picks_left && j < gains.size(); ++j) {
    ub += gains[j].first;
  }
  if (ub <= state.best_coverage) return;

  // Branch: for each candidate (in gain order), take it and recurse over
  // the tail of the gain ranking — which effectively enumerates subsets.
  // The tail and the branch bitset stage under a per-child checkpoint, so
  // sibling subtrees reuse the same scratch bytes.
  for (std::size_t p = 0; p < gains.size(); ++p) {
    if (state.budget_exhausted) return;
    const SetId id = gains[p].second;
    state.current.push_back(id);
    {
      const ArenaCheckpoint child_checkpoint(scratch);
      DynamicBitset next(covered, DynamicBitset::Allocator(&scratch));
      state.system->set(id).OrInto(next);
      ArenaVector<SetId> tail{ArenaAllocator<SetId>(&scratch)};
      tail.reserve(gains.size() - p - 1);
      for (std::size_t q = p + 1; q < gains.size(); ++q) {
        tail.push_back(gains[q].second);
      }
      Search(state, next, covered_count + gains[p].first, tail);
    }
    state.current.pop_back();
  }
}

}  // namespace

ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, const DynamicBitset& universe, std::size_t k,
    const ExactMaxCoverageOptions& options,
    ArenaAllocator<SetId> result_alloc) {
  STREAMSC_DCHECK(universe.size() == system.universe_size());
  ExactMaxCoverageResult result;
  result.solution = Solution(result_alloc);
  if (k == 0 || system.num_sets() == 0) {
    result.proven_optimal = true;
    return result;
  }

  const ArenaCheckpoint table_checkpoint(ThreadTableArena());
  {
    MonotonicArena& scratch = ThreadScratchArena();
    const ArenaCheckpoint scratch_checkpoint(scratch);

    SearchState state;
    state.system = &system;
    state.options = options;
    state.k = std::min(k, system.num_sets());

    // Work on the restriction to `universe`: coverage outside it is free
    // but irrelevant, so we track "covered" as (chosen union) restricted
    // later. We instead mark non-universe elements as pre-covered, which
    // makes CountAndNot directly measure marginal gain within the
    // universe.
    DynamicBitset pre_covered(universe, DynamicBitset::Allocator(&scratch));
    pre_covered.Complement();

    // Greedy warm start (call-scoped, so table-allocated like the state).
    const Solution greedy = GreedyMaxCoverage(system, universe, state.k,
                                              ArenaAllocator<SetId>::Table());
    state.best.assign(greedy.chosen.begin(), greedy.chosen.end());
    state.best_coverage =
        system.UnionOf(greedy.chosen, DynamicBitset::Allocator(&scratch))
            .CountAnd(universe);

    // Initial candidate pool: every set, ordered by restricted size
    // (descending) — the branch order.
    ArenaVector<SetId> order{ArenaAllocator<SetId>(&scratch)};
    order.reserve(system.num_sets());
    for (SetId i = 0; i < system.num_sets(); ++i) order.push_back(i);
    std::sort(order.begin(), order.end(), [&](SetId x, SetId y) {
      return system.set(x).CountAnd(universe) >
             system.set(y).CountAnd(universe);
    });

    Search(state, pre_covered, 0, order);

    result.solution.chosen.assign(state.best.begin(), state.best.end());
    result.coverage = state.best_coverage;
    result.proven_optimal = !state.budget_exhausted;
    result.nodes = state.nodes;
  }
  return result;
}

ExactMaxCoverageResult SolveExactMaxCoverage(
    const SetSystem& system, std::size_t k,
    const ExactMaxCoverageOptions& options,
    ArenaAllocator<SetId> result_alloc) {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return SolveExactMaxCoverage(
      system,
      DynamicBitset::Full(system.universe_size(),
                          DynamicBitset::Allocator(&scratch)),
      k, options, result_alloc);
}

}  // namespace streamsc
