#ifndef STREAMSC_OFFLINE_VERIFIER_H_
#define STREAMSC_OFFLINE_VERIFIER_H_

#include "instance/set_system.h"

/// \file verifier.h
/// Solution checking helpers shared by tests and the benchmark harness.

namespace streamsc {

/// Detailed verdict about a candidate set cover solution.
struct CoverVerdict {
  bool feasible = false;       ///< Covers the requested universe.
  Count covered = 0;           ///< Elements of the universe covered.
  Count universe_size = 0;     ///< Elements that needed covering.
  std::size_t solution_size = 0;

  /// Fraction of the target universe covered (1.0 when feasible).
  double coverage_fraction() const {
    return universe_size == 0
               ? 1.0
               : static_cast<double>(covered) /
                     static_cast<double>(universe_size);
  }
};

/// Checks \p solution against covering \p universe.
CoverVerdict VerifyCover(const SetSystem& system, const Solution& solution,
                         const DynamicBitset& universe);

/// Checks \p solution against covering the full universe.
CoverVerdict VerifyCover(const SetSystem& system, const Solution& solution);

/// solution_size / opt_size; returns +inf when opt_size is 0 and the
/// solution is non-empty, 1.0 when both are empty.
double ApproximationRatio(std::size_t solution_size, std::size_t opt_size);

}  // namespace streamsc

#endif  // STREAMSC_OFFLINE_VERIFIER_H_
