#include "offline/greedy.h"

#include "util/bitset.h"

namespace streamsc {

Solution GreedySetCover(const SetSystem& system, const DynamicBitset& universe,
                        ArenaAllocator<SetId> alloc) {
  Solution solution(alloc);
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  DynamicBitset uncovered(universe, DynamicBitset::Allocator(&scratch));
  while (!uncovered.None()) {
    SetId best = kInvalidSetId;
    Count best_gain = 0;
    for (SetId i = 0; i < system.num_sets(); ++i) {
      const Count gain = system.set(i).CountAnd(uncovered);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == kInvalidSetId) break;  // nothing helps; infeasible residue
    solution.chosen.push_back(best);
    system.set(best).AndNotInto(uncovered);
  }
  return solution;
}

Solution GreedySetCover(const SetSystem& system, ArenaAllocator<SetId> alloc) {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return GreedySetCover(system,
                        DynamicBitset::Full(system.universe_size(),
                                            DynamicBitset::Allocator(&scratch)),
                        alloc);
}

Solution GreedyMaxCoverage(const SetSystem& system,
                           const DynamicBitset& universe, std::size_t k,
                           ArenaAllocator<SetId> alloc) {
  Solution solution(alloc);
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  DynamicBitset uncovered(universe, DynamicBitset::Allocator(&scratch));
  for (std::size_t pick = 0; pick < k && !uncovered.None(); ++pick) {
    SetId best = kInvalidSetId;
    Count best_gain = 0;
    for (SetId i = 0; i < system.num_sets(); ++i) {
      const Count gain = system.set(i).CountAnd(uncovered);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == kInvalidSetId) break;
    solution.chosen.push_back(best);
    system.set(best).AndNotInto(uncovered);
  }
  return solution;
}

Solution GreedyMaxCoverage(const SetSystem& system, std::size_t k,
                           ArenaAllocator<SetId> alloc) {
  MonotonicArena& scratch = ThreadScratchArena();
  const ArenaCheckpoint checkpoint(scratch);
  return GreedyMaxCoverage(
      system,
      DynamicBitset::Full(system.universe_size(),
                          DynamicBitset::Allocator(&scratch)),
      k, alloc);
}

}  // namespace streamsc
