#include "offline/greedy.h"

namespace streamsc {

Solution GreedySetCover(const SetSystem& system,
                        const DynamicBitset& universe) {
  Solution solution;
  DynamicBitset uncovered = universe;
  while (!uncovered.None()) {
    SetId best = kInvalidSetId;
    Count best_gain = 0;
    for (SetId i = 0; i < system.num_sets(); ++i) {
      const Count gain = system.set(i).CountAnd(uncovered);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == kInvalidSetId) break;  // nothing helps; infeasible residue
    solution.chosen.push_back(best);
    system.set(best).AndNotInto(uncovered);
  }
  return solution;
}

Solution GreedySetCover(const SetSystem& system) {
  return GreedySetCover(system,
                        DynamicBitset::Full(system.universe_size()));
}

Solution GreedyMaxCoverage(const SetSystem& system,
                           const DynamicBitset& universe, std::size_t k) {
  Solution solution;
  DynamicBitset uncovered = universe;
  for (std::size_t pick = 0; pick < k && !uncovered.None(); ++pick) {
    SetId best = kInvalidSetId;
    Count best_gain = 0;
    for (SetId i = 0; i < system.num_sets(); ++i) {
      const Count gain = system.set(i).CountAnd(uncovered);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == kInvalidSetId) break;
    solution.chosen.push_back(best);
    system.set(best).AndNotInto(uncovered);
  }
  return solution;
}

Solution GreedyMaxCoverage(const SetSystem& system, std::size_t k) {
  return GreedyMaxCoverage(system, DynamicBitset::Full(system.universe_size()),
                           k);
}

}  // namespace streamsc
