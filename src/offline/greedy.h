#ifndef STREAMSC_OFFLINE_GREEDY_H_
#define STREAMSC_OFFLINE_GREEDY_H_

#include "instance/set_system.h"
#include "util/arena.h"

/// \file greedy.h
/// Classic offline greedy algorithms: (ln n)-approximate set cover
/// [Johnson'74, Slavik'97] and (1-1/e)-approximate maximum coverage.
/// These are the unbounded-computation reference points used as sub-routine
/// fallbacks and as quality baselines in the benches.
///
/// Arena-aware: \p alloc backs the returned Solution (heap by default);
/// the internal uncovered-state copy stages in the calling thread's
/// scratch arena under a checkpoint. Because of that checkpoint, \p alloc
/// must NOT be the scratch binding (the rewind would free the result) —
/// pass the table binding, a pinned run arena, or the heap default.

namespace streamsc {

/// Greedy set cover restricted to covering \p universe (a subset of the
/// system's universe): repeatedly takes the set with the largest number of
/// still-uncovered elements of \p universe. Returns the chosen ids in pick
/// order. If \p universe is not coverable by the system, covers as much as
/// possible and returns what it picked (callers can check feasibility).
Solution GreedySetCover(const SetSystem& system, const DynamicBitset& universe,
                        ArenaAllocator<SetId> alloc = {});

/// Greedy set cover of the full universe.
Solution GreedySetCover(const SetSystem& system,
                        ArenaAllocator<SetId> alloc = {});

/// Greedy maximum coverage: picks \p k sets maximizing marginal coverage
/// of \p universe. Ties broken by lower id. Returns fewer than k ids only
/// if coverage is complete first.
Solution GreedyMaxCoverage(const SetSystem& system,
                           const DynamicBitset& universe, std::size_t k,
                           ArenaAllocator<SetId> alloc = {});

/// Greedy maximum coverage over the full universe.
Solution GreedyMaxCoverage(const SetSystem& system, std::size_t k,
                           ArenaAllocator<SetId> alloc = {});

}  // namespace streamsc

#endif  // STREAMSC_OFFLINE_GREEDY_H_
