#ifndef STREAMSC_OFFLINE_LOWER_BOUNDS_H_
#define STREAMSC_OFFLINE_LOWER_BOUNDS_H_

#include <cstdint>

#include "instance/set_system.h"

/// \file lower_bounds.h
/// Certified lower bounds on the optimal set cover size. The exact solver
/// proves optimality but costs exponential time on large sub-instances;
/// these bounds are polynomial and *always valid*, so benches and tests
/// can report certified approximation ratios (solution / lower bound)
/// without an exact solve. All bounds cover a target sub-universe so they
/// compose with the element-sampling machinery.
///
///  * SizeLowerBound      — ceil(|U| / max |S_i ∩ U|): counting.
///  * PackingLowerBound   — a greedy element packing: elements chosen so
///    that no single set contains two of them; any cover spends one set
///    per packed element.
///  * DualLowerBound      — the feasible LP dual y_e = 1/max{|S ∩ U| :
///    e ∈ S}: for every S, Σ_{e∈S∩U} y_e ≤ 1, so Σ y_e lower-bounds the
///    fractional (hence integral) optimum.
///  * BestLowerBound      — max of the three.

namespace streamsc {

/// ceil(|universe ∩ coverable|/ max set size) — 0 for an empty universe.
/// Elements of \p universe covered by no set make the instance infeasible;
/// they are ignored here (the bound stays a valid bound for covering the
/// coverable part).
std::size_t SizeLowerBound(const SetSystem& system,
                           const DynamicBitset& universe);

/// Greedy packing bound: picks elements of \p universe in ascending
/// frequency order, skipping any element co-resident (in some set) with an
/// already-picked one. Returns the number picked.
std::size_t PackingLowerBound(const SetSystem& system,
                              const DynamicBitset& universe);

/// LP-dual bound: Σ_{e ∈ universe} 1/max{|S ∩ universe| : e ∈ S},
/// rounded up. Elements in no set are skipped.
std::size_t DualLowerBound(const SetSystem& system,
                           const DynamicBitset& universe);

/// max(SizeLowerBound, PackingLowerBound, DualLowerBound).
std::size_t BestLowerBound(const SetSystem& system,
                           const DynamicBitset& universe);

/// Full-universe conveniences.
std::size_t SizeLowerBound(const SetSystem& system);
std::size_t PackingLowerBound(const SetSystem& system);
std::size_t DualLowerBound(const SetSystem& system);
std::size_t BestLowerBound(const SetSystem& system);

}  // namespace streamsc

#endif  // STREAMSC_OFFLINE_LOWER_BOUNDS_H_
