#include "dynamic/delta_format.h"

#include <cstring>
#include <string>

namespace streamsc {
namespace sscd1 {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("sscd1: " + what);
}

}  // namespace

Status ValidateHeader(const FileHeader& header, std::uint64_t actual_size) {
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Malformed("bad magic (not an sscd1 delta log)");
  }
  if (header.version != kVersion) {
    return Malformed("unsupported version " + std::to_string(header.version));
  }
  if (header.reserved != 0) return Malformed("nonzero reserved header field");
  if (header.universe_size > kMaxDimension ||
      header.base_num_sets > kMaxDimension) {
    return Malformed("header dimensions exceed 2^31");
  }
  // record_count is bounded by what could physically fit: every record is
  // at least 24 bytes. A hostile count can therefore never drive the
  // replay loop past the mapped bytes.
  if (header.record_count >
      (actual_size < sizeof(FileHeader)
           ? 0
           : (actual_size - sizeof(FileHeader)) / sizeof(RecordHeader))) {
    return Malformed("record count exceeds what the file could hold");
  }
  if (header.file_size != actual_size) {
    return Malformed("file size mismatch: header says " +
                     std::to_string(header.file_size) + " bytes, file has " +
                     std::to_string(actual_size) +
                     " (truncated or torn write)");
  }
  return Status::Ok();
}

Status ValidateRecordHeader(const FileHeader& header,
                            const RecordHeader& record, std::uint64_t offset,
                            std::uint64_t file_size,
                            std::uint64_t record_index) {
  const std::string where = "record " + std::to_string(record_index) + ": ";
  if (record.reserved != 0) {
    return Malformed(where + "nonzero reserved record field");
  }
  if (record.record_bytes < sizeof(RecordHeader) ||
      record.record_bytes % kPayloadAlign != 0) {
    return Malformed(where + "record length " +
                     std::to_string(record.record_bytes) +
                     " is not a multiple of 8 covering the header");
  }
  if (offset > file_size || file_size - offset < record.record_bytes) {
    return Malformed(where + "record overruns the file (truncated?)");
  }
  std::uint64_t expected_bytes = 0;
  switch (record.type) {
    case kAddSet:
    case kReplaceSet: {
      if (record.rep != sscb1::kDense && record.rep != sscb1::kSparse) {
        return Malformed(where + "unknown representation tag " +
                         std::to_string(record.rep));
      }
      if (record.count > header.universe_size) {
        return Malformed(where + "count exceeds universe size");
      }
      if (record.type == kAddSet && record.target != 0) {
        return Malformed(where + "add record with nonzero target slot");
      }
      expected_bytes = record.rep == sscb1::kDense
                           ? DenseRecordBytes(header.universe_size)
                           : SparseRecordBytes(record.count);
      break;
    }
    case kRemoveSet: {
      if (record.rep != 0 || record.count != 0) {
        return Malformed(where + "remove record carries a payload shape");
      }
      expected_bytes = kRemoveRecordBytes;
      break;
    }
    default:
      return Malformed(where + "unknown record type " +
                       std::to_string(record.type));
  }
  if (record.record_bytes != expected_bytes) {
    return Malformed(where + "record length " +
                     std::to_string(record.record_bytes) + " != expected " +
                     std::to_string(expected_bytes) +
                     " for its type/representation");
  }
  return Status::Ok();
}

}  // namespace sscd1
}  // namespace streamsc
