#ifndef STREAMSC_DYNAMIC_OVERLAY_SET_STREAM_H_
#define STREAMSC_DYNAMIC_OVERLAY_SET_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/delta_log.h"
#include "instance/set_system.h"
#include "storage/mmap_set_stream.h"
#include "stream/set_stream.h"
#include "util/set_view.h"
#include "util/status.h"

/// \file overlay_set_stream.h
/// OverlaySetStream: one SetStream over (base instance + sscd1 delta log).
///
/// The base may be an sscb1 file (served zero-copy through an owned
/// MmapSetStream), an ssc1 text file (loaded once into an owned
/// SetSystem), or a borrowed in-memory SetSystem. The delta log replays on
/// top (dynamic/delta_log.h): live sets enumerate in slot order — base
/// order first, then append order — with tombstoned slots suppressed and
/// replaced slots served from the log's payload. The live ids handed out
/// are *densely renumbered*, so the stream is indistinguishable from the
/// compacted sscb1 that Materialize() writes: solving the overlay and
/// solving the materialized file produce byte-identical solutions.
///
/// ItemsRemainValid() is honestly true: every view points into the base
/// mapping/system or the delta mapping, both of which live as long as the
/// stream — so DrainPass / ParallelPassEngine can buffer and shard a pass
/// over a composed instance exactly as over a plain mmap.
///
/// RefreshDelta() re-reads the delta file (the watch-mode beat): the base
/// stays untouched, the log is re-validated and re-replayed, and the live
/// table is rebuilt. It invalidates previously handed-out views and
/// renumbers live ids; per-slot versions (slot_version) let a caller —
/// the warm-start path — decide which previously chosen sets survived.

namespace streamsc {

/// A SetStream over base + delta. Not copyable (owns mappings).
class OverlaySetStream : public SetStream {
 public:
  /// Opens \p base_path (sniffed: sscb1 via mmap, else ssc1 text) plus
  /// the delta log at \p delta_path; check status() before streaming. An
  /// error status leaves an empty stream (0 sets).
  OverlaySetStream(const std::string& base_path,
                   const std::string& delta_path);

  /// Overlays \p delta_path over a borrowed in-memory \p base, which must
  /// outlive the stream.
  OverlaySetStream(const SetSystem& base, const std::string& delta_path);

  OverlaySetStream(const OverlaySetStream&) = delete;
  OverlaySetStream& operator=(const OverlaySetStream&) = delete;

  /// Ok iff base and delta both opened, validated, and composed.
  const Status& status() const { return status_; }

  std::size_t universe_size() const override { return universe_size_; }
  /// Number of *live* sets (base + adds - tombstones).
  std::size_t num_sets() const override { return live_.size(); }
  void BeginPass() override;
  bool Next(StreamItem* item) override;
  std::uint64_t passes() const override { return passes_; }
  /// Views borrow the base and delta mappings, which live as long as the
  /// stream: buffered/sharded passes are safe.
  bool ItemsRemainValid() const override { return true; }

  /// Random access to the \p id-th live set, O(1). Precondition:
  /// status().ok() and id < num_sets().
  SetView set(SetId id) const;

  /// Re-reads the delta log from disk; the base is untouched. On success
  /// the live table is rebuilt (ids renumber, old views invalidate). On
  /// *any* failure — torn bytes, hostile records, or a log whose declared
  /// base stopped matching — the previous composed state is retained and
  /// status() stays Ok: a bad poll degrades to "no change yet", not a
  /// dead stream, and a later RefreshDelta() of a repaired file recovers.
  Status RefreshDelta();

  /// Writes the live instance as a fresh sscb1 at \p out_path — the
  /// compaction path. The result loads as a plain MmapSetStream with the
  /// same sets under the same (renumbered) ids this stream enumerates.
  Status Materialize(const std::string& out_path) const;

  /// Total slots (base sets + adds, including tombstoned).
  std::uint64_t num_slots() const { return slot_live_.size(); }

  /// The underlying slot of live id \p id. Precondition: id < num_sets().
  std::uint64_t live_to_slot(SetId id) const { return live_[id]; }

  /// True iff \p slot is live. Precondition: slot < num_slots().
  bool slot_live(std::uint64_t slot) const {
    return slot_live_[static_cast<std::size_t>(slot)];
  }

  /// Version of \p slot (0 = untouched base; else 1 + last touching
  /// record). A previously chosen (slot, version) pair still denotes the
  /// same set content iff the slot is live and the version is unchanged.
  std::uint64_t slot_version(std::uint64_t slot) const;

  /// Live id of \p slot, or kInvalidSetId if tombstoned. O(log live).
  SetId slot_to_live(std::uint64_t slot) const;

  /// Number of replayed delta records.
  std::uint64_t delta_records() const { return delta_.record_count(); }

  /// Number of base sets (before the delta).
  std::uint64_t base_num_sets() const { return base_num_sets_; }

  /// The delta log path (for RefreshDelta / diagnostics).
  const std::string& delta_path() const { return delta_path_; }

 private:
  // Opens the base named by base_path (sniffed) into the owned members.
  Status OpenBase(const std::string& base_path);
  // The base's (universe size, set count).
  void BaseDims(std::size_t* base_n, std::uint64_t* base_m) const;
  // Validates \p delta against the base's dimensions — the gate both the
  // constructors and RefreshDelta() pass a log through before composing.
  Status CheckCompatible(const DeltaLog& delta) const;
  // Rebuilds live_/slot_live_ from delta_. Infallible: the delta already
  // passed CheckCompatible().
  void Compose();
  // The base's view of base slot \p slot.
  SetView BaseSet(std::uint64_t slot) const;

  Status status_;
  std::string delta_path_;
  // Exactly one of mmap_base_ / owned_system_ / borrowed_system_ supplies
  // the base.
  std::unique_ptr<MmapSetStream> mmap_base_;
  std::unique_ptr<SetSystem> owned_system_;
  const SetSystem* borrowed_system_ = nullptr;
  DeltaLog delta_;
  std::size_t universe_size_ = 0;
  std::uint64_t base_num_sets_ = 0;
  std::vector<std::uint64_t> live_;  // live id -> slot
  std::vector<bool> slot_live_;      // slot -> liveness (mirrors delta_)
  // slot -> payload residency, cached densely at compose time: set() is
  // the per-item hot path and must not pay the delta's sparse-slot-table
  // lookup per access. Sizing by num_slots is safe here — compose is
  // gated on the delta matching the actual base, whose size is real.
  std::vector<bool> slot_from_delta_;
  std::size_t cursor_ = 0;
  std::uint64_t passes_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_DYNAMIC_OVERLAY_SET_STREAM_H_
