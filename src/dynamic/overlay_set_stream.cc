#include "dynamic/overlay_set_stream.h"

#include <algorithm>
#include <utility>

#include "instance/serialization.h"
#include "storage/binary_instance_writer.h"
#include "util/check.h"

namespace streamsc {

OverlaySetStream::OverlaySetStream(const std::string& base_path,
                                   const std::string& delta_path)
    : delta_path_(delta_path) {
  status_ = OpenBase(base_path);
  if (status_.ok()) {
    delta_ = DeltaLog(delta_path);
    status_ = delta_.status();
  }
  if (status_.ok()) status_ = CheckCompatible(delta_);
  if (status_.ok()) Compose();
  if (!status_.ok()) {
    live_.clear();
    slot_live_.clear();
    slot_from_delta_.clear();
    universe_size_ = 0;
    base_num_sets_ = 0;
  }
}

OverlaySetStream::OverlaySetStream(const SetSystem& base,
                                   const std::string& delta_path)
    : delta_path_(delta_path), borrowed_system_(&base) {
  delta_ = DeltaLog(delta_path);
  status_ = delta_.status();
  if (status_.ok()) status_ = CheckCompatible(delta_);
  if (status_.ok()) Compose();
  if (!status_.ok()) {
    live_.clear();
    slot_live_.clear();
    slot_from_delta_.clear();
    universe_size_ = 0;
    base_num_sets_ = 0;
  }
}

Status OverlaySetStream::OpenBase(const std::string& base_path) {
  if (IsBinaryInstanceFile(base_path)) {
    mmap_base_ = std::make_unique<MmapSetStream>(base_path);
    return mmap_base_->status();
  }
  StatusOr<SetSystem> loaded = LoadSetSystem(base_path);
  if (!loaded.ok()) return loaded.status();
  owned_system_ = std::make_unique<SetSystem>(std::move(*loaded));
  return Status::Ok();
}

void OverlaySetStream::BaseDims(std::size_t* base_n,
                                std::uint64_t* base_m) const {
  if (mmap_base_) {
    *base_n = mmap_base_->universe_size();
    *base_m = mmap_base_->num_sets();
    return;
  }
  const SetSystem* system =
      owned_system_ ? owned_system_.get() : borrowed_system_;
  *base_n = system->universe_size();
  *base_m = system->num_sets();
}

Status OverlaySetStream::CheckCompatible(const DeltaLog& delta) const {
  std::size_t base_n = 0;
  std::uint64_t base_m = 0;
  BaseDims(&base_n, &base_m);
  if (delta.universe_size() != base_n) {
    return Status::InvalidArgument(
        "sscd1: delta universe size " + std::to_string(delta.universe_size()) +
        " mismatches the base instance's " + std::to_string(base_n));
  }
  if (delta.base_num_sets() != base_m) {
    return Status::InvalidArgument(
        "sscd1: delta declares a base of " +
        std::to_string(delta.base_num_sets()) + " sets; the base has " +
        std::to_string(base_m));
  }
  return Status::Ok();
}

void OverlaySetStream::Compose() {
  std::size_t base_n = 0;
  std::uint64_t base_m = 0;
  BaseDims(&base_n, &base_m);
  universe_size_ = base_n;
  base_num_sets_ = base_m;

  const std::uint64_t slots = delta_.num_slots();
  slot_live_.assign(static_cast<std::size_t>(slots), false);
  slot_from_delta_.assign(static_cast<std::size_t>(slots), false);
  live_.clear();
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    if (delta_.slot_from_delta(slot)) {
      slot_from_delta_[static_cast<std::size_t>(slot)] = true;
    }
    if (!delta_.slot_live(slot)) continue;
    slot_live_[static_cast<std::size_t>(slot)] = true;
    live_.push_back(slot);
  }
  cursor_ = 0;
}

SetView OverlaySetStream::BaseSet(std::uint64_t slot) const {
  if (mmap_base_) return mmap_base_->set(static_cast<SetId>(slot));
  const SetSystem* system =
      owned_system_ ? owned_system_.get() : borrowed_system_;
  return system->set(static_cast<SetId>(slot));
}

void OverlaySetStream::BeginPass() {
  cursor_ = 0;
  ++passes_;
}

bool OverlaySetStream::Next(StreamItem* item) {
  STREAMSC_DCHECK(passes_ > 0 && "BeginPass() before Next()");
  if (cursor_ >= live_.size()) return false;
  const SetId id = static_cast<SetId>(cursor_++);
  item->id = id;
  item->set = set(id);
  return true;
}

SetView OverlaySetStream::set(SetId id) const {
  STREAMSC_CHECK(status_.ok() && id < live_.size(),
                 "OverlaySetStream::set: invalid stream or id");
  const std::uint64_t slot = live_[id];
  if (slot_from_delta_[static_cast<std::size_t>(slot)]) {
    return delta_.slot_view(slot);
  }
  return BaseSet(slot);
}

Status OverlaySetStream::RefreshDelta() {
  // A constructor-failed stream never composed; there is no previous
  // state to fall back to, so it stays empty.
  if (!status_.ok()) return status_;
  // Validate the fresh log end to end *before* committing anything: a
  // torn, hostile, or base-mismatched file returns its typed error while
  // the current composition (and status_) stay untouched — the caller's
  // poll degrades to "no change yet" and a repaired file refreshes fine.
  DeltaLog fresh(delta_path_);
  if (!fresh.status().ok()) return fresh.status();
  const Status compatible = CheckCompatible(fresh);
  if (!compatible.ok()) return compatible;
  delta_ = std::move(fresh);
  Compose();
  return Status::Ok();
}

Status OverlaySetStream::Materialize(const std::string& out_path) const {
  if (!status_.ok()) return status_;
  BinaryInstanceWriter writer(out_path, universe_size_, live_.size());
  if (!writer.status().ok()) return writer.status();
  for (SetId id = 0; id < live_.size(); ++id) {
    if (!writer.AddSet(set(id)).ok()) return writer.status();
  }
  return writer.Finish();
}

std::uint64_t OverlaySetStream::slot_version(std::uint64_t slot) const {
  STREAMSC_DCHECK(slot < delta_.num_slots());
  return delta_.slot_version(slot);
}

SetId OverlaySetStream::slot_to_live(std::uint64_t slot) const {
  // live_ holds slots in increasing order; a binary search recovers the
  // dense renumbering without a slots-sized side table.
  const auto it = std::lower_bound(live_.begin(), live_.end(), slot);
  if (it == live_.end() || *it != slot) return kInvalidSetId;
  return static_cast<SetId>(it - live_.begin());
}

}  // namespace streamsc
