#include "dynamic/delta_log.h"

#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/file_probe.h"

namespace streamsc {

namespace {

using sscd1::FileHeader;
using sscd1::RecordHeader;
using Word = DynamicBitset::Word;

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("sscd1: " + what);
}

FileHeader MakeHeader(std::uint64_t universe_size, std::uint64_t base_num_sets,
                      std::uint64_t record_count, std::uint64_t file_size) {
  FileHeader header = {};
  std::memcpy(header.magic, sscd1::kMagic, sizeof(sscd1::kMagic));
  header.version = sscd1::kVersion;
  header.universe_size = universe_size;
  header.base_num_sets = base_num_sets;
  header.record_count = record_count;
  header.file_size = file_size;
  return header;
}

}  // namespace

// ---------------------------------------------------------------------------
// DeltaLog (reader)

DeltaLog::DeltaLog(const std::string& path) {
  status_ = Load(path);
  if (!status_.ok()) {
    // Leave a well-defined empty log so accidental use without a status
    // check replays nothing instead of reading junk.
    universe_size_ = 0;
    base_num_sets_ = 0;
    record_count_ = 0;
    touched_base_.clear();
    appended_.clear();
    dense_.clear();
    sparse_.clear();
  }
}

const DeltaLog::Slot& DeltaLog::SlotRef(std::uint64_t slot) const {
  if (slot >= base_num_sets_) {
    return appended_[static_cast<std::size_t>(slot - base_num_sets_)];
  }
  static const Slot kUntouchedBase{};
  const auto it = touched_base_.find(slot);
  return it == touched_base_.end() ? kUntouchedBase : it->second;
}

DeltaLog::Slot& DeltaLog::MutableSlot(std::uint64_t slot) {
  if (slot >= base_num_sets_) {
    return appended_[static_cast<std::size_t>(slot - base_num_sets_)];
  }
  // Default-inserts the untouched-base state (live, version 0) on the
  // first record that touches a base slot.
  return touched_base_[slot];
}

std::vector<std::uint64_t> DeltaLog::TombstonedSlots() const {
  std::vector<std::uint64_t> dead;
  for (const auto& [slot, state] : touched_base_) {
    if (!state.live) dead.push_back(slot);
  }
  for (std::size_t i = 0; i < appended_.size(); ++i) {
    if (!appended_[i].live) dead.push_back(base_num_sets_ + i);
  }
  return dead;
}

Status DeltaLog::Load(const std::string& path) {
  Status endian = sscb1::CheckHostEndianness();
  if (!endian.ok()) return endian;

  StatusOr<MmapFile> mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  file_ = std::move(*mapped);

  if (file_.size() < sizeof(FileHeader)) {
    return Malformed("file too small for an sscd1 header");
  }
  FileHeader header;
  std::memcpy(&header, file_.data(), sizeof(header));
  Status status = sscd1::ValidateHeader(header, file_.size());
  if (!status.ok()) return status;

  // No allocation keyed on base_num_sets_: the claim is not backed by any
  // bytes of this file (unlike sscb1's offset table), so a hostile header
  // must not be able to drive a giant slot-table reservation. Slots
  // materialize lazily as records touch them.
  universe_size_ = static_cast<std::size_t>(header.universe_size);
  base_num_sets_ = header.base_num_sets;
  record_count_ = header.record_count;

  const std::size_t word_count = (universe_size_ + 63) / 64;
  std::uint64_t offset = sizeof(FileHeader);
  for (std::uint64_t i = 0; i < record_count_; ++i) {
    const std::string where = "record " + std::to_string(i) + ": ";
    if (file_.size() - offset < sizeof(RecordHeader)) {
      return Malformed(where + "record overruns the file (truncated?)");
    }
    RecordHeader record;
    std::memcpy(&record, file_.data() + offset, sizeof(record));
    status = sscd1::ValidateRecordHeader(header, record, offset, file_.size(),
                                         i);
    if (!status.ok()) return status;

    switch (static_cast<sscd1::RecordType>(record.type)) {
      case sscd1::kRemoveSet: {
        if (record.target >= num_slots() || !slot_live(record.target)) {
          return Malformed(where + "removes a dead or out-of-range slot " +
                           std::to_string(record.target));
        }
        MutableSlot(record.target).live = false;
        break;
      }
      case sscd1::kAddSet:
      case sscd1::kReplaceSet: {
        const std::byte* payload = file_.data() + offset + sizeof(record);
        Slot slot;
        slot.from_delta = true;
        slot.rep = static_cast<sscb1::Rep>(record.rep);
        slot.version = i + 1;
        if (record.rep == sscb1::kDense) {
          const Word* words = reinterpret_cast<const Word*>(payload);
          // Same tail invariant as sscb1: phantom bits beyond n would
          // silently corrupt counts and projections.
          if (universe_size_ % 64 != 0 && word_count > 0) {
            const Word tail_mask = ~Word{0} << (universe_size_ % 64);
            if ((words[word_count - 1] & tail_mask) != 0) {
              return Malformed(
                  where + "dense tail bits beyond the universe are set");
            }
          }
          DenseSpan span(words, universe_size_);
          if (span.CountSet() != record.count) {
            return Malformed(where +
                             "payload popcount mismatches the record count");
          }
          dense_.push_back(span);
          slot.payload = static_cast<std::uint32_t>(dense_.size() - 1);
        } else {
          const ElementId* ids = reinterpret_cast<const ElementId*>(payload);
          for (std::uint32_t k = 0; k < record.count; ++k) {
            if (ids[k] >= universe_size_) {
              return Malformed(where + "element out of range");
            }
            if (k > 0 && ids[k] <= ids[k - 1]) {
              return Malformed(where + "elements not strictly increasing");
            }
          }
          // The pad bytes are part of the record; require them zero so a
          // log has exactly one byte representation per logical content.
          const std::uint64_t raw = record.count * sizeof(ElementId);
          const std::uint64_t padded = sscb1::SparsePayloadBytes(record.count);
          for (std::uint64_t b = raw; b < padded; ++b) {
            if (payload[b] != std::byte{0}) {
              return Malformed(where + "nonzero sparse payload padding");
            }
          }
          sparse_.push_back(SparseSpan(ids, record.count, universe_size_));
          slot.payload = static_cast<std::uint32_t>(sparse_.size() - 1);
        }
        if (record.type == sscd1::kAddSet) {
          appended_.push_back(slot);
        } else {
          if (record.target >= num_slots() || !slot_live(record.target)) {
            return Malformed(where + "replaces a dead or out-of-range slot " +
                             std::to_string(record.target));
          }
          MutableSlot(record.target) = slot;
        }
        break;
      }
      default:
        // Unreachable: ValidateRecordHeader rejects unknown types.
        return Malformed(where + "unknown record type");
    }
    offset += record.record_bytes;
  }
  if (offset != file_.size()) {
    return Malformed("trailing bytes after the last record");
  }
  return Status::Ok();
}

SetView DeltaLog::slot_view(std::uint64_t slot) const {
  STREAMSC_CHECK(status_.ok() && slot < num_slots() && slot_from_delta(slot),
                 "DeltaLog::slot_view: invalid log, slot, or base-backed "
                 "slot");
  const Slot& s = SlotRef(slot);
  if (s.rep == sscb1::kDense) return SetView(dense_[s.payload]);
  return SetView(sparse_[s.payload]);
}

// ---------------------------------------------------------------------------
// DeltaLogWriter

DeltaLogWriter::DeltaLogWriter(const std::string& path,
                               std::size_t universe_size,
                               std::size_t base_num_sets,
                               double sparsity_threshold)
    : path_(path),
      universe_size_(universe_size),
      base_num_sets_(base_num_sets),
      sparsity_threshold_(sparsity_threshold) {
  status_ = sscb1::CheckHostEndianness();
  if (!status_.ok()) return;
  if (universe_size > sscd1::kMaxDimension ||
      base_num_sets > sscd1::kMaxDimension) {
    status_ = Status::InvalidArgument(
        "sscd1: base dimensions exceed the 2^31 format cap");
    return;
  }
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                      std::ios::trunc);
  if (!out_) {
    status_ = Status::Internal("cannot open '" + path + "' for writing");
    return;
  }
  num_slots_ = base_num_sets;
  // The header written up front is already *valid* for an empty log, so a
  // writer that never reaches Finish() leaves a well-formed zero-record
  // file behind, not garbage.
  const FileHeader header =
      MakeHeader(universe_size_, base_num_sets_, 0, sizeof(FileHeader));
  if (!WriteBytes(&header, sizeof(header))) {
    status_ = Status::Internal("write to '" + path + "' failed");
    return;
  }
  out_.flush();
}

DeltaLogWriter::DeltaLogWriter(const std::string& path,
                               double sparsity_threshold)
    : path_(path), sparsity_threshold_(sparsity_threshold) {
  // Full reader replay first: append mode refuses to extend a log it
  // could not itself read back, and the replay hands us the liveness
  // state the new records must be validated against.
  DeltaLog existing(path);
  if (!existing.status().ok()) {
    status_ = existing.status();
    return;
  }
  universe_size_ = existing.universe_size();
  base_num_sets_ = existing.base_num_sets();
  record_count_ = existing.record_count();
  num_slots_ = existing.num_slots();
  for (const std::uint64_t slot : existing.TombstonedSlots()) {
    dead_.insert(slot);
  }
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!out_) {
    status_ = Status::Internal("cannot open '" + path + "' for appending");
    return;
  }
  out_.seekp(0, std::ios::end);
  offset_ = static_cast<std::uint64_t>(out_.tellp());
}

Status DeltaLogWriter::Fail(Status status) {
  status_ = std::move(status);
  return status_;
}

bool DeltaLogWriter::WriteBytes(const void* bytes, std::size_t count) {
  if (count == 0) return static_cast<bool>(out_);
  out_.write(static_cast<const char*>(bytes),
             static_cast<std::streamsize>(count));
  offset_ += count;
  return static_cast<bool>(out_);
}

Status DeltaLogWriter::WritePayloadRecord(sscd1::RecordType type,
                                          std::uint64_t target, SetView set) {
  if (!set.valid() || set.size() != universe_size_) {
    return Fail(Status::InvalidArgument(
        "sscd1: set universe size mismatches the log header"));
  }
  const Count count = set.CountSet();
  const bool sparse = static_cast<double>(count) <
                      sparsity_threshold_ * static_cast<double>(universe_size_);

  RecordHeader record = {};
  record.type = static_cast<std::uint16_t>(type);
  record.rep = sparse ? sscb1::kSparse : sscb1::kDense;
  record.target = target;
  record.count = static_cast<std::uint32_t>(count);
  record.record_bytes = static_cast<std::uint32_t>(
      sparse ? sscd1::SparseRecordBytes(count)
             : sscd1::DenseRecordBytes(universe_size_));
  bool written = WriteBytes(&record, sizeof(record));

  if (sparse) {
    scratch_ids_.clear();
    scratch_ids_.reserve(static_cast<std::size_t>(count));
    set.ForEach([&](ElementId e) { scratch_ids_.push_back(e); });
    if (written && !scratch_ids_.empty()) {
      written = WriteBytes(scratch_ids_.data(),
                           scratch_ids_.size() * sizeof(ElementId));
    }
    const std::uint64_t raw = scratch_ids_.size() * sizeof(ElementId);
    const std::uint64_t padded = sscb1::SparsePayloadBytes(count);
    if (written && padded > raw) {
      const std::uint64_t zero = 0;
      written = WriteBytes(&zero, static_cast<std::size_t>(padded - raw));
    }
  } else if (const DynamicBitset* dense = set.dense()) {
    written = written && WriteBytes(dense->WordData(),
                                    dense->WordCount() * sizeof(Word));
  } else if (const DenseSpan* span = set.dense_span()) {
    written = written &&
              WriteBytes(span->WordData(), span->WordCount() * sizeof(Word));
  } else {
    // Sparse-represented set dense enough to store dense: materialize once.
    const DynamicBitset materialized = set.ToDense();
    written = written && WriteBytes(materialized.WordData(),
                                    materialized.WordCount() * sizeof(Word));
  }
  if (!written) {
    return Fail(Status::Internal("write to '" + path_ + "' failed"));
  }
  ++record_count_;
  return status_;
}

Status DeltaLogWriter::AddSet(SetView set) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Fail(Status::FailedPrecondition("sscd1: AddSet after Finish"));
  }
  const Status written = WritePayloadRecord(sscd1::kAddSet, 0, set);
  if (!written.ok()) return written;
  ++num_slots_;
  return status_;
}

Status DeltaLogWriter::RemoveSet(std::uint64_t slot) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Fail(Status::FailedPrecondition("sscd1: RemoveSet after Finish"));
  }
  if (slot >= num_slots_ || dead_.count(slot) != 0) {
    return Fail(Status::InvalidArgument(
        "sscd1: RemoveSet of dead or out-of-range slot " +
        std::to_string(slot)));
  }
  RecordHeader record = {};
  record.type = sscd1::kRemoveSet;
  record.target = slot;
  record.record_bytes = static_cast<std::uint32_t>(sscd1::kRemoveRecordBytes);
  if (!WriteBytes(&record, sizeof(record))) {
    return Fail(Status::Internal("write to '" + path_ + "' failed"));
  }
  ++record_count_;
  dead_.insert(slot);
  return status_;
}

Status DeltaLogWriter::ReplaceSet(std::uint64_t slot, SetView set) {
  if (!status_.ok()) return status_;
  if (finished_) {
    return Fail(Status::FailedPrecondition("sscd1: ReplaceSet after Finish"));
  }
  if (slot >= num_slots_ || dead_.count(slot) != 0) {
    return Fail(Status::InvalidArgument(
        "sscd1: ReplaceSet of dead or out-of-range slot " +
        std::to_string(slot)));
  }
  return WritePayloadRecord(sscd1::kReplaceSet, slot, set);
}

Status DeltaLogWriter::Finish() {
  if (!status_.ok()) return status_;
  if (finished_) return status_;
  finished_ = true;

  const FileHeader header =
      MakeHeader(universe_size_, base_num_sets_, record_count_, offset_);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
  if (!out_) {
    return Fail(Status::Internal("header patch of '" + path_ + "' failed"));
  }
  out_.close();
  return status_;
}

bool IsDeltaLogFile(const std::string& path) {
  // Probe before the blocking open, same as the sscb1 sniff: an ifstream
  // open of an unfed FIFO hangs forever.
  if (!ProbeRegularFile(path).ok()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  unsigned char magic[sizeof(sscd1::kMagic)] = {};
  in.read(reinterpret_cast<char*>(magic), sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, sscd1::kMagic, sizeof(magic)) == 0;
}

}  // namespace streamsc
