#ifndef STREAMSC_DYNAMIC_DELTA_FORMAT_H_
#define STREAMSC_DYNAMIC_DELTA_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "storage/binary_format.h"
#include "util/common.h"
#include "util/status.h"

/// \file delta_format.h
/// The "sscd1" on-disk delta-log format: an append-only mutation journal
/// over a base instance (an sscb1 file, an ssc1 text file, or an
/// in-memory SetSystem). A file is
///
///   [FileHeader | Record | Record | ...]
///
/// where each record is a fixed 24-byte RecordHeader followed by an
/// 8-byte-aligned payload in the *same representation rules as sscb1*
/// (storage/binary_format.h): dense = ceil(n/64) little-endian u64 words
/// with zero tail bits, sparse = count sorted duplicate-free u32 ids
/// zero-padded to the next 8-byte boundary. All integers little-endian;
/// big-endian hosts are rejected, matching sscb1.
///
/// Slot semantics (the contract OverlaySetStream replays):
///
///   * The base contributes slots 0 .. base_num_sets-1.
///   * kAddSet      appends a new slot (target must be 0).
///   * kRemoveSet   tombstones a currently-live slot (base or appended).
///   * kReplaceSet  swaps a currently-live slot's payload in place.
///
/// The live instance is the slots that are not tombstoned, enumerated in
/// slot order and densely renumbered — exactly the set ids a compacted
/// sscb1 written by OverlaySetStream::Materialize would contain.
///
/// Records are length-prefixed (record_bytes, a multiple of 8 covering
/// header + padded payload), and the file header's record_count and
/// file_size are back-patched by the writer on Finish() — so truncation
/// anywhere, torn trailing records, or a crashed writer are all detected
/// structurally before any payload byte is dereferenced. Every decoder is
/// total in the frame.h style: hostile bytes produce a typed
/// InvalidArgument, never a hang, over-read, or abort.

namespace streamsc {
namespace sscd1 {

/// Magic bytes at offset 0 ("sscd1" + NUL padding).
inline constexpr unsigned char kMagic[8] = {'s', 's', 'c', 'd', '1',
                                            '\0', '\0', '\0'};

/// Current (and only) format version.
inline constexpr std::uint32_t kVersion = 1;

/// Payload alignment, shared with sscb1: every record size is a multiple
/// of this, so payloads (at record offset + 24, with 48 ≡ 24 ≡ 0 mod 8)
/// are always 8-aligned and dense words readable in place.
inline constexpr std::uint64_t kPayloadAlign = sscb1::kPayloadAlign;

/// Same sanity cap as the sscb1 reader: a corrupt header must never drive
/// allocation.
inline constexpr std::uint64_t kMaxDimension = sscb1::kMaxDimension;

/// Mutation kind (RecordHeader::type).
enum RecordType : std::uint16_t {
  kAddSet = 1,      ///< Append a new slot. target == 0; payload present.
  kRemoveSet = 2,   ///< Tombstone a live slot. rep/count 0; no payload.
  kReplaceSet = 3,  ///< Swap a live slot's payload. Payload present.
};

/// Fixed-size file header at offset 0.
struct FileHeader {
  unsigned char magic[8];       ///< kMagic.
  std::uint32_t version;        ///< kVersion.
  std::uint32_t reserved;       ///< Zero.
  std::uint64_t universe_size;  ///< n — must match the base instance.
  std::uint64_t base_num_sets;  ///< m0 of the base this log applies to.
  std::uint64_t record_count;   ///< Records that follow (back-patched).
  std::uint64_t file_size;      ///< Total file bytes (back-patched).
};
static_assert(sizeof(FileHeader) == 48, "sscd1 header layout drifted");

/// Fixed-size record header; the payload (if any) follows immediately.
struct RecordHeader {
  std::uint32_t record_bytes;  ///< Header + padded payload; multiple of 8.
  std::uint16_t type;          ///< RecordType.
  std::uint16_t rep;           ///< sscb1::Rep; 0 for kRemoveSet.
  std::uint64_t target;        ///< Slot id (kRemoveSet/kReplaceSet); else 0.
  std::uint32_t count;         ///< Member count; 0 for kRemoveSet.
  std::uint32_t reserved;      ///< Zero.
};
static_assert(sizeof(RecordHeader) == 24, "sscd1 record layout drifted");

/// Bytes of one whole record (header + padded payload) for a dense
/// payload over a universe of \p n bits.
constexpr std::uint64_t DenseRecordBytes(std::uint64_t n) {
  return sizeof(RecordHeader) + sscb1::DensePayloadBytes(n);
}

/// Bytes of one whole record for a sparse payload of \p count ids.
constexpr std::uint64_t SparseRecordBytes(std::uint64_t count) {
  return sizeof(RecordHeader) + sscb1::SparsePayloadBytes(count);
}

/// Bytes of a remove record (no payload).
inline constexpr std::uint64_t kRemoveRecordBytes = sizeof(RecordHeader);

/// Structural validation of a file header against the actual byte count
/// of the file it came from: magic, version, dimension caps, size echo.
Status ValidateHeader(const FileHeader& header, std::uint64_t actual_size);

/// Structural validation of one record header at byte \p offset of a file
/// of \p file_size bytes under a validated file header: type/rep tags,
/// alignment, count ranges, exact record_bytes arithmetic, and that the
/// whole record lies inside the file. Slot-liveness and payload-content
/// checks need replay state and live in DeltaLog.
Status ValidateRecordHeader(const FileHeader& header,
                            const RecordHeader& record, std::uint64_t offset,
                            std::uint64_t file_size,
                            std::uint64_t record_index);

}  // namespace sscd1
}  // namespace streamsc

#endif  // STREAMSC_DYNAMIC_DELTA_FORMAT_H_
