#ifndef STREAMSC_DYNAMIC_DELTA_LOG_H_
#define STREAMSC_DYNAMIC_DELTA_LOG_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dynamic/delta_format.h"
#include "instance/set_system.h"
#include "storage/mmap_file.h"
#include "util/set_span.h"
#include "util/set_view.h"
#include "util/status.h"

/// \file delta_log.h
/// Reader and writer for sscd1 delta logs (dynamic/delta_format.h).
///
/// DeltaLog maps a log read-only, validates *everything* eagerly — header
/// arithmetic, every record's framing, payload invariants (sorted sparse
/// ids, zero dense tail bits, zero padding), and slot liveness across the
/// whole replay — and exposes the resulting slot table: which slots are
/// live, which carry a delta payload, and a per-slot version that bumps
/// whenever a record touches the slot (the warm-start survival test).
/// After an Ok status() no operation can read out of bounds; a corrupt or
/// torn log is a typed InvalidArgument at open, never an abort mid-pass.
/// Memory is proportional to the *records*, never to the header's claimed
/// base size: a hostile base_num_sets cannot drive allocation.
///
/// DeltaLogWriter appends records and back-patches the header's
/// record_count / file_size on Finish(). A reader never decodes a
/// half-appended record as data — but the atomicity is *reject-and-retry*,
/// not old-or-new: a reader that maps the file between an append and the
/// Finish() patch sees a header whose file_size no longer matches the
/// file and gets a typed InvalidArgument ("file size mismatch"), the same
/// rejection as any torn write. Pollers (watch mode, RefreshDelta) treat
/// that as "no change yet" and retry after Finish(). Append mode
/// revalidates the existing log (through DeltaLog) before extending it,
/// and both modes track slot liveness so a remove/replace of a dead or
/// out-of-range slot fails at write time with the same typed error a
/// reader would produce.

namespace streamsc {

/// A validated, replayed sscd1 delta log. Move-only (owns the mapping;
/// payload spans point into it and stay valid across moves).
class DeltaLog {
 public:
  /// An unopened log; status() is FailedPrecondition, zero slots.
  DeltaLog() = default;

  /// Maps and validates \p path eagerly; check status() before use. An
  /// error status leaves an empty log (0 slots).
  explicit DeltaLog(const std::string& path);

  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;
  DeltaLog(DeltaLog&&) = default;
  DeltaLog& operator=(DeltaLog&&) = default;

  /// Ok iff the log mapped, validated, and replayed end to end.
  const Status& status() const { return status_; }

  /// Universe size n the log applies to.
  std::size_t universe_size() const { return universe_size_; }

  /// Base set count m0 the log applies to (slots 0 .. m0-1).
  std::uint64_t base_num_sets() const { return base_num_sets_; }

  /// Number of records replayed.
  std::uint64_t record_count() const { return record_count_; }

  /// Total slots after replay: base_num_sets() + number of AddSet records.
  std::uint64_t num_slots() const { return base_num_sets_ + appended_.size(); }

  /// True iff \p slot is not tombstoned. Precondition: slot < num_slots().
  bool slot_live(std::uint64_t slot) const { return SlotRef(slot).live; }

  /// True iff \p slot's current payload lives in this log (added or
  /// replaced) rather than in the base. Precondition: slot < num_slots().
  bool slot_from_delta(std::uint64_t slot) const {
    return SlotRef(slot).from_delta;
  }

  /// Version of \p slot: 0 for a base slot no record has touched, else
  /// 1 + the index of the last record that set its payload. A memoized
  /// (slot, version) pair from a previous solve is still valid iff the
  /// slot is live and its version is unchanged — the warm-start test.
  std::uint64_t slot_version(std::uint64_t slot) const {
    return SlotRef(slot).version;
  }

  /// Every tombstoned slot, in no particular order. O(slots touched by a
  /// record) — never proportional to the base size.
  std::vector<std::uint64_t> TombstonedSlots() const;

  /// View of \p slot's delta payload. Precondition: slot_from_delta(slot).
  /// The view borrows the mapping and lives as long as this log.
  SetView slot_view(std::uint64_t slot) const;

 private:
  struct Slot {
    bool live = true;
    bool from_delta = false;
    sscb1::Rep rep = sscb1::kDense;
    std::uint32_t payload = 0;  // into dense_ / sparse_ when from_delta
    std::uint64_t version = 0;
  };

  Status Load(const std::string& path);
  // The slot \p slot resolves to: an appended slot, a record-touched base
  // slot, or the shared untouched-base default. Precondition:
  // slot < num_slots().
  const Slot& SlotRef(std::uint64_t slot) const;
  // Mutable variant for replay; default-inserts an untouched base slot
  // into touched_base_ on first touch.
  Slot& MutableSlot(std::uint64_t slot);

  Status status_ =
      Status::FailedPrecondition("sscd1: delta log not opened");
  MmapFile file_;
  std::size_t universe_size_ = 0;
  std::uint64_t base_num_sets_ = 0;
  std::uint64_t record_count_ = 0;
  // The slot table is sparse on purpose: base_num_sets_ is a header claim
  // backed by nothing in *this* file, so memory must scale with the
  // replayed records, not with it. Base slots no record touched resolve
  // to a shared default (live, version 0, base payload).
  std::unordered_map<std::uint64_t, Slot> touched_base_;
  std::vector<Slot> appended_;  // slots base_num_sets_ .. num_slots()-1
  std::vector<DenseSpan> dense_;
  std::vector<SparseSpan> sparse_;
};

/// Incremental sscd1 writer. Not copyable. Construct in create mode (new
/// empty log) or append mode (extend a validated existing log), call the
/// mutation methods, then Finish(). Errors are sticky.
class DeltaLogWriter {
 public:
  /// Create mode: truncates \p path to an empty log over a base of
  /// (\p universe_size, \p base_num_sets). Sets added or replaced are
  /// stored dense or sparse by \p sparsity_threshold, the same rule as
  /// SetSystem and the sscb1 writer.
  DeltaLogWriter(
      const std::string& path, std::size_t universe_size,
      std::size_t base_num_sets,
      double sparsity_threshold = SetSystem::kDefaultSparsityThreshold);

  /// Append mode: validates the existing log at \p path (full DeltaLog
  /// replay — liveness state carries over) and positions after its last
  /// record.
  explicit DeltaLogWriter(
      const std::string& path,
      double sparsity_threshold = SetSystem::kDefaultSparsityThreshold);

  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;

  /// Ok iff every operation so far succeeded.
  const Status& status() const { return status_; }

  /// Universe size of the log under construction.
  std::size_t universe_size() const { return universe_size_; }

  /// Records written plus (in append mode) records already present.
  std::uint64_t record_count() const { return record_count_; }

  /// Total slots as of the last mutation (base + adds).
  std::uint64_t num_slots() const { return num_slots_; }

  /// Appends a kAddSet record; the new slot's id is num_slots()-1 after
  /// the call. The view's universe must match.
  Status AddSet(SetView set);

  /// Appends a kRemoveSet record tombstoning live slot \p slot.
  Status RemoveSet(std::uint64_t slot);

  /// Appends a kReplaceSet record swapping live slot \p slot's payload.
  Status ReplaceSet(std::uint64_t slot, SetView set);

  /// Back-patches record_count / file_size and flushes. Until Finish()
  /// the header still describes the previous consistent state, so a
  /// reader racing the appends gets a typed size-mismatch rejection
  /// (retryable — "no change yet"), never a half-appended record.
  Status Finish();

 private:
  Status Fail(Status status);
  bool WriteBytes(const void* bytes, std::size_t count);
  // Encodes and writes one payload-carrying record.
  Status WritePayloadRecord(sscd1::RecordType type, std::uint64_t target,
                            SetView set);

  Status status_;
  std::fstream out_;
  std::string path_;
  std::size_t universe_size_ = 0;
  std::uint64_t base_num_sets_ = 0;
  double sparsity_threshold_ = 0.0;
  std::uint64_t offset_ = 0;  // current write position (== file size)
  std::uint64_t record_count_ = 0;
  // Liveness as (slot count, tombstone set): like the reader's slot
  // table, memory scales with the mutations, not the claimed base size.
  std::uint64_t num_slots_ = 0;
  std::unordered_set<std::uint64_t> dead_;
  std::vector<ElementId> scratch_ids_;  // reused per sparse payload
  bool finished_ = false;
};

/// True iff \p path starts with the sscd1 magic (cheap format sniff).
bool IsDeltaLogFile(const std::string& path);

}  // namespace streamsc

#endif  // STREAMSC_DYNAMIC_DELTA_LOG_H_
