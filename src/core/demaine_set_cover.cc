#include "core/demaine_set_cover.h"

#include <algorithm>
#include <cmath>

#include "core/sampling.h"
#include "obs/trace.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/math.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");
const SpaceCategory kProjectionsCat("projections");

}  // namespace

DemaineSetCover::DemaineSetCover(DemaineConfig config) : config_(config) {
  STREAMSC_CHECK(config_.alpha >= 2, "DemaineConfig: alpha must be >= 2");
}

std::string DemaineSetCover::name() const {
  return "demaine(alpha=" + std::to_string(config_.alpha) + ")";
}

double DemaineSetCover::SpaceExponent(std::size_t n) const {
  (void)n;
  const double delta =
      std::log(4.0) / std::log(static_cast<double>(config_.alpha));
  return std::clamp(delta, 1e-6, 1.0);
}

SetCoverRunResult DemaineSetCover::RunWithGuess(
    SetStream& stream, std::size_t opt_guess, Rng& rng,
    const RunContext& context) const {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::uint64_t passes_before = stream.passes();

  SetCoverRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);

  // Run-lived state on the run arena; phase-lived structures bracket the
  // thread's table arena per phase (see the Assadi implementation for the
  // full rationale).
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  Solution solution(ctx.alloc<SetId>());

  // Per-phase sample size target: n^delta elements of the residual
  // universe (the Õ(m·n^delta) space law), but never below what the
  // greedy sub-solve needs to make progress for a size-õpt cover.
  const double delta = SpaceExponent(n);
  const double target =
      config_.sampling_boost *
      std::max(std::pow(static_cast<double>(n), delta),
               4.0 * static_cast<double>(std::max<std::size_t>(opt_guess, 1)));

  // O(alpha) phases: sample / store / greedy / subtract = 2 passes each.
  const std::size_t max_phases = config_.alpha;
  for (std::size_t phase = 0; phase < max_phases; ++phase) {
    if (uncovered.None()) break;
    TraceSpan phase_span(ctx.trace(), TraceCategory::kPhase, "phase");
    phase_span.AddArg("phase", phase);
    const double residual = static_cast<double>(uncovered.CountSet());
    const double rate = std::clamp(target / residual, 1e-12, 1.0);

    // Everything this phase builds dies with it: table-arena bracket.
    const ArenaCheckpoint phase_checkpoint(ThreadTableArena());
    const auto table = ArenaAllocator<SetId>::Table();
    const DynamicBitset sampled =
        SampleElements(uncovered, rate, rng, DynamicBitset::Allocator(table));
    if (sampled.None()) continue;
    SubUniverse sub(sampled, table);

    SetSystem projections(sub.size(), SetSystem::kDefaultSparsityThreshold,
                          &ThreadTableArena());
    ArenaVector<SetId> projection_ids(table);
    projection_ids.reserve(m);
    ctx.TransformPass<ProjectedSet>(
        [&](const StreamItem& it) {
          return sub.ProjectAdaptive(it.set,
                                     ArenaAllocator<ElementId>::Scratch());
        },
        [&](const StreamItem& it, ProjectedSet proj) {
          const SetId pid = StoreProjection(projections, std::move(proj));
          meter.Charge(projections.SetBytes(pid) + sizeof(SetId),
                       kProjectionsCat);
          projection_ids.push_back(it.id);
        });

    // DIMV'14 covers the sample with greedy — the multiplicative loss per
    // phase is where the 4^{1/delta} approximation factor comes from.
    const std::int64_t subsolve_start =
        ctx.trace() != nullptr ? TraceRecorder::NowNs() : 0;
    const Solution local = GreedySetCover(projections, table);
    if (ctx.trace() != nullptr) {
      ctx.trace()->Emit(TraceCategory::kPhase, "greedy_subsolve",
                        subsolve_start,
                        TraceRecorder::NowNs() - subsolve_start);
    }
    meter.Release(meter.CategoryCurrent(kProjectionsCat), kProjectionsCat);

    ArenaVector<SetId> chosen_global(table);
    chosen_global.reserve(local.size());
    for (const SetId id : local.chosen) {
      chosen_global.push_back(projection_ids[id]);
      solution.chosen.push_back(projection_ids[id]);
    }
    meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
    ctx.RecordTakes(chosen_global.size(), 0);

    ctx.SubtractPass(chosen_global, uncovered);
  }

  if (config_.ensure_feasible && !uncovered.None()) {
    ctx.CoverResiduePass(uncovered, [&](SetId id) {
      solution.chosen.push_back(id);
    });
    meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
  }

  result.solution = std::move(solution);
  result.feasible = uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * m;
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

SetCoverRunResult DemaineSetCover::Run(SetStream& stream,
                                       const RunContext& context) {
  Stopwatch timer;
  Rng rng(config_.seed);
  const std::uint64_t passes_before = stream.passes();
  SetCoverRunResult out;
  Bytes peak = 0;
  EnginePassStats totals;

  auto try_guess = [&](std::size_t guess) {
    TraceSpan guess_span(context.trace, TraceCategory::kPhase, "guess");
    guess_span.AddArg("opt_guess", guess);
    SetCoverRunResult r = RunWithGuess(stream, guess, rng, context);
    peak = std::max(peak, r.stats.peak_space_bytes);
    totals.sets_taken += r.stats.sets_taken;
    totals.elements_covered += r.stats.elements_covered;
    out.stats.counters.MergeFrom(r.stats.counters);
    const double budget = static_cast<double>(config_.alpha) *
                          static_cast<double>(guess);
    if (r.feasible && static_cast<double>(r.solution.size()) <= budget) {
      if (out.solution.empty() || r.solution.size() < out.solution.size()) {
        out.solution = std::move(r.solution);
      }
      out.feasible = true;
      return true;
    }
    return false;
  };

  if (config_.known_opt > 0) {
    try_guess(config_.known_opt);
  } else {
    std::size_t prev = 0;
    for (double g = 1.0;
         static_cast<std::size_t>(g) <= stream.universe_size(); g *= 2.0) {
      const std::size_t guess = static_cast<std::size_t>(std::ceil(g));
      if (guess == prev) continue;
      prev = guess;
      if (try_guess(guess)) break;
    }
  }

  out.stats.passes = stream.passes() - passes_before;
  out.stats.peak_space_bytes = peak;
  out.stats.items_seen = out.stats.passes * stream.num_sets();
  out.stats.sets_taken = totals.sets_taken;
  out.stats.elements_covered = totals.elements_covered;
  out.stats.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace streamsc
