#ifndef STREAMSC_CORE_ASSADI_SET_COVER_H_
#define STREAMSC_CORE_ASSADI_SET_COVER_H_

#include <cstdint>
#include <string>

#include "stream/engine_context.h"
#include "stream/stream_algorithm.h"
#include "util/random.h"

/// \file assadi_set_cover.h
/// Algorithm 1 of the paper (Theorem 2): an (α+ε)-approximation streaming
/// set cover algorithm making (2α+1) passes in Õ(m·n^{1/α}/ε² + n/ε)
/// space. It refines Har-Peled et al. (PODS 2016) via (i) a *one-shot*
/// pruning pass that removes all sets covering ≥ n/(ε·õpt) uncovered
/// elements up front, and (ii) element sampling at rate
/// 16·õpt·log m / n^{1-1/α} per iteration (Lemma 3.12 with ρ = n^{-1/α}),
/// exploiting that each sub-instance is fully coverable.
///
/// Given a guess õpt of the optimum:
///   pass 0      : one-shot pruning (adds ≤ ε·õpt sets).
///   α iterations: sample U_smpl ⊆ U; one pass storing projections
///                 S'_i = S_i ∩ U_smpl; solve the sub-instance *optimally*
///                 offline (unbounded computation is allowed in this
///                 model); one pass subtracting the chosen sets from U.
/// Total: 2α+1 passes, ≤ (α+ε)·õpt sets, and U shrinks by ~n^{1/α} per
/// iteration w.h.p. (Lemma 3.11).
///
/// The driver runs O(log n / ε) geometric guesses. The paper runs guesses
/// in parallel within shared passes; we run them sequentially from the
/// smallest guess and stop at the first success, which preserves the space
/// bound per guess and reports the actual pass count (see DESIGN.md).

namespace streamsc {

/// Configuration of Algorithm 1.
struct AssadiConfig {
  std::size_t alpha = 2;        ///< Target approximation factor α >= 1.
  double epsilon = 0.5;         ///< Slack ε > 0 in (α+ε).
  double sampling_boost = 1.0;  ///< Multiplier on the Lemma 3.12 rate
                                ///< (benches sweep this to locate the
                                ///< space threshold; 1.0 = paper).
  std::uint64_t seed = 1;       ///< Seed for the element sampling.
  std::uint64_t exact_node_budget = 20'000'000;  ///< Sub-solver budget.
  bool use_exact_subsolver = true;  ///< Step 3c sub-solver: the paper's
                                    ///< *optimal* solve (true) or plain
                                    ///< greedy (false) — the A2 ablation.
  bool ensure_feasible = true;  ///< Add a cleanup pass if a residue of U
                                ///< survives the α iterations (the paper's
                                ///< "always return a feasible solution").
  std::size_t known_opt = 0;    ///< If > 0, skip guessing and use this õpt.
};

/// Outcome of a single-guess run (the (2α+1)-pass core).
struct AssadiGuessResult {
  Solution solution;
  bool feasible = false;         ///< Covered everything.
  bool within_budget = false;    ///< Used ≤ (α+ε)·õpt sets.
  std::uint64_t passes = 0;
  Bytes peak_space_bytes = 0;
  std::uint64_t residual_after_iterations = 0;  ///< |U| left before cleanup.
  EnginePassStats engine_stats;  ///< Deterministic per-guess pass counters.
  CounterSet counters;           ///< Full per-guess counter snapshot.
};

/// Algorithm 1 with the geometric-guess driver.
class AssadiSetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit AssadiSetCover(AssadiConfig config);

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// Runs the full driver (guessing õpt unless config.known_opt is set).
  /// The engine in \p context (if any) shards the pruning and projection
  /// passes whenever the stream's items stay valid within a pass; results
  /// are bit-identical for any thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

  /// Runs the (2α+1)-pass core for one guess õpt. Exposed for the benches
  /// that study the per-guess space/pass behaviour (Theorem 2's headline).
  AssadiGuessResult RunWithGuess(SetStream& stream, std::size_t opt_guess,
                                 Rng& rng,
                                 const RunContext& context = {}) const;

  const AssadiConfig& config() const { return config_; }

 private:
  AssadiConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_ASSADI_SET_COVER_H_
