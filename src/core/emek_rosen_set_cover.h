#ifndef STREAMSC_CORE_EMEK_ROSEN_SET_COVER_H_
#define STREAMSC_CORE_EMEK_ROSEN_SET_COVER_H_

#include <string>

#include "stream/stream_algorithm.h"

/// \file emek_rosen_set_cover.h
/// Emek-Rosén (ICALP 2014) style semi-streaming set cover: a single pass,
/// Õ(n) space, and an O(√n) approximation guarantee — reference [26] in
/// the paper and the single-pass point on the tradeoff curve that
/// Assadi-Khanna-Li (STOC 2016) proved tight.
///
/// Mechanism (the threshold-and-witness simplification that realizes the
/// O(√n) bound):
///   * a set is taken outright when it covers >= θ = √n still-uncovered
///     elements — at most n/θ = √n such "big" picks can happen;
///   * every other uncovered element remembers the id of the first set
///     containing it (a 1-word witness per element);
///   * at end of pass, the witnesses of the still-uncovered elements are
///     added (deduplicated).
/// Each surviving element's witness gain was < θ when it was remembered,
/// so opt >= (#leftover)/θ and the witness picks number <= θ·opt; total
/// <= √n + √n·opt = O(√n)·opt.
///
/// Space: the uncovered bitset (n bits) + the witness array (n words) +
/// the solution ids — semi-streaming Õ(n), independent of m.

namespace streamsc {

/// Configuration of the Emek-Rosén style baseline.
struct EmekRosenConfig {
  /// Threshold override; 0 means the √n default. An explicit threshold
  /// must not exceed the universe size of the streamed instance (no set
  /// could ever qualify as "big", silently degrading the O(√n) guarantee
  /// to O(n) witness-only mode) — Run() CHECK-fails on that misuse.
  /// (The registry front door pre-validates this against the stream and
  /// returns a Status instead; see api/solver_registry.h.)
  std::size_t threshold = 0;
};

/// Single-pass O(√n)-approximation semi-streaming set cover.
class EmekRosenSetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit EmekRosenSetCover(EmekRosenConfig config = {});

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// The engine in \p context (if any) precomputes gains sharded across
  /// the pool; witnesses commit in stream order, so the taken sets and
  /// the witness array are bit-identical for any thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

  /// The big-set threshold used for a universe of size \p n.
  std::size_t ThresholdFor(std::size_t n) const;

 private:
  EmekRosenConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_EMEK_ROSEN_SET_COVER_H_
