#ifndef STREAMSC_CORE_ONE_PASS_SET_COVER_H_
#define STREAMSC_CORE_ONE_PASS_SET_COVER_H_

#include <string>

#include "stream/stream_algorithm.h"

/// \file one_pass_set_cover.h
/// Baseline: single-pass greedy set cover (Saha-Getoor 2009 style).
/// Takes a set the moment it covers at least max(1, frac·|U_current|)
/// uncovered elements. Always feasible when the instance is (every new
/// element's first containing set is taken when frac = 0), one pass,
/// Õ(n) space, but the approximation can degrade to Θ(n) on adversarial
/// orders — exactly the regime the multi-pass tradeoff escapes.

namespace streamsc {

/// Configuration of the single-pass baseline.
struct OnePassConfig {
  /// Minimum marginal gain as a fraction of the current uncovered count;
  /// 0 means "take anything that helps" (always feasible). Must lie in
  /// [0, 1] — CHECK-enforced (a negative value aliases 0 and a value
  /// above 1 can never be met, both silent misconfigurations).
  double min_gain_fraction = 0.0;
};

/// Single-pass greedy.
class OnePassSetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit OnePassSetCover(OnePassConfig config = {});

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// The engine in \p context (if any) precomputes gains sharded across
  /// the pool and commits takes in stream order — bit-identical for any
  /// thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

 private:
  OnePassConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_ONE_PASS_SET_COVER_H_
