#include "core/one_pass_set_cover.h"

#include <algorithm>

#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {

OnePassSetCover::OnePassSetCover(OnePassConfig config) : config_(config) {}

std::string OnePassSetCover::name() const {
  return "one-pass-greedy(frac=" + std::to_string(config_.min_gain_fraction) +
         ")";
}

SetCoverRunResult OnePassSetCover::Run(SetStream& stream) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();

  SetCoverRunResult result;
  SpaceMeter meter;
  DynamicBitset uncovered = DynamicBitset::Full(n);
  meter.Charge(uncovered.ByteSize(), "uncovered");
  Solution solution;
  StreamItem item;

  stream.BeginPass();
  while (stream.Next(&item)) {
    if (uncovered.None()) break;
    const Count gain = item.set.CountAnd(uncovered);
    const double needed = std::max(
        1.0, config_.min_gain_fraction *
                 static_cast<double>(uncovered.CountSet()));
    if (static_cast<double>(gain) >= needed) {
      solution.chosen.push_back(item.id);
      meter.SetCategory(solution.size() * sizeof(SetId), "solution");
      item.set.AndNotInto(uncovered);
    }
  }

  result.solution = std::move(solution);
  result.feasible = uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = stream.num_sets();
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace streamsc
