#include "core/one_pass_set_cover.h"

#include <algorithm>

#include "obs/trace.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");

}  // namespace

OnePassSetCover::OnePassSetCover(OnePassConfig config) : config_(config) {
  STREAMSC_CHECK(
      config_.min_gain_fraction >= 0.0 && config_.min_gain_fraction <= 1.0,
      "OnePassConfig: min_gain_fraction must lie in [0, 1]");
}

std::string OnePassSetCover::name() const {
  return "one-pass-greedy(frac=" + std::to_string(config_.min_gain_fraction) +
         ")";
}

SetCoverRunResult OnePassSetCover::Run(SetStream& stream,
                                       const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();

  SetCoverRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  Solution solution(ctx.alloc<SetId>());

  // The acceptance bar max(1, frac·|U|) shrinks together with |U|, so
  // only the zero-gain part of the snapshot filter is sound here: a
  // positive stale bound says nothing (the bar may have dropped faster
  // than the gain), so every visited item re-evaluates its exact gain.
  const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "scan");
  ctx.GainScanPass(uncovered, [&](const StreamItem& item, Count bound,
                                  bool bound_is_exact) {
    const Count gain = bound_is_exact ? bound : item.set.CountAnd(uncovered);
    if (gain == 0) return;
    const double needed = std::max(
        1.0, config_.min_gain_fraction *
                 static_cast<double>(uncovered.CountSet()));
    if (static_cast<double>(gain) >= needed) {
      solution.chosen.push_back(item.id);
      meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
      item.set.AndNotInto(uncovered);
      ctx.RecordTake(gain);
    }
  });

  result.solution = std::move(solution);
  result.feasible = uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = stream.num_sets();
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

}  // namespace streamsc
