#include "core/threshold_greedy.h"

#include <algorithm>

#include "obs/trace.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");

}  // namespace

ThresholdGreedySetCover::ThresholdGreedySetCover(ThresholdGreedyConfig config)
    : config_(config) {
  STREAMSC_CHECK(config_.beta > 1.0,
                 "ThresholdGreedyConfig: beta must be > 1 (the threshold "
                 "must shrink every pass)");
}

std::string ThresholdGreedySetCover::name() const {
  return "threshold-greedy(beta=" + std::to_string(config_.beta) + ")";
}

SetCoverRunResult ThresholdGreedySetCover::Run(SetStream& stream,
                                               const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();

  SetCoverRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  Solution solution(ctx.alloc<SetId>());

  const auto take = [&](SetId id) {
    solution.chosen.push_back(id);
    meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
  };

  // Thresholds n, n/β, n/β², ..., ending with a final pass at exactly 1 —
  // one pass each. A set is taken the moment its marginal gain meets the
  // current threshold, which emulates offline greedy within a factor β.
  double threshold = static_cast<double>(n);
  std::uint64_t round = 0;
  while (!uncovered.None()) {
    TraceSpan round_span(ctx.trace(), TraceCategory::kPhase,
                         "threshold_round");
    round_span.AddArg("round", round++);
    round_span.AddArg("threshold",
                      static_cast<std::uint64_t>(std::max(threshold, 1.0)));
    ctx.ThresholdPass(std::max(threshold, 1.0), uncovered, take);
    if (threshold <= 1.0) break;
    threshold /= config_.beta;
  }

  result.solution = std::move(solution);
  result.feasible = uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * stream.num_sets();
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

}  // namespace streamsc
