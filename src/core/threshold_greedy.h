#ifndef STREAMSC_CORE_THRESHOLD_GREEDY_H_
#define STREAMSC_CORE_THRESHOLD_GREEDY_H_

#include <string>

#include "stream/stream_algorithm.h"

/// \file threshold_greedy.h
/// Baseline: multi-pass threshold greedy set cover (Cormode-Karloff-Wirth,
/// CIKM 2010 style) — the classic O(log n)-approximation regime the paper
/// contrasts against ([9, 45]): geometrically decreasing thresholds, one
/// pass per threshold, taking any set that covers at least the threshold
/// many uncovered elements. Space is Õ(n) (the uncovered bitset plus the
/// solution ids) — *independent of m* — at the price of a log n
/// approximation factor and ~log_β(n) passes.

namespace streamsc {

/// Configuration of the threshold-greedy baseline.
struct ThresholdGreedyConfig {
  /// Threshold shrink factor per pass (β > 1). β = 2 gives a
  /// 2·H_n-style guarantee in ~log2(n) passes.
  double beta = 2.0;
};

/// Multi-pass threshold greedy.
class ThresholdGreedySetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit ThresholdGreedySetCover(ThresholdGreedyConfig config = {});

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// The engine in \p context (if any) shards each threshold pass; the
  /// taken sets are bit-identical for any thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

 private:
  ThresholdGreedyConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_THRESHOLD_GREEDY_H_
