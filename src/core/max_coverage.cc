#include "core/max_coverage.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/sampling.h"
#include "offline/exact_max_coverage.h"
#include "offline/greedy.h"
#include "util/math.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {

ElementSamplingMaxCoverage::ElementSamplingMaxCoverage(
    ElementSamplingMcConfig config)
    : config_(config) {
  assert(config_.epsilon > 0.0 && config_.epsilon < 1.0);
}

std::string ElementSamplingMaxCoverage::name() const {
  return "element-sampling-mc(eps=" + std::to_string(config_.epsilon) + ")";
}

double ElementSamplingMaxCoverage::SampleRate(std::size_t n, std::size_t m,
                                              std::size_t k) const {
  // Target sample size Θ(k·log m / ε²); rate = target / n, clamped.
  const double target = config_.sampling_boost * 12.0 *
                        static_cast<double>(k) *
                        SafeLog(static_cast<double>(m)) /
                        (config_.epsilon * config_.epsilon);
  return std::clamp(target / static_cast<double>(n), 1e-12, 1.0);
}

MaxCoverageRunResult ElementSamplingMaxCoverage::Run(SetStream& stream,
                                                     std::size_t k) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::uint64_t passes_before = stream.passes();
  Rng rng(config_.seed);

  MaxCoverageRunResult result;
  SpaceMeter meter;

  // Sample the universe once, up front (public coins in the paper's
  // communication view).
  const double rate = SampleRate(n, m, k);
  const DynamicBitset sampled =
      rng.BernoulliSubset(n, rate);
  SubUniverse sub(sampled);
  meter.Charge(CeilDiv(sub.size(), 8), "sample-universe");

  // One pass: store every set's projection onto the sample.
  SetSystem projections(sub.size());
  std::vector<SetId> projection_ids;
  projection_ids.reserve(m);
  StreamItem item;
  stream.BeginPass();
  while (stream.Next(&item)) {
    const SetId pid =
        StoreProjection(projections, sub.ProjectAdaptive(item.set));
    meter.Charge(projections.SetBytes(pid) + sizeof(SetId), "projections");
    projection_ids.push_back(item.id);
  }

  // Offline solve on the sampled instance.
  Solution local;
  if (k <= config_.exact_k_limit) {
    ExactMaxCoverageOptions options;
    options.max_nodes = config_.exact_node_budget;
    ExactMaxCoverageResult exact = SolveExactMaxCoverage(
        projections, DynamicBitset::Full(sub.size()), k, options);
    local = exact.solution;
  } else {
    local = GreedyMaxCoverage(projections, k);
  }

  result.solution.chosen.reserve(local.chosen.size());
  for (SetId id : local.chosen) {
    result.solution.chosen.push_back(projection_ids[id]);
  }

  // One more pass to compute the *true* coverage of the returned sets
  // (verification; not charged against the sketch space).
  DynamicBitset covered(n);
  stream.BeginPass();
  while (stream.Next(&item)) {
    if (std::find(result.solution.chosen.begin(),
                  result.solution.chosen.end(),
                  item.id) != result.solution.chosen.end()) {
      item.set.OrInto(covered);
    }
  }
  result.coverage = covered.CountSet();

  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * m;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

SieveMaxCoverage::SieveMaxCoverage(SieveMcConfig config) : config_(config) {
  assert(config_.epsilon > 0.0 && config_.epsilon < 1.0);
}

std::string SieveMaxCoverage::name() const {
  return "sieve-mc(eps=" + std::to_string(config_.epsilon) + ")";
}

MaxCoverageRunResult SieveMaxCoverage::Run(SetStream& stream, std::size_t k) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();

  MaxCoverageRunResult result;
  SpaceMeter meter;

  // One candidate solution per OPT guess v on the grid (1+ε)^j in
  // [1, k·n]. Each candidate retains its covered-elements bitset.
  struct Candidate {
    double guess;
    DynamicBitset covered;
    std::vector<SetId> chosen;
  };
  std::vector<Candidate> candidates;
  for (double v = 1.0; v <= static_cast<double>(k) * static_cast<double>(n);
       v *= (1.0 + config_.epsilon)) {
    candidates.push_back({v, DynamicBitset(n), {}});
    meter.Charge(candidates.back().covered.ByteSize(), "candidates");
  }

  StreamItem item;
  stream.BeginPass();
  while (stream.Next(&item)) {
    for (Candidate& cand : candidates) {
      if (cand.chosen.size() >= k) continue;
      const Count gain = item.set.CountAndNot(cand.covered);
      const double needed =
          (cand.guess / 2.0 -
           static_cast<double>(cand.covered.CountSet())) /
          static_cast<double>(k - cand.chosen.size());
      if (static_cast<double>(gain) >= needed && gain > 0) {
        cand.chosen.push_back(item.id);
        item.set.OrInto(cand.covered);
      }
    }
  }

  // Return the best candidate by actual (full-universe) coverage.
  const Candidate* best = nullptr;
  Count best_coverage = 0;
  for (const Candidate& cand : candidates) {
    const Count cov = cand.covered.CountSet();
    if (cov > best_coverage || best == nullptr) {
      best_coverage = cov;
      best = &cand;
    }
  }
  if (best != nullptr) {
    result.solution.chosen = best->chosen;
    result.coverage = best_coverage;
  }

  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = stream.num_sets();
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace streamsc
