#include "core/max_coverage.h"

#include <algorithm>
#include <cmath>

#include "core/sampling.h"
#include "obs/trace.h"
#include "offline/exact_max_coverage.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/math.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kSampleUniverseCat("sample-universe");
const SpaceCategory kProjectionsCat("projections");
const SpaceCategory kCandidatesCat("candidates");

}  // namespace

ElementSamplingMaxCoverage::ElementSamplingMaxCoverage(
    ElementSamplingMcConfig config)
    : config_(config) {
  STREAMSC_CHECK(config_.epsilon > 0.0 && config_.epsilon < 1.0,
                 "ElementSamplingMcConfig: epsilon must lie in (0, 1)");
}

std::string ElementSamplingMaxCoverage::name() const {
  return "element-sampling-mc(eps=" + std::to_string(config_.epsilon) + ")";
}

double ElementSamplingMaxCoverage::SampleRate(std::size_t n, std::size_t m,
                                              std::size_t k) const {
  // Target sample size Θ(k·log m / ε²); rate = target / n, clamped.
  const double target = config_.sampling_boost * 12.0 *
                        static_cast<double>(k) *
                        SafeLog(static_cast<double>(m)) /
                        (config_.epsilon * config_.epsilon);
  return std::clamp(target / static_cast<double>(n), 1e-12, 1.0);
}

MaxCoverageRunResult ElementSamplingMaxCoverage::Run(
    SetStream& stream, std::size_t k, const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::uint64_t passes_before = stream.passes();
  Rng rng(config_.seed);

  MaxCoverageRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);

  // Everything here is run-lived (one sample, one projection store, one
  // solve): it all goes straight on the run arena.
  // Sample the universe once, up front (public coins in the paper's
  // communication view).
  const double rate = SampleRate(n, m, k);
  const DynamicBitset sampled =
      rng.BernoulliSubset(n, rate, ctx.alloc<DynamicBitset::Word>());
  SubUniverse sub(sampled, ctx.alloc<ElementId>());
  meter.Charge(CeilDiv(sub.size(), 8), kSampleUniverseCat);

  // One pass: store every set's projection onto the sample. Workers
  // project into their own scratch; the commit re-homes each projection
  // into the run-arena-backed system.
  SetSystem projections(sub.size(), SetSystem::kDefaultSparsityThreshold,
                        context.arena);
  ArenaVector<SetId> projection_ids(ctx.alloc<SetId>());
  projection_ids.reserve(m);
  ctx.TransformPass<ProjectedSet>(
      [&](const StreamItem& it) {
        return sub.ProjectAdaptive(it.set,
                                   ArenaAllocator<ElementId>::Scratch());
      },
      [&](const StreamItem& it, ProjectedSet proj) {
        const SetId pid = StoreProjection(projections, std::move(proj));
        meter.Charge(projections.SetBytes(pid) + sizeof(SetId),
                     kProjectionsCat);
        projection_ids.push_back(it.id);
      });

  // Offline solve on the sampled instance. The solve's internals bracket
  // the thread's table arena; its result lands on the run arena.
  Solution local(ctx.alloc<SetId>());
  {
    const TraceSpan phase(ctx.trace(), TraceCategory::kPhase,
                          "offline_solve");
    const ArenaCheckpoint solve_checkpoint(ThreadTableArena());
    const auto table = ArenaAllocator<SetId>::Table();
    if (k <= config_.exact_k_limit) {
      ExactMaxCoverageOptions options;
      options.max_nodes = config_.exact_node_budget;
      ExactMaxCoverageResult exact = SolveExactMaxCoverage(
          projections,
          DynamicBitset::Full(sub.size(), DynamicBitset::Allocator(table)), k,
          options, ctx.alloc<SetId>());
      local = std::move(exact.solution);
    } else {
      const Solution greedy = GreedyMaxCoverage(projections, k, table);
      local.chosen.assign(greedy.chosen.begin(), greedy.chosen.end());
    }
  }

  Solution lifted(ctx.alloc<SetId>());
  lifted.chosen.reserve(local.chosen.size());
  for (const SetId id : local.chosen) {
    lifted.chosen.push_back(projection_ids[id]);
  }
  result.solution = std::move(lifted);

  // One more pass to compute the *true* coverage of the returned sets
  // (verification; not charged against the sketch space).
  DynamicBitset covered(n, ctx.alloc<DynamicBitset::Word>());
  {
    const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "verify");
    ctx.UnionPass(result.solution.chosen, covered);
  }
  result.coverage = covered.CountSet();
  ctx.RecordTakes(result.solution.size(), result.coverage);

  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * m;
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

SieveMaxCoverage::SieveMaxCoverage(SieveMcConfig config) : config_(config) {
  STREAMSC_CHECK(config_.epsilon > 0.0 && config_.epsilon < 1.0,
                 "SieveMcConfig: epsilon must lie in (0, 1) — epsilon 0 "
                 "freezes the (1+eps)^j guess grid and loops forever");
}

std::string SieveMaxCoverage::name() const {
  return "sieve-mc(eps=" + std::to_string(config_.epsilon) + ")";
}

MaxCoverageRunResult SieveMaxCoverage::Run(SetStream& stream, std::size_t k,
                                           const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();

  MaxCoverageRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);

  // One candidate solution per OPT guess v on the grid (1+ε)^j in
  // [1, k·n]. Each candidate retains its covered-elements bitset. All
  // lanes live on the run arena and are fully sized here on the
  // orchestrator thread: each chosen list reserves its k-set capacity up
  // front, so worker-thread pushes during the scan never allocate (the
  // run arena is not synchronized — workers may only write, not grow).
  struct Candidate {
    double guess;
    DynamicBitset covered;
    ArenaVector<SetId> chosen;
  };
  ArenaVector<Candidate> candidates{ctx.alloc<Candidate>()};
  for (double v = 1.0; v <= static_cast<double>(k) * static_cast<double>(n);
       v *= (1.0 + config_.epsilon)) {
    candidates.push_back(
        Candidate{v, DynamicBitset(n, ctx.alloc<DynamicBitset::Word>()),
                  ArenaVector<SetId>(ctx.alloc<SetId>())});
    candidates.back().chosen.reserve(k);
    meter.Charge(candidates.back().covered.ByteSize(), kCandidatesCat);
  }

  // Every guess is an independent lane: its take decisions depend only on
  // its own covered/chosen state and the item sequence, so the lanes can
  // be scanned in parallel without changing any of them.
  const std::int64_t sieve_start =
      ctx.trace() != nullptr ? TraceRecorder::NowNs() : 0;
  ctx.IndependentScanPass(
      candidates.size(), [&](std::size_t lane, const StreamItem& item) {
        Candidate& cand = candidates[lane];
        if (cand.chosen.size() >= k) return;
        const Count gain = item.set.CountAndNot(cand.covered);
        const double needed =
            (cand.guess / 2.0 -
             static_cast<double>(cand.covered.CountSet())) /
            static_cast<double>(k - cand.chosen.size());
        if (static_cast<double>(gain) >= needed && gain > 0) {
          cand.chosen.push_back(item.id);
          item.set.OrInto(cand.covered);
        }
      });

  if (ctx.trace() != nullptr) {
    const TraceArg args[] = {{"lanes", candidates.size()}};
    ctx.trace()->Emit(TraceCategory::kPhase, "sieve_scan", sieve_start,
                      TraceRecorder::NowNs() - sieve_start, args, 1);
  }

  // Return the best candidate by actual (full-universe) coverage; counters
  // aggregate over every lane (deterministic for any thread count, unlike
  // anything scheduling-dependent).
  const Candidate* best = nullptr;
  Count best_coverage = 0;
  std::uint64_t lane_takes = 0;
  std::uint64_t lane_covered = 0;
  for (const Candidate& cand : candidates) {
    const Count cov = cand.covered.CountSet();
    lane_takes += cand.chosen.size();
    lane_covered += cov;
    if (cov > best_coverage || best == nullptr) {
      best_coverage = cov;
      best = &cand;
    }
  }
  ctx.RecordTakes(lane_takes, lane_covered);
  if (best != nullptr) {
    Solution solution(ctx.alloc<SetId>());
    solution.chosen.assign(best->chosen.begin(), best->chosen.end());
    result.solution = std::move(solution);
    result.coverage = best_coverage;
  }

  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = stream.num_sets();
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

}  // namespace streamsc
