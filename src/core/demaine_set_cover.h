#ifndef STREAMSC_CORE_DEMAINE_SET_COVER_H_
#define STREAMSC_CORE_DEMAINE_SET_COVER_H_

#include <cstdint>
#include <string>

#include "stream/stream_algorithm.h"
#include "util/random.h"

/// \file demaine_set_cover.h
/// The Demaine-Indyk-Mahabadi-Vakilian (DISC 2014) baseline the paper
/// compares against: an α-approximation in O(α) passes and
/// Õ(m·n^{Θ(1/log α)}) space.
///
/// Structure (their Theorem: 4^{1/δ}-approximation with Õ(m·n^δ) space,
/// i.e. space exponent δ = Θ(1/log α) for approximation α): each phase
/// samples the residual universe at a rate proportional to n^δ/|U|·õpt,
/// stores the projections, covers the sample with *greedy* (their
/// sub-solver; the α factor is greedy's multiplicative loss compounded
/// over phases), and subtracts the chosen sets. Compared to Algorithm 1
/// (Theorem 2 of the paper) the sampling exponent is exponentially coarser
/// in α — the gap between n^{Θ(1/log α)} and n^{1/α} is exactly what
/// Theorems 1 + 2 close.
///
/// As with the other baselines, constants are calibrated, not copied:
/// DIMV'14's code is not public, so this re-implementation reproduces the
/// pass structure, the sub-solver choice (greedy, not exact), and the
/// space exponent — the three attributes the paper's comparison rests on.

namespace streamsc {

/// Configuration of the DIMV'14-style baseline.
struct DemaineConfig {
  std::size_t alpha = 4;        ///< Target approximation factor (>= 2).
  double sampling_boost = 1.0;  ///< Multiplier on the phase sampling rate.
  std::uint64_t seed = 1;       ///< Seed for element sampling.
  std::size_t known_opt = 0;    ///< If > 0, skip guessing and use this õpt.
  bool ensure_feasible = true;  ///< Cleanup pass if a residue survives.
};

/// DIMV'14-style α-approximation: O(α) passes, Õ(m·n^{Θ(1/log α)}) space.
class DemaineSetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit DemaineSetCover(DemaineConfig config);

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// Full driver (geometric õpt guesses unless config.known_opt is set).
  /// The engine in \p context (if any) shards the projection passes;
  /// bit-identical results for any thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

  /// Single-guess core; exposed for the per-guess space benches.
  SetCoverRunResult RunWithGuess(SetStream& stream, std::size_t opt_guess,
                                 Rng& rng,
                                 const RunContext& context = {}) const;

  /// The space exponent δ = ln 4 / ln α this configuration targets
  /// (clamped to (0, 1]); stored sample sizes scale as n^δ.
  double SpaceExponent(std::size_t n) const;

  const DemaineConfig& config() const { return config_; }

 private:
  DemaineConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_DEMAINE_SET_COVER_H_
