#ifndef STREAMSC_CORE_MAX_COVERAGE_H_
#define STREAMSC_CORE_MAX_COVERAGE_H_

#include <cstdint>
#include <string>

#include "stream/stream_algorithm.h"
#include "util/random.h"

/// \file max_coverage.h
/// Streaming maximum k-coverage algorithms:
///
/// * ElementSamplingMaxCoverage — the (1-ε)-approximation scheme of
///   McGregor-Vu / Bateni et al. that Result 2's lower bound matches:
///   subsample the universe to Õ(k·log m / ε²) elements in one pass while
///   storing every set's projection, then solve the sampled instance
///   offline (exactly for small k, greedily otherwise). Space has the
///   m/ε² shape of the upper bounds quoted in the paper.
///
/// * SieveMaxCoverage — a single-pass threshold sieve
///   (Badanidiyuru et al. KDD'14 style): guesses of OPT on a geometric
///   grid; a set is added to a guess's candidate iff its marginal gain
///   meets (v/2 - current)/(k - picked). Gives (1/2 - ε) offline-style
///   guarantees with k·n-bit state per guess; used as the cheap baseline.

namespace streamsc {

/// Configuration of the element-sampling (1-ε) scheme.
/// epsilon must lie in (0, 1) — CHECK-enforced in every build mode (the
/// sample-rate formula divides by ε²).
struct ElementSamplingMcConfig {
  double epsilon = 0.1;          ///< Target (1-ε) accuracy.
  double sampling_boost = 1.0;   ///< Multiplier on the sample rate.
  std::uint64_t seed = 1;
  std::uint64_t exact_node_budget = 5'000'000;
  std::size_t exact_k_limit = 3;  ///< Solve sampled instance exactly for
                                  ///< k <= this; greedily otherwise.
};

/// The (1-ε)-approximation, single-pass element-sampling algorithm.
class ElementSamplingMaxCoverage : public StreamingMaxCoverageAlgorithm {
 public:
  explicit ElementSamplingMaxCoverage(ElementSamplingMcConfig config);

  std::string name() const override;

  using StreamingMaxCoverageAlgorithm::Run;

  /// The engine in \p context (if any) shards the projection-storing
  /// pass; bit-identical results for any thread count.
  MaxCoverageRunResult Run(SetStream& stream, std::size_t k,
                           const RunContext& context) override;

  /// The universe-sampling rate used for a given instance shape — exposed
  /// so benches can report the predicted space m·(rate·n) directly.
  double SampleRate(std::size_t n, std::size_t m, std::size_t k) const;

 private:
  ElementSamplingMcConfig config_;
};

/// Configuration of the sieve baseline.
/// epsilon must lie in (0, 1) — CHECK-enforced in every build mode. This
/// one is load-bearing: ε = 0 makes the (1+ε)^j guess grid stop growing,
/// which in a release build (where a plain assert compiles out) used to
/// spin the grid-construction loop forever.
struct SieveMcConfig {
  double epsilon = 0.1;  ///< Guess-grid resolution (1+ε).
};

/// Single-pass threshold sieve baseline.
class SieveMaxCoverage : public StreamingMaxCoverageAlgorithm {
 public:
  explicit SieveMaxCoverage(SieveMcConfig config = {});

  std::string name() const override;

  using StreamingMaxCoverageAlgorithm::Run;

  /// The engine in \p context (if any) runs the OPT-guess lanes of the
  /// sieve in parallel — each lane's state depends only on its own
  /// history, so the result is bit-identical for any thread count.
  MaxCoverageRunResult Run(SetStream& stream, std::size_t k,
                           const RunContext& context) override;

 private:
  SieveMcConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_MAX_COVERAGE_H_
