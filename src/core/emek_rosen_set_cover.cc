#include "core/emek_rosen_set_cover.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "stream/engine_context.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");
const SpaceCategory kWitnessesCat("witnesses");

}  // namespace

EmekRosenSetCover::EmekRosenSetCover(EmekRosenConfig config)
    : config_(config) {}

std::string EmekRosenSetCover::name() const {
  return config_.threshold == 0
             ? "emek-rosen(sqrt n)"
             : "emek-rosen(theta=" + std::to_string(config_.threshold) + ")";
}

std::size_t EmekRosenSetCover::ThresholdFor(std::size_t n) const {
  if (config_.threshold > 0) return config_.threshold;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::sqrt(
             static_cast<double>(n)))));
}

SetCoverRunResult EmekRosenSetCover::Run(SetStream& stream,
                                         const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();
  // An explicit threshold above n silently disables the "big set" rule —
  // the O(√n) bound degrades to witness-only O(n) without any signal.
  // That is a configuration bug, not a parameter choice.
  STREAMSC_CHECK(config_.threshold <= n,
                 "EmekRosenConfig: explicit threshold exceeds the universe "
                 "size (no set could ever qualify as big); use 0 for the "
                 "sqrt(n) default");
  const std::size_t theta = ThresholdFor(n);

  SetCoverRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);

  // Run-lived state (the uncovered bitset, the witness array, the
  // solution ids) on the run arena.
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  // Witness id per element; kInvalidSetId = none seen yet. Elements
  // covered by a taken set keep their (now unused) witness slot — the
  // array is the Õ(n) term of the space bound either way.
  ArenaVector<SetId> witness(n, kInvalidSetId, ctx.alloc<SetId>());
  meter.Charge(n * sizeof(SetId), kWitnessesCat);
  Solution solution(ctx.alloc<SetId>());

  // The threshold-and-witness pass. The big-set rule is a monotone
  // threshold take (eligible for the snapshot filter); the witness writes
  // happen in the in-order commit, so the witness array evolves exactly
  // as in the sequential loop.
  const std::int64_t scan_start =
      ctx.trace() != nullptr ? TraceRecorder::NowNs() : 0;
  ctx.GainScanPass(uncovered, [&](const StreamItem& item, Count bound,
                                  bool bound_is_exact) {
    if (bound >= theta) {
      const Count gain =
          bound_is_exact ? bound : item.set.CountAnd(uncovered);
      if (gain >= theta) {
        solution.chosen.push_back(item.id);
        meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
        item.set.AndNotInto(uncovered);
        ctx.RecordTake(gain);
        return;
      }
      if (gain == 0) return;  // fully covered since the snapshot
    }
    const SetId id = item.id;
    item.set.ForEach([&](ElementId e) {
      if (uncovered.Test(e) && witness[e] == kInvalidSetId) {
        witness[e] = id;
      }
    });
  });

  if (ctx.trace() != nullptr) {
    ctx.trace()->Emit(TraceCategory::kPhase, "witness_scan", scan_start,
                      TraceRecorder::NowNs() - scan_start);
  }

  // End of pass: close the cover with the witnesses of the survivors.
  // The leftover list is transient (consumed before the rewind): scratch.
  {
    const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "closeout");
    MonotonicArena& scratch = ThreadScratchArena();
    const ArenaCheckpoint leftovers_checkpoint(scratch);
    ArenaVector<SetId> leftovers{ArenaAllocator<SetId>(&scratch)};
    uncovered.ForEach([&](ElementId e) {
      if (witness[e] != kInvalidSetId) leftovers.push_back(witness[e]);
    });
    std::sort(leftovers.begin(), leftovers.end());
    leftovers.erase(std::unique(leftovers.begin(), leftovers.end()),
                    leftovers.end());

    if (!leftovers.empty()) {
      // One more (cheap) pass to subtract the witnesses' actual contents —
      // needed only to *verify* feasibility; the ids were already final.
      ctx.RecordTakes(leftovers.size(), 0);
      ctx.SubtractPass(leftovers, uncovered);
      solution.chosen.insert(solution.chosen.end(), leftovers.begin(),
                             leftovers.end());
      meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
    }
  }

  result.solution = std::move(solution);
  result.feasible = uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * stream.num_sets();
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

}  // namespace streamsc
