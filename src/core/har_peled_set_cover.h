#ifndef STREAMSC_CORE_HAR_PELED_SET_COVER_H_
#define STREAMSC_CORE_HAR_PELED_SET_COVER_H_

#include <cstdint>
#include <string>

#include "stream/stream_algorithm.h"
#include "util/random.h"

/// \file har_peled_set_cover.h
/// Baseline: a Har-Peled et al. (PODS 2016)-style α-approximation with
/// *iterative* pruning and the looser element-sampling rate the paper
/// attributes to it (space exponent Θ(1/α) with constant c >= 2, versus
/// Assadi's exactly 1/α — Section 3.4: "we obtain our improved algorithm
/// by using a one-shot pruning step as opposed to the iterative pruning of
/// [32], and employing a more careful element sampling").
///
/// Structure per iteration (ceil(α/2) iterations, reducing the uncovered
/// set by ~n^{2/α} each):
///   1. pruning pass: take every set covering >= |U| / (2·õpt) uncovered
///      elements;
///   2. sampling pass: store projections at rate with ρ = n^{-2/α}
///      (so the stored sample is ~n^{2/α}·õpt·log m — the c = 2 exponent);
///   3. solve the sub-instance optimally; subtraction pass.
/// This is a faithful re-implementation *in spirit* of the comparator (the
/// original is not open source); see DESIGN.md, substitutions.

namespace streamsc {

/// Configuration of the Har-Peled-style baseline.
struct HarPeledConfig {
  std::size_t alpha = 2;          ///< Target approximation factor.
  double sampling_boost = 1.0;    ///< Multiplier on the sampling rate.
  std::uint64_t seed = 1;
  std::uint64_t exact_node_budget = 20'000'000;
  std::size_t known_opt = 0;      ///< If > 0, use as õpt (no guessing).
};

/// The iterative-pruning baseline algorithm.
class HarPeledSetCover : public StreamingSetCoverAlgorithm {
 public:
  explicit HarPeledSetCover(HarPeledConfig config);

  std::string name() const override;

  using StreamingSetCoverAlgorithm::Run;

  /// The engine in \p context (if any) shards the pruning and projection
  /// passes; bit-identical results for any thread count.
  SetCoverRunResult Run(SetStream& stream,
                        const RunContext& context) override;

  /// Single-guess core; exposed for the comparison benches.
  SetCoverRunResult RunWithGuess(SetStream& stream, std::size_t opt_guess,
                                 Rng& rng,
                                 const RunContext& context = {}) const;

 private:
  HarPeledConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_HAR_PELED_SET_COVER_H_
