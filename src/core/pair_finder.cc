#include "core/pair_finder.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/space_meter.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kProjectionsCat("projections");
const SpaceCategory kCandidatesCat("candidates");

}  // namespace

ExactPairFinder::ExactPairFinder(PairFinderConfig config) : config_(config) {
  STREAMSC_CHECK(config_.passes >= 1,
                 "PairFinderConfig: at least one pass/chunk is required");
}

std::string ExactPairFinder::name() const {
  return "exact-pair-finder(p=" + std::to_string(config_.passes) + ")";
}

PairFinderResult ExactPairFinder::Run(SetStream& stream,
                                      const RunContext& context) const {
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::size_t p = std::min(config_.passes, std::max<std::size_t>(n, 1));
  const std::uint64_t passes_before = stream.passes();

  PairFinderResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);
  result.solution = Solution(ctx.alloc<SetId>());

  // Candidate pairs (i <= j) surviving all chunks seen so far. Seeded from
  // the first chunk instead of materializing all m² pairs. Run-lived:
  // run arena.
  using Pair = std::pair<SetId, SetId>;
  ArenaVector<Pair> candidates{ctx.alloc<Pair>()};
  bool seeded = false;
  bool aborted = false;

  for (std::size_t chunk = 0; chunk < p && !aborted; ++chunk) {
    // Contiguous chunk [lo, hi) of the universe.
    const std::size_t lo = chunk * n / p;
    const std::size_t hi = (chunk + 1) * n / p;
    const std::size_t width = hi - lo;
    if (width == 0) continue;

    // One pass: store all projections onto this chunk (m·n/p bits). The
    // per-item slice extraction is pure, so the pass shards when the
    // stream can buffer it. The stored projections are chunk-lived: they
    // bracket the thread's table arena. Workers slice into their own
    // scratch; the commit *copy*-assigns, which re-homes each slice into
    // the table-backed row (copy assignment keeps the destination's
    // allocator; a move would smuggle the scratch binding in and dangle
    // at the pass-end scratch rewind).
    const ArenaCheckpoint chunk_checkpoint(ThreadTableArena());
    const auto table = ArenaAllocator<SetId>::Table();
    ArenaVector<DynamicBitset> proj{ArenaAllocator<DynamicBitset>::Table()};
    proj.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      proj.emplace_back(width, DynamicBitset::Allocator(table));
    }
    ArenaVector<SetId> ids(m, kInvalidSetId, table);
    std::size_t pos = 0;
    ctx.TransformPass<DynamicBitset>(
        [&](const StreamItem& it) {
          DynamicBitset slice(width, DynamicBitset::Allocator::Scratch());
          for (std::size_t e = lo; e < hi; ++e) {
            if (it.set.Test(e)) slice.Set(e - lo);
          }
          return slice;
        },
        [&](const StreamItem& it, const DynamicBitset& slice) {
          meter.Charge(slice.ByteSize() + sizeof(SetId), kProjectionsCat);
          proj[pos] = slice;
          ids[pos] = it.id;
          ++pos;
        });

    // Runs on worker threads inside the row scans: the union is staged in
    // the *calling* thread's scratch and unwound immediately.
    auto pair_covers_chunk = [&](std::size_t i, std::size_t j) {
      MonotonicArena& scratch = ThreadScratchArena();
      const ArenaCheckpoint checkpoint(scratch);
      DynamicBitset u(proj[i], DynamicBitset::Allocator(&scratch));
      u |= proj[j];
      return u.All();
    };

    if (!seeded) {
      // Seeding: rows are scanned in parallel blocks (each row's hits are
      // pure facts about the projections), then appended in row order so
      // the candidate list — and the abort point when the cap trips — is
      // exactly the sequential one.
      TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "seed");
      constexpr std::size_t kRowBlock = 64;
      for (std::size_t row0 = 0; row0 < m && !aborted; row0 += kRowBlock) {
        const std::size_t rows = std::min(kRowBlock, m - row0);
        // Each row's hit list is Scratch-*bound*: the binding resolves the
        // arena of whichever thread grows the vector, so every worker
        // appends into its own scratch (reset at its next job pickup —
        // after this block has consumed the rows below).
        MonotonicArena& scratch = ThreadScratchArena();
        const ArenaCheckpoint block_checkpoint(scratch);
        ArenaVector<ArenaVector<Pair>> found{
            ArenaAllocator<ArenaVector<Pair>>(&scratch)};
        found.reserve(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          found.emplace_back(ArenaAllocator<Pair>::Scratch());
        }
        ctx.ParallelFor(rows, [&](std::size_t r) {
          const std::size_t i = row0 + r;
          for (std::size_t j = i; j < m; ++j) {
            if (pair_covers_chunk(i, j)) {
              found[r].emplace_back(static_cast<SetId>(i),
                                    static_cast<SetId>(j));
            }
          }
        });
        for (std::size_t r = 0; r < rows && !aborted; ++r) {
          for (const auto& pair : found[r]) {
            candidates.push_back(pair);
            if (candidates.size() > config_.max_candidates) {
              aborted = true;
              break;
            }
          }
        }
      }
      seeded = true;
      result.candidates_after_first_pass = candidates.size();
      phase.AddArg("candidates", candidates.size());
    } else {
      // Survivor filter: per-candidate verdicts in parallel, compaction
      // in order. Verdicts and the compacted list stage in the
      // orchestrator's scratch (workers only write verdict bytes).
      const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "filter");
      MonotonicArena& scratch = ThreadScratchArena();
      const ArenaCheckpoint filter_checkpoint(scratch);
      ArenaVector<char> keep(candidates.size(), 0,
                             ArenaAllocator<char>(&scratch));
      ctx.ParallelFor(candidates.size(), [&](std::size_t c) {
        keep[c] =
            pair_covers_chunk(candidates[c].first, candidates[c].second) ? 1
                                                                         : 0;
      });
      ArenaVector<Pair> survivors{ArenaAllocator<Pair>(&scratch)};
      survivors.reserve(candidates.size());
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (keep[c]) survivors.push_back(candidates[c]);
      }
      candidates.assign(survivors.begin(), survivors.end());
    }
    meter.SetCategory(candidates.size() * sizeof(Pair), kCandidatesCat);

    // Projections are discarded between passes — that is the point of the
    // n/p chunking.
    meter.Release(meter.CategoryCurrent(kProjectionsCat), kProjectionsCat);

    if (!aborted && !candidates.empty()) {
      // Prefer a singleton candidate (i, i) — a 1-set cover beats a pair.
      // NOTE: candidates store stream *positions*; ids[] maps position ->
      // SetId for the most recent pass. For kRandomEachPass streams the
      // mapping is not stable; Run() requires a pass-stable order.
      Pair pick = candidates.front();
      for (const auto& cand : candidates) {
        if (cand.first == cand.second) {
          pick = cand;
          break;
        }
      }
      result.solution.chosen = {ids[pick.first], ids[pick.second]};
    }
  }

  result.found = !aborted && !candidates.empty();
  if (!result.found) result.solution.chosen.clear();
  if (result.found && result.solution.chosen.size() == 2 &&
      result.solution.chosen[0] == result.solution.chosen[1]) {
    result.solution.chosen.pop_back();  // single-set cover
  }
  result.passes = stream.passes() - passes_before;
  result.peak_space_bytes = meter.peak();
  result.engine_stats = ctx.stats();
  result.counters = ctx.counters();
  return result;
}

}  // namespace streamsc
