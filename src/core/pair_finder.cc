#include "core/pair_finder.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/space_meter.h"

namespace streamsc {

ExactPairFinder::ExactPairFinder(PairFinderConfig config) : config_(config) {
  STREAMSC_CHECK(config_.passes >= 1,
                 "PairFinderConfig: at least one pass/chunk is required");
}

std::string ExactPairFinder::name() const {
  return "exact-pair-finder(p=" + std::to_string(config_.passes) + ")";
}

PairFinderResult ExactPairFinder::Run(SetStream& stream,
                                      const RunContext& context) const {
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::size_t p = std::min(config_.passes, std::max<std::size_t>(n, 1));
  const std::uint64_t passes_before = stream.passes();

  PairFinderResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context.engine);

  // Candidate pairs (i <= j) surviving all chunks seen so far. Seeded from
  // the first chunk instead of materializing all m² pairs.
  std::vector<std::pair<SetId, SetId>> candidates;
  bool seeded = false;
  bool aborted = false;

  for (std::size_t chunk = 0; chunk < p && !aborted; ++chunk) {
    // Contiguous chunk [lo, hi) of the universe.
    const std::size_t lo = chunk * n / p;
    const std::size_t hi = (chunk + 1) * n / p;
    const std::size_t width = hi - lo;
    if (width == 0) continue;

    // One pass: store all projections onto this chunk (m·n/p bits). The
    // per-item slice extraction is pure, so the pass shards when the
    // stream can buffer it.
    std::vector<DynamicBitset> proj(m, DynamicBitset(width));
    std::vector<SetId> ids(m, kInvalidSetId);
    std::size_t pos = 0;
    ctx.TransformPass<DynamicBitset>(
        [&](const StreamItem& it) {
          DynamicBitset slice(width);
          for (std::size_t e = lo; e < hi; ++e) {
            if (it.set.Test(e)) slice.Set(e - lo);
          }
          return slice;
        },
        [&](const StreamItem& it, DynamicBitset slice) {
          meter.Charge(slice.ByteSize() + sizeof(SetId), "projections");
          proj[pos] = std::move(slice);
          ids[pos] = it.id;
          ++pos;
        });

    auto pair_covers_chunk = [&](std::size_t i, std::size_t j) {
      DynamicBitset u = proj[i];
      u |= proj[j];
      return u.All();
    };

    if (!seeded) {
      // Seeding: rows are scanned in parallel blocks (each row's hits are
      // pure facts about the projections), then appended in row order so
      // the candidate list — and the abort point when the cap trips — is
      // exactly the sequential one.
      constexpr std::size_t kRowBlock = 64;
      for (std::size_t row0 = 0; row0 < m && !aborted; row0 += kRowBlock) {
        const std::size_t rows = std::min(kRowBlock, m - row0);
        std::vector<std::vector<std::pair<SetId, SetId>>> found(rows);
        ctx.ParallelFor(rows, [&](std::size_t r) {
          const std::size_t i = row0 + r;
          for (std::size_t j = i; j < m; ++j) {
            if (pair_covers_chunk(i, j)) {
              found[r].emplace_back(static_cast<SetId>(i),
                                    static_cast<SetId>(j));
            }
          }
        });
        for (std::size_t r = 0; r < rows && !aborted; ++r) {
          for (const auto& pair : found[r]) {
            candidates.push_back(pair);
            if (candidates.size() > config_.max_candidates) {
              aborted = true;
              break;
            }
          }
        }
      }
      seeded = true;
      result.candidates_after_first_pass = candidates.size();
    } else {
      // Survivor filter: per-candidate verdicts in parallel, compaction
      // in order.
      std::vector<char> keep(candidates.size(), 0);
      ctx.ParallelFor(candidates.size(), [&](std::size_t c) {
        keep[c] =
            pair_covers_chunk(candidates[c].first, candidates[c].second) ? 1
                                                                         : 0;
      });
      std::vector<std::pair<SetId, SetId>> survivors;
      survivors.reserve(candidates.size());
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (keep[c]) survivors.push_back(candidates[c]);
      }
      candidates = std::move(survivors);
    }
    meter.SetCategory(candidates.size() * sizeof(std::pair<SetId, SetId>),
                      "candidates");

    // Projections are discarded between passes — that is the point of the
    // n/p chunking.
    meter.Release(meter.CategoryCurrent("projections"), "projections");

    if (!aborted && !candidates.empty()) {
      // Prefer a singleton candidate (i, i) — a 1-set cover beats a pair.
      // NOTE: candidates store stream *positions*; ids[] maps position ->
      // SetId for the most recent pass. For kRandomEachPass streams the
      // mapping is not stable; Run() requires a pass-stable order.
      std::pair<SetId, SetId> pick = candidates.front();
      for (const auto& cand : candidates) {
        if (cand.first == cand.second) {
          pick = cand;
          break;
        }
      }
      result.solution.chosen = {ids[pick.first], ids[pick.second]};
    }
  }

  result.found = !aborted && !candidates.empty();
  if (!result.found) result.solution.chosen.clear();
  if (result.found && result.solution.chosen.size() == 2 &&
      result.solution.chosen[0] == result.solution.chosen[1]) {
    result.solution.chosen.pop_back();  // single-set cover
  }
  result.passes = stream.passes() - passes_before;
  result.peak_space_bytes = meter.peak();
  result.engine_stats = ctx.stats();
  return result;
}

}  // namespace streamsc
