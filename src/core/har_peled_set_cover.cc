#include "core/har_peled_set_cover.h"

#include <algorithm>
#include <cmath>

#include "core/sampling.h"
#include "obs/trace.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/math.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");
const SpaceCategory kProjectionsCat("projections");

}  // namespace

HarPeledSetCover::HarPeledSetCover(HarPeledConfig config) : config_(config) {
  STREAMSC_CHECK(config_.alpha >= 1, "HarPeledConfig: alpha must be >= 1");
}

std::string HarPeledSetCover::name() const {
  return "har-peled(alpha=" + std::to_string(config_.alpha) + ")";
}

SetCoverRunResult HarPeledSetCover::RunWithGuess(
    SetStream& stream, std::size_t opt_guess, Rng& rng,
    const RunContext& context) const {
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const std::uint64_t passes_before = stream.passes();
  Stopwatch timer;

  SetCoverRunResult result;
  SpaceMeter meter;
  EngineContext ctx(stream, context);

  // Run-lived state on the run arena; guess-lived structures bracket the
  // thread's table arena per iteration (see the Assadi implementation for
  // the full rationale).
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  Solution solution(ctx.alloc<SetId>());

  const auto take = [&](SetId id) {
    solution.chosen.push_back(id);
    meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
  };

  // ceil(α/2) iterations, each reducing |U| by ~n^{2/α} (the c = 2
  // exponent in the original's n^{Θ(1/α)} space).
  const std::size_t iterations = (config_.alpha + 1) / 2;
  const double rho =
      1.0 / std::pow(static_cast<double>(n),
                     2.0 / static_cast<double>(config_.alpha));

  bool guess_ok = true;
  for (std::size_t iter = 0; iter < iterations && guess_ok; ++iter) {
    if (uncovered.None()) break;
    TraceSpan iteration_span(ctx.trace(), TraceCategory::kPhase, "iteration");
    iteration_span.AddArg("iter", iter);

    // 1. Iterative pruning pass (per-iteration, threshold |U|/(2·õpt)).
    const double threshold =
        static_cast<double>(uncovered.CountSet()) /
        (2.0 * static_cast<double>(std::max<std::size_t>(opt_guess, 1)));
    {
      const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "prune");
      ctx.ThresholdPass(threshold, uncovered, take);
    }
    if (uncovered.None()) break;

    // 2. Sampling pass with the looser rate (ρ = n^{-2/α}). The sample,
    // projections, and sub-solution are guess-lived: table-arena bracket.
    const ArenaCheckpoint iteration_checkpoint(ThreadTableArena());
    const auto table = ArenaAllocator<SetId>::Table();
    const double rate = ElementSamplingRate(
        n, m, std::max<std::size_t>(opt_guess, 1), rho,
        config_.sampling_boost);
    const DynamicBitset sampled =
        SampleElements(uncovered, rate, rng, DynamicBitset::Allocator(table));
    if (sampled.None()) continue;
    SubUniverse sub(sampled, table);

    SetSystem projections(sub.size(), SetSystem::kDefaultSparsityThreshold,
                          &ThreadTableArena());
    ArenaVector<SetId> projection_ids(table);
    projection_ids.reserve(m);
    ctx.TransformPass<ProjectedSet>(
        [&](const StreamItem& it) {
          return sub.ProjectAdaptive(it.set,
                                     ArenaAllocator<ElementId>::Scratch());
        },
        [&](const StreamItem& it, ProjectedSet proj) {
          const SetId pid = StoreProjection(projections, std::move(proj));
          meter.Charge(projections.SetBytes(pid) + sizeof(SetId),
                       kProjectionsCat);
          projection_ids.push_back(it.id);
        });

    // 3. Optimal sub-solve + subtraction pass. (Manual span: the
    // sub-solve ends mid-scope, before the subtract pass.)
    const std::int64_t subsolve_start =
        ctx.trace() != nullptr ? TraceRecorder::NowNs() : 0;
    ExactSetCoverOptions exact_options;
    exact_options.max_nodes = config_.exact_node_budget;
    exact_options.size_limit = opt_guess;
    const ExactSetCoverResult sub_result = SolveExactSetCover(
        projections,
        DynamicBitset::Full(sub.size(), DynamicBitset::Allocator(table)),
        exact_options, ctx.alloc<SetId>());
    ArenaVector<SetId> chosen_local(ctx.alloc<SetId>());
    if (sub_result.feasible) {
      chosen_local = sub_result.solution.chosen;
    } else if (!sub_result.complete) {
      const Solution greedy = GreedySetCover(projections, table);
      if (projections.IsFeasibleCover(greedy.chosen) &&
          greedy.chosen.size() <= opt_guess) {
        chosen_local.assign(greedy.chosen.begin(), greedy.chosen.end());
      } else {
        guess_ok = false;
      }
    } else {
      guess_ok = false;
    }
    if (ctx.trace() != nullptr) {
      ctx.trace()->Emit(TraceCategory::kPhase, "subsolve", subsolve_start,
                        TraceRecorder::NowNs() - subsolve_start);
    }
    meter.Release(meter.CategoryCurrent(kProjectionsCat), kProjectionsCat);
    if (!guess_ok) break;

    ArenaVector<SetId> chosen_global(table);
    chosen_global.reserve(chosen_local.size());
    for (const SetId local : chosen_local) {
      chosen_global.push_back(projection_ids[local]);
      solution.chosen.push_back(projection_ids[local]);
    }
    meter.SetCategory(solution.size() * sizeof(SetId), kSolutionCat);
    ctx.RecordTakes(chosen_global.size(), 0);

    ctx.SubtractPass(chosen_global, uncovered);
  }

  // Cleanup pass for feasibility (as in the Assadi implementation).
  if (guess_ok && !uncovered.None()) {
    ctx.CoverResiduePass(uncovered, take);
  }

  result.solution = std::move(solution);
  result.feasible = guess_ok && uncovered.None();
  result.stats.passes = stream.passes() - passes_before;
  result.stats.peak_space_bytes = meter.peak();
  result.stats.items_seen = result.stats.passes * m;
  result.stats.sets_taken = ctx.stats().sets_taken;
  result.stats.elements_covered = ctx.stats().elements_covered;
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.counters = ctx.counters();
  return result;
}

SetCoverRunResult HarPeledSetCover::Run(SetStream& stream,
                                        const RunContext& context) {
  Stopwatch timer;
  Rng rng(config_.seed);
  const std::uint64_t passes_before = stream.passes();
  SetCoverRunResult out;
  Bytes peak = 0;
  EnginePassStats totals;

  auto try_guess = [&](std::size_t guess) {
    TraceSpan guess_span(context.trace, TraceCategory::kPhase, "guess");
    guess_span.AddArg("opt_guess", guess);
    SetCoverRunResult r = RunWithGuess(stream, guess, rng, context);
    peak = std::max(peak, r.stats.peak_space_bytes);
    totals.sets_taken += r.stats.sets_taken;
    totals.elements_covered += r.stats.elements_covered;
    out.stats.counters.MergeFrom(r.stats.counters);
    const double budget = (static_cast<double>(config_.alpha) + 1.0) *
                          static_cast<double>(guess);
    if (r.feasible && static_cast<double>(r.solution.size()) <= budget) {
      if (out.solution.empty() || r.solution.size() < out.solution.size()) {
        out.solution = std::move(r.solution);
      }
      out.feasible = true;
      return true;
    }
    return false;
  };

  if (config_.known_opt > 0) {
    try_guess(config_.known_opt);
  } else {
    std::size_t prev = 0;
    for (double g = 1.0;
         static_cast<std::size_t>(g) <= stream.universe_size(); g *= 2.0) {
      const std::size_t guess = static_cast<std::size_t>(std::ceil(g));
      if (guess == prev) continue;
      prev = guess;
      if (try_guess(guess)) break;
    }
  }

  out.stats.passes = stream.passes() - passes_before;
  out.stats.peak_space_bytes = peak;
  out.stats.items_seen = out.stats.passes * stream.num_sets();
  out.stats.sets_taken = totals.sets_taken;
  out.stats.elements_covered = totals.elements_covered;
  out.stats.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace streamsc
