#ifndef STREAMSC_CORE_PAIR_FINDER_H_
#define STREAMSC_CORE_PAIR_FINDER_H_

#include <cstdint>
#include <string>

#include "stream/engine_context.h"
#include "stream/stream_algorithm.h"

/// \file pair_finder.h
/// Exact recovery of a size-2 cover in p passes with ~m·n/p-bit working
/// state — the *linear* pass/space tradeoff for exact streaming set cover
/// that Result 1 establishes as the right one (footnote 1 of the paper:
/// "the right tradeoff ... is in fact linear, i.e., n/p, as opposed to
/// n^{1/p}").
///
/// The algorithm splits the universe into p chunks. Pass j stores every
/// set's projection onto chunk j (m·n/p bits), eliminates candidate pairs
/// whose unions miss a chunk element, and then discards the projections.
/// The surviving-candidate bookkeeping starts as all pairs and collapses
/// geometrically on D_SC-style inputs. Specialized to opt = 2 instances
/// (the regime of the paper's hard distribution, Remark 1.1: the hard
/// instances have constant-size optima).

namespace streamsc {

/// Configuration of the chunked exact pair finder.
struct PairFinderConfig {
  std::size_t passes = 4;  ///< Number of universe chunks / passes (p >= 1,
                           ///< CHECK-enforced in every build mode).
  /// Safety cap on the candidate list retained between passes; runs abort
  /// (infeasible result) if exceeded. The candidate list is seeded by the
  /// first chunk rather than materializing all m² pairs.
  std::size_t max_candidates = 4'000'000;
};

/// Outcome of a pair-finder run.
struct PairFinderResult {
  Solution solution;          ///< The covering pair (empty if none).
  bool found = false;         ///< True iff a size-2 cover exists & found.
  std::uint64_t passes = 0;
  Bytes peak_space_bytes = 0;
  std::uint64_t candidates_after_first_pass = 0;
  EnginePassStats engine_stats;  ///< Deterministic pass counters.
  CounterSet counters;           ///< Full interned-counter snapshot.
};

/// Finds a 2-set cover exactly in `config.passes` passes.
class ExactPairFinder {
 public:
  explicit ExactPairFinder(PairFinderConfig config);

  std::string name() const;

  /// The engine in \p context (if any) shards the projection-storing
  /// pass (when the stream's items stay valid within a pass), the
  /// candidate seeding, and the survivor filtering. Candidate order —
  /// and with it the returned pair — is bit-identical for any thread
  /// count: parallel phases only precompute per-row/per-candidate facts
  /// which are then committed in the sequential order.
  PairFinderResult Run(SetStream& stream, const RunContext& context) const;

  /// Sequential convenience overload.
  PairFinderResult Run(SetStream& stream) const { return Run(stream, {}); }

 private:
  PairFinderConfig config_;
};

}  // namespace streamsc

#endif  // STREAMSC_CORE_PAIR_FINDER_H_
