#ifndef STREAMSC_CORE_SAMPLING_H_
#define STREAMSC_CORE_SAMPLING_H_

#include <vector>

#include "instance/set_system.h"
#include "util/bitset.h"
#include "util/random.h"

/// \file sampling.h
/// Element-sampling machinery (Lemma 3.12 of the paper): a sampled
/// sub-universe with compact re-indexing, so stored projections use bits
/// proportional to the *sample* size rather than n.

namespace streamsc {

/// A sampled subset of the universe with a dense re-indexing
/// {sampled elements} -> [0, sample_size).
class SubUniverse {
 public:
  /// Builds the sub-universe consisting of the members of \p sampled
  /// (a bitset over the full universe [n]).
  explicit SubUniverse(const DynamicBitset& sampled);

  /// Number of sampled elements.
  std::size_t size() const { return sample_to_full_.size(); }

  /// Full-universe size this sample came from.
  std::size_t full_size() const { return full_size_; }

  /// Projects a full-universe set onto the sample (dense indexing).
  DynamicBitset Project(const DynamicBitset& full_set) const;

  /// Lifts a sample-indexed set back to full-universe indexing.
  DynamicBitset Lift(const DynamicBitset& sample_set) const;

  /// Full-universe id of sampled element \p i.
  ElementId ToFull(std::size_t i) const { return sample_to_full_[i]; }

 private:
  std::size_t full_size_;
  std::vector<ElementId> sample_to_full_;
  // full id -> sample id + 1; 0 means "not sampled".
  std::vector<std::uint32_t> full_to_sample_plus1_;
};

/// Builds the Lemma 3.12 sample of \p universe: each element kept
/// independently with probability \p rate.
DynamicBitset SampleElements(const DynamicBitset& universe, double rate,
                             Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_CORE_SAMPLING_H_
