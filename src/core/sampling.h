#ifndef STREAMSC_CORE_SAMPLING_H_
#define STREAMSC_CORE_SAMPLING_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "instance/set_system.h"
#include "stream/set_stream.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/random.h"
#include "util/set_view.h"
#include "util/sparse_set.h"

/// \file sampling.h
/// Element-sampling machinery (Lemma 3.12 of the paper): a sampled
/// sub-universe with compact re-indexing, so stored projections use bits
/// proportional to the *sample* size rather than n.
///
/// Projection is the per-pass hot path (every stored set crosses it once
/// per sampling pass), so SubUniverse precomputes a word-level gather
/// plan: for each universe word containing sampled elements, a (source
/// word, sampled-bit mask, destination bit) block. Projecting a dense set
/// is then one extract-bits op per touched word instead of one Test/Set
/// round-trip per sampled element; sparse sets project in O(k) id
/// lookups.

namespace streamsc {

class ParallelPassEngine;

/// A projection result in its natural representation: dense sources gather
/// into a DynamicBitset, sparse sources re-index straight into a SparseSet
/// (no n-bit intermediate for SetSystem to re-sparsify).
using ProjectedSet = std::variant<DynamicBitset, SparseSet>;

/// Moves a projection into \p system (dispatching to the matching AddSet
/// overload) and returns the new SetId.
SetId StoreProjection(SetSystem& system, ProjectedSet projection);

/// A borrowed view of a projection (for comparisons and read-only use).
SetView ViewOf(const ProjectedSet& projection);

/// A sampled subset of the universe with a dense re-indexing
/// {sampled elements} -> [0, sample_size).
///
/// Arena-aware: the constructor allocator backs the gather plan and rank
/// structure, and every projection takes an allocator for its result
/// (heap by default, so read-only callers stay unchanged). The sampling
/// solvers bracket a SubUniverse per guess on the thread-local table
/// arena.
class SubUniverse {
 public:
  /// Builds the sub-universe consisting of the members of \p sampled
  /// (a bitset over the full universe [n]), allocating the re-indexing
  /// structures from \p alloc.
  explicit SubUniverse(const DynamicBitset& sampled,
                       ArenaAllocator<ElementId> alloc = {});

  /// Number of sampled elements.
  std::size_t size() const { return sample_to_full_.size(); }

  /// Full-universe size this sample came from.
  std::size_t full_size() const { return full_size_; }

  /// Projects a full-universe dense set onto the sample (dense indexing)
  /// via the word-level gather plan. The result is allocated from
  /// \p alloc.
  DynamicBitset Project(const DynamicBitset& full_set,
                        DynamicBitset::Allocator alloc = {}) const;

  /// Projects a full-universe set of any representation (owning or span):
  /// dense sets go through the word gather, sparse sets through per-member
  /// re-indexing. Always emits a dense result; see ProjectAdaptive for the
  /// representation-preserving variant.
  DynamicBitset Project(SetView full_set,
                        DynamicBitset::Allocator alloc = {}) const;

  /// Projects onto the sample, keeping the source's representation: dense
  /// and dense-span sources emit a DynamicBitset via the word gather,
  /// sparse and sparse-span sources emit a SparseSet directly in O(k) —
  /// skipping the dense intermediate entirely, so a stored sparse
  /// projection never touches O(sample_size) memory. The result is
  /// allocated from \p alloc (the engine's sharded TransformPass passes
  /// the worker-scratch binding here).
  ProjectedSet ProjectAdaptive(SetView full_set,
                               ArenaAllocator<ElementId> alloc = {}) const;

  /// Lifts a sample-indexed set back to full-universe indexing.
  DynamicBitset Lift(const DynamicBitset& sample_set,
                     DynamicBitset::Allocator alloc = {}) const;

  /// Full-universe id of sampled element \p i.
  ElementId ToFull(std::size_t i) const { return sample_to_full_[i]; }

 private:
  // Word-gather core shared by the dense and dense-span paths; \p word_at
  // returns the source set's w-th backing word. Defined in sampling.cc
  // (only instantiated there).
  template <typename WordAt>
  DynamicBitset ProjectGather(WordAt&& word_at,
                              DynamicBitset::Allocator alloc) const;

  // Sparse re-indexing core shared by the sparse and sparse-span paths:
  // calls \p emit(sample_id) for each sampled member of the sorted id run,
  // in increasing sample order. Defined in sampling.cc.
  template <typename Emit>
  void ForEachSampled(const ElementId* ids, std::size_t count,
                      Emit&& emit) const;

  // One gather step: the sampled bits of full-universe word `src_word`
  // land, compacted, at output bit position `dst_bit`.
  struct GatherBlock {
    std::uint32_t src_word;
    std::uint32_t dst_bit;
    DynamicBitset::Word mask;
  };

  std::size_t full_size_;
  ArenaVector<ElementId> sample_to_full_;
  // Rank structure for full id -> sample id: the sampled bits per
  // universe word plus the number of sampled elements before each word.
  // ~n/8 + n/16 bytes total, an order of magnitude smaller than a
  // per-element map — the sparse projection path is lookup-table-miss
  // bound, so the working set matters more than the op count.
  ArenaVector<DynamicBitset::Word> sampled_words_;
  ArenaVector<std::uint32_t> word_rank_;
  ArenaVector<GatherBlock> gather_;
};

/// Builds the Lemma 3.12 sample of \p universe: each element kept
/// independently with probability \p rate. \p rate is clamped to [0, 1]
/// (NaN treated as 0): rate <= 0 yields the empty set, rate >= 1 the
/// whole \p universe. The result is allocated from \p alloc.
DynamicBitset SampleElements(const DynamicBitset& universe, double rate,
                             Rng& rng, DynamicBitset::Allocator alloc = {});

/// Projects every buffered item onto \p sub (via ProjectAdaptive, so each
/// projection keeps its source's representation); out[i] corresponds to
/// items[i]. With a pool the projections are computed in parallel — each
/// item's output slot is fixed by its stream position, so the result is
/// bit-identical for any thread count. Pass pool == nullptr for the
/// sequential path.
std::vector<ProjectedSet> ProjectAll(const SubUniverse& sub,
                                     const std::vector<StreamItem>& items,
                                     ParallelPassEngine* pool);

}  // namespace streamsc

#endif  // STREAMSC_CORE_SAMPLING_H_
