#include "core/sampling.h"

namespace streamsc {

SubUniverse::SubUniverse(const DynamicBitset& sampled)
    : full_size_(sampled.size()), full_to_sample_plus1_(sampled.size(), 0) {
  sample_to_full_.reserve(static_cast<std::size_t>(sampled.CountSet()));
  sampled.ForEach([&](ElementId e) {
    full_to_sample_plus1_[e] =
        static_cast<std::uint32_t>(sample_to_full_.size() + 1);
    sample_to_full_.push_back(e);
  });
}

DynamicBitset SubUniverse::Project(const DynamicBitset& full_set) const {
  DynamicBitset out(sample_to_full_.size());
  for (std::size_t i = 0; i < sample_to_full_.size(); ++i) {
    if (full_set.Test(sample_to_full_[i])) out.Set(i);
  }
  return out;
}

DynamicBitset SubUniverse::Lift(const DynamicBitset& sample_set) const {
  DynamicBitset out(full_size_);
  sample_set.ForEach([&](ElementId i) { out.Set(sample_to_full_[i]); });
  return out;
}

DynamicBitset SampleElements(const DynamicBitset& universe, double rate,
                             Rng& rng) {
  return rng.BernoulliSubsample(universe, rate);
}

}  // namespace streamsc
