#include "core/sampling.h"

#include <algorithm>
#include <bit>

#include "stream/parallel_pass_engine.h"

namespace streamsc {
namespace {

using Word = DynamicBitset::Word;

// Compacts the bits of x selected by mask into the low bits of the
// result (BMI2 pext semantics, portable: one iteration per mask bit that
// survives in x, so all-zero inputs cost one branch).
inline Word ExtractBits(Word x, Word mask) {
#if defined(__BMI2__)
  return __builtin_ia32_pext_di(x, mask);
#else
  Word selected = x & mask;
  Word out = 0;
  while (selected != 0) {
    const Word lowest = selected & (~selected + 1);
    // Rank of this bit among the mask bits = its output position.
    out |= Word{1} << std::popcount(mask & (lowest - 1));
    selected ^= lowest;
  }
  return out;
#endif
}

}  // namespace

SubUniverse::SubUniverse(const DynamicBitset& sampled,
                         ArenaAllocator<ElementId> alloc)
    : full_size_(sampled.size()),
      sample_to_full_(alloc),
      sampled_words_(ArenaAllocator<Word>(alloc)),
      word_rank_(ArenaAllocator<std::uint32_t>(alloc)),
      gather_(ArenaAllocator<GatherBlock>(alloc)) {
  sample_to_full_.reserve(static_cast<std::size_t>(sampled.CountSet()));
  sampled.ForEach([&](ElementId e) { sample_to_full_.push_back(e); });
  // Gather plan + rank structure: sampled elements are re-indexed in
  // increasing full-id order, so the sampled bits of each source word
  // land at consecutive output positions starting at the running sample
  // count (which is exactly that word's rank).
  sampled_words_.reserve(sampled.WordCount());
  word_rank_.reserve(sampled.WordCount());
  std::uint32_t dst_bit = 0;
  for (std::size_t w = 0; w < sampled.WordCount(); ++w) {
    const Word mask = sampled.GetWord(w);
    sampled_words_.push_back(mask);
    word_rank_.push_back(dst_bit);
    if (mask == 0) continue;
    gather_.push_back({static_cast<std::uint32_t>(w), dst_bit, mask});
    dst_bit += static_cast<std::uint32_t>(std::popcount(mask));
  }
}

template <typename WordAt>
DynamicBitset SubUniverse::ProjectGather(
    WordAt&& word_at, DynamicBitset::Allocator alloc) const {
  DynamicBitset out(sample_to_full_.size(), alloc);
  for (const GatherBlock& block : gather_) {
    const Word bits = ExtractBits(word_at(block.src_word), block.mask);
    if (bits == 0) continue;
    const std::size_t word = block.dst_bit / DynamicBitset::kBitsPerWord;
    const std::size_t offset = block.dst_bit % DynamicBitset::kBitsPerWord;
    out.OrWord(word, bits << offset);
    const std::size_t width =
        static_cast<std::size_t>(std::popcount(block.mask));
    if (offset + width > DynamicBitset::kBitsPerWord) {
      out.OrWord(word + 1, bits >> (DynamicBitset::kBitsPerWord - offset));
    }
  }
  return out;
}

template <typename Emit>
void SubUniverse::ForEachSampled(const ElementId* ids, std::size_t count,
                                 Emit&& emit) const {
  // O(k) rank computations — independent of both n and the sample size.
  // Source ids are sorted, and full -> sample rank is monotone, so the
  // emitted sample ids are sorted too.
  for (std::size_t i = 0; i < count; ++i) {
    const ElementId e = ids[i];
    const std::size_t w = e / DynamicBitset::kBitsPerWord;
    const std::size_t b = e % DynamicBitset::kBitsPerWord;
    const Word mask = sampled_words_[w];
    if ((mask >> b) & 1) {
      emit(word_rank_[w] + static_cast<std::uint32_t>(
                               std::popcount(mask & ((Word{1} << b) - 1))));
    }
  }
}

DynamicBitset SubUniverse::Project(const DynamicBitset& full_set,
                                   DynamicBitset::Allocator alloc) const {
  return ProjectGather([&](std::size_t w) { return full_set.GetWord(w); },
                       alloc);
}

DynamicBitset SubUniverse::Project(SetView full_set,
                                   DynamicBitset::Allocator alloc) const {
  if (const DynamicBitset* dense = full_set.dense()) {
    return Project(*dense, alloc);
  }
  if (const DenseSpan* span = full_set.dense_span()) {
    return ProjectGather([&](std::size_t w) { return span->GetWord(w); },
                         alloc);
  }
  const ElementId* ids = nullptr;
  std::size_t count = 0;
  if (const SparseSet* sparse = full_set.sparse()) {
    ids = sparse->elements().data();
    count = sparse->elements().size();
  } else {
    const SparseSpan* span = full_set.sparse_span();
    ids = span->elements();
    count = static_cast<std::size_t>(span->CountSet());
  }
  DynamicBitset out(sample_to_full_.size(), alloc);
  ForEachSampled(ids, count, [&](std::uint32_t s) { out.Set(s); });
  return out;
}

ProjectedSet SubUniverse::ProjectAdaptive(SetView full_set,
                                          ArenaAllocator<ElementId> alloc)
    const {
  if (full_set.is_dense_rep()) {
    return Project(full_set, DynamicBitset::Allocator(alloc));
  }
  const ElementId* ids = nullptr;
  std::size_t count = 0;
  if (const SparseSet* sparse = full_set.sparse()) {
    ids = sparse->elements().data();
    count = sparse->elements().size();
  } else {
    const SparseSpan* span = full_set.sparse_span();
    ids = span->elements();
    count = static_cast<std::size_t>(span->CountSet());
  }
  ArenaVector<ElementId> projected(alloc);
  projected.reserve(count);
  ForEachSampled(ids, count,
                 [&](std::uint32_t s) { projected.push_back(s); });
  // ForEachSampled emits strictly increasing in-range sample ids, so the
  // per-item hot path can skip the release-mode re-validation.
  return SparseSet::FromSortedIndicesUnchecked(sample_to_full_.size(),
                                               std::move(projected));
}

SetId StoreProjection(SetSystem& system, ProjectedSet projection) {
  return std::visit(
      [&](auto&& set) { return system.AddSet(std::move(set)); },
      std::move(projection));
}

SetView ViewOf(const ProjectedSet& projection) {
  return std::visit([](const auto& set) { return SetView(set); }, projection);
}

DynamicBitset SubUniverse::Lift(const DynamicBitset& sample_set,
                                DynamicBitset::Allocator alloc) const {
  DynamicBitset out(full_size_, alloc);
  sample_set.ForEach([&](ElementId i) { out.Set(sample_to_full_[i]); });
  return out;
}

DynamicBitset SampleElements(const DynamicBitset& universe, double rate,
                             Rng& rng, DynamicBitset::Allocator alloc) {
  // Rng::BernoulliSubsample owns the documented [0,1]/NaN clamp.
  return rng.BernoulliSubsample(universe, rate, alloc);
}

std::vector<ProjectedSet> ProjectAll(const SubUniverse& sub,
                                     const std::vector<StreamItem>& items,
                                     ParallelPassEngine* pool) {
  std::vector<ProjectedSet> out(items.size());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      out[i] = sub.ProjectAdaptive(items[i].set);
    }
    return out;
  }
  pool->ParallelFor(items.size(), [&](std::size_t i) {
    out[i] = sub.ProjectAdaptive(items[i].set);
  });
  return out;
}

}  // namespace streamsc
