#include "core/assadi_set_cover.h"

#include <algorithm>
#include <cmath>

#include "core/sampling.h"
#include "obs/trace.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "util/check.h"
#include "util/math.h"
#include "util/space_meter.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

// Space charged for the solution id list.
Bytes SolutionBytes(std::size_t size) { return size * sizeof(SetId); }

// Interned metering categories (hot path: array index per Charge).
const SpaceCategory kUncoveredCat("uncovered");
const SpaceCategory kSolutionCat("solution");
const SpaceCategory kProjectionsCat("projections");

}  // namespace

AssadiSetCover::AssadiSetCover(AssadiConfig config) : config_(config) {
  STREAMSC_CHECK(config_.alpha >= 1, "AssadiConfig: alpha must be >= 1");
  STREAMSC_CHECK(config_.epsilon > 0.0, "AssadiConfig: epsilon must be > 0");
}

std::string AssadiSetCover::name() const {
  return "assadi(alpha=" + std::to_string(config_.alpha) +
         ",eps=" + std::to_string(config_.epsilon) + ")";
}

AssadiGuessResult AssadiSetCover::RunWithGuess(SetStream& stream,
                                               std::size_t opt_guess,
                                               Rng& rng,
                                               const RunContext& context) const {
  const std::size_t n = stream.universe_size();
  const std::size_t m = stream.num_sets();
  const double alpha = static_cast<double>(config_.alpha);
  const std::uint64_t passes_before = stream.passes();

  AssadiGuessResult result;
  SpaceMeter meter;

  // All passes run through the context: sharded when the run binds an
  // engine and the stream's item views survive a whole pass, sequential
  // otherwise — bit-identical either way. Run-lived state (uncovered, the
  // solution ids) comes from the run arena; guess-lived structures
  // bracket the thread's table arena per iteration below.
  EngineContext ctx(stream, context);

  // Retained state: the uncovered-elements bitset U and the solution ids.
  DynamicBitset uncovered =
      DynamicBitset::Full(n, ctx.alloc<DynamicBitset::Word>());
  meter.Charge(uncovered.ByteSize(), kUncoveredCat);
  Solution solution(ctx.alloc<SetId>());

  const auto take = [&](SetId id) {
    solution.chosen.push_back(id);
    meter.SetCategory(SolutionBytes(solution.size()), kSolutionCat);
  };

  // --- Pass 0: one-shot pruning. -----------------------------------------
  // Any set still covering >= n/(ε·õpt) uncovered elements is taken. At
  // most ε·õpt sets can be taken (each removes >= n/(ε·õpt) elements).
  const double prune_threshold =
      static_cast<double>(n) /
      (config_.epsilon * static_cast<double>(std::max<std::size_t>(
                             opt_guess, 1)));
  {
    const TraceSpan phase(ctx.trace(), TraceCategory::kPhase, "prune");
    ctx.ThresholdPass(prune_threshold, uncovered, take);
  }

  // --- α iterations of sample / store / solve / subtract. ----------------
  const double rho = 1.0 / NthRoot(static_cast<double>(n), alpha);
  const double rate = ElementSamplingRate(n, m, std::max<std::size_t>(
                                                    opt_guess, 1),
                                          rho, config_.sampling_boost);
  bool guess_ok = true;
  for (std::size_t iter = 0; iter < config_.alpha && guess_ok; ++iter) {
    if (uncovered.None()) break;

    // Everything this iteration builds — the sample, the projections, the
    // sub-solution — dies with it: bracket the thread's table arena. (Not
    // the scratch arena: TransformPass stages inside scratch and rewinds
    // it, which would free anything the commit callbacks had kept there.)
    const ArenaCheckpoint iteration_checkpoint(ThreadTableArena());
    const auto table = ArenaAllocator<SetId>::Table();
    TraceSpan iteration_span(ctx.trace(), TraceCategory::kPhase, "iteration");
    iteration_span.AddArg("iter", iter);

    // (a) Sample U_smpl from the still-uncovered universe.
    const DynamicBitset sampled =
        SampleElements(uncovered, rate, rng, DynamicBitset::Allocator(table));
    if (sampled.None()) continue;  // nothing sampled; iteration is a no-op
    SubUniverse sub(sampled, table);

    // (b) One pass storing the projections S'_i = S_i ∩ U_smpl. This is
    // the space-dominant structure: m projections of |U_smpl| bits each
    // dense, fewer when the hybrid store sparsifies them. Worker threads
    // project into their own scratch; the commit re-homes each projection
    // into the table-backed system.
    SetSystem projections(sub.size(), SetSystem::kDefaultSparsityThreshold,
                          &ThreadTableArena());
    ArenaVector<SetId> projection_ids(table);
    projection_ids.reserve(m);
    ctx.TransformPass<ProjectedSet>(
        [&](const StreamItem& it) {
          return sub.ProjectAdaptive(it.set,
                                     ArenaAllocator<ElementId>::Scratch());
        },
        [&](const StreamItem& it, ProjectedSet proj) {
          const SetId pid = StoreProjection(projections, std::move(proj));
          meter.Charge(projections.SetBytes(pid) + sizeof(SetId),
                       kProjectionsCat);
          projection_ids.push_back(it.id);
        });

    // (c) Solve the sub-instance *optimally* (the model allows unbounded
    // computation; we keep a node budget and degrade to greedy if hit).
    // The A2 ablation flips use_exact_subsolver off to quantify what the
    // paper's optimal sub-solve buys over plain greedy.
    // The local ids land on the run arena (the exact solver brackets the
    // table arena internally, so its result must live elsewhere).
    ArenaVector<SetId> chosen_local(ctx.alloc<SetId>());
    // Manual span: the sub-solve ends mid-scope (before the subtract
    // pass), so an RAII span would swallow the rest of the iteration.
    const std::int64_t subsolve_start =
        ctx.trace() != nullptr ? TraceRecorder::NowNs() : 0;
    if (config_.use_exact_subsolver) {
      ExactSetCoverOptions exact_options;
      exact_options.max_nodes = config_.exact_node_budget;
      exact_options.size_limit = opt_guess;
      const ExactSetCoverResult sub_result = SolveExactSetCover(
          projections,
          DynamicBitset::Full(sub.size(), DynamicBitset::Allocator(table)),
          exact_options, ctx.alloc<SetId>());
      if (sub_result.feasible) {
        chosen_local = sub_result.solution.chosen;
      } else if (!sub_result.complete) {
        // Node budget exhausted without a within-budget cover: fall back
        // to greedy; if even greedy exceeds the guess budget, the guess
        // fails.
        const Solution greedy = GreedySetCover(projections, table);
        if (projections.IsFeasibleCover(greedy.chosen) &&
            greedy.chosen.size() <= opt_guess) {
          chosen_local.assign(greedy.chosen.begin(), greedy.chosen.end());
        } else {
          guess_ok = false;
        }
      } else {
        // Proven: no cover of size <= õpt exists, so õpt < opt. Guess
        // fails.
        guess_ok = false;
      }
    } else {
      const Solution greedy = GreedySetCover(projections, table);
      if (projections.IsFeasibleCover(greedy.chosen)) {
        chosen_local.assign(greedy.chosen.begin(), greedy.chosen.end());
      } else {
        guess_ok = false;
      }
    }

    if (ctx.trace() != nullptr) {
      ctx.trace()->Emit(TraceCategory::kPhase, "subsolve", subsolve_start,
                        TraceRecorder::NowNs() - subsolve_start);
    }

    // Stored projections are dropped once the sub-instance is solved.
    meter.Release(meter.CategoryCurrent(kProjectionsCat), kProjectionsCat);

    if (!guess_ok) break;

    ArenaVector<SetId> chosen_global(table);
    chosen_global.reserve(chosen_local.size());
    for (const SetId local : chosen_local) {
      chosen_global.push_back(projection_ids[local]);
      solution.chosen.push_back(projection_ids[local]);
    }
    meter.SetCategory(SolutionBytes(solution.size()), kSolutionCat);
    ctx.RecordTakes(chosen_global.size(), 0);

    // (d) One pass subtracting the chosen sets' *full* contents from U.
    // (The paper stores only projections, so recovering the full contents
    // of OPT' requires this extra pass.)
    ctx.SubtractPass(chosen_global, uncovered);
  }

  result.residual_after_iterations = uncovered.CountSet();

  // --- Optional cleanup pass: guarantee feasibility. ----------------------
  // W.h.p. U is already empty (Lemma 3.11); at laptop scale a small
  // residue can survive, and the paper requires the returned solution to
  // always be feasible.
  if (guess_ok && config_.ensure_feasible && !uncovered.None()) {
    ctx.CoverResiduePass(uncovered, take);
  }

  const double budget =
      (alpha + config_.epsilon) * static_cast<double>(opt_guess);
  result.solution = std::move(solution);
  result.feasible = guess_ok && uncovered.None();
  result.within_budget =
      result.feasible && static_cast<double>(result.solution.size()) <= budget;
  result.passes = stream.passes() - passes_before;
  result.peak_space_bytes = meter.peak();
  result.engine_stats = ctx.stats();
  result.counters = ctx.counters();
  return result;
}

SetCoverRunResult AssadiSetCover::Run(SetStream& stream,
                                      const RunContext& context) {
  Stopwatch timer;
  const std::size_t n = stream.universe_size();
  const std::uint64_t passes_before = stream.passes();
  Rng rng(config_.seed);

  SetCoverRunResult out;
  Bytes peak = 0;
  EnginePassStats totals;

  auto try_guess = [&](std::size_t guess) -> bool {
    TraceSpan guess_span(context.trace, TraceCategory::kPhase, "guess");
    guess_span.AddArg("opt_guess", guess);
    AssadiGuessResult r = RunWithGuess(stream, guess, rng, context);
    peak = std::max(peak, r.peak_space_bytes);
    totals.sets_taken += r.engine_stats.sets_taken;
    totals.elements_covered += r.engine_stats.elements_covered;
    out.stats.counters.MergeFrom(r.counters);
    if (r.feasible && r.within_budget) {
      // Keep the smallest solution across successful guesses.
      if (out.solution.empty() ||
          r.solution.size() < out.solution.size()) {
        out.solution = std::move(r.solution);
      }
      out.feasible = true;
      return true;
    }
    return false;
  };

  if (config_.known_opt > 0) {
    try_guess(config_.known_opt);
  } else {
    // Geometric guesses õpt = ceil((1+ε)^j), smallest first; stop at the
    // first guess that succeeds within budget (larger guesses only yield
    // larger budgets).
    std::size_t prev = 0;
    for (double g = 1.0; static_cast<std::size_t>(g) <= n;
         g *= (1.0 + config_.epsilon)) {
      const std::size_t guess = static_cast<std::size_t>(std::ceil(g));
      if (guess == prev) continue;
      prev = guess;
      if (try_guess(guess)) break;
    }
  }

  out.stats.passes = stream.passes() - passes_before;
  out.stats.peak_space_bytes = peak;
  out.stats.items_seen = out.stats.passes * stream.num_sets();
  out.stats.sets_taken = totals.sets_taken;
  out.stats.elements_covered = totals.elements_covered;
  out.stats.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace streamsc
