#include "api/solve_report.h"

namespace streamsc {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSetCover:
      return "set-cover";
    case SolverKind::kMaxCoverage:
      return "max-coverage";
    case SolverKind::kPairFinder:
      return "pair-finder";
  }
  return "unknown";
}

}  // namespace streamsc
