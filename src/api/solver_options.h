#ifndef STREAMSC_API_SOLVER_OPTIONS_H_
#define STREAMSC_API_SOLVER_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

/// \file solver_options.h
/// The typed option vocabulary of the solver API: every registered solver
/// describes its parameters as OptionDescriptors (name, type, legal
/// range, default, one-line doc), and user-supplied `key=value` strings
/// are parsed against those descriptors into a ParsedOptions bag.
///
/// This is the user-facing half of the validation story: *everything*
/// reachable from a string (CLI flag, config file, service request)
/// reports malformed input as a Status with an actionable message —
/// solver name, key, offending value, and the legal range — and never
/// aborts. The STREAMSC_CHECKs inside the solver constructors remain the
/// programmer-misuse backstop for code that builds config structs by
/// hand; the descriptor ranges here are at least as strict as those
/// CHECKs, so a registry-built config can never trip one.

namespace streamsc {

/// Value type of one solver option.
enum class OptionType {
  kUint,    ///< Non-negative integer (counts, seeds, budgets).
  kDouble,  ///< Floating point (rates, factors, epsilons).
  kBool,    ///< true/false (also accepts 1/0, yes/no, on/off).
};

/// Stable display name ("uint", "double", "bool").
const char* OptionTypeName(OptionType type);

/// One option's value. Exactly the member matching the descriptor's type
/// is meaningful.
struct OptionValue {
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
};

/// Schema of one `key=value` option: how to parse it, what values are
/// legal, what it defaults to, and what it means.
struct OptionDescriptor {
  std::string name;                     ///< The `key` users type.
  OptionType type = OptionType::kUint;  ///< Value type.
  OptionValue def;                      ///< Default when not supplied.
  /// Inclusive-by-default numeric range (ignored for kBool). Open ends
  /// are expressed with the *_exclusive flags — e.g. epsilon in (0, 1).
  double min_value = 0.0;
  double max_value = 0.0;
  bool has_min = false;
  bool has_max = false;
  bool min_exclusive = false;
  bool max_exclusive = false;
  std::string doc;                      ///< One-line description.

  /// "[1, inf)", "(0, 1)", "bool", ... — the range as shown in errors
  /// and in `workload_tool solvers`.
  std::string RangeText() const;

  /// The default rendered as the user would type it ("2", "0.5", "true").
  std::string DefaultText() const;
};

/// Convenience constructors for the common descriptor shapes.
OptionDescriptor UintOption(std::string name, std::uint64_t def,
                            std::string doc);
OptionDescriptor UintOptionMin(std::string name, std::uint64_t def,
                               std::uint64_t min, std::string doc);
OptionDescriptor DoubleOption(std::string name, double def, std::string doc);
OptionDescriptor DoubleOptionRange(std::string name, double def, double min,
                                   double max, bool min_exclusive,
                                   bool max_exclusive, std::string doc);
OptionDescriptor BoolOption(std::string name, bool def, std::string doc);

/// The result of parsing `key=value` strings against a descriptor list:
/// every described option has a value (user-supplied or default).
class ParsedOptions {
 public:
  std::uint64_t Uint(const std::string& name) const;
  double Double(const std::string& name) const;
  bool Bool(const std::string& name) const;

  /// True iff the user explicitly supplied \p name (vs. the default).
  bool WasSet(const std::string& name) const;

 private:
  friend StatusOr<ParsedOptions> ParseOptions(
      const std::string& owner, const std::vector<OptionDescriptor>& schema,
      const std::vector<std::string>& args);

  std::map<std::string, OptionValue> values_;
  std::map<std::string, bool> explicit_;
};

/// Parses `key=value` strings against \p schema. \p owner names the
/// entity the options belong to ("assadi", "session") and prefixes every
/// error. Errors are InvalidArgument (shape, unknown key, bad literal,
/// duplicate) or OutOfRange (legal literal outside the descriptor's
/// range); both quote the key, the offending value, and — for range
/// errors — the legal range.
StatusOr<ParsedOptions> ParseOptions(
    const std::string& owner, const std::vector<OptionDescriptor>& schema,
    const std::vector<std::string>& args);

}  // namespace streamsc

#endif  // STREAMSC_API_SOLVER_OPTIONS_H_
