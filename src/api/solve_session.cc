#include "api/solve_session.h"

#include <string_view>
#include <utility>

#include "api/solver_registry.h"
#include "dynamic/overlay_set_stream.h"
#include "instance/serialization.h"
#include "obs/trace.h"
#include "storage/mmap_set_stream.h"
#include "stream/engine_context.h"
#include "stream/stream_adapters.h"
#include "util/stopwatch.h"

namespace streamsc {

namespace {

// The dynamic.* counter/gauge family: warm-start decisions and delta
// shape, stamped into every overlay run's report (and from there into any
// merged stats export, e.g. the daemon's Prometheus text).
CounterId DynWarmSolves() {
  static const CounterId id = CounterId::Counter("dynamic.warm_solves");
  return id;
}
CounterId DynColdSolves() {
  static const CounterId id = CounterId::Counter("dynamic.cold_solves");
  return id;
}
CounterId DynSurvivingPrefix() {
  static const CounterId id = CounterId::Gauge("dynamic.surviving_prefix");
  return id;
}
CounterId DynResidueElements() {
  static const CounterId id = CounterId::Gauge("dynamic.residue_elements");
  return id;
}
CounterId DynDeltaRecords() {
  static const CounterId id = CounterId::Gauge("dynamic.delta_records");
  return id;
}

// Warm start is refused when the delta invalidated at least half of the
// previous solution: re-covering that much residue approaches a cold
// solve's work anyway, and the cold path re-establishes a fresh memo.
constexpr std::size_t kWarmMinSurvivingNumer = 1;
constexpr std::size_t kWarmMinSurvivingDenom = 2;

// Splits args into (session, solver) halves by key: anything whose key
// names a session option is the session's; the rest goes to the solver.
void SplitArgs(const std::vector<std::string>& args,
               std::vector<std::string>* session_args,
               std::vector<std::string>* solver_args) {
  for (const std::string& arg : args) {
    const std::string key = arg.substr(0, arg.find('='));
    bool is_session = false;
    for (const OptionDescriptor& desc : SolveSession::SessionOptions()) {
      if (desc.name == key) {
        is_session = true;
        break;
      }
    }
    (is_session ? session_args : solver_args)->push_back(arg);
  }
}

// Projects the run's kPass spans (engine_context.h PassScope emissions)
// into the report's breakdown rows, in pass order. Quiesced-only read:
// called after the run returned and the engine's traced rendezvous
// guaranteed every worker retired its spans. \p since_ns scopes the
// projection to this run when the caller accumulates several runs into
// one recorder.
void FillPassBreakdown(const TraceRecorder& trace, std::int64_t since_ns,
                       SolveReport* report) {
  report->pass_breakdown.clear();
  trace.ForEachEvent([&](const TraceEvent& event) {
    if (event.category != TraceCategory::kPass) return;
    if (event.start_ns < since_ns) return;
    PassBreakdownRow row;
    row.name = event.name;
    row.wall_seconds = static_cast<double>(event.dur_ns) * 1e-9;
    for (unsigned char i = 0; i < event.num_args; ++i) {
      const std::string_view key = event.arg_names[i];
      const std::uint64_t value = event.arg_values[i];
      if (key == "items") {
        row.items_scanned = value;
      } else if (key == "shards") {
        row.shard_jobs = value;
      } else if (key == "takes") {
        row.sets_taken = value;
      } else if (key == "covered") {
        row.elements_covered = value;
      }
    }
    report->pass_breakdown.push_back(std::move(row));
  });
}

}  // namespace

const std::vector<OptionDescriptor>& SolveSession::SessionOptions() {
  static const std::vector<OptionDescriptor>* const kOptions =
      new std::vector<OptionDescriptor>{
          UintOptionMin(
              "threads", 1, 1,
              "worker pool width for engine-routed passes (1 = sequential; "
              "results are bit-identical for any value)"),
          UintOption(
              "memory_budget", 0,
              "byte cap on the per-run arena (0 = unlimited); a run that "
              "would exceed it returns RESOURCE_EXHAUSTED instead of "
              "allocating"),
          UintOption(
              "warm", 1,
              "overlay sources only: 1 (default) re-solves warm when a "
              "memoized solution's surviving prefix qualifies; 0 forces a "
              "cold solve")};
  return *kOptions;
}

StatusOr<SolveSession> SolveSession::Open(const std::string& path) {
  SolveSession session;
  const Status status = session.Reopen(path);
  if (!status.ok()) return status;
  return session;
}

Status SolveSession::Reopen(const std::string& path) {
  // Detach the old source first: a failed open must leave an *empty*
  // session, not one half-bound to the previous stream (or carrying a
  // stale memory-upgraded system / text-parse error). The run arena is
  // deliberately kept — it is per-session capacity, reset before every
  // run, and keeping it warm is the point of reopening in place.
  source_ = Source::kNone;
  path_.clear();
  stream_.reset();
  file_stream_ = nullptr;
  owned_system_.reset();
  overlay_ = nullptr;
  memo_.clear();
  memo_valid_ = false;
  if (IsBinaryInstanceFile(path)) {
    auto stream = std::make_unique<MmapSetStream>(path);
    if (!stream->status().ok()) return stream->status();
    stream_ = std::move(stream);
    source_ = Source::kMmap;
    path_ = path;
    return Status::Ok();
  }
  auto stream = std::make_unique<FileSetStream>(path);
  if (!stream->status().ok()) return stream->status();
  file_stream_ = stream.get();
  stream_ = std::move(stream);
  source_ = Source::kFile;
  path_ = path;
  return Status::Ok();
}

StatusOr<SolveSession> SolveSession::OpenOverlay(
    const std::string& base_path, const std::string& delta_path) {
  auto overlay = std::make_unique<OverlaySetStream>(base_path, delta_path);
  if (!overlay->status().ok()) return overlay->status();
  SolveSession session;
  session.overlay_ = overlay.get();
  session.stream_ = std::move(overlay);
  session.source_ = Source::kOverlay;
  return session;
}

Status SolveSession::RefreshDelta() {
  if (overlay_ == nullptr) {
    return Status::FailedPrecondition(
        "SolveSession: RefreshDelta() on a non-overlay source (use "
        "OpenOverlay())");
  }
  // The memo is deliberately kept across an append-only refresh: per-slot
  // versions decide at the next Solve() which chosen sets survived this
  // delta. But versions only identify content within one log lineage — if
  // the log *shrank* (a re-created delta file), a memoized (slot, version)
  // pair may alias unrelated content, so the memo is dropped and the next
  // Solve() runs cold. A failed refresh also drops it: the overlay
  // retained its previous composition, but the caller was told the file
  // is suspect and a stale warm hint is not worth carrying across that.
  const std::uint64_t records_before = overlay_->delta_records();
  const std::uint64_t slots_before = overlay_->num_slots();
  const Status refreshed = overlay_->RefreshDelta();
  if (!refreshed.ok() || overlay_->delta_records() < records_before ||
      overlay_->num_slots() < slots_before) {
    memo_.clear();
    memo_valid_ = false;
  }
  return refreshed;
}

SolveSession SolveSession::OverSystem(const SetSystem& system) {
  SolveSession session;
  session.stream_ = std::make_unique<VectorSetStream>(system);
  session.source_ = Source::kMemory;
  return session;
}

SolveSession SolveSession::OverStream(std::unique_ptr<SetStream> stream,
                                      Source source) {
  SolveSession session;
  session.stream_ = std::move(stream);
  session.source_ = source;
  return session;
}

const char* SolveSession::source_name() const {
  switch (source_) {
    case Source::kNone:
      return "none";
    case Source::kMemory:
      return "memory";
    case Source::kFile:
      return "file";
    case Source::kMmap:
      return "mmap";
    case Source::kOverlay:
      return "overlay";
  }
  return "none";
}

std::size_t SolveSession::universe_size() const {
  return stream_ == nullptr ? 0 : stream_->universe_size();
}

std::size_t SolveSession::num_sets() const {
  return stream_ == nullptr ? 0 : stream_->num_sets();
}

Status SolveSession::EnsureBufferable() {
  if (stream_->ItemsRemainValid()) return Status::Ok();
  // Only the text source can be unbufferable; materialize it once. The
  // pass counter restarts with the new stream, which is fine: solvers
  // report pass *deltas*.
  StatusOr<SetSystem> loaded = LoadSetSystem(path_);
  if (!loaded.ok()) return loaded.status();
  owned_system_ = std::make_unique<SetSystem>(std::move(*loaded));
  file_stream_ = nullptr;
  stream_ = std::make_unique<VectorSetStream>(*owned_system_);
  source_ = Source::kMemory;
  return Status::Ok();
}

StatusOr<SolveReport> SolveSession::Solve(
    const std::string& solver, const std::vector<std::string>& args) {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition(
        "SolveSession: Solve() on an empty session (use Open() or "
        "OverSystem())");
  }
  // An overlay that never composed is an error, not an empty instance: a
  // caller that ignored OpenOverlay()'s status must not get a trivially
  // "feasible" cover over zero sets (which would then seed the memo).
  if (overlay_ != nullptr && !overlay_->status().ok()) {
    return overlay_->status();
  }

  std::vector<std::string> session_args;
  std::vector<std::string> solver_args;
  SplitArgs(args, &session_args, &solver_args);

  StatusOr<ParsedOptions> session_options =
      ParseOptions("session", SessionOptions(), session_args);
  if (!session_options.ok()) return session_options.status();
  const std::size_t threads =
      static_cast<std::size_t>(session_options->Uint("threads"));
  const std::size_t memory_budget =
      static_cast<std::size_t>(session_options->Uint("memory_budget"));

  StatusOr<std::unique_ptr<AnySolver>> created =
      SolverRegistry::Global().Create(solver, solver_args);
  if (!created.ok()) return created.status();

  // Warm-start decision (overlay sources only). Eligible when the memo
  // answers for this exact (solver, options) configuration; taken when
  // the surviving prefix is large enough that re-covering the residue
  // beats a cold solve.
  std::vector<SetId> warm_prefix;
  bool warm = false;
  if (overlay_ != nullptr && session_options->Uint("warm") != 0 &&
      memo_valid_ && memo_solver_ == solver &&
      memo_solver_args_ == solver_args) {
    warm_prefix = SurvivingPrefix();
    warm = kWarmMinSurvivingDenom * warm_prefix.size() >=
           kWarmMinSurvivingNumer * memo_.size();
  }

  if (threads > 1) {
    const Status status = EnsureBufferable();
    if (!status.ok()) return status;
  }

  // The engine lives exactly as long as this run — the session is the
  // single owner of execution resources, which is what makes per-run
  // thread policy (and the ROADMAP's sharded/NUMA binding) one decision
  // in one place.
  const std::unique_ptr<ParallelPassEngine> engine = MakeEngine(threads);

  // One run arena per session, reset (chunk-retaining) per run: the first
  // run warms it up to its high-water mark, later runs of the same shape
  // allocate nothing.
  if (run_arena_ == nullptr) {
    run_arena_ = std::make_unique<MonotonicArena>();
  }
  run_arena_->Reset();
  run_arena_->ResetHighWater();
  run_arena_->set_budget(memory_budget);

  RunContext context;
  context.engine = engine.get();
  context.arena = run_arena_.get();
  context.trace = trace_;

  // Scopes the breakdown below to this run when the caller accumulates
  // several solves into one recorder.
  const std::int64_t run_start_ns =
      trace_ != nullptr ? TraceRecorder::NowNs() : 0;

  StatusOr<SolveReport> report = Status::Internal("solve did not run");
  try {
    const TraceSpan session_span(trace_, TraceCategory::kSession,
                                 "session.solve");
    report = warm ? RunWarmStart(warm_prefix, context)
                  : (*created)->Run(*stream_, context);
  } catch (const ArenaBudgetExceeded& e) {
    // Budget throws happen only on the orchestrator thread, outside any
    // in-flight parallel section (workers never touch the run arena), so
    // unwinding here leaves the engine and stream reusable.
    return Status::ResourceExhausted(
        "solve '" + solver + "' exceeded memory_budget=" +
        std::to_string(e.budget()) + " bytes (run arena would have reached " +
        std::to_string(e.attempted()) + " bytes)");
  }
  if (!report.ok()) return report.status();
  // A text source reports first-pass parse errors (truncated body,
  // garbage lines) only through status(): Next() just ends the pass
  // early. Without this check a corrupt ssc1 file would yield an
  // ok-looking report computed over a silent prefix of the instance.
  if (file_stream_ != nullptr && !file_stream_->status().ok()) {
    return file_stream_->status();
  }
  if (overlay_ != nullptr) {
    FinishOverlayRun(solver, solver_args, &*report);
  }
  report->source = source_name();
  report->threads = threads;
  report->arena_high_water = run_arena_->high_water();
  report->arena_reserved = run_arena_->bytes_reserved();
  // The arena peaks ride in the counter snapshot too, so a stats export
  // (obs/stats_sink.h) sees physical memory next to the engine counters.
  report->counters.RecordMax(CounterId::Gauge("arena.high_water_bytes"),
                             run_arena_->high_water());
  report->counters.RecordMax(CounterId::Gauge("arena.reserved_bytes"),
                             run_arena_->bytes_reserved());
  if (trace_ != nullptr) {
    FillPassBreakdown(*trace_, run_start_ns, &*report);
  }
  return report;
}

std::vector<SetId> SolveSession::SurvivingPrefix() const {
  std::vector<SetId> prefix;
  prefix.reserve(memo_.size());
  for (const MemoEntry& entry : memo_) {
    // A slot beyond the current table means the log shrank under us (a
    // re-created delta file) — the entry is dead, not in-range-by-
    // contract; never index the overlay with it. Otherwise the pair
    // survives iff the slot is live with an unchanged version.
    if (entry.slot >= overlay_->num_slots() ||
        !overlay_->slot_live(entry.slot) ||
        overlay_->slot_version(entry.slot) != entry.version) {
      break;
    }
    const SetId id = overlay_->slot_to_live(entry.slot);
    STREAMSC_CHECK(id != kInvalidSetId,
                   "live slot must map to a live id");
    prefix.push_back(id);
  }
  return prefix;
}

StatusOr<SolveReport> SolveSession::RunWarmStart(
    const std::vector<SetId>& prefix, const RunContext& context) {
  Stopwatch timer;
  EngineContext ctx(*stream_, context);
  const TraceSpan span(trace_, TraceCategory::kPhase, "dynamic.warm_resolve");
  const std::uint64_t passes_before = stream_->passes();

  // The surviving prefix is kept verbatim; subtracting it leaves exactly
  // the residue the delta exposed, which one cleanup pass re-covers. With
  // an unchanged delta the residue is empty and the previous solution is
  // reproduced byte-for-byte.
  DynamicBitset uncovered = DynamicBitset::Full(
      stream_->universe_size(), ctx.alloc<DynamicBitset::Word>());
  Solution solution(context.arena);
  solution.chosen.assign(prefix.begin(), prefix.end());
  ctx.SubtractPass(std::span<const SetId>(prefix), uncovered);
  const std::uint64_t residue = uncovered.CountSet();
  if (!uncovered.None()) {
    ctx.CoverResiduePass(uncovered,
                         [&](SetId id) { solution.chosen.push_back(id); });
  }

  SolveReport report;
  report.solver = memo_solver_;
  report.algorithm = memo_algorithm_;
  report.kind = SolverKind::kSetCover;
  report.feasible = uncovered.None();
  report.passes = stream_->passes() - passes_before;
  report.peak_space_bytes =
      uncovered.ByteSize() + solution.chosen.size() * sizeof(SetId);
  report.solution = std::move(solution);
  report.stats = ctx.stats();
  report.counters.MergeFrom(ctx.counters());
  report.warm_start = true;
  report.surviving_prefix = prefix.size();
  report.residue_elements = residue;
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

void SolveSession::FinishOverlayRun(const std::string& solver,
                                    const std::vector<std::string>& solver_args,
                                    SolveReport* report) {
  report->counters.Add(report->warm_start ? DynWarmSolves() : DynColdSolves(),
                       1);
  report->counters.RecordMax(DynDeltaRecords(), overlay_->delta_records());
  report->counters.RecordMax(DynSurvivingPrefix(), report->surviving_prefix);
  report->counters.RecordMax(DynResidueElements(), report->residue_elements);
  // Only a feasible set cover seeds the next warm start; anything else
  // leaves the existing memo intact (it still answers for its own
  // configuration).
  if (report->kind != SolverKind::kSetCover || !report->feasible) return;
  memo_.clear();
  memo_.reserve(report->solution.size());
  for (const SetId id : report->solution.chosen) {
    const std::uint64_t slot = overlay_->live_to_slot(id);
    memo_.push_back(MemoEntry{slot, overlay_->slot_version(slot)});
  }
  memo_solver_ = solver;
  memo_solver_args_ = solver_args;
  memo_algorithm_ = report->algorithm;
  memo_valid_ = true;
}

}  // namespace streamsc
