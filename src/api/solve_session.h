#ifndef STREAMSC_API_SOLVE_SESSION_H_
#define STREAMSC_API_SOLVE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "api/solve_report.h"
#include "api/solver_options.h"
#include "instance/set_system.h"
#include "stream/set_stream.h"
#include "util/arena.h"
#include "util/status.h"

/// \file solve_session.h
/// SolveSession: the owning front door for a full solve. One session =
/// one instance source; each Solve() call is one run of one registered
/// solver over that source.
///
/// The session owns everything a run needs that solvers themselves no
/// longer hold:
///
///   * the **source** — Open() sniffs the file format (sscb1 magic →
///     zero-copy MmapSetStream; otherwise ssc1 text → constant-memory
///     FileSetStream) and OverSystem() wraps an in-memory SetSystem;
///   * the **engine lifetime** — the session-level `threads` option
///     (accepted alongside solver options in Solve()'s key=value args)
///     resolves to a ParallelPassEngine owned for exactly the duration
///     of the run, replacing the 9 duplicated non-owning `engine` raw
///     pointers the solver configs used to carry;
///   * the **upgrade policy** — a text source cannot buffer a pass, so
///     `threads > 1` on an ssc1 file loads the instance into memory once
///     (then streams it from there); results are bit-identical either
///     way by the engine's determinism contract;
///   * the **run arena** — one MonotonicArena per session, Reset()
///     (chunk-retaining) before every run, so repeated solves reach a
///     zero-allocation steady state. The `memory_budget` session option
///     caps the arena's bytes; a run that would exceed it unwinds
///     cleanly and Solve() returns RESOURCE_EXHAUSTED — user-sized input
///     never aborts the process. The report carries the arena's exact
///     high-water mark next to the logical SpaceMeter peak.
///
/// Every failure — unreadable file, unknown solver, malformed option,
/// out-of-range value, stream-dependent misuse — reports a Status; the
/// session never aborts on user input.

namespace streamsc {

class FileSetStream;
class OverlaySetStream;
class TraceRecorder;
struct RunContext;

/// One instance source plus the machinery to run any registered solver
/// over it. Movable; not copyable.
class SolveSession {
 public:
  /// Where the streamed bytes live.
  enum class Source {
    kNone,     ///< Default-constructed (empty) session.
    kMemory,   ///< In-memory SetSystem via VectorSetStream.
    kFile,     ///< ssc1 text via FileSetStream (one set at a time).
    kMmap,     ///< sscb1 binary via MmapSetStream (zero-copy views).
    kOverlay,  ///< Base instance + sscd1 delta via OverlaySetStream.
  };

  /// Opens \p path, sniffing the format from its magic bytes. Returns a
  /// Status for missing/corrupt files.
  static StatusOr<SolveSession> Open(const std::string& path);

  /// Wraps \p system (borrowed — must outlive the session).
  static SolveSession OverSystem(const SetSystem& system);

  /// Wraps an owned, ready-to-stream source (e.g. an MmapStreamView over
  /// a cached MmapSetStream — the solve daemon's open-once / serve-many
  /// shape). \p source labels the report ("mmap" for cached views).
  static SolveSession OverStream(std::unique_ptr<SetStream> stream,
                                 Source source);

  /// Opens \p base_path (sscb1 or ssc1, sniffed) composed with the sscd1
  /// delta log at \p delta_path into one live instance — the dynamic-
  /// instance source. Solves over it gain the warm-start contract:
  ///
  ///   * After a feasible set-cover solve, the session memoizes which
  ///     (slot, version) pairs the solution chose.
  ///   * RefreshDelta() re-reads the delta log (the watch-mode beat).
  ///   * The next Solve() of the *same solver and options* keeps the
  ///     longest prefix of the previous solution whose slots are still
  ///     live and unreplaced, subtracts it, and re-covers only the
  ///     residue (CoverResiduePass) — falling back to a cold solve when
  ///     the delta invalidated more than half the previous solution, or
  ///     when `warm=0` is passed. The decision, surviving prefix, and
  ///     residue size are stamped into the report and the `dynamic.*`
  ///     counters.
  ///
  /// Warm and cold paths both return *feasible covers over the same live
  /// instance*; with an unchanged delta they are byte-identical.
  static StatusOr<SolveSession> OpenOverlay(const std::string& base_path,
                                            const std::string& delta_path);

  /// Re-reads the overlay session's delta log from disk (base untouched).
  /// FailedPrecondition for non-overlay sources. Across an append-only
  /// refresh the memoized solution is kept — per-slot versions decide at
  /// the next Solve() what survived. If the refresh fails (the overlay
  /// retains its previous composition) or the log shrank (a re-created
  /// delta file, where versions no longer identify content), the memo is
  /// dropped and the next Solve() runs cold.
  Status RefreshDelta();

  /// The overlay stream (null for non-overlay sources). Borrowed; valid
  /// while the session lives.
  const OverlaySetStream* overlay() const { return overlay_; }

  /// Re-targets this session at \p path (same sniffing as Open), keeping
  /// the warm run arena so per-slot daemon sessions reach a zero-
  /// allocation steady state across instances.
  ///
  /// Reuse contract (regression-pinned in solve_session_test.cc): the old
  /// source is detached *before* the open is attempted, so a failed
  /// Reopen — missing file, bad magic, truncated sscb1 — leaves the
  /// session empty (Solve() then reports FailedPrecondition), never
  /// half-bound to a stale stream, memory-upgraded system, or text-parse
  /// error from the previous source. A later successful Reopen on the
  /// same session behaves exactly like a fresh Open.
  Status Reopen(const std::string& path);

  /// Empty session (exists for StatusOr plumbing; Solve() on it errors).
  SolveSession() = default;

  SolveSession(SolveSession&&) = default;
  SolveSession& operator=(SolveSession&&) = default;
  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  /// The session-level option schema (currently: threads and
  /// memory_budget). Listed by
  /// `workload_tool solvers` next to each solver's own options; any of
  /// these keys may appear in Solve()'s args and is consumed by the
  /// session rather than the solver.
  static const std::vector<OptionDescriptor>& SessionOptions();

  /// Runs registered solver \p solver with \p args (key=value strings;
  /// session keys like `threads=8` are split off, everything else is the
  /// solver's). Owns the engine for the duration of the run and stamps
  /// `source` and `threads` into the returned report.
  StatusOr<SolveReport> Solve(const std::string& solver,
                              const std::vector<std::string>& args);

  /// Binds a span recorder (obs/trace.h) for every subsequent Solve():
  /// the run emits session/solver/pass/shard spans into it, and the
  /// report gains a per-pass breakdown assembled from the recorder after
  /// the run quiesces. Borrowed — must outlive the session's runs; null
  /// detaches. Tracing never changes results (solutions are byte-
  /// identical with the recorder on or off), it only arms observability.
  void BindTrace(TraceRecorder* recorder) { trace_ = recorder; }

  Source source() const { return source_; }

  /// "memory", "file", "mmap", "overlay" (or "none").
  const char* source_name() const;

  std::size_t universe_size() const;
  std::size_t num_sets() const;

 private:
  // One chosen set of the memoized previous solution, identified by its
  // overlay slot and the slot's version at memo time. The pair still
  // denotes the same set content iff the slot is live and its version
  // unchanged — the warm-start survival test.
  struct MemoEntry {
    std::uint64_t slot = 0;
    std::uint64_t version = 0;
  };

  // Ensures the active stream can buffer a pass, loading a text source
  // into memory if needed (the threads > 1 upgrade).
  Status EnsureBufferable();

  // The surviving prefix of the memoized solution as *current* live ids:
  // the longest prefix whose slots are live with unchanged versions.
  std::vector<SetId> SurvivingPrefix() const;

  // The warm path: subtract the surviving prefix from a full universe,
  // re-cover the residue, and assemble a report without running the
  // solver. Precondition: overlay source with a valid memo.
  StatusOr<SolveReport> RunWarmStart(const std::vector<SetId>& prefix,
                                     const RunContext& context);

  // Memoizes (or refuses to memoize) the just-completed overlay run and
  // stamps the dynamic.* counters into its report.
  void FinishOverlayRun(const std::string& solver,
                        const std::vector<std::string>& solver_args,
                        SolveReport* report);

  Source source_ = Source::kNone;
  std::string path_;                          // Open() sources only
  std::unique_ptr<SetSystem> owned_system_;   // memory-upgraded sources
  std::unique_ptr<SetStream> stream_;
  // The per-run arena: lazily created on first Solve(), Reset()
  // (chunk-retaining) before each run. unique_ptr because the session is
  // movable and arenas are pinned by design.
  std::unique_ptr<MonotonicArena> run_arena_;
  // Non-owning view of stream_ when it is a FileSetStream: text parse
  // errors surface through status() after the run, so Solve() must be
  // able to read it without downcasting.
  FileSetStream* file_stream_ = nullptr;
  // Non-owning view of stream_ when it is an OverlaySetStream (the
  // dynamic-instance source): RefreshDelta and the warm-start path need
  // the overlay surface without downcasting.
  OverlaySetStream* overlay_ = nullptr;
  // Optional span recorder bound via BindTrace(); borrowed, never owned.
  TraceRecorder* trace_ = nullptr;
  // Warm-start memo: the previous feasible set-cover solution as
  // (slot, version) pairs, plus the configuration it answers for.
  std::vector<MemoEntry> memo_;
  std::string memo_solver_;
  std::vector<std::string> memo_solver_args_;
  std::string memo_algorithm_;
  bool memo_valid_ = false;
};

}  // namespace streamsc

#endif  // STREAMSC_API_SOLVE_SESSION_H_
