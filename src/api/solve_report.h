#ifndef STREAMSC_API_SOLVE_REPORT_H_
#define STREAMSC_API_SOLVE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "instance/set_system.h"
#include "obs/counters.h"
#include "stream/engine_context.h"
#include "util/space_meter.h"

/// \file solve_report.h
/// SolveReport: the one result shape every solver in the registry emits,
/// regardless of whether the algorithm underneath is a set-cover scheme,
/// a max-coverage sketch, or the exact pair finder. Callers that drive
/// solvers by string key (CLI, bench sweeps, a future service) consume
/// this instead of the three per-family result structs.

namespace streamsc {

/// Problem family of a registered solver.
enum class SolverKind {
  kSetCover,     ///< Minimum set cover; `feasible` = covered everything.
  kMaxCoverage,  ///< Maximum k-coverage; `extra` = exact coverage.
  kPairFinder,   ///< Exact 2-cover recovery; `extra` = candidates after
                 ///< the first pass, `feasible` = pair found.
};

/// Stable display name for a SolverKind.
const char* SolverKindName(SolverKind kind);

/// One engine pass as the trace recorder saw it: name, wall time, and the
/// deterministic work counters scoped to that pass. Assembled by
/// SolveSession from the run's kPass spans when a TraceRecorder is bound
/// (empty otherwise — the breakdown is an observability product, not part
/// of the deterministic result surface).
struct PassBreakdownRow {
  std::string name;          ///< Pass primitive ("threshold", "subtract"...).
  double wall_seconds = 0.0; ///< Span duration.
  std::uint64_t items_scanned = 0;     ///< Items visited by the pass.
  std::uint64_t shard_jobs = 0;        ///< Engine jobs the pass posted.
  std::uint64_t sets_taken = 0;        ///< Takes committed during the pass.
  std::uint64_t elements_covered = 0;  ///< Marginal gain committed.
};

/// Uniform outcome of one registry-driven run. Everything except
/// wall_seconds is deterministic: bit-identical across thread counts and
/// stream sources for a fixed stream order (the conformance matrix in
/// tests/testing/solver_matrix.h asserts this through the registry).
struct SolveReport {
  std::string solver;     ///< Registry key ("assadi", "sieve_mc", ...).
  std::string algorithm;  ///< Parametrized display name of the instance.
  SolverKind kind = SolverKind::kSetCover;

  Solution solution;       ///< Chosen set ids, in take order.
  bool feasible = false;   ///< Family-specific success bit (see SolverKind).
  std::uint64_t passes = 0;        ///< Stream passes consumed.
  Bytes peak_space_bytes = 0;      ///< Peak logical space (SpaceMeter).
  EnginePassStats stats;           ///< Deterministic engine counters.
  std::uint64_t extra = 0;         ///< Family-specific scalar (coverage /
                                   ///< surviving candidates); 0 for set
                                   ///< cover.
  double wall_seconds = 0.0;       ///< Wall-clock time of the run.

  // Filled by SolveSession (empty/1/0 when a solver is run directly).
  std::string source;       ///< "memory", "file", or "mmap".
  std::size_t threads = 1;  ///< Engine width the session bound (1 = none).
  Bytes arena_high_water = 0;  ///< Peak bytes live in the run arena —
                               ///< exact physical counterpart of the
                               ///< logical peak_space_bytes.
  Bytes arena_reserved = 0;    ///< Chunk capacity the run arena owns
                               ///< (warm footprint kept across runs).

  // Dynamic-instance (overlay source) runs only; see SolveSession's
  // warm-start contract. Cold runs and non-overlay sources leave these at
  // their defaults.
  bool warm_start = false;  ///< True iff the warm path ran: the surviving
                            ///< prefix of the previous solution was kept
                            ///< and only the residue was re-covered.
  std::uint64_t surviving_prefix = 0;  ///< Chosen sets kept from the
                                       ///< previous solution (warm runs).
  std::uint64_t residue_elements = 0;  ///< Elements left uncovered by the
                                       ///< surviving prefix (warm runs).

  /// Full interned-counter snapshot of the run (obs/counters.h): the
  /// engine.* counters the solver accumulated plus session-stamped arena
  /// gauges. Supersedes the scalar `stats` view for anything that wants
  /// every counter, not just the well-known ones.
  CounterSet counters;

  /// Per-pass timing/counter breakdown, in pass order. Filled only when
  /// the session ran with a bound TraceRecorder (see
  /// SolveSession::BindTrace); empty otherwise.
  std::vector<PassBreakdownRow> pass_breakdown;
};

}  // namespace streamsc

#endif  // STREAMSC_API_SOLVE_REPORT_H_
