#include "api/solver_registry.h"

#include <limits>
#include <utility>

#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/max_coverage.h"
#include "core/one_pass_set_cover.h"
#include "core/pair_finder.h"
#include "core/threshold_greedy.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace streamsc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pre-run validation hook: stream-dependent option constraints that the
// registry cannot check at Create() time (it has no stream yet).
using StreamValidator = std::function<Status(const SetStream&)>;

// Resets every solver-filled field of a (possibly reused) report. String
// assignments into a warm report reuse capacity, so steady-state refills
// never allocate.
void FillBase(const std::string& solver, SolverKind kind,
              const std::string& algorithm, SolveReport* report) {
  report->solver = solver;
  report->kind = kind;
  report->algorithm = algorithm;
  report->feasible = false;
  report->extra = 0;
  report->stats = {};
  report->counters.Clear();
  report->pass_breakdown.clear();
}

// The one mapping from the per-family StreamRunStats shape to the
// uniform report — both stream-algorithm families fill through here so a
// new deterministic counter cannot be wired up for one family and
// silently zeroed for the other.
void FillFromRunStats(const StreamRunStats& stats, SolveReport* report) {
  report->passes = stats.passes;
  report->peak_space_bytes = stats.peak_space_bytes;
  report->stats.passes = stats.passes;
  report->stats.items_scanned = stats.items_seen;
  report->stats.sets_taken = stats.sets_taken;
  report->stats.elements_covered = stats.elements_covered;
  report->wall_seconds = stats.wall_seconds;
  report->counters = stats.counters;
}

/// Wraps a StreamingSetCoverAlgorithm as an AnySolver.
class SetCoverAnySolver : public AnySolver {
 public:
  SetCoverAnySolver(std::string solver,
                    std::unique_ptr<StreamingSetCoverAlgorithm> algorithm,
                    StreamValidator validate = nullptr)
      : solver_(std::move(solver)),
        algorithm_(std::move(algorithm)),
        name_(algorithm_->name()),
        validate_(std::move(validate)) {}

  const std::string& solver() const override { return solver_; }
  SolverKind kind() const override { return SolverKind::kSetCover; }
  const std::string& algorithm_name() const override { return name_; }

  Status RunInto(SetStream& stream, const RunContext& context,
                 SolveReport* report) override {
    if (validate_) {
      const Status status = validate_(stream);
      if (!status.ok()) return status;
    }
    SetCoverRunResult r;
    {
      // The solver span brackets the run only (not the report fill), so
      // it has retired before any post-run merge of the recorder.
      const TraceSpan span(context.trace, TraceCategory::kSolver,
                           solver_.c_str());
      r = algorithm_->Run(stream, context);
    }
    FillBase(solver_, SolverKind::kSetCover, name_, report);
    report->solution = r.solution;
    report->feasible = r.feasible;
    FillFromRunStats(r.stats, report);
    return Status::Ok();
  }

 private:
  std::string solver_;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm_;
  std::string name_;
  StreamValidator validate_;
};

/// Wraps a StreamingMaxCoverageAlgorithm (with its bound k) as an
/// AnySolver. `feasible` means "returned at least one set"; the exact
/// coverage of the returned sets rides in `extra`.
class MaxCoverageAnySolver : public AnySolver {
 public:
  MaxCoverageAnySolver(std::string solver,
                       std::unique_ptr<StreamingMaxCoverageAlgorithm> algorithm,
                       std::size_t k)
      : solver_(std::move(solver)),
        algorithm_(std::move(algorithm)),
        k_(k),
        name_(algorithm_->name() + "[k=" + std::to_string(k_) + "]") {}

  const std::string& solver() const override { return solver_; }
  SolverKind kind() const override { return SolverKind::kMaxCoverage; }
  const std::string& algorithm_name() const override { return name_; }

  Status RunInto(SetStream& stream, const RunContext& context,
                 SolveReport* report) override {
    MaxCoverageRunResult r;
    {
      const TraceSpan span(context.trace, TraceCategory::kSolver,
                           solver_.c_str());
      r = algorithm_->Run(stream, k_, context);
    }
    FillBase(solver_, SolverKind::kMaxCoverage, name_, report);
    report->solution = r.solution;
    report->feasible = !r.solution.chosen.empty();
    report->extra = r.coverage;
    FillFromRunStats(r.stats, report);
    return Status::Ok();
  }

 private:
  std::string solver_;
  std::unique_ptr<StreamingMaxCoverageAlgorithm> algorithm_;
  std::size_t k_;
  std::string name_;
};

/// Wraps the ExactPairFinder as an AnySolver. `feasible` means "a
/// covering pair (or singleton) was found"; `extra` reports the
/// candidate-list size after the seeding pass.
class PairFinderAnySolver : public AnySolver {
 public:
  PairFinderAnySolver(std::string solver, PairFinderConfig config)
      : solver_(std::move(solver)), finder_(config), name_(finder_.name()) {}

  const std::string& solver() const override { return solver_; }
  SolverKind kind() const override { return SolverKind::kPairFinder; }
  const std::string& algorithm_name() const override { return name_; }

  Status RunInto(SetStream& stream, const RunContext& context,
                 SolveReport* report) override {
    Stopwatch timer;
    PairFinderResult r;
    {
      const TraceSpan span(context.trace, TraceCategory::kSolver,
                           solver_.c_str());
      r = finder_.Run(stream, context);
    }
    FillBase(solver_, SolverKind::kPairFinder, name_, report);
    report->solution = r.solution;
    report->feasible = r.found;
    report->passes = r.passes;
    report->peak_space_bytes = r.peak_space_bytes;
    report->stats = r.engine_stats;
    report->counters = r.counters;
    report->extra = r.candidates_after_first_pass;
    report->wall_seconds = timer.ElapsedSeconds();
    return Status::Ok();
  }

 private:
  std::string solver_;
  ExactPairFinder finder_;
  std::string name_;
};

// Shared descriptor snippets (the sampling solvers repeat these).
OptionDescriptor SeedOption() {
  return UintOption("seed", 1, "seed for the element sampling RNG");
}

OptionDescriptor BoostOption() {
  return DoubleOptionRange(
      "sampling_boost", 1.0, 0.0, kInf, /*min_exclusive=*/true,
      /*max_exclusive=*/false,
      "multiplier on the paper's sampling rate (1.0 = paper)");
}

OptionDescriptor BudgetOption(std::uint64_t def) {
  return UintOptionMin("exact_node_budget", def, 1,
                       "branch-and-bound node budget for the exact "
                       "sub-solver before degrading to greedy");
}

OptionDescriptor KnownOptOption() {
  return UintOption("known_opt", 0,
                    "skip the geometric õpt guessing and use this value "
                    "(0 = guess)");
}

OptionDescriptor KOption() {
  return UintOptionMin("k", 3, 1, "coverage budget: pick at most k sets");
}

}  // namespace

const SolverRegistry& SolverRegistry::Global() {
  static const SolverRegistry* const kRegistry = new SolverRegistry();
  return *kRegistry;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

const SolverInfo* SolverRegistry::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.info;
}

StatusOr<std::unique_ptr<AnySolver>> SolverRegistry::Create(
    const std::string& name, const std::vector<std::string>& options) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string registered;
    for (const std::string& key : Names()) {
      if (!registered.empty()) registered += ", ";
      registered += key;
    }
    return Status::NotFound("unknown solver '" + name +
                            "' (registered: " + registered + ")");
  }
  StatusOr<ParsedOptions> parsed =
      ParseOptions(name, it->second.info.options, options);
  if (!parsed.ok()) return parsed.status();
  return it->second.make(*parsed);
}

void SolverRegistry::Register(SolverInfo info, Factory make) {
  const std::string name = info.name;
  entries_.emplace(name, Entry{std::move(info), std::move(make)});
}

SolverRegistry::SolverRegistry() {
  // -- assadi -------------------------------------------------------------
  Register(
      {"assadi",
       SolverKind::kSetCover,
       "Assadi (PODS'17) Theorem 2: (alpha+eps)-approximation in 2*alpha+1 "
       "passes via one-shot pruning + per-iteration element sampling",
       {UintOptionMin("alpha", 2, 1, "target approximation factor"),
        DoubleOptionRange("epsilon", 0.5, 0.0, kInf, true, false,
                          "slack in the (alpha+eps) approximation"),
        BoostOption(), SeedOption(), BudgetOption(20'000'000),
        BoolOption("use_exact_subsolver", true,
                   "solve sub-instances optimally (paper) vs plain greedy "
                   "(the A2 ablation)"),
        BoolOption("ensure_feasible", true,
                   "add a cleanup pass if a residue survives the alpha "
                   "iterations"),
        KnownOptOption()}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        AssadiConfig c;
        c.alpha = static_cast<std::size_t>(o.Uint("alpha"));
        c.epsilon = o.Double("epsilon");
        c.sampling_boost = o.Double("sampling_boost");
        c.seed = o.Uint("seed");
        c.exact_node_budget = o.Uint("exact_node_budget");
        c.use_exact_subsolver = o.Bool("use_exact_subsolver");
        c.ensure_feasible = o.Bool("ensure_feasible");
        c.known_opt = static_cast<std::size_t>(o.Uint("known_opt"));
        return std::make_unique<SetCoverAnySolver>(
            "assadi", std::make_unique<AssadiSetCover>(c));
      });

  // -- har_peled ----------------------------------------------------------
  Register(
      {"har_peled",
       SolverKind::kSetCover,
       "Har-Peled et al. (PODS'16) style baseline: iterative pruning and "
       "the looser element-sampling rate (space exponent ~2/alpha)",
       {UintOptionMin("alpha", 2, 1, "target approximation factor"),
        BoostOption(), SeedOption(), BudgetOption(20'000'000),
        KnownOptOption()}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        HarPeledConfig c;
        c.alpha = static_cast<std::size_t>(o.Uint("alpha"));
        c.sampling_boost = o.Double("sampling_boost");
        c.seed = o.Uint("seed");
        c.exact_node_budget = o.Uint("exact_node_budget");
        c.known_opt = static_cast<std::size_t>(o.Uint("known_opt"));
        return std::make_unique<SetCoverAnySolver>(
            "har_peled", std::make_unique<HarPeledSetCover>(c));
      });

  // -- demaine ------------------------------------------------------------
  Register(
      {"demaine",
       SolverKind::kSetCover,
       "Demaine-Indyk-Mahabadi-Vakilian (DISC'14) baseline: O(alpha) "
       "passes, greedy sub-solves, space exponent Theta(1/log alpha)",
       {UintOptionMin("alpha", 4, 2, "target approximation factor"),
        BoostOption(), SeedOption(), KnownOptOption(),
        BoolOption("ensure_feasible", true,
                   "add a cleanup pass if a residue survives the phases")}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        DemaineConfig c;
        c.alpha = static_cast<std::size_t>(o.Uint("alpha"));
        c.sampling_boost = o.Double("sampling_boost");
        c.seed = o.Uint("seed");
        c.known_opt = static_cast<std::size_t>(o.Uint("known_opt"));
        c.ensure_feasible = o.Bool("ensure_feasible");
        return std::make_unique<SetCoverAnySolver>(
            "demaine", std::make_unique<DemaineSetCover>(c));
      });

  // -- emek_rosen ---------------------------------------------------------
  Register(
      {"emek_rosen",
       SolverKind::kSetCover,
       "Emek-Rosen (ICALP'14) style single pass: threshold-and-witness, "
       "O(sqrt n) approximation in O~(n) space",
       {UintOption("threshold", 0,
                   "big-set threshold theta (0 = the sqrt(n) default); "
                   "must not exceed the streamed universe size")}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        EmekRosenConfig c;
        c.threshold = static_cast<std::size_t>(o.Uint("threshold"));
        // The threshold <= n constraint is stream-dependent: enforced
        // here as a Status before Run (the struct path CHECK-aborts).
        const std::size_t threshold = c.threshold;
        return std::make_unique<SetCoverAnySolver>(
            "emek_rosen", std::make_unique<EmekRosenSetCover>(c),
            [threshold](const SetStream& stream) -> Status {
              if (threshold > stream.universe_size()) {
                return Status::OutOfRange(
                    "emek_rosen: option 'threshold' = '" +
                    std::to_string(threshold) +
                    "' exceeds the streamed universe size n = " +
                    std::to_string(stream.universe_size()) +
                    " (no set could qualify as big); legal range [0, n], "
                    "0 = sqrt(n) default");
              }
              return Status::Ok();
            });
      });

  // -- one_pass -----------------------------------------------------------
  Register(
      {"one_pass",
       SolverKind::kSetCover,
       "single-pass greedy (Saha-Getoor'09 style): take any set covering "
       "max(1, frac*|U|) uncovered elements",
       {DoubleOptionRange("min_gain_fraction", 0.0, 0.0, 1.0, false, false,
                          "minimum marginal gain as a fraction of the "
                          "current uncovered count (0 = take anything "
                          "that helps)")}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        OnePassConfig c;
        c.min_gain_fraction = o.Double("min_gain_fraction");
        return std::make_unique<SetCoverAnySolver>(
            "one_pass", std::make_unique<OnePassSetCover>(c));
      });

  // -- threshold_greedy ---------------------------------------------------
  Register(
      {"threshold_greedy",
       SolverKind::kSetCover,
       "multi-pass threshold greedy (CKW'10 style): geometric thresholds, "
       "O(log n) approximation, O~(n) space independent of m",
       {DoubleOptionRange("beta", 2.0, 1.0, kInf, true, false,
                          "threshold shrink factor per pass")}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        ThresholdGreedyConfig c;
        c.beta = o.Double("beta");
        return std::make_unique<SetCoverAnySolver>(
            "threshold_greedy",
            std::make_unique<ThresholdGreedySetCover>(c));
      });

  // -- sieve_mc -----------------------------------------------------------
  Register(
      {"sieve_mc",
       SolverKind::kMaxCoverage,
       "single-pass threshold sieve max k-coverage (Badanidiyuru'14 "
       "style): OPT guesses on a (1+eps) grid, (1/2-eps) guarantee",
       {DoubleOptionRange("epsilon", 0.1, 0.0, 1.0, true, true,
                          "guess-grid resolution (1+eps)"),
        KOption()}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        SieveMcConfig c;
        c.epsilon = o.Double("epsilon");
        return std::make_unique<MaxCoverageAnySolver>(
            "sieve_mc", std::make_unique<SieveMaxCoverage>(c),
            static_cast<std::size_t>(o.Uint("k")));
      });

  // -- element_sampling_mc ------------------------------------------------
  Register(
      {"element_sampling_mc",
       SolverKind::kMaxCoverage,
       "element-sampling (1-eps) max k-coverage (McGregor-Vu style): "
       "subsample the universe, store projections, solve offline",
       {DoubleOptionRange("epsilon", 0.1, 0.0, 1.0, true, true,
                          "target (1-eps) accuracy"),
        BoostOption(), SeedOption(), BudgetOption(5'000'000),
        UintOption("exact_k_limit", 3,
                   "solve the sampled instance exactly for k <= this, "
                   "greedily otherwise"),
        KOption()}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        ElementSamplingMcConfig c;
        c.epsilon = o.Double("epsilon");
        c.sampling_boost = o.Double("sampling_boost");
        c.seed = o.Uint("seed");
        c.exact_node_budget = o.Uint("exact_node_budget");
        c.exact_k_limit = static_cast<std::size_t>(o.Uint("exact_k_limit"));
        return std::make_unique<MaxCoverageAnySolver>(
            "element_sampling_mc",
            std::make_unique<ElementSamplingMaxCoverage>(c),
            static_cast<std::size_t>(o.Uint("k")));
      });

  // -- pair_finder --------------------------------------------------------
  Register(
      {"pair_finder",
       SolverKind::kPairFinder,
       "exact 2-cover recovery in p passes with ~m*n/p-bit state (the "
       "linear pass/space tradeoff of Result 1)",
       {UintOptionMin("passes", 4, 1, "number of universe chunks / passes"),
        UintOptionMin("max_candidates", 4'000'000, 1,
                      "abort cap on the surviving candidate-pair list")}},
      [](const ParsedOptions& o) -> std::unique_ptr<AnySolver> {
        PairFinderConfig c;
        c.passes = static_cast<std::size_t>(o.Uint("passes"));
        c.max_candidates =
            static_cast<std::size_t>(o.Uint("max_candidates"));
        return std::make_unique<PairFinderAnySolver>("pair_finder", c);
      });
}

}  // namespace streamsc
