#include "api/solver_options.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace streamsc {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string BoundText(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return FormatDouble(v);
}

// "assadi: option 'alpha' ..." — every parse error starts the same way so
// a user can see at a glance which solver and key to fix.
std::string ErrorPrefix(const std::string& owner, const std::string& key) {
  return owner + ": option '" + key + "'";
}

Status ParseUintValue(const std::string& owner, const std::string& key,
                      const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return Status::InvalidArgument(ErrorPrefix(owner, key) +
                                   " has an empty value; expected a "
                                   "non-negative integer");
  }
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          ErrorPrefix(owner, key) + " = '" + text +
          "' is not a non-negative integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return Status::OutOfRange(ErrorPrefix(owner, key) + " = '" + text +
                              "' overflows a 64-bit unsigned integer");
  }
  *out = value;
  return Status::Ok();
}

Status ParseDoubleValue(const std::string& owner, const std::string& key,
                        const std::string& text, double* out) {
  if (text.empty()) {
    return Status::InvalidArgument(ErrorPrefix(owner, key) +
                                   " has an empty value; expected a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !std::isfinite(value)) {
    return Status::InvalidArgument(ErrorPrefix(owner, key) + " = '" + text +
                                   "' is not a finite number");
  }
  *out = value;
  return Status::Ok();
}

Status ParseBoolValue(const std::string& owner, const std::string& key,
                      const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return Status::Ok();
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return Status::Ok();
  }
  return Status::InvalidArgument(ErrorPrefix(owner, key) + " = '" + text +
                                 "' is not a boolean (use true/false, 1/0, "
                                 "yes/no, or on/off)");
}

Status CheckRange(const std::string& owner, const OptionDescriptor& desc,
                  const std::string& text, double value) {
  const bool below =
      desc.has_min && (desc.min_exclusive ? value <= desc.min_value
                                          : value < desc.min_value);
  const bool above =
      desc.has_max && (desc.max_exclusive ? value >= desc.max_value
                                          : value > desc.max_value);
  if (below || above) {
    return Status::OutOfRange(ErrorPrefix(owner, desc.name) + " = '" + text +
                              "' is outside the legal range " +
                              desc.RangeText());
  }
  return Status::Ok();
}

}  // namespace

const char* OptionTypeName(OptionType type) {
  switch (type) {
    case OptionType::kUint:
      return "uint";
    case OptionType::kDouble:
      return "double";
    case OptionType::kBool:
      return "bool";
  }
  return "unknown";
}

std::string OptionDescriptor::RangeText() const {
  if (type == OptionType::kBool) return "true|false";
  if (!has_min && !has_max) return "any";
  std::string out;
  out += has_min ? (min_exclusive ? "(" : "[") : "(";
  out += has_min ? BoundText(min_value) : "-inf";
  out += ", ";
  out += has_max ? BoundText(max_value) : "inf";
  out += has_max ? (max_exclusive ? ")" : "]") : ")";
  return out;
}

std::string OptionDescriptor::DefaultText() const {
  switch (type) {
    case OptionType::kUint:
      return std::to_string(def.u);
    case OptionType::kDouble:
      return FormatDouble(def.d);
    case OptionType::kBool:
      return def.b ? "true" : "false";
  }
  return "";
}

OptionDescriptor UintOption(std::string name, std::uint64_t def,
                            std::string doc) {
  OptionDescriptor d;
  d.name = std::move(name);
  d.type = OptionType::kUint;
  d.def.u = def;
  d.doc = std::move(doc);
  return d;
}

OptionDescriptor UintOptionMin(std::string name, std::uint64_t def,
                               std::uint64_t min, std::string doc) {
  OptionDescriptor d = UintOption(std::move(name), def, std::move(doc));
  d.has_min = true;
  d.min_value = static_cast<double>(min);
  return d;
}

OptionDescriptor DoubleOption(std::string name, double def, std::string doc) {
  OptionDescriptor d;
  d.name = std::move(name);
  d.type = OptionType::kDouble;
  d.def.d = def;
  d.doc = std::move(doc);
  return d;
}

OptionDescriptor DoubleOptionRange(std::string name, double def, double min,
                                   double max, bool min_exclusive,
                                   bool max_exclusive, std::string doc) {
  OptionDescriptor d = DoubleOption(std::move(name), def, std::move(doc));
  d.has_min = !std::isinf(min);
  d.has_max = !std::isinf(max);
  d.min_value = min;
  d.max_value = max;
  d.min_exclusive = min_exclusive;
  d.max_exclusive = max_exclusive;
  return d;
}

OptionDescriptor BoolOption(std::string name, bool def, std::string doc) {
  OptionDescriptor d;
  d.name = std::move(name);
  d.type = OptionType::kBool;
  d.def.b = def;
  d.doc = std::move(doc);
  return d;
}

std::uint64_t ParsedOptions::Uint(const std::string& name) const {
  const auto it = values_.find(name);
  STREAMSC_CHECK(it != values_.end(),
                 "ParsedOptions: lookup of an undescribed option");
  return it->second.u;
}

double ParsedOptions::Double(const std::string& name) const {
  const auto it = values_.find(name);
  STREAMSC_CHECK(it != values_.end(),
                 "ParsedOptions: lookup of an undescribed option");
  return it->second.d;
}

bool ParsedOptions::Bool(const std::string& name) const {
  const auto it = values_.find(name);
  STREAMSC_CHECK(it != values_.end(),
                 "ParsedOptions: lookup of an undescribed option");
  return it->second.b;
}

bool ParsedOptions::WasSet(const std::string& name) const {
  const auto it = explicit_.find(name);
  return it != explicit_.end() && it->second;
}

StatusOr<ParsedOptions> ParseOptions(
    const std::string& owner, const std::vector<OptionDescriptor>& schema,
    const std::vector<std::string>& args) {
  ParsedOptions out;
  for (const OptionDescriptor& desc : schema) {
    out.values_[desc.name] = desc.def;
    out.explicit_[desc.name] = false;
  }

  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          owner + ": malformed option '" + arg +
          "'; expected key=value");
    }
    const std::string key = arg.substr(0, eq);
    const std::string text = arg.substr(eq + 1);

    const OptionDescriptor* desc = nullptr;
    for (const OptionDescriptor& d : schema) {
      if (d.name == key) {
        desc = &d;
        break;
      }
    }
    if (desc == nullptr) {
      std::string valid;
      for (const OptionDescriptor& d : schema) {
        if (!valid.empty()) valid += ", ";
        valid += d.name;
      }
      if (valid.empty()) valid = "<none>";
      return Status::InvalidArgument(owner + ": unknown option '" + key +
                                     "' (valid: " + valid + ")");
    }
    if (out.explicit_[key]) {
      return Status::InvalidArgument(ErrorPrefix(owner, key) +
                                     " was supplied more than once");
    }

    OptionValue value = desc->def;
    Status status;
    double numeric = 0.0;
    switch (desc->type) {
      case OptionType::kUint:
        status = ParseUintValue(owner, key, text, &value.u);
        numeric = static_cast<double>(value.u);
        break;
      case OptionType::kDouble:
        status = ParseDoubleValue(owner, key, text, &value.d);
        numeric = value.d;
        break;
      case OptionType::kBool:
        status = ParseBoolValue(owner, key, text, &value.b);
        break;
    }
    if (!status.ok()) return status;
    if (desc->type != OptionType::kBool) {
      status = CheckRange(owner, *desc, text, numeric);
      if (!status.ok()) return status;
    }
    out.values_[key] = value;
    out.explicit_[key] = true;
  }
  return out;
}

}  // namespace streamsc
