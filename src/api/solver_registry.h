#ifndef STREAMSC_API_SOLVER_REGISTRY_H_
#define STREAMSC_API_SOLVER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/solve_report.h"
#include "api/solver_options.h"
#include "stream/set_stream.h"
#include "stream/stream_algorithm.h"
#include "util/status.h"

/// \file solver_registry.h
/// SolverRegistry: the string-keyed front door to every streaming solver
/// in core/. Before it existed the repo exposed the paper's family of
/// pass/space/approximation trade-offs as 9 unrelated config structs, and
/// every bench, test, and CLI hand-wired its own subset — `workload_tool
/// solve` could literally only run Assadi. The registry gives each solver
/// configuration a stable name, a self-describing option schema
/// (solver_options.h), and one uniform runnable shape (AnySolver), so any
/// caller can drive any solver data-driven:
///
///   auto solver = SolverRegistry::Global().Create(
///       "assadi", {"alpha=2", "epsilon=0.5"});
///   if (!solver.ok()) { /* actionable Status, never an abort */ }
///   StatusOr<SolveReport> report = (*solver)->Run(stream, RunContext{});
///
/// Construction-time validation is two-tier by design: the registry
/// parses and range-checks *user input* into Status errors, while the
/// config-struct constructors keep their STREAMSC_CHECKs as the
/// programmer-misuse backstop (death-tested per solver). Registry ranges
/// are at least as strict as the CHECKs, so Create() can never abort.

namespace streamsc {

/// A solver created by the registry: options already bound, runnable over
/// any SetStream with per-run execution resources (RunContext). Stateless
/// across runs — the same AnySolver may be Run() repeatedly, also on
/// different streams.
class AnySolver {
 public:
  virtual ~AnySolver() = default;

  /// Registry key this solver was created under.
  virtual const std::string& solver() const = 0;

  /// Problem family (drives interpretation of SolveReport fields).
  virtual SolverKind kind() const = 0;

  /// Parametrized display name, e.g. "assadi(alpha=2,eps=0.500000)".
  /// Computed once at construction; returning it never rebuilds it.
  virtual const std::string& algorithm_name() const = 0;

  /// Runs over \p stream, writing the outcome into \p report (which must
  /// be non-null). Every solver-filled field is overwritten; the
  /// session-filled fields (source/threads/arena_*) are left untouched.
  /// Reusing one SolveReport across runs reaches a zero-allocation steady
  /// state: its strings and solution vector keep their capacity, and with
  /// a warm RunContext arena the whole run touches no heap (the `alloc`
  /// test label pins this down for all nine solvers).
  /// Stream-dependent option misuse (e.g. an emek_rosen threshold larger
  /// than this stream's universe) reports a Status instead of aborting.
  virtual Status RunInto(SetStream& stream, const RunContext& context,
                         SolveReport* report) = 0;

  /// Convenience wrapper over RunInto with a fresh report.
  StatusOr<SolveReport> Run(SetStream& stream, const RunContext& context) {
    SolveReport report;
    const Status status = RunInto(stream, context, &report);
    if (!status.ok()) return status;
    return report;
  }
};

/// Everything a caller needs to present a registered solver: key, family,
/// one-line summary, and the full option schema.
struct SolverInfo {
  std::string name;
  SolverKind kind = SolverKind::kSetCover;
  std::string summary;
  std::vector<OptionDescriptor> options;
};

/// The process-wide, immutable-after-construction solver catalogue.
class SolverRegistry {
 public:
  /// The global registry with all 9 built-in solver configurations:
  /// assadi, har_peled, demaine, emek_rosen, one_pass, threshold_greedy,
  /// sieve_mc, element_sampling_mc, pair_finder.
  static const SolverRegistry& Global();

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Metadata for \p name, or nullptr if not registered.
  const SolverInfo* Find(const std::string& name) const;

  /// Parses \p options (key=value strings) against \p name's schema and
  /// constructs the solver. Unknown solver, unknown key, malformed value,
  /// and out-of-range value all return a Status quoting the offending
  /// input and the legal alternatives — never an abort.
  StatusOr<std::unique_ptr<AnySolver>> Create(
      const std::string& name,
      const std::vector<std::string>& options) const;

 private:
  using Factory =
      std::function<std::unique_ptr<AnySolver>(const ParsedOptions&)>;

  struct Entry {
    SolverInfo info;
    Factory make;
  };

  SolverRegistry();  // registers the built-ins

  void Register(SolverInfo info, Factory make);

  std::map<std::string, Entry> entries_;
};

}  // namespace streamsc

#endif  // STREAMSC_API_SOLVER_REGISTRY_H_
