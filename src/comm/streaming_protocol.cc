#include "comm/streaming_protocol.h"

#include <utility>

#include "stream/set_stream.h"

namespace streamsc {
namespace {

// Builds the combined system Alice-then-Bob; returns it together with the
// number of Alice sets (the party boundary in stream position).
SetSystem CombineInputs(const std::vector<DynamicBitset>& alice,
                        const std::vector<DynamicBitset>& bob,
                        std::size_t n) {
  SetSystem system(n);
  for (const auto& s : alice) system.AddSet(s);
  for (const auto& s : bob) system.AddSet(s);
  return system;
}

// Charges the standard simulation cost onto the transcript: two state
// crossings per pass, each bounded by the peak retained space.
void ChargeSimulation(const StreamRunStats& stats, std::uint64_t answer_token,
                      Transcript* transcript) {
  const std::uint64_t state_bits = stats.peak_space_bytes * 8;
  for (std::uint64_t pass = 0; pass < stats.passes; ++pass) {
    transcript->Append(Player::kAlice, state_bits,
                       answer_token * 0x9e3779b97f4a7c15ull + 2 * pass);
    transcript->Append(Player::kBob, state_bits,
                       answer_token * 0xc2b2ae3d27d4eb4full + 2 * pass + 1);
  }
}

}  // namespace

StreamingSetCoverValueProtocol::StreamingSetCoverValueProtocol(
    AlgorithmFactory factory, bool shuffle_stream)
    : factory_(std::move(factory)), shuffle_stream_(shuffle_stream) {}

std::string StreamingSetCoverValueProtocol::name() const {
  return std::string("streaming-sc-protocol") +
         (shuffle_stream_ ? "(random-order)" : "(alice-then-bob)");
}

double StreamingSetCoverValueProtocol::EstimateOpt(
    const std::vector<DynamicBitset>& alice,
    const std::vector<DynamicBitset>& bob, std::size_t n, Rng& shared_rng,
    Transcript* transcript) {
  SetSystem system = CombineInputs(alice, bob, n);
  VectorSetStream stream(
      system,
      shuffle_stream_ ? StreamOrder::kRandomOnce : StreamOrder::kAdversarial,
      &shared_rng);
  auto algorithm = factory_();
  SetCoverRunResult result = algorithm->Run(stream);
  const double estimate =
      result.feasible ? static_cast<double>(result.solution.size())
                      : static_cast<double>(n) + 1.0;  // "no cover found"
  ChargeSimulation(result.stats,
                   static_cast<std::uint64_t>(estimate), transcript);
  return estimate;
}

StreamingMaxCoverageValueProtocol::StreamingMaxCoverageValueProtocol(
    AlgorithmFactory factory, bool shuffle_stream)
    : factory_(std::move(factory)), shuffle_stream_(shuffle_stream) {}

std::string StreamingMaxCoverageValueProtocol::name() const {
  return std::string("streaming-mc-protocol") +
         (shuffle_stream_ ? "(random-order)" : "(alice-then-bob)");
}

double StreamingMaxCoverageValueProtocol::EstimateValue(
    const std::vector<DynamicBitset>& alice,
    const std::vector<DynamicBitset>& bob, std::size_t n, std::size_t k,
    Rng& shared_rng, Transcript* transcript) {
  SetSystem system = CombineInputs(alice, bob, n);
  VectorSetStream stream(
      system,
      shuffle_stream_ ? StreamOrder::kRandomOnce : StreamOrder::kAdversarial,
      &shared_rng);
  auto algorithm = factory_();
  MaxCoverageRunResult result = algorithm->Run(stream, k);
  ChargeSimulation(result.stats, result.coverage, transcript);
  return static_cast<double>(result.coverage);
}

}  // namespace streamsc
