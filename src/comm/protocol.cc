#include "comm/protocol.h"

namespace streamsc {

const char* PlayerName(Player p) {
  return p == Player::kAlice ? "alice" : "bob";
}

void Transcript::Append(Player sender, std::uint64_t bits,
                        std::uint64_t token) {
  messages_.push_back(Message{sender, bits, token});
  total_bits_ += bits;
}

std::uint64_t Transcript::Digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Message& msg : messages_) {
    h ^= msg.token + (msg.sender == Player::kAlice ? 0x9e37ull : 0x79b9ull);
    h *= 0x100000001b3ull;
    h ^= msg.bits;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool TrivialDisjProtocol::Run(const DisjInstance& instance, Rng& shared_rng,
                              Transcript* transcript) {
  (void)shared_rng;
  // Alice -> Bob: her whole characteristic vector (t bits).
  transcript->Append(Player::kAlice, instance.a.size(), instance.a.Hash());
  // Bob -> out: the one-bit answer.
  const bool yes = instance.IsDisjoint();
  transcript->Append(Player::kBob, 1, yes ? 1 : 0);
  return yes;
}

bool TrivialGhdProtocol::Run(const GhdInstance& instance, Rng& shared_rng,
                             Transcript* transcript) {
  (void)shared_rng;
  transcript->Append(Player::kAlice, instance.a.size(), instance.a.Hash());
  // Bob resolves the promise; on ⋆ he answers Yes (any answer is legal).
  const GhdAnswer answer = distribution_.Classify(instance);
  const bool yes = answer != GhdAnswer::kNo;
  transcript->Append(Player::kBob, 1, yes ? 1 : 0);
  return yes;
}

std::string SampledDisjProtocol::name() const {
  return "sampled-disj(bits=" + std::to_string(budget_bits_) + ")";
}

bool SampledDisjProtocol::Run(const DisjInstance& instance, Rng& shared_rng,
                              Transcript* transcript) {
  const std::size_t t = instance.a.size();
  const std::size_t budget = std::min(budget_bits_, t);
  // Public randomness: both players agree on a random coordinate sample.
  const DynamicBitset coords = shared_rng.RandomSubsetOfSize(t, budget);
  // Alice -> Bob: her membership bits on the sampled coordinates.
  DynamicBitset a_sample = instance.a;
  a_sample &= coords;
  transcript->Append(Player::kAlice, budget, a_sample.Hash());
  // Bob: sees an intersection only if it lies inside the sample.
  DynamicBitset common = a_sample;
  common &= instance.b;
  const bool yes = common.None();
  transcript->Append(Player::kBob, 1, yes ? 1 : 0);
  return yes;
}

}  // namespace streamsc
