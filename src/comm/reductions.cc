#include "comm/reductions.h"

#include <vector>

#include "instance/mapping_extension.h"
#include "util/check.h"
#include "util/math.h"

namespace streamsc {

DynamicBitset SampleDisjNoMarginal(std::size_t t, Rng& rng) {
  DynamicBitset a = rng.BernoulliSubset(t, 1.0 / 3.0);
  a.Set(static_cast<std::size_t>(rng.UniformInt(t)));
  return a;
}

DynamicBitset SampleDisjNoGivenOther(const DynamicBitset& other, Rng& rng) {
  const std::size_t t = other.size();
  DynamicBitset out(t);
  // Planted common element: uniform within `other` (posterior of e⋆).
  const std::vector<ElementId> members = other.ToIndices();
  STREAMSC_DCHECK(!members.empty() && "D^N marginals are never empty");
  out.Set(members[rng.UniformInt(members.size())]);
  // Outside `other`, membership is an independent fair coin (posterior of
  // the "dropped from other only" vs "dropped from both" states).
  for (std::size_t e = 0; e < t; ++e) {
    if (!other.Test(e) && rng.Bernoulli(0.5)) out.Set(e);
  }
  return out;
}

DisjFromSetCoverProtocol::DisjFromSetCoverProtocol(
    HardSetCoverParams params, SetCoverValueProtocol* sc_protocol,
    double decision_threshold)
    : params_(params),
      t_(DisjUniverseSize(params.n, params.m, params.alpha, params.t_scale)),
      sc_protocol_(sc_protocol),
      decision_threshold_(decision_threshold > 0.0 ? decision_threshold
                                                   : 2.0 * params.alpha) {
  STREAMSC_DCHECK(sc_protocol_ != nullptr);
}

std::string DisjFromSetCoverProtocol::name() const {
  return "disj-from-setcover[" + sc_protocol_->name() + "]";
}

bool DisjFromSetCoverProtocol::Run(const DisjInstance& instance,
                                   Rng& shared_rng, Transcript* transcript) {
  STREAMSC_DCHECK(instance.a.size() == t_);
  const std::size_t m = params_.m;
  const std::size_t n = params_.n;

  // Public randomness: the embedding index and the mapping-extensions.
  const std::size_t i_star = static_cast<std::size_t>(shared_rng.UniformInt(m));

  // Private randomness is modeled by forking the shared generator once per
  // player (the fork happens deterministically, but its outputs are used
  // only by the owning player, which is all the simulation needs).
  Rng alice_private = shared_rng.Fork();
  Rng bob_private = shared_rng.Fork();

  std::vector<DynamicBitset> alice_sets;
  std::vector<DynamicBitset> bob_sets;
  alice_sets.reserve(m);
  bob_sets.reserve(m);

  for (std::size_t j = 0; j < m; ++j) {
    MappingExtension f(t_, n, shared_rng);  // public
    DynamicBitset a_j(t_), b_j(t_);
    if (j == i_star) {
      a_j = instance.a;
      b_j = instance.b;
    } else if (j < i_star) {
      // A^{<i⋆} public; Bob completes his half privately.
      a_j = SampleDisjNoMarginal(t_, shared_rng);
      b_j = SampleDisjNoGivenOther(a_j, bob_private);
    } else {
      // B^{>i⋆} public; Alice completes her half privately.
      b_j = SampleDisjNoMarginal(t_, shared_rng);
      a_j = SampleDisjNoGivenOther(b_j, alice_private);
    }
    alice_sets.push_back(f.ExtendComplement(a_j));
    bob_sets.push_back(f.ExtendComplement(b_j));
  }

  const double estimate = sc_protocol_->EstimateOpt(alice_sets, bob_sets, n,
                                                    shared_rng, transcript);
  // Small opt ⇔ the embedded pair was disjoint (Lemma 3.2): answer Yes.
  const bool yes = estimate <= decision_threshold_;
  transcript->Append(Player::kBob, 1, yes ? 1 : 0);
  return yes;
}

GhdFromMaxCoverProtocol::GhdFromMaxCoverProtocol(
    HardMaxCoverageParams params, MaxCoverageValueProtocol* mc_protocol)
    : params_(params), dist_(params), mc_protocol_(mc_protocol) {
  STREAMSC_DCHECK(mc_protocol_ != nullptr);
}

std::string GhdFromMaxCoverProtocol::name() const {
  return "ghd-from-maxcover[" + mc_protocol_->name() + "]";
}

std::size_t GhdFromMaxCoverProtocol::SizeA() const { return dist_.t1() / 2; }
std::size_t GhdFromMaxCoverProtocol::SizeB() const { return dist_.t1() / 2; }

bool GhdFromMaxCoverProtocol::Run(const GhdInstance& instance,
                                  Rng& shared_rng, Transcript* transcript) {
  const std::size_t t1 = dist_.t1();
  const std::size_t t2 = dist_.t2();
  const std::size_t n = t1 + t2;
  const std::size_t m = params_.m;
  STREAMSC_DCHECK(instance.a.size() == t1);

  GhdDistribution ghd(t1, SizeA(), SizeB());
  const std::size_t i_star = static_cast<std::size_t>(shared_rng.UniformInt(m));
  Rng alice_private = shared_rng.Fork();
  Rng bob_private = shared_rng.Fork();

  auto embed = [&](const DynamicBitset& u1_part, const DynamicBitset& u2_part) {
    DynamicBitset out(n);
    u1_part.ForEach([&](ElementId e) { out.Set(e); });
    u2_part.ForEach([&](ElementId e) { out.Set(t1 + e); });
    return out;
  };

  // B | A under D^N_GHD: uniform b-subset conditioned on the distance
  // bound — rejection sampling against the fixed half.
  auto sample_no_given = [&](const DynamicBitset& fixed, bool fixed_is_a,
                             Rng& rng) {
    while (true) {
      DynamicBitset candidate =
          rng.RandomSubsetOfSize(t1, fixed_is_a ? SizeB() : SizeA());
      GhdInstance probe{fixed_is_a ? fixed : candidate,
                        fixed_is_a ? candidate : fixed};
      if (ghd.Classify(probe) == GhdAnswer::kNo) return candidate;
    }
  };

  std::vector<DynamicBitset> alice_sets;
  std::vector<DynamicBitset> bob_sets;
  alice_sets.reserve(m);
  bob_sets.reserve(m);

  for (std::size_t j = 0; j < m; ++j) {
    // Public: the U2 partition (C_j, D_j).
    DynamicBitset c = shared_rng.BernoulliSubset(t2, 0.5);
    DynamicBitset d = c;
    d.Complement();

    DynamicBitset a_j(t1), b_j(t1);
    if (j == i_star) {
      a_j = instance.a;
      b_j = instance.b;
    } else if (j < i_star) {
      a_j = shared_rng.RandomSubsetOfSize(t1, SizeA());  // public marginal
      b_j = sample_no_given(a_j, /*fixed_is_a=*/true, bob_private);
    } else {
      b_j = shared_rng.RandomSubsetOfSize(t1, SizeB());  // public marginal
      a_j = sample_no_given(b_j, /*fixed_is_a=*/false, alice_private);
    }
    alice_sets.push_back(embed(a_j, c));
    bob_sets.push_back(embed(b_j, d));
  }

  const double estimate = mc_protocol_->EstimateValue(
      alice_sets, bob_sets, n, HardMaxCoverageInstance::kCoverageBudget,
      shared_rng, transcript);
  // Coverage > τ ⇔ the embedded pair has large distance: answer Yes.
  const bool yes = estimate > dist_.Tau();
  transcript->Append(Player::kBob, 1, yes ? 1 : 0);
  return yes;
}

ProtocolEvaluation EvaluateDisjProtocol(DisjProtocol& protocol,
                                        const DisjDistribution& distribution,
                                        std::size_t trials, Rng& rng) {
  ProtocolEvaluation eval;
  eval.trials = trials;
  double bits_total = 0.0, bits_yes = 0.0, bits_no = 0.0;
  std::size_t yes_count = 0, no_count = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    DisjInstance instance = distribution.Sample(rng);
    const bool truth = instance.IsDisjoint();
    Transcript transcript;
    Rng shared = rng.Fork();
    const bool answer = protocol.Run(instance, shared, &transcript);
    if (answer != truth) ++eval.errors;
    const double bits = static_cast<double>(transcript.TotalBits());
    bits_total += bits;
    if (truth) {
      bits_yes += bits;
      ++yes_count;
    } else {
      bits_no += bits;
      ++no_count;
    }
  }
  eval.error_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(eval.errors) /
                        static_cast<double>(trials);
  eval.mean_bits = trials == 0 ? 0.0 : bits_total / trials;
  eval.mean_bits_yes = yes_count == 0 ? 0.0 : bits_yes / yes_count;
  eval.mean_bits_no = no_count == 0 ? 0.0 : bits_no / no_count;
  return eval;
}

ProtocolEvaluation EvaluateGhdProtocol(GhdProtocol& protocol,
                                       const GhdDistribution& distribution,
                                       std::size_t trials, Rng& rng) {
  ProtocolEvaluation eval;
  eval.trials = trials;
  double bits_total = 0.0, bits_yes = 0.0, bits_no = 0.0;
  std::size_t yes_count = 0, no_count = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    bool truth = false;
    GhdInstance instance = distribution.Sample(rng, &truth);
    Transcript transcript;
    Rng shared = rng.Fork();
    const bool answer = protocol.Run(instance, shared, &transcript);
    if (answer != truth) ++eval.errors;
    const double bits = static_cast<double>(transcript.TotalBits());
    bits_total += bits;
    if (truth) {
      bits_yes += bits;
      ++yes_count;
    } else {
      bits_no += bits;
      ++no_count;
    }
  }
  eval.error_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(eval.errors) /
                        static_cast<double>(trials);
  eval.mean_bits = trials == 0 ? 0.0 : bits_total / trials;
  eval.mean_bits_yes = yes_count == 0 ? 0.0 : bits_yes / yes_count;
  eval.mean_bits_no = no_count == 0 ? 0.0 : bits_no / no_count;
  return eval;
}

}  // namespace streamsc
