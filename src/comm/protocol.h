#ifndef STREAMSC_COMM_PROTOCOL_H_
#define STREAMSC_COMM_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "instance/disj_distribution.h"
#include "instance/ghd_distribution.h"
#include "util/common.h"
#include "util/random.h"

/// \file protocol.h
/// Two-party communication substrate (Yao's model, Section 2.1 of the
/// paper). A Transcript records every message's sender, bit-length, and a
/// content token; the content tokens make the transcript usable as a
/// discrete random variable for the empirical information-cost estimators
/// in src/info.

namespace streamsc {

/// The two players.
enum class Player { kAlice, kBob };

/// Returns "alice" / "bob".
const char* PlayerName(Player p);

/// One message of a protocol execution.
struct Message {
  Player sender = Player::kAlice;
  std::uint64_t bits = 0;     ///< Charged communication, in bits.
  std::uint64_t token = 0;    ///< Content digest (for information cost).
};

/// An ordered record of the messages exchanged in one execution.
class Transcript {
 public:
  Transcript() = default;

  /// Appends a message of \p bits bits with content digest \p token.
  void Append(Player sender, std::uint64_t bits, std::uint64_t token);

  /// Total bits communicated.
  std::uint64_t TotalBits() const { return total_bits_; }

  /// Number of messages.
  std::size_t NumMessages() const { return messages_.size(); }

  const std::vector<Message>& messages() const { return messages_; }

  /// Order-sensitive 64-bit digest of the whole transcript — the value of
  /// the random variable Π in the information-cost estimators.
  std::uint64_t Digest() const;

 private:
  std::vector<Message> messages_;
  std::uint64_t total_bits_ = 0;
};

/// A randomized two-party protocol for Disj_t. `shared_rng` models public
/// randomness (both players see the same stream); protocols derive private
/// coins by forking it. Returns true for "Yes" (disjoint).
class DisjProtocol {
 public:
  virtual ~DisjProtocol() = default;

  /// Protocol name for tables.
  virtual std::string name() const = 0;

  /// Executes on \p instance, appending messages to \p transcript.
  virtual bool Run(const DisjInstance& instance, Rng& shared_rng,
                   Transcript* transcript) = 0;
};

/// A randomized two-party protocol for GHD_t. Returns true for "Yes"
/// (distance above the upper threshold).
class GhdProtocol {
 public:
  virtual ~GhdProtocol() = default;

  virtual std::string name() const = 0;

  virtual bool Run(const GhdInstance& instance, Rng& shared_rng,
                   Transcript* transcript) = 0;
};

/// The trivial one-way Disj protocol: Alice sends her entire set (t bits);
/// Bob answers. Communication t + 1 bits; zero error. The upper-bound
/// reference point for the Ω(t) information bound (Prop. 2.5).
class TrivialDisjProtocol : public DisjProtocol {
 public:
  std::string name() const override { return "trivial-disj"; }

  bool Run(const DisjInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;
};

/// The trivial one-way GHD protocol: Alice sends her set; Bob answers.
class TrivialGhdProtocol : public GhdProtocol {
 public:
  /// \p distribution supplies the thresholds for classification.
  explicit TrivialGhdProtocol(const GhdDistribution& distribution)
      : distribution_(distribution) {}

  std::string name() const override { return "trivial-ghd"; }

  bool Run(const GhdInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;

 private:
  const GhdDistribution& distribution_;
};

/// A sketching Disj protocol with tunable communication: Alice sends the
/// membership bits of a public random subset of coordinates (budget bits).
/// Bob answers "No" (intersecting) iff a shared coordinate is revealed
/// inside the sample, i.e. it errs toward "Yes". Used by the benches to
/// exhibit error growing as communication shrinks below t.
class SampledDisjProtocol : public DisjProtocol {
 public:
  explicit SampledDisjProtocol(std::size_t budget_bits)
      : budget_bits_(budget_bits) {}

  std::string name() const override;

  bool Run(const DisjInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;

 private:
  std::size_t budget_bits_;
};

}  // namespace streamsc

#endif  // STREAMSC_COMM_PROTOCOL_H_
