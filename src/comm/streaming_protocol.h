#ifndef STREAMSC_COMM_STREAMING_PROTOCOL_H_
#define STREAMSC_COMM_STREAMING_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/protocol.h"
#include "instance/set_system.h"
#include "stream/stream_algorithm.h"

/// \file streaming_protocol.h
/// The streaming-to-communication simulation used throughout the paper's
/// lower-bound arguments (proof of Theorem 1): a p-pass, s-space streaming
/// algorithm yields a two-party protocol with O(p·s) communication — the
/// players stream their own sets and hand the algorithm's state across at
/// every boundary crossing (2 crossings per pass).

namespace streamsc {

/// A two-party set cover *value* protocol: estimates opt of the union
/// instance whose sets are split between Alice and Bob.
class SetCoverValueProtocol {
 public:
  virtual ~SetCoverValueProtocol() = default;

  virtual std::string name() const = 0;

  /// Estimates the optimal cover size of (alice ∪ bob, universe [n]).
  /// Appends the communication to \p transcript.
  virtual double EstimateOpt(const std::vector<DynamicBitset>& alice,
                             const std::vector<DynamicBitset>& bob,
                             std::size_t n, Rng& shared_rng,
                             Transcript* transcript) = 0;
};

/// Wraps a streaming set cover algorithm as a communication protocol.
/// Per pass: Alice streams her sets through the algorithm, "sends" its
/// retained state (charged as the run's peak space, an upper bound on any
/// individual crossing) to Bob, who streams his sets; the end-of-pass
/// state returns to Alice. The estimate is the returned solution size.
class StreamingSetCoverValueProtocol : public SetCoverValueProtocol {
 public:
  using AlgorithmFactory =
      std::function<std::unique_ptr<StreamingSetCoverAlgorithm>()>;

  /// \p factory builds a fresh algorithm per execution (protocols are
  /// single-shot); \p shuffle_stream streams the combined input in random
  /// order (the D_SC^rnd regime) instead of Alice-then-Bob.
  StreamingSetCoverValueProtocol(AlgorithmFactory factory,
                                 bool shuffle_stream);

  std::string name() const override;

  double EstimateOpt(const std::vector<DynamicBitset>& alice,
                     const std::vector<DynamicBitset>& bob, std::size_t n,
                     Rng& shared_rng, Transcript* transcript) override;

 private:
  AlgorithmFactory factory_;
  bool shuffle_stream_;
};

/// Same simulation for maximum coverage: estimates the best k-cover value.
class MaxCoverageValueProtocol {
 public:
  virtual ~MaxCoverageValueProtocol() = default;

  virtual std::string name() const = 0;

  virtual double EstimateValue(const std::vector<DynamicBitset>& alice,
                               const std::vector<DynamicBitset>& bob,
                               std::size_t n, std::size_t k, Rng& shared_rng,
                               Transcript* transcript) = 0;
};

/// Streaming max coverage algorithm as a communication protocol.
class StreamingMaxCoverageValueProtocol : public MaxCoverageValueProtocol {
 public:
  using AlgorithmFactory =
      std::function<std::unique_ptr<StreamingMaxCoverageAlgorithm>()>;

  StreamingMaxCoverageValueProtocol(AlgorithmFactory factory,
                                    bool shuffle_stream);

  std::string name() const override;

  double EstimateValue(const std::vector<DynamicBitset>& alice,
                       const std::vector<DynamicBitset>& bob, std::size_t n,
                       std::size_t k, Rng& shared_rng,
                       Transcript* transcript) override;

 private:
  AlgorithmFactory factory_;
  bool shuffle_stream_;
};

}  // namespace streamsc

#endif  // STREAMSC_COMM_STREAMING_PROTOCOL_H_
