#ifndef STREAMSC_COMM_REDUCTIONS_H_
#define STREAMSC_COMM_REDUCTIONS_H_

#include <cstdint>
#include <string>

#include "comm/protocol.h"
#include "comm/streaming_protocol.h"
#include "instance/hard_max_coverage.h"
#include "instance/hard_set_cover.h"

/// \file reductions.h
/// The paper's direct-sum reduction protocols, run for real:
///
/// * DisjFromSetCoverProtocol (Lemma 3.4): solves Disj_t by embedding the
///   input pair at a public random index i⋆ of a D_SC instance, filling the
///   other m-1 indices from D^N (public one side, private conditional the
///   other), and asking a SetCover value protocol whether opt ≤ 2α.
///
/// * GhdFromMaxCoverProtocol (Lemma 4.5): solves GHD_t1 by embedding at a
///   public i⋆ of a D_MC instance and asking a MaxCover value protocol
///   whether the k=2 coverage exceeds τ.
///
/// Note on answer polarity: in the paper's Disj protocol box the final
/// line reads "output No iff πSC estimates opt ≤ 2α"; by the paper's own
/// Lemma 3.2 / distribution D_SC, opt ≤ 2α happens exactly when the
/// embedded pair is *disjoint* (a Yes instance), so we output Yes in that
/// case (the line in the paper is a typo; the GHD box has the consistent
/// polarity).

namespace streamsc {

/// Conditional samplers of the hard Disj distribution (used for the
/// private-randomness steps of Lemma 3.4; exposed for tests).
///
/// Marginal of Alice's set under D^N: Bernoulli(1/3) subset plus a uniform
/// planted element.
DynamicBitset SampleDisjNoMarginal(std::size_t t, Rng& rng);

/// B | A under D^N: the planted element is uniform in A; every element
/// outside A joins B independently w.p. 1/2.
DynamicBitset SampleDisjNoGivenOther(const DynamicBitset& other, Rng& rng);

/// Lemma 3.4: a Disj protocol built from a SetCover value protocol.
class DisjFromSetCoverProtocol : public DisjProtocol {
 public:
  /// The Disj universe is params-implied t (HardSetCoverDistribution);
  /// inputs to Run() must be over that t. \p sc_protocol is borrowed.
  ///
  /// \p decision_threshold is the "opt small" cutoff: answer Yes iff the
  /// estimate is <= it. 0 (default) means the paper's 2α, which is exact
  /// for a true α-approximate value estimator. Streaming backends whose
  /// estimate is their solution size are only (α+ε)-approximate, so they
  /// need 2(α+ε) (with ε < 1/2 the Yes/No bands still separate:
  /// 2(α+ε) < 2α+1 <= opt under θ=0).
  DisjFromSetCoverProtocol(HardSetCoverParams params,
                           SetCoverValueProtocol* sc_protocol,
                           double decision_threshold = 0.0);

  std::string name() const override;

  /// The t this reduction expects.
  std::size_t DisjT() const { return t_; }

  bool Run(const DisjInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;

 private:
  HardSetCoverParams params_;
  std::size_t t_;
  SetCoverValueProtocol* sc_protocol_;
  double decision_threshold_;
};

/// Lemma 4.5: a GHD protocol built from a MaxCover value protocol.
class GhdFromMaxCoverProtocol : public GhdProtocol {
 public:
  GhdFromMaxCoverProtocol(HardMaxCoverageParams params,
                          MaxCoverageValueProtocol* mc_protocol);

  std::string name() const override;

  /// The GHD universe t1 this reduction expects.
  std::size_t GhdT() const { return dist_.t1(); }

  /// Size parameters (a, b) the inputs must satisfy.
  std::size_t SizeA() const;
  std::size_t SizeB() const;

  bool Run(const GhdInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;

 private:
  HardMaxCoverageParams params_;
  HardMaxCoverageDistribution dist_;
  MaxCoverageValueProtocol* mc_protocol_;
};

/// Empirical quality of a Disj protocol on the hard distribution.
struct ProtocolEvaluation {
  std::size_t trials = 0;
  std::size_t errors = 0;
  double error_rate = 0.0;
  double mean_bits = 0.0;         ///< Mean transcript length.
  double mean_bits_yes = 0.0;     ///< Mean over Yes inputs.
  double mean_bits_no = 0.0;      ///< Mean over No inputs.
};

/// Runs \p protocol on \p trials samples of D_Disj and scores it.
ProtocolEvaluation EvaluateDisjProtocol(DisjProtocol& protocol,
                                        const DisjDistribution& distribution,
                                        std::size_t trials, Rng& rng);

/// Runs \p protocol on \p trials samples of D_GHD and scores it (⋆
/// instances cannot occur under D_GHD, so every answer is scored).
ProtocolEvaluation EvaluateGhdProtocol(GhdProtocol& protocol,
                                       const GhdDistribution& distribution,
                                       std::size_t trials, Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_COMM_REDUCTIONS_H_
