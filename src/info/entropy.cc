#include "info/entropy.h"

#include <cmath>

namespace streamsc {
namespace {

double Log2(double x) { return std::log2(x); }

// Packs a pair of 64-bit values into a joint key with negligible collision
// probability for the supports we use.
std::uint64_t PairKey(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

double EntropyFromCounts(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto& [value, count] : counts) total += count;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [value, count] : counts) {
    if (count == 0) continue;
    const double p =
        static_cast<double>(count) / static_cast<double>(total);
    h -= p * Log2(p);
  }
  return h;
}

double EstimateEntropy(const std::vector<std::uint64_t>& xs) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (std::uint64_t x : xs) ++counts[x];
  return EntropyFromCounts(counts);
}

double EstimateMutualInformation(const std::vector<std::uint64_t>& xs,
                                 const std::vector<std::uint64_t>& ys) {
  std::unordered_map<std::uint64_t, std::uint64_t> cx, cy, cxy;
  const std::size_t count = std::min(xs.size(), ys.size());
  for (std::size_t i = 0; i < count; ++i) {
    ++cx[xs[i]];
    ++cy[ys[i]];
    ++cxy[PairKey(xs[i], ys[i])];
  }
  // I(X : Y) = H(X) + H(Y) - H(X, Y); clamp tiny negatives from rounding.
  const double mi =
      EntropyFromCounts(cx) + EntropyFromCounts(cy) - EntropyFromCounts(cxy);
  return mi < 0.0 ? 0.0 : mi;
}

double EstimateConditionalMutualInformation(
    const std::vector<Triple>& samples) {
  // Group by z, then average the per-group mutual information.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    groups[samples[i].z].push_back(i);
  }
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [z, indices] : groups) {
    std::vector<std::uint64_t> xs, ys;
    xs.reserve(indices.size());
    ys.reserve(indices.size());
    for (std::size_t i : indices) {
      xs.push_back(samples[i].x);
      ys.push_back(samples[i].y);
    }
    const double weight = static_cast<double>(indices.size()) /
                          static_cast<double>(samples.size());
    total += weight * EstimateMutualInformation(xs, ys);
  }
  return total;
}

}  // namespace streamsc
