#include "info/odometer.h"

#include <algorithm>

#include "info/entropy.h"

namespace streamsc {
namespace {

// Digest of the first `prefix` messages, mirroring Transcript::Digest()'s
// running-hash structure so prefixes of the same run chain consistently.
std::uint64_t PrefixDigest(const Transcript& transcript, std::size_t prefix) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto& messages = transcript.messages();
  const std::size_t limit = std::min(prefix, messages.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Message& msg = messages[i];
    h ^= msg.token + (msg.sender == Player::kAlice ? 0x9e37ull : 0x79b9ull);
    h *= 0x100000001b3ull;
    h ^= msg.bits;
    h *= 0x100000001b3ull;
  }
  return h;
}

DisjInstance SampleConditioned(const DisjDistribution& distribution,
                               OdometerConditioning conditioning, Rng& rng) {
  switch (conditioning) {
    case OdometerConditioning::kYesOnly:
      return distribution.SampleYes(rng);
    case OdometerConditioning::kNoOnly:
      return distribution.SampleNo(rng);
    case OdometerConditioning::kMixed:
      break;
  }
  return distribution.Sample(rng);
}

}  // namespace

OdometerProfile EstimatePrefixInformation(
    DisjProtocol& protocol, const DisjDistribution& distribution,
    OdometerConditioning conditioning, std::size_t samples, Rng& rng) {
  // One execution per sample; remember the full transcript plus inputs.
  struct Run {
    Transcript transcript;
    std::uint64_t a_hash;
    std::uint64_t b_hash;
  };
  std::vector<Run> runs;
  runs.reserve(samples);
  std::size_t max_messages = 0;
  const std::uint64_t public_seed = rng.Next();
  for (std::size_t i = 0; i < samples; ++i) {
    const DisjInstance instance =
        SampleConditioned(distribution, conditioning, rng);
    Run run;
    Rng shared(public_seed);  // fixed public randomness, as in info_cost
    protocol.Run(instance, shared, &run.transcript);
    run.a_hash = instance.a.Hash();
    run.b_hash = instance.b.Hash();
    max_messages = std::max(max_messages, run.transcript.NumMessages());
    runs.push_back(std::move(run));
  }

  OdometerProfile profile;
  profile.samples = samples;
  profile.cumulative_bits.reserve(max_messages);
  std::vector<Triple> triples(runs.size());
  for (std::size_t prefix = 1; prefix <= max_messages; ++prefix) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      triples[i] = Triple{PrefixDigest(runs[i].transcript, prefix),
                          runs[i].a_hash, runs[i].b_hash};
    }
    double info = EstimateConditionalMutualInformation(triples);
    for (Triple& tr : triples) std::swap(tr.y, tr.z);
    info += EstimateConditionalMutualInformation(triples);
    // Undo the swap for the next prefix round.
    for (Triple& tr : triples) std::swap(tr.y, tr.z);
    profile.cumulative_bits.push_back(info);
  }
  return profile;
}

BudgetedOdometerProtocol::BudgetedOdometerProtocol(DisjProtocol* inner,
                                                   OdometerProfile profile,
                                                   double budget_bits)
    : inner_(inner), profile_(std::move(profile)), budget_bits_(budget_bits) {}

std::string BudgetedOdometerProtocol::name() const {
  return "odometer[" + inner_->name() + "]";
}

bool BudgetedOdometerProtocol::Run(const DisjInstance& instance,
                                   Rng& shared_rng, Transcript* transcript) {
  // Run the inner protocol to completion on a scratch transcript, then
  // replay only the prefix the odometer budget admits. (The real
  // construction interleaves; for accounting purposes the replay is
  // equivalent because the inner protocol's messages don't depend on the
  // odometer.)
  Transcript full;
  const bool inner_answer = inner_->Run(instance, shared_rng, &full);

  std::size_t admitted = full.NumMessages();
  for (std::size_t j = 0; j < profile_.cumulative_bits.size() &&
                          j < full.NumMessages();
       ++j) {
    if (profile_.cumulative_bits[j] > budget_bits_) {
      admitted = j;  // truncate before the offending message
      break;
    }
  }

  for (std::size_t i = 0; i < admitted; ++i) {
    const Message& msg = full.messages()[i];
    transcript->Append(msg.sender, msg.bits, msg.token);
  }

  if (admitted < full.NumMessages()) {
    ++truncations_;
    // The paper's sketch (Section 3.2, discussion before Lemma 3.6):
    // "whenever the odometer estimates the information cost to be larger
    // than c·τ, the players terminate the protocol and declare that the
    // answer is No". We follow that fixed-answer-on-truncation rule; the
    // demonstrative point (bench E10) is that with the budget set near
    // the D^N information cost, truncation is rare and the wrapped
    // protocol keeps both its accuracy and an O(τ) information cost.
    transcript->Append(Player::kBob, 1, 0);
    return false;
  }
  return inner_answer;
}

}  // namespace streamsc
