#ifndef STREAMSC_INFO_INFO_COST_H_
#define STREAMSC_INFO_INFO_COST_H_

#include <cstdint>
#include <functional>

#include "comm/protocol.h"
#include "instance/disj_distribution.h"
#include "instance/ghd_distribution.h"
#include "util/random.h"

/// \file info_cost.h
/// Monte-Carlo estimation of the *internal information cost* of a protocol
/// (Definition 2 of the paper):
///   ICost_D(π) = I(Π : X | Y) + I(Π : Y | X),
/// where Π is the transcript (digest), X = Alice's input, Y = Bob's input,
/// all estimated empirically over samples from D. Restricted to tiny
/// universes (t <= ~8) where plug-in estimation converges; this is the
/// engine behind the E10 bench that exhibits the Yes/No information-cost
/// relationship used via the information-odometer argument (Lemma 3.5).

namespace streamsc {

/// The two conditional-information terms and their sum, in bits.
struct InfoCostEstimate {
  double i_pi_x_given_y = 0.0;  ///< I(Π : A | B).
  double i_pi_y_given_x = 0.0;  ///< I(Π : B | A).
  double icost = 0.0;           ///< Their sum.
  std::size_t samples = 0;
};

/// Which conditional of the hard distribution to sample.
enum class DisjConditioning { kMixed, kYesOnly, kNoOnly };

/// Estimates ICost of \p protocol on D_Disj (or its conditionals) with
/// \p samples Monte-Carlo executions. Public randomness is *fixed* across
/// executions (a single shared seed), matching the convention that Π
/// includes the public random string R (Claim 2.3: conditioning on R).
InfoCostEstimate EstimateDisjInfoCost(DisjProtocol& protocol,
                                      const DisjDistribution& distribution,
                                      DisjConditioning conditioning,
                                      std::size_t samples, Rng& rng);

/// Same for GHD distributions.
enum class GhdConditioning { kMixed, kYesOnly, kNoOnly };

InfoCostEstimate EstimateGhdInfoCost(GhdProtocol& protocol,
                                     const GhdDistribution& distribution,
                                     GhdConditioning conditioning,
                                     std::size_t samples, Rng& rng);

}  // namespace streamsc

#endif  // STREAMSC_INFO_INFO_COST_H_
