#ifndef STREAMSC_INFO_ENTROPY_H_
#define STREAMSC_INFO_ENTROPY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

/// \file entropy.h
/// Plug-in (empirical) Shannon entropy and mutual information estimators
/// over discrete samples, mirroring the information-theory toolkit of the
/// paper's Appendix A. Random variables are represented by 64-bit values
/// (hashes of sets / transcript digests). Estimates are in bits.
///
/// Plug-in estimators are biased for small samples; the info-cost bench
/// reports sample counts alongside estimates and sticks to tiny supports
/// (t <= 8) where the bias is negligible at 10^4+ samples.

namespace streamsc {

/// One observation of (X, Y, Z).
struct Triple {
  std::uint64_t x;
  std::uint64_t y;
  std::uint64_t z;
};

/// H(X) from a histogram of value -> count.
double EntropyFromCounts(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts);

/// Empirical H(X) of a sample.
double EstimateEntropy(const std::vector<std::uint64_t>& xs);

/// Empirical I(X : Y) of paired samples (xs[i], ys[i]).
double EstimateMutualInformation(const std::vector<std::uint64_t>& xs,
                                 const std::vector<std::uint64_t>& ys);

/// Empirical conditional mutual information I(X : Y | Z) over triples:
/// sum over z of p(z) · I(X : Y | Z = z).
double EstimateConditionalMutualInformation(const std::vector<Triple>& samples);

}  // namespace streamsc

#endif  // STREAMSC_INFO_ENTROPY_H_
