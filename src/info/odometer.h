#ifndef STREAMSC_INFO_ODOMETER_H_
#define STREAMSC_INFO_ODOMETER_H_

#include <cstdint>
#include <vector>

#include "comm/protocol.h"
#include "instance/disj_distribution.h"
#include "util/random.h"

/// \file odometer.h
/// An empirical *information odometer* (Braverman-Weinstein STOC'15, used
/// by the paper via Lemma 3.6 / Göös et al.): track how much information a
/// protocol has revealed *so far*, prefix by prefix, and stop it once a
/// budget is exceeded.
///
/// The paper uses the odometer inside a proof: if a Disj protocol were
/// cheap on No-instances but expensive on Yes-instances, a budgeted run
/// would itself decide the problem — contradiction (Lemma 3.5). This
/// module makes that argument executable at small t:
///
///  * EstimatePrefixInformation — the per-prefix information profile
///    I(Π_{<=j} : A | B) + I(Π_{<=j} : B | A), plug-in estimated;
///  * BudgetedOdometerProtocol — wraps a protocol, halts it at the first
///    message whose prefix information (per a pre-computed profile)
///    exceeds a budget, and outputs "No" on truncation — exactly the
///    construction in the Lemma 3.5 sketch.
///
/// Restricted to tiny t (<= ~8) where plug-in estimation converges.

namespace streamsc {

/// The per-prefix information profile of a protocol on a distribution.
struct OdometerProfile {
  /// cumulative_bits[j] = estimated I(Π_{<=j+1} : A | B) + I(Π_{<=j+1} :
  /// B | A) after j+1 messages (message = one Transcript::Append).
  std::vector<double> cumulative_bits;
  std::size_t samples = 0;
};

/// Which conditional of D_Disj to profile on.
enum class OdometerConditioning { kMixed, kYesOnly, kNoOnly };

/// Estimates the prefix-information profile of \p protocol over \p samples
/// runs on the conditioned distribution. Public randomness is fixed by
/// \p rng's fork, as in EstimateDisjInfoCost.
OdometerProfile EstimatePrefixInformation(
    DisjProtocol& protocol, const DisjDistribution& distribution,
    OdometerConditioning conditioning, std::size_t samples, Rng& rng);

/// The Lemma 3.5 construction: runs an inner protocol but, per a profile
/// computed on the *mixed* distribution, declares "No" at the first prefix
/// whose estimated cumulative information exceeds \p budget_bits.
/// (The real odometer tracks information online with interactive hashing;
/// the profile stands in for that accounting at simulation scale.)
class BudgetedOdometerProtocol : public DisjProtocol {
 public:
  /// \p inner is borrowed. \p profile must come from the same protocol.
  BudgetedOdometerProtocol(DisjProtocol* inner, OdometerProfile profile,
                           double budget_bits);

  std::string name() const override;

  bool Run(const DisjInstance& instance, Rng& shared_rng,
           Transcript* transcript) override;

  /// How many of the evaluated runs were truncated by the budget.
  std::uint64_t truncations() const { return truncations_; }

 private:
  DisjProtocol* inner_;
  OdometerProfile profile_;
  double budget_bits_;
  std::uint64_t truncations_ = 0;
};

}  // namespace streamsc

#endif  // STREAMSC_INFO_ODOMETER_H_
