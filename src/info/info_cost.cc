#include "info/info_cost.h"

#include <vector>

#include "info/entropy.h"

namespace streamsc {
namespace {

InfoCostEstimate EstimateFromTriples(std::vector<Triple>& pi_a_b) {
  // pi_a_b: x = Π, y = A, z = B  ->  I(Π : A | B).
  InfoCostEstimate out;
  out.samples = pi_a_b.size();
  out.i_pi_x_given_y = EstimateConditionalMutualInformation(pi_a_b);
  // Swap roles for I(Π : B | A).
  for (Triple& tr : pi_a_b) std::swap(tr.y, tr.z);
  out.i_pi_y_given_x = EstimateConditionalMutualInformation(pi_a_b);
  out.icost = out.i_pi_x_given_y + out.i_pi_y_given_x;
  return out;
}

}  // namespace

InfoCostEstimate EstimateDisjInfoCost(DisjProtocol& protocol,
                                      const DisjDistribution& distribution,
                                      DisjConditioning conditioning,
                                      std::size_t samples, Rng& rng) {
  std::vector<Triple> triples;
  triples.reserve(samples);
  const std::uint64_t public_seed = rng.Next();
  for (std::size_t i = 0; i < samples; ++i) {
    DisjInstance instance;
    switch (conditioning) {
      case DisjConditioning::kMixed:
        instance = distribution.Sample(rng);
        break;
      case DisjConditioning::kYesOnly:
        instance = distribution.SampleYes(rng);
        break;
      case DisjConditioning::kNoOnly:
        instance = distribution.SampleNo(rng);
        break;
    }
    Transcript transcript;
    Rng shared(public_seed);  // fixed public randomness across executions
    protocol.Run(instance, shared, &transcript);
    triples.push_back(
        Triple{transcript.Digest(), instance.a.Hash(), instance.b.Hash()});
  }
  return EstimateFromTriples(triples);
}

InfoCostEstimate EstimateGhdInfoCost(GhdProtocol& protocol,
                                     const GhdDistribution& distribution,
                                     GhdConditioning conditioning,
                                     std::size_t samples, Rng& rng) {
  std::vector<Triple> triples;
  triples.reserve(samples);
  const std::uint64_t public_seed = rng.Next();
  for (std::size_t i = 0; i < samples; ++i) {
    GhdInstance instance;
    switch (conditioning) {
      case GhdConditioning::kMixed:
        instance = distribution.Sample(rng);
        break;
      case GhdConditioning::kYesOnly:
        instance = distribution.SampleYes(rng);
        break;
      case GhdConditioning::kNoOnly:
        instance = distribution.SampleNo(rng);
        break;
    }
    Transcript transcript;
    Rng shared(public_seed);
    protocol.Run(instance, shared, &transcript);
    triples.push_back(
        Triple{transcript.Digest(), instance.a.Hash(), instance.b.Hash()});
  }
  return EstimateFromTriples(triples);
}

}  // namespace streamsc
