#include "testing/alloc_counter.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

// Global operator new/delete replacement. Defined here (not in a header)
// so only binaries that link this translation unit get the interposer;
// replacement is binary-wide and consistent from program start, so every
// delete sees memory that came from the matching counting new.

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_bytes{0};

void Count(std::size_t size) noexcept {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) noexcept {
  Count(size);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  Count(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  // posix_memalign memory is free()-able, unlike some aligned_alloc
  // implementations' stricter size requirements.
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) {
    return nullptr;
  }
  return p;
}

void CountedFree(void* p) noexcept {
  if (p != nullptr && g_armed.load(std::memory_order_relaxed)) {
    g_deallocations.fetch_add(1, std::memory_order_relaxed);
  }
  std::free(p);
}

}  // namespace

namespace streamsc {
namespace testing {

void ArmAllocCounter() {
  g_allocations.store(0, std::memory_order_relaxed);
  g_deallocations.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_seq_cst);
}

AllocCounterStats DisarmAllocCounter() {
  g_armed.store(false, std::memory_order_seq_cst);
  AllocCounterStats stats;
  stats.allocations = g_allocations.load(std::memory_order_relaxed);
  stats.deallocations = g_deallocations.load(std::memory_order_relaxed);
  stats.bytes = g_bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace testing
}  // namespace streamsc

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
