#ifndef STREAMSC_TESTS_TESTING_SCOPED_TEMP_DIR_H_
#define STREAMSC_TESTS_TESTING_SCOPED_TEMP_DIR_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>

/// \file scoped_temp_dir.h
/// ScopedTempDir: a per-test temporary directory, created unique in the
/// system temp root and removed (recursively) on destruction. Tests that
/// touch the filesystem should put every file they create under one of
/// these so parallel ctest runs never collide on shared fixed names and
/// nothing leaks across runs.

namespace streamsc {
namespace testing {

class ScopedTempDir {
 public:
  /// Creates a fresh directory like <tmp>/streamsc_test_<hex>; aborts the
  /// test (via GTest assertion on first use) if creation fails.
  ScopedTempDir() {
    const std::filesystem::path root =
        std::filesystem::temp_directory_path();
    std::random_device rd;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
      std::filesystem::path candidate =
          root / ("streamsc_test_" + ToHex(tag));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        path_ = std::move(candidate);
        return;
      }
    }
  }

  ~ScopedTempDir() {
    if (!path_.empty()) {
      std::error_code ec;  // best-effort cleanup; never throws in a dtor
      std::filesystem::remove_all(path_, ec);
    }
  }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  /// True iff the directory was created.
  bool ok() const { return !path_.empty(); }

  /// The directory itself.
  const std::filesystem::path& path() const { return path_; }

  /// An absolute path for \p name inside the directory.
  std::string FilePath(const std::string& name) const {
    EXPECT_TRUE(ok()) << "temp dir creation failed";
    return (path_ / name).string();
  }

 private:
  static std::string ToHex(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = digits[v & 0xF];
      v >>= 4;
    }
    return out;
  }

  std::filesystem::path path_;
};

}  // namespace testing
}  // namespace streamsc

#endif  // STREAMSC_TESTS_TESTING_SCOPED_TEMP_DIR_H_
