#ifndef STREAMSC_TESTS_TESTING_SOLVER_MATRIX_H_
#define STREAMSC_TESTS_TESTING_SOLVER_MATRIX_H_

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/solve_report.h"
#include "api/solve_session.h"
#include "api/solver_registry.h"
#include "core/pair_finder.h"
#include "instance/serialization.h"
#include "instance/set_system.h"
#include "obs/trace.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/engine_context.h"
#include "stream/set_stream.h"
#include "stream/stream_adapters.h"
#include "stream/stream_algorithm.h"
#include "testing/scoped_temp_dir.h"
#include "util/bitset.h"

/// \file solver_matrix.h
/// The cross-algorithm conformance matrix: one harness that proves, for
/// any streaming solver, the determinism contract the ParallelPassEngine
/// promises — **byte-identical solutions, covers, and deterministic stats**
/// across every combination of
///
///   stream source x engine:  {VectorSetStream, FileSetStream,
///                             MmapSetStream} x {none, 1, 2, 8 threads}.
///
/// The FileSetStream column is deliberately included even though it can
/// never shard (ItemsRemainValid() is false): it proves the buffered
/// engine path and the one-set-at-a-time sequential path compute the same
/// thing, which is exactly the fallback equivalence solvers rely on.
/// Peak space is asserted thread-count-invariant *within* a stream source
/// only — sources legitimately serve different representations (a text
/// file is always dense, the hybrid/mmap stores sparsify), so stored
/// projections differ in bytes while remaining equal as sets.
///
/// Since the unified-API redesign, the matrix is driven through the
/// public front door: RunConformanceMatrix(system, solver, options)
/// constructs every cell's solver from the string-keyed SolverRegistry
/// and additionally proves that the owning SolveSession (source sniffing
/// + engine lifetime from `threads=`) reproduces the same bytes from both
/// on-disk formats. The SolverFn overload remains for harnesses that need
/// a custom stream (e.g. random arrival orders).
///
/// This replaces the per-algorithm ad-hoc determinism checks that used to
/// live in the engine and mmap test suites: a solver is conformant iff its
/// adapter runs through RunConformanceMatrix green.

namespace streamsc {
namespace testing {

/// The observable outcome of one solver run, reduced to the fields the
/// determinism contract covers. wall_seconds and other scheduling-
/// dependent measurements are intentionally absent.
struct SolverOutcome {
  ArenaVector<SetId> chosen;           ///< Solution ids, in take order.
  bool feasible = false;               ///< Solver-reported success bit.
  std::uint64_t passes = 0;
  std::uint64_t items_seen = 0;
  std::uint64_t sets_taken = 0;        ///< Deterministic take counter.
  std::uint64_t elements_covered = 0;  ///< Deterministic gain counter.
  Bytes peak_space_bytes = 0;          ///< Compared within a source only.
  std::uint64_t extra = 0;             ///< Solver-specific deterministic
                                       ///< scalar (coverage, candidates…).
};

/// Adapters from the three run-result shapes to the canonical outcome.
inline SolverOutcome ToOutcome(const SetCoverRunResult& r) {
  SolverOutcome out;
  out.chosen = r.solution.chosen;
  out.feasible = r.feasible;
  out.passes = r.stats.passes;
  out.items_seen = r.stats.items_seen;
  out.sets_taken = r.stats.sets_taken;
  out.elements_covered = r.stats.elements_covered;
  out.peak_space_bytes = r.stats.peak_space_bytes;
  return out;
}

inline SolverOutcome ToOutcome(const MaxCoverageRunResult& r) {
  SolverOutcome out;
  out.chosen = r.solution.chosen;
  out.feasible = !r.solution.chosen.empty();
  out.passes = r.stats.passes;
  out.items_seen = r.stats.items_seen;
  out.sets_taken = r.stats.sets_taken;
  out.elements_covered = r.stats.elements_covered;
  out.peak_space_bytes = r.stats.peak_space_bytes;
  out.extra = r.coverage;
  return out;
}

inline SolverOutcome ToOutcome(const PairFinderResult& r) {
  SolverOutcome out;
  out.chosen = r.solution.chosen;
  out.feasible = r.found;
  out.passes = r.passes;
  out.items_seen = r.engine_stats.items_scanned;
  out.sets_taken = r.engine_stats.sets_taken;
  out.elements_covered = r.engine_stats.elements_covered;
  out.peak_space_bytes = r.peak_space_bytes;
  out.extra = r.candidates_after_first_pass;
  return out;
}

inline SolverOutcome ToOutcome(const SolveReport& r) {
  SolverOutcome out;
  out.chosen = r.solution.chosen;
  out.feasible = r.feasible;
  out.passes = r.passes;
  out.items_seen = r.stats.items_scanned;
  out.sets_taken = r.stats.sets_taken;
  out.elements_covered = r.stats.elements_covered;
  out.peak_space_bytes = r.peak_space_bytes;
  out.extra = r.extra;
  return out;
}

/// A solver under test: run once over the given stream, with the given
/// engine (may be null), and report the canonical outcome. The adapter
/// must construct a fresh solver per call — the harness calls it once per
/// matrix cell.
using SolverFn = std::function<SolverOutcome(SetStream&, ParallelPassEngine*)>;

/// A SolverFn that builds the solver from the global SolverRegistry by
/// string key + key=value options — the same construction path every
/// external caller (CLI, bench sweep, service) uses.
///
/// Every cell runs **three times**: once heap-allocating (no run arena),
/// once over a fresh MonotonicArena, and once with a TraceRecorder armed,
/// asserting all outcomes are byte-identical — the arena is a memory
/// placement decision and tracing is a pure observer; neither is ever an
/// algorithmic one. The arena-backed outcome is returned.
inline SolverFn RegistrySolverFn(std::string solver,
                                 std::vector<std::string> options) {
  return [solver = std::move(solver), options = std::move(options)](
             SetStream& stream, ParallelPassEngine* engine) -> SolverOutcome {
    auto run_once = [&](MonotonicArena* arena,
                        TraceRecorder* trace) -> std::optional<SolverOutcome> {
      StatusOr<std::unique_ptr<AnySolver>> created =
          SolverRegistry::Global().Create(solver, options);
      if (!created.ok()) {
        ADD_FAILURE() << "registry rejected '" << solver
                      << "': " << created.status().ToString();
        return std::nullopt;
      }
      RunContext context;
      context.engine = engine;
      context.arena = arena;
      context.trace = trace;
      StatusOr<SolveReport> report = (*created)->Run(stream, context);
      if (!report.ok()) {
        ADD_FAILURE() << "'" << solver
                      << "' run failed: " << report.status().ToString();
        return std::nullopt;
      }
      return ToOutcome(*report);
    };
    const std::optional<SolverOutcome> heap_outcome = run_once(nullptr, nullptr);
    MonotonicArena arena;
    const std::optional<SolverOutcome> arena_outcome = run_once(&arena, nullptr);
    TraceRecorder trace;
    const std::optional<SolverOutcome> traced_outcome =
        run_once(nullptr, &trace);
    if (!heap_outcome.has_value() || !arena_outcome.has_value() ||
        !traced_outcome.has_value()) {
      return SolverOutcome{};
    }
    EXPECT_EQ(arena_outcome->chosen, heap_outcome->chosen)
        << "arena-backed run diverged from the heap run";
    EXPECT_EQ(arena_outcome->feasible, heap_outcome->feasible);
    EXPECT_EQ(arena_outcome->passes, heap_outcome->passes);
    EXPECT_EQ(arena_outcome->items_seen, heap_outcome->items_seen);
    EXPECT_EQ(arena_outcome->sets_taken, heap_outcome->sets_taken);
    EXPECT_EQ(arena_outcome->elements_covered, heap_outcome->elements_covered);
    EXPECT_EQ(arena_outcome->peak_space_bytes, heap_outcome->peak_space_bytes);
    EXPECT_EQ(arena_outcome->extra, heap_outcome->extra);
    EXPECT_EQ(traced_outcome->chosen, heap_outcome->chosen)
        << "arming a TraceRecorder changed the solution";
    EXPECT_EQ(traced_outcome->feasible, heap_outcome->feasible);
    EXPECT_EQ(traced_outcome->passes, heap_outcome->passes);
    EXPECT_EQ(traced_outcome->items_seen, heap_outcome->items_seen);
    EXPECT_EQ(traced_outcome->sets_taken, heap_outcome->sets_taken);
    EXPECT_EQ(traced_outcome->elements_covered,
              heap_outcome->elements_covered);
    EXPECT_EQ(traced_outcome->peak_space_bytes,
              heap_outcome->peak_space_bytes);
    EXPECT_EQ(traced_outcome->extra, heap_outcome->extra);
    // Every traced run records at least the solver span.
    EXPECT_GT(trace.events_recorded(), 0u);
    return *arena_outcome;
  };
}

/// The cover (as a full-universe bitset) achieved by \p chosen on
/// \p system.
inline DynamicBitset CoverOf(const SetSystem& system,
                             std::span<const SetId> chosen) {
  DynamicBitset covered(system.universe_size());
  for (SetId id : chosen) system.set(id).OrInto(covered);
  return covered;
}

/// Runs \p solve across the full {memory, file, mmap} x {none, 1, 2, 8
/// threads} matrix on \p system and asserts every cell reproduces the
/// engine-less in-memory baseline byte for byte.
inline void RunConformanceMatrix(const SetSystem& system,
                                 const SolverFn& solve) {
  ScopedTempDir dir;
  const std::string text_path = dir.FilePath("matrix.ssc");
  const std::string binary_path = dir.FilePath("matrix.sscb1");
  ASSERT_TRUE(SaveSetSystem(system, text_path).ok());
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, binary_path).ok());

  // Baseline: in-memory stream, no engine — the plain sequential solver.
  VectorSetStream baseline_stream(system);
  const SolverOutcome baseline = solve(baseline_stream, nullptr);
  const DynamicBitset baseline_cover = CoverOf(system, baseline.chosen);
  // A degenerate baseline (nothing chosen, solver reporting failure)
  // would make every identity below pass vacuously; the matrix instances
  // are chosen so each solver genuinely succeeds.
  EXPECT_TRUE(baseline.feasible) << "baseline run failed";
  EXPECT_FALSE(baseline.chosen.empty()) << "baseline chose nothing";

  const char* const kSourceNames[] = {"memory", "file", "mmap"};
  // 0 encodes "no engine"; otherwise a pool of that many threads.
  const std::size_t kThreadCells[] = {0, 1, 2, 8};

  for (int source = 0; source < 3; ++source) {
    std::optional<Bytes> source_space;  // thread-invariant within a source
    for (const std::size_t threads : kThreadCells) {
      SCOPED_TRACE(std::string("source=") + kSourceNames[source] +
                   " threads=" + (threads == 0 ? "none"
                                               : std::to_string(threads)));
      std::optional<ParallelPassEngine> engine;
      if (threads > 0) engine.emplace(threads);

      SolverOutcome outcome;
      if (source == 0) {
        VectorSetStream stream(system);
        outcome = solve(stream, engine ? &*engine : nullptr);
      } else if (source == 1) {
        FileSetStream stream(text_path);
        ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
        outcome = solve(stream, engine ? &*engine : nullptr);
      } else {
        MmapSetStream stream(binary_path);
        ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
        outcome = solve(stream, engine ? &*engine : nullptr);
      }

      EXPECT_EQ(outcome.chosen, baseline.chosen);
      EXPECT_EQ(outcome.feasible, baseline.feasible);
      EXPECT_TRUE(CoverOf(system, outcome.chosen) == baseline_cover);
      EXPECT_EQ(outcome.passes, baseline.passes);
      EXPECT_EQ(outcome.items_seen, baseline.items_seen);
      EXPECT_EQ(outcome.sets_taken, baseline.sets_taken);
      EXPECT_EQ(outcome.elements_covered, baseline.elements_covered);
      EXPECT_EQ(outcome.extra, baseline.extra);
      if (!source_space.has_value()) {
        source_space = outcome.peak_space_bytes;
      } else {
        EXPECT_EQ(outcome.peak_space_bytes, *source_space);
      }
    }
  }
}

/// Registry/session-driven matrix: constructs every cell's solver from
/// the global SolverRegistry (string key + key=value options) and runs
/// the full stream-source x thread-count matrix, then proves the
/// SolveSession front door — which owns source sniffing and the engine
/// lifetime via `threads=` — reproduces the engine-less in-memory
/// baseline byte for byte from both on-disk formats. Peak space is
/// excluded from the session comparison: the session's text source at
/// threads > 1 legitimately upgrades to the in-memory representation,
/// whose stored projections differ in bytes while equal as sets.
inline void RunConformanceMatrix(const SetSystem& system,
                                 const std::string& solver,
                                 const std::vector<std::string>& options) {
  const SolverFn solve = RegistrySolverFn(solver, options);
  RunConformanceMatrix(system, solve);

  ScopedTempDir dir;
  const std::string text_path = dir.FilePath("session.ssc");
  const std::string binary_path = dir.FilePath("session.sscb1");
  ASSERT_TRUE(SaveSetSystem(system, text_path).ok());
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, binary_path).ok());

  VectorSetStream baseline_stream(system);
  const SolverOutcome baseline = solve(baseline_stream, nullptr);

  for (const std::string& path : {text_path, binary_path}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE("session path=" + path +
                   " threads=" + std::to_string(threads));
      StatusOr<SolveSession> session = SolveSession::Open(path);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      std::vector<std::string> args = options;
      args.push_back("threads=" + std::to_string(threads));
      StatusOr<SolveReport> report = session->Solve(solver, args);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->solver, solver);
      EXPECT_EQ(report->threads, threads);
      const SolverOutcome outcome = ToOutcome(*report);
      EXPECT_EQ(outcome.chosen, baseline.chosen);
      EXPECT_EQ(outcome.feasible, baseline.feasible);
      EXPECT_EQ(outcome.passes, baseline.passes);
      EXPECT_EQ(outcome.items_seen, baseline.items_seen);
      EXPECT_EQ(outcome.sets_taken, baseline.sets_taken);
      EXPECT_EQ(outcome.elements_covered, baseline.elements_covered);
      EXPECT_EQ(outcome.extra, baseline.extra);
    }
  }

  // Budget cell: a 1-byte arena budget must surface as a clean
  // RESOURCE_EXHAUSTED Status — never an abort. threads=2 forces the
  // buffered engine path, whose item staging charges the run arena up
  // front, so every solver trips regardless of its own retained state.
  {
    SolveSession session = SolveSession::OverSystem(system);
    std::vector<std::string> args = options;
    args.push_back("threads=2");
    args.push_back("memory_budget=1");
    StatusOr<SolveReport> report = session.Solve(solver, args);
    EXPECT_FALSE(report.ok())
        << "a 1-byte memory_budget was not enforced for '" << solver << "'";
    if (!report.ok()) {
      EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted)
          << report.status().ToString();
    }
    // The session (and its arena) stays usable after a budget trip.
    args.resize(args.size() - 1);
    StatusOr<SolveReport> retry = session.Solve(solver, args);
    EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  }
}

}  // namespace testing
}  // namespace streamsc

#endif  // STREAMSC_TESTS_TESTING_SOLVER_MATRIX_H_
