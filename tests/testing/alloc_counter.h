#ifndef STREAMSC_TESTING_ALLOC_COUNTER_H_
#define STREAMSC_TESTING_ALLOC_COUNTER_H_

#include <cstdint>

/// \file alloc_counter.h
/// A process-wide heap-allocation counter for zero-allocation tests and
/// benches. Linking alloc_counter.cc into a binary replaces the global
/// operator new/delete family with counting forwarders to malloc/free;
/// the counters are atomics, so allocations from *every* thread —
/// including ParallelPassEngine workers — are visible while armed.
///
/// Usage:
///
///   ArmAllocCounter();
///   ... the code under test ...
///   const AllocCounterStats stats = DisarmAllocCounter();
///   EXPECT_EQ(stats.allocations, 0u);
///
/// The interposers themselves never allocate and are async-signal-safe
/// modulo malloc. Arming is not reference-counted: don't nest.

namespace streamsc {
namespace testing {

/// Heap activity observed between Arm and Disarm.
struct AllocCounterStats {
  std::uint64_t allocations = 0;    ///< operator new / new[] calls.
  std::uint64_t deallocations = 0;  ///< operator delete calls (non-null).
  std::uint64_t bytes = 0;          ///< Sum of requested allocation sizes.
};

/// Zeroes the counters and starts counting on all threads.
void ArmAllocCounter();

/// Stops counting and returns what was observed since Arm.
AllocCounterStats DisarmAllocCounter();

}  // namespace testing
}  // namespace streamsc

#endif  // STREAMSC_TESTING_ALLOC_COUNTER_H_
