#ifndef STREAMSC_TESTING_MIN_JSON_H_
#define STREAMSC_TESTING_MIN_JSON_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file min_json.h
/// A minimal recursive-descent JSON parser for tests that validate the
/// repo's machine-readable exports (chrome-trace files, BENCH_*.json)
/// actually parse — without pulling a JSON dependency into the tree.
/// Strict enough for the subset our writers produce: objects, arrays,
/// strings with \" \\ \uXXXX escapes, numbers, true/false/null. Parse
/// failures return nullptr (callers assert on it).

namespace streamsc {
namespace testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<std::unique_ptr<JsonValue>> array;
  std::map<std::string, std::unique_ptr<JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class MinJsonParser {
 public:
  explicit MinJsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one JSON value; nullptr on any error or
  /// trailing garbage.
  std::unique_ptr<JsonValue> Parse() {
    pos_ = 0;
    std::unique_ptr<JsonValue> value = ParseValue();
    SkipWhitespace();
    if (value == nullptr || pos_ != text_.size()) return nullptr;
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const std::size_t start = pos_;
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        pos_ = start;
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    auto value = std::make_unique<JsonValue>();
    if (ConsumeLiteral("true")) {
      value->type = JsonValue::Type::kBool;
      value->bool_value = true;
      return value;
    }
    if (ConsumeLiteral("false")) {
      value->type = JsonValue::Type::kBool;
      return value;
    }
    if (ConsumeLiteral("null")) return value;  // kNull
    return nullptr;
  }

  std::unique_ptr<JsonValue> ParseObject() {
    if (!Consume('{')) return nullptr;
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      std::unique_ptr<JsonValue> key = ParseString();
      if (key == nullptr || !Consume(':')) return nullptr;
      std::unique_ptr<JsonValue> member = ParseValue();
      if (member == nullptr) return nullptr;
      value->object[key->string] = std::move(member);
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseArray() {
    if (!Consume('[')) return nullptr;
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      std::unique_ptr<JsonValue> element = ParseValue();
      if (element == nullptr) return nullptr;
      value->array.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
    ++pos_;
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value->string.push_back('"'); break;
          case '\\': value->string.push_back('\\'); break;
          case '/': value->string.push_back('/'); break;
          case 'b': value->string.push_back('\b'); break;
          case 'f': value->string.push_back('\f'); break;
          case 'n': value->string.push_back('\n'); break;
          case 'r': value->string.push_back('\r'); break;
          case 't': value->string.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return nullptr;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return nullptr;
            }
            // Our writers only escape control chars; keep it one byte.
            value->string.push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default: return nullptr;
        }
        continue;
      }
      value->string.push_back(c);
    }
    return nullptr;  // unterminated
  }

  std::unique_ptr<JsonValue> ParseNumber() {
    SkipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return nullptr;
    auto value = std::make_unique<JsonValue>();
    value->type = JsonValue::Type::kNumber;
    try {
      value->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return nullptr;
    }
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline std::unique_ptr<JsonValue> ParseJson(const std::string& text) {
  MinJsonParser parser(text);
  return parser.Parse();
}

}  // namespace testing
}  // namespace streamsc

#endif  // STREAMSC_TESTING_MIN_JSON_H_
