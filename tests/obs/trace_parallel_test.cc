#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/solver_registry.h"
#include "gtest/gtest.h"
#include "instance/generators.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "stream/engine_context.h"
#include "stream/set_stream.h"
#include "testing/min_json.h"
#include "util/random.h"

// Tracing under concurrency: engine workers emit spans lock-free while a
// run is in flight, and arming a recorder never changes results or
// counters. Runs at widths 1 and 8 so the TSan lane (`ctest -L parallel`
// under -fsanitize=thread) covers both the uncontended and the
// fully-sharded emit paths.

namespace streamsc {
namespace {

using testing::JsonValue;
using testing::ParseJson;

TEST(TraceParallelTest, ConcurrentEmittersRecordEverythingWidth8) {
  TraceRecorder::Options options;
  options.events_per_thread = 4096;
  options.max_threads = 8;
  TraceRecorder recorder(options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder, t] {
      const TraceArg args[] = {{"worker", t}};
      for (std::size_t i = 0; i < kPerThread; ++i) {
        recorder.Emit(TraceCategory::kShard, "work",
                      static_cast<std::int64_t>(t * kPerThread + i), 1,
                      args, 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(recorder.threads_seen(), kThreads);
  EXPECT_EQ(recorder.events_recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.events_dropped(), 0u);

  // The merged view is globally sorted by start time.
  std::int64_t prev = -1;
  std::size_t visited = 0;
  recorder.ForEachEvent([&](const TraceEvent& event) {
    EXPECT_GE(event.start_ns, prev);
    prev = event.start_ns;
    ++visited;
  });
  EXPECT_EQ(visited, kThreads * kPerThread);
}

TEST(TraceParallelTest, SingleEmitterWidth1) {
  TraceRecorder recorder;
  for (std::size_t i = 0; i < 1000; ++i) {
    recorder.Emit(TraceCategory::kPass, "solo",
                  static_cast<std::int64_t>(i), 1);
  }
  EXPECT_EQ(recorder.threads_seen(), 1u);
  EXPECT_EQ(recorder.events_recorded(), 1000u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

struct TracedRun {
  std::vector<SetId> solution;
  std::uint64_t passes = 0;
  std::uint64_t items_scanned = 0;
  std::uint64_t sets_taken = 0;
  std::uint64_t elements_covered = 0;
};

TracedRun RunSolver(const std::string& solver_key,
                    const std::vector<std::string>& options,
                    const SetSystem& system, std::size_t threads,
                    TraceRecorder* recorder) {
  const std::unique_ptr<ParallelPassEngine> pool =
      threads == 1 ? nullptr : MakeEngine(threads);
  VectorSetStream stream(system);
  if (pool != nullptr) RequireSharded(stream, pool.get());

  StatusOr<std::unique_ptr<AnySolver>> solver =
      SolverRegistry::Global().Create(solver_key, options);
  EXPECT_TRUE(solver.ok());
  RunContext context;
  context.engine = pool.get();
  context.trace = recorder;
  StatusOr<SolveReport> report = (*solver)->Run(stream, context);
  EXPECT_TRUE(report.ok());

  TracedRun run;
  run.solution.assign(report->solution.chosen.begin(),
                      report->solution.chosen.end());
  run.passes = report->counters.value(CounterId::Counter("engine.passes"));
  run.items_scanned =
      report->counters.value(CounterId::Counter("engine.items_scanned"));
  run.sets_taken =
      report->counters.value(CounterId::Counter("engine.sets_taken"));
  run.elements_covered =
      report->counters.value(CounterId::Counter("engine.elements_covered"));
  return run;
}

// Tracing must be a pure observer: identical solutions and identical
// deterministic counters with the recorder armed or not, at any width.
TEST(TraceParallelTest, TracedRunsMatchUntracedAcrossWidths) {
  Rng rng(7);
  const SetSystem system = PlantedCoverInstance(2048, 64, 4, rng);
  for (const std::string solver : {"assadi", "threshold_greedy"}) {
    const std::vector<std::string> options =
        solver == "assadi" ? std::vector<std::string>{"alpha=2"}
                           : std::vector<std::string>{};
    const TracedRun baseline =
        RunSolver(solver, options, system, 1, nullptr);
    ASSERT_FALSE(baseline.solution.empty());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      TraceRecorder recorder;
      const TracedRun traced =
          RunSolver(solver, options, system, threads, &recorder);
      EXPECT_EQ(traced.solution, baseline.solution)
          << solver << " diverged at width " << threads
          << " with tracing armed";
      // The deterministic engine counters merge to the same totals for
      // any worker count (sum over shards is partition-independent).
      EXPECT_EQ(traced.passes, baseline.passes) << solver << threads;
      EXPECT_EQ(traced.items_scanned, baseline.items_scanned)
          << solver << threads;
      EXPECT_EQ(traced.sets_taken, baseline.sets_taken)
          << solver << threads;
      EXPECT_EQ(traced.elements_covered, baseline.elements_covered)
          << solver << threads;
      EXPECT_GT(recorder.events_recorded(), 0u);
    }
  }
}

TEST(TraceParallelTest, ParallelRunEmitsPassAndShardSpans) {
  Rng rng(11);
  const SetSystem system = PlantedCoverInstance(2048, 64, 4, rng);
  TraceRecorder recorder;
  RunSolver("assadi", {"alpha=2"}, system, 8, &recorder);

  std::size_t pass_spans = 0;
  std::size_t shard_spans = 0;
  std::size_t solver_spans = 0;
  recorder.ForEachEvent([&](const TraceEvent& event) {
    if (event.category == TraceCategory::kPass) ++pass_spans;
    if (event.category == TraceCategory::kShard) ++shard_spans;
    if (event.category == TraceCategory::kSolver) ++solver_spans;
  });
  EXPECT_GT(pass_spans, 0u);
  EXPECT_GT(shard_spans, 0u);
  EXPECT_EQ(solver_spans, 1u);

  // The chrome export of a real parallel run parses back, and every
  // complete event carries the required keys.
  std::ostringstream out;
  recorder.WriteChromeTrace(out);
  const std::string text = out.str();
  const std::unique_ptr<JsonValue> root = ParseJson(text);
  ASSERT_NE(root, nullptr) << "unparseable chrome trace ("
                           << text.size() << " bytes)";
  const JsonValue* events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t complete_events = 0;
  for (const auto& event : events->array) {
    const JsonValue* ph = event->Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "X") continue;
    ++complete_events;
    EXPECT_NE(event->Get("name"), nullptr);
    EXPECT_NE(event->Get("cat"), nullptr);
    EXPECT_NE(event->Get("ts"), nullptr);
    EXPECT_NE(event->Get("dur"), nullptr);
    EXPECT_NE(event->Get("tid"), nullptr);
  }
  EXPECT_EQ(complete_events, recorder.events_recorded());
}

}  // namespace
}  // namespace streamsc
