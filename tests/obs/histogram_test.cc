#include "obs/histogram.h"

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"

// LatencyHistogram: log-linear bucketing with bounded relative error
// (2^-(kSubBits-1) ~ 6% at kSubBits=5), HdrHistogram-style percentile
// reporting, and deterministic shard merge.

namespace streamsc {
namespace {

TEST(LatencyHistogramTest, SmallValuesLandInExactUnitBuckets) {
  for (std::uint64_t v = 0; v < (std::uint64_t{1} <<
                                 LatencyHistogram::kSubBits); ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketHigh(v), v);
  }
}

TEST(LatencyHistogramTest, BucketHighBoundsValueWithBoundedRelativeError) {
  // The bucket's inclusive upper bound must contain the value, and the
  // bound must not overshoot by more than the sub-bucket resolution.
  const std::uint64_t probes[] = {
      32,      33,     100,    1000,          4096,
      123456,  1u << 20, (1u << 20) + 7,      std::uint64_t{1} << 40,
      (std::uint64_t{1} << 40) + 12345,        std::uint64_t{1} << 62,
      std::numeric_limits<std::uint64_t>::max() / 2,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kBucketCount) << v;
    const std::uint64_t high = LatencyHistogram::BucketHigh(index);
    EXPECT_GE(high, v) << v;
    // Relative error bound: (high - v) <= v / 2^(kSubBits-1).
    EXPECT_LE(high - v, v / LatencyHistogram::kHalfCount + 1) << v;
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v += 37) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, prev) << v;
    prev = index;
  }
}

TEST(LatencyHistogramTest, CountMinMaxSumTrackObservations) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(50);
  h.Record(10);
  h.Record(200);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 200u);
  EXPECT_EQ(h.sum(), 260u);
}

TEST(LatencyHistogramTest, PercentilesOnUniformRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // p50 within the ~6% bucket resolution of the true median.
  const std::uint64_t p50 = h.ValueAtPercentile(50.0);
  EXPECT_GE(p50, 470u);
  EXPECT_LE(p50, 532u);
  const std::uint64_t p99 = h.ValueAtPercentile(99.0);
  EXPECT_GE(p99, 930u);
  EXPECT_LE(p99, 1000u);
  // Extremes clamp to observed bounds.
  EXPECT_EQ(h.ValueAtPercentile(100.0), 1000u);
  EXPECT_GE(h.ValueAtPercentile(0.0), 1u);
  // Out-of-range percentiles clamp instead of misbehaving.
  EXPECT_EQ(h.ValueAtPercentile(150.0), 1000u);
  EXPECT_GE(h.ValueAtPercentile(-5.0), 1u);
}

TEST(LatencyHistogramTest, PercentileOnEmptyHistogramIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.ValueAtPercentile(50.0), 0u);
}

TEST(LatencyHistogramTest, SingleObservationReportsItselfEverywhere) {
  LatencyHistogram h;
  h.Record(777);
  EXPECT_EQ(h.ValueAtPercentile(0.0), 777u);
  EXPECT_EQ(h.ValueAtPercentile(50.0), 777u);
  EXPECT_EQ(h.ValueAtPercentile(100.0), 777u);
}

TEST(LatencyHistogramTest, MergeCombinesShards) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t v = 1; v <= 500; ++v) a.Record(v);
  for (std::uint64_t v = 501; v <= 1000; ++v) b.Record(v);

  LatencyHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), 1000u);
  EXPECT_EQ(merged.min(), 1u);
  EXPECT_EQ(merged.max(), 1000u);
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());

  // Merge in the other order produces the same percentile (merge is
  // deterministic and order-independent).
  LatencyHistogram reversed = b;
  reversed.Merge(a);
  EXPECT_EQ(merged.ValueAtPercentile(50.0),
            reversed.ValueAtPercentile(50.0));
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.Record(42);
  const LatencyHistogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(LatencyHistogramTest, ClearForgetsEverything) {
  LatencyHistogram h;
  h.Record(99);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50.0), 0u);
}

}  // namespace
}  // namespace streamsc
