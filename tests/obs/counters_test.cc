#include "obs/counters.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

// CounterId interning and CounterSet merge semantics: the registry is the
// single place pass/scan/shard/arena counters live, so its identity and
// determinism guarantees carry the whole observability layer. Names here
// use a "test.counters." prefix so they cannot collide with production
// labels in the process-wide table.

namespace streamsc {
namespace {

TEST(CounterIdTest, SameNameInternsToSameIndex) {
  const CounterId a = CounterId::Counter("test.counters.same");
  const CounterId b = CounterId::Counter("test.counters.same");
  EXPECT_EQ(a.index(), b.index());
  EXPECT_EQ(a, b);
}

TEST(CounterIdTest, DistinctNamesGetDistinctIndices) {
  const CounterId a = CounterId::Counter("test.counters.distinct_a");
  const CounterId b = CounterId::Counter("test.counters.distinct_b");
  EXPECT_NE(a, b);
}

TEST(CounterIdTest, NameAndKindRoundTrip) {
  const CounterId counter = CounterId::Counter("test.counters.roundtrip");
  EXPECT_EQ(counter.name(), "test.counters.roundtrip");
  EXPECT_EQ(counter.kind(), CounterKind::kCounter);

  const CounterId gauge = CounterId::Gauge("test.counters.roundtrip_gauge");
  EXPECT_EQ(gauge.kind(), CounterKind::kGauge);
  EXPECT_STREQ(CounterKindName(CounterKind::kCounter), "counter");
  EXPECT_STREQ(CounterKindName(CounterKind::kGauge), "gauge");
}

TEST(CounterIdDeathTest, ReinterningUnderOtherKindChecks) {
  const CounterId id = CounterId::Counter("test.counters.kind_clash");
  (void)id;
  EXPECT_DEATH(CounterId::Gauge("test.counters.kind_clash"), "kind");
}

TEST(CounterSetTest, AddAccumulatesAndValueReads) {
  const CounterId id = CounterId::Counter("test.counters.add");
  CounterSet set;
  EXPECT_EQ(set.value(id), 0u);
  set.Add(id, 3);
  set.Add(id, 4);
  EXPECT_EQ(set.value(id), 7u);
}

TEST(CounterSetTest, RecordMaxKeepsHighWater) {
  const CounterId id = CounterId::Gauge("test.counters.high_water");
  CounterSet set;
  set.RecordMax(id, 10);
  set.RecordMax(id, 4);   // lower: ignored
  set.RecordMax(id, 25);  // higher: replaces
  EXPECT_EQ(set.value(id), 25u);
}

TEST(CounterSetTest, MergeSumsCountersAndMaxesGauges) {
  const CounterId items = CounterId::Counter("test.counters.merge_items");
  const CounterId peak = CounterId::Gauge("test.counters.merge_peak");
  CounterSet a;
  a.Add(items, 100);
  a.RecordMax(peak, 70);
  CounterSet b;
  b.Add(items, 23);
  b.RecordMax(peak, 50);

  a.MergeFrom(b);
  EXPECT_EQ(a.value(items), 123u);  // counters sum
  EXPECT_EQ(a.value(peak), 70u);    // gauges max
}

TEST(CounterSetTest, MergeIsOrderIndependent) {
  const CounterId items = CounterId::Counter("test.counters.order_items");
  const CounterId peak = CounterId::Gauge("test.counters.order_peak");
  // Three worker shards, merged in two different orders.
  CounterSet shards[3];
  for (std::uint64_t i = 0; i < 3; ++i) {
    shards[i].Add(items, 10 * (i + 1));
    shards[i].RecordMax(peak, 7 * (i + 1));
  }
  CounterSet forward;
  for (const CounterSet& s : shards) forward.MergeFrom(s);
  CounterSet backward;
  for (int i = 2; i >= 0; --i) backward.MergeFrom(shards[i]);

  EXPECT_EQ(forward.value(items), backward.value(items));
  EXPECT_EQ(forward.value(peak), backward.value(peak));
  EXPECT_EQ(forward.value(items), 60u);
  EXPECT_EQ(forward.value(peak), 21u);
}

TEST(CounterSetTest, ClearAndEmpty) {
  const CounterId id = CounterId::Counter("test.counters.clear");
  CounterSet set;
  EXPECT_TRUE(set.Empty());
  set.Add(id, 1);
  EXPECT_FALSE(set.Empty());
  set.Clear();
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.value(id), 0u);
}

TEST(CounterSetTest, ForEachNonZeroVisitsInIndexOrderWithKinds) {
  const CounterId first = CounterId::Counter("test.counters.visit_a");
  const CounterId second = CounterId::Gauge("test.counters.visit_b");
  CounterSet set;
  set.RecordMax(second, 9);
  set.Add(first, 5);

  std::vector<std::pair<std::size_t, std::uint64_t>> seen;
  std::vector<CounterKind> kinds;
  set.ForEachNonZero([&](CounterId id, CounterKind kind,
                         std::uint64_t value) {
    seen.emplace_back(id.index(), value);
    kinds.push_back(kind);
  });
  ASSERT_EQ(seen.size(), 2u);
  // Index order is interning order: first was interned before second.
  EXPECT_EQ(seen[0], std::make_pair(first.index(), std::uint64_t{5}));
  EXPECT_EQ(seen[1], std::make_pair(second.index(), std::uint64_t{9}));
  EXPECT_EQ(kinds[0], CounterKind::kCounter);
  EXPECT_EQ(kinds[1], CounterKind::kGauge);
}

TEST(CounterSetTest, CopyIsIndependent) {
  const CounterId id = CounterId::Counter("test.counters.copy");
  CounterSet a;
  a.Add(id, 2);
  CounterSet b = a;
  b.Add(id, 5);
  EXPECT_EQ(a.value(id), 2u);
  EXPECT_EQ(b.value(id), 7u);
}

}  // namespace
}  // namespace streamsc
