#include "obs/stats_sink.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/histogram.h"

// Prometheus-format export: the text surface the solve daemon will serve
// from /metrics. The format is checked line-by-line because exposition
// format is a wire contract (scrapers parse it), not a pretty-print.

namespace streamsc {
namespace {

TEST(StatsSinkTest, CountersExportWithTypeLinesAndSanitizedNames) {
  const CounterId items = CounterId::Counter("test.sink.items-scanned");
  const CounterId peak = CounterId::Gauge("test.sink.peak_bytes");
  CounterSet set;
  set.Add(items, 1234);
  set.RecordMax(peak, 9000);

  std::ostringstream out;
  WritePrometheusStats(out, set);
  const std::string text = out.str();
  // Dots and dashes sanitize to underscores; the default prefix applies.
  EXPECT_NE(text.find("# TYPE streamsc_test_sink_items_scanned counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_test_sink_items_scanned 1234\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE streamsc_test_sink_peak_bytes gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_test_sink_peak_bytes 9000\n"),
            std::string::npos)
      << text;
}

TEST(StatsSinkTest, ZeroValuedCountersAreOmitted) {
  const CounterSet empty;
  std::ostringstream out;
  WritePrometheusStats(out, empty);
  EXPECT_EQ(out.str(), "");
}

TEST(StatsSinkTest, CustomPrefixApplies) {
  const CounterId id = CounterId::Counter("test.sink.prefixed");
  CounterSet set;
  set.Add(id, 1);
  std::ostringstream out;
  WritePrometheusStats(out, set, "daemon");
  EXPECT_NE(out.str().find("daemon_test_sink_prefixed 1\n"),
            std::string::npos)
      << out.str();
  EXPECT_EQ(out.str().find("streamsc_"), std::string::npos);
}

TEST(StatsSinkTest, HistogramExportsAsSummary) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);

  std::ostringstream out;
  WritePrometheusHistogram(out, h, "solve.latency-ns");
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE streamsc_solve_latency_ns summary\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_solve_latency_ns{quantile=\"0.5\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_solve_latency_ns{quantile=\"0.9\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_solve_latency_ns{quantile=\"0.99\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_solve_latency_ns_sum 5050\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("streamsc_solve_latency_ns_count 100\n"),
            std::string::npos)
      << text;
}

TEST(StatsSinkTest, EmptyHistogramStillExportsSummaryShape) {
  const LatencyHistogram h;
  std::ostringstream out;
  WritePrometheusHistogram(out, h, "idle");
  const std::string text = out.str();
  EXPECT_NE(text.find("streamsc_idle_sum 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("streamsc_idle_count 0\n"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace streamsc
