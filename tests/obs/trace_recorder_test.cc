#include "obs/trace.h"

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "testing/alloc_counter.h"
#include "testing/min_json.h"

// TraceRecorder: the per-thread span ring buffers behind `--trace`. The
// contracts under test are the ones the engine leans on — overflow
// overwrites oldest and never reallocates, Emit is allocation-free once
// the recorder is armed, and the chrome-trace export actually parses.

namespace streamsc {
namespace {

using testing::JsonValue;
using testing::ParseJson;

TraceRecorder::Options SmallRing(std::size_t events, std::size_t threads) {
  TraceRecorder::Options options;
  options.events_per_thread = events;
  options.max_threads = threads;
  return options;
}

TEST(TraceRecorderTest, EmitStoresEventPayload) {
  TraceRecorder recorder(SmallRing(8, 1));
  const TraceArg args[] = {{"items", 42}, {"shards", 3}};
  recorder.Emit(TraceCategory::kPass, "gain_scan", 1000, 250, args, 2);

  std::size_t seen = 0;
  recorder.ForEachEvent([&](const TraceEvent& event) {
    ++seen;
    EXPECT_STREQ(event.name, "gain_scan");
    EXPECT_EQ(event.category, TraceCategory::kPass);
    EXPECT_EQ(event.start_ns, 1000);
    EXPECT_EQ(event.dur_ns, 250);
    ASSERT_EQ(event.num_args, 2);
    EXPECT_STREQ(event.arg_names[0], "items");
    EXPECT_EQ(event.arg_values[0], 42u);
    EXPECT_STREQ(event.arg_names[1], "shards");
    EXPECT_EQ(event.arg_values[1], 3u);
  });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(recorder.events_recorded(), 1u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  EXPECT_EQ(recorder.threads_seen(), 1u);
}

TEST(TraceRecorderTest, MergeOrdersByStartTime) {
  TraceRecorder recorder(SmallRing(16, 1));
  // Emitted out of start order; the merge must sort.
  recorder.Emit(TraceCategory::kPhase, "late", 300, 10);
  recorder.Emit(TraceCategory::kPhase, "early", 100, 10);
  recorder.Emit(TraceCategory::kPhase, "middle", 200, 10);

  std::vector<std::string> names;
  recorder.ForEachEvent(
      [&](const TraceEvent& event) { names.push_back(event.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"early", "middle", "late"}));
}

TEST(TraceRecorderTest, LongNamesTruncateLongArgListsClamp) {
  TraceRecorder recorder(SmallRing(8, 1));
  const std::string long_name(64, 'x');
  const TraceArg args[] = {{"a", 1}, {"b", 2}, {"c", 3},
                           {"d", 4}, {"e", 5}, {"f", 6}};
  recorder.Emit(TraceCategory::kPhase, long_name.c_str(), 0, 1, args, 6);

  recorder.ForEachEvent([&](const TraceEvent& event) {
    EXPECT_EQ(std::strlen(event.name), TraceEvent::kNameCapacity);
    EXPECT_EQ(event.num_args, TraceEvent::kMaxArgs);
  });
}

TEST(TraceRecorderTest, OverflowDropsOldestAndNeverGrows) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kEmitted = 20;
  TraceRecorder recorder(SmallRing(kCapacity, 1));
  for (std::size_t i = 0; i < kEmitted; ++i) {
    recorder.Emit(TraceCategory::kPhase, "tick",
                  static_cast<std::int64_t>(i), 1);
  }
  // The ring holds exactly its capacity; the excess is counted dropped.
  EXPECT_EQ(recorder.events_recorded(), kCapacity);
  EXPECT_EQ(recorder.events_dropped(), kEmitted - kCapacity);
  // Survivors are the *newest* events (oldest-overwritten policy).
  std::vector<std::int64_t> starts;
  recorder.ForEachEvent(
      [&](const TraceEvent& event) { starts.push_back(event.start_ns); });
  ASSERT_EQ(starts.size(), kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(starts[i],
              static_cast<std::int64_t>(kEmitted - kCapacity + i));
  }
}

TEST(TraceRecorderTest, EmitIsAllocationFreeEvenThroughOverflow) {
  TraceRecorder recorder(SmallRing(64, 2));
  // Warm the calling thread's slot cache outside the measured window
  // (first contact may be a slow-path scan, but still must not allocate;
  // arming the counter after construction isolates Emit itself).
  recorder.Emit(TraceCategory::kPhase, "warm", 0, 0);

  streamsc::testing::ArmAllocCounter();
  const TraceArg args[] = {{"i", 7}};
  for (std::size_t i = 0; i < 100000; ++i) {
    recorder.Emit(TraceCategory::kPass, "steady",
                  static_cast<std::int64_t>(i), 1, args, 1);
  }
  const auto stats = streamsc::testing::DisarmAllocCounter();
  EXPECT_EQ(stats.allocations, 0u)
      << "Emit must never allocate: the ring is fully preallocated at "
         "arm time and overflow overwrites in place";
  EXPECT_GT(recorder.events_dropped(), 0u);  // overflow really happened
}

TEST(TraceRecorderTest, ThreadsBeyondMaxThreadsDropCounted) {
  TraceRecorder recorder(SmallRing(8, 1));
  recorder.Emit(TraceCategory::kPhase, "claims_only_slot", 0, 1);
  std::thread other([&recorder] {
    recorder.Emit(TraceCategory::kPhase, "no_slot_left", 10, 1);
    recorder.Emit(TraceCategory::kPhase, "still_no_slot", 20, 1);
  });
  other.join();
  EXPECT_EQ(recorder.threads_seen(), 1u);
  EXPECT_EQ(recorder.events_recorded(), 1u);
  EXPECT_EQ(recorder.events_dropped(), 2u);
}

TEST(TraceRecorderTest, ResetForgetsEventsAndDrops) {
  TraceRecorder recorder(SmallRing(4, 1));
  for (int i = 0; i < 10; ++i) {
    recorder.Emit(TraceCategory::kPhase, "noise", i, 1);
  }
  recorder.Reset();
  EXPECT_EQ(recorder.events_recorded(), 0u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  // The ring is reusable after Reset.
  recorder.Emit(TraceCategory::kPhase, "fresh", 0, 1);
  EXPECT_EQ(recorder.events_recorded(), 1u);
}

TEST(TraceSpanTest, NullRecorderIsANoop) {
  TraceSpan span(nullptr, TraceCategory::kPhase, "unbound");
  span.AddArg("ignored", 1);
  // Destruction must not crash; nothing to observe.
}

TEST(TraceSpanTest, SpanEmitsOnDestructionWithArgs) {
  TraceRecorder recorder(SmallRing(8, 1));
  {
    TraceSpan span(&recorder, TraceCategory::kSolver, "assadi");
    span.AddArg("alpha", 2);
  }
  std::size_t seen = 0;
  recorder.ForEachEvent([&](const TraceEvent& event) {
    ++seen;
    EXPECT_STREQ(event.name, "assadi");
    EXPECT_EQ(event.category, TraceCategory::kSolver);
    EXPECT_GE(event.dur_ns, 0);
    ASSERT_EQ(event.num_args, 1);
    EXPECT_STREQ(event.arg_names[0], "alpha");
    EXPECT_EQ(event.arg_values[0], 2u);
  });
  EXPECT_EQ(seen, 1u);
}

TEST(TraceRecorderTest, ChromeTraceExportParsesBack) {
  TraceRecorder recorder(SmallRing(16, 2));
  const TraceArg args[] = {{"items", 512}};
  recorder.Emit(TraceCategory::kPass, "gain_scan", 2000, 1500, args, 1);
  recorder.Emit(TraceCategory::kPhase, "weird \"name\"\n", 1000, 3000);

  std::ostringstream out;
  recorder.WriteChromeTrace(out);
  const std::unique_ptr<JsonValue> root = ParseJson(out.str());
  ASSERT_NE(root, nullptr) << "chrome trace is not valid JSON:\n"
                           << out.str();
  ASSERT_EQ(root->type, JsonValue::Type::kObject);

  const JsonValue* events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  // Metadata (process name + one thread name for the claimed slot) plus
  // the two spans.
  ASSERT_EQ(events->array.size(), 4u);

  const JsonValue& process_meta = *events->array[0];
  EXPECT_EQ(process_meta.Get("ph")->string, "M");
  EXPECT_EQ(process_meta.Get("name")->string, "process_name");

  // Spans are ordered by start time and rebased to ts=0.
  const JsonValue& first = *events->array[2];
  EXPECT_EQ(first.Get("ph")->string, "X");
  EXPECT_EQ(first.Get("name")->string, "weird \"name\"\n");
  EXPECT_EQ(first.Get("cat")->string, "phase");
  EXPECT_DOUBLE_EQ(first.Get("ts")->number, 0.0);
  EXPECT_DOUBLE_EQ(first.Get("dur")->number, 3.0);  // 3000 ns = 3 us

  const JsonValue& second = *events->array[3];
  EXPECT_EQ(second.Get("name")->string, "gain_scan");
  EXPECT_EQ(second.Get("cat")->string, "pass");
  EXPECT_DOUBLE_EQ(second.Get("ts")->number, 1.0);
  ASSERT_NE(second.Get("args"), nullptr);
  EXPECT_DOUBLE_EQ(second.Get("args")->Get("items")->number, 512.0);
}

TEST(TraceRecorderTest, NowNsIsMonotone) {
  const std::int64_t a = TraceRecorder::NowNs();
  const std::int64_t b = TraceRecorder::NowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace streamsc
