// Warm-start re-solve over overlay sources (SolveSession::OpenOverlay).
// Pinned here: the memo contract — an unchanged delta re-solves warm and
// reproduces the previous solution byte for byte; benign mutations keep
// the surviving prefix and re-cover only the residue; gutting the prefix
// (or passing warm=0, or changing solver options) falls back to a cold
// solve — plus the dynamic.* counter stamps and the non-overlay
// RefreshDelta typing.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "api/solve_session.h"
#include "dynamic/delta_log.h"
#include "dynamic/overlay_set_stream.h"
#include "instance/generators.h"
#include "obs/counters.h"
#include "storage/binary_instance_writer.h"
#include "testing/scoped_temp_dir.h"
#include "util/bitset.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

constexpr const char* kSolver = "assadi";
const std::vector<std::string> kArgs = {"alpha=2"};

// A planted base written as sscb1 plus an initially-empty delta log.
struct Fixture {
  explicit Fixture(std::uint64_t seed) {
    Rng rng(seed);
    base = PlantedCoverInstance(512, 32, 2, rng);
    base_path = dir.FilePath("base.sscb1");
    EXPECT_TRUE(BinaryInstanceWriter::WriteSystem(base, base_path).ok());
    delta_path = dir.FilePath("delta.sscd1");
    DeltaLogWriter writer(delta_path, base.universe_size(),
                          base.num_sets());
    EXPECT_TRUE(writer.Finish().ok());
  }

  ScopedTempDir dir;
  SetSystem base = SetSystem(0);
  std::string base_path;
  std::string delta_path;
};

DynamicBitset RandomSet(std::size_t n, std::size_t k, Rng& rng) {
  DynamicBitset set(n);
  while (set.CountSet() < k) {
    set.Set(static_cast<std::size_t>(rng.UniformInt(n)));
  }
  return set;
}

// The cover achieved by `report`'s solution on the session's live
// overlay instance — warm or cold, a feasible report must cover it all.
bool CoversLiveInstance(const SolveSession& session,
                        const SolveReport& report) {
  const OverlaySetStream* overlay = session.overlay();
  EXPECT_NE(overlay, nullptr);
  DynamicBitset covered(overlay->universe_size());
  for (const SetId id : report.solution.chosen) {
    EXPECT_LT(id, overlay->num_sets());
    overlay->set(id).OrInto(covered);
  }
  return covered.CountSet() == overlay->universe_size();
}

std::uint64_t DynCounter(const SolveReport& report, const char* name) {
  return report.counters.value(CounterId::Counter(name));
}

TEST(WarmStartTest, UnchangedDeltaReSolvesWarmByteForByte) {
  Fixture fx(7);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->source(), SolveSession::Source::kOverlay);
  EXPECT_STREQ(session->source_name(), "overlay");

  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->feasible);
  EXPECT_FALSE(cold->warm_start);
  EXPECT_EQ(DynCounter(*cold, "dynamic.cold_solves"), 1u);
  EXPECT_EQ(DynCounter(*cold, "dynamic.warm_solves"), 0u);

  StatusOr<SolveReport> warm = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm_start);
  EXPECT_TRUE(warm->feasible);
  // Byte-identical reproduction of the previous solution: the whole memo
  // survives, nothing is residual, and one subtract pass proves it.
  EXPECT_EQ(warm->solution.chosen, cold->solution.chosen);
  EXPECT_EQ(warm->surviving_prefix, cold->solution.size());
  EXPECT_EQ(warm->residue_elements, 0u);
  EXPECT_EQ(warm->passes, 1u);
  EXPECT_EQ(warm->solver, cold->solver);
  EXPECT_EQ(warm->algorithm, cold->algorithm);
  EXPECT_EQ(DynCounter(*warm, "dynamic.warm_solves"), 1u);

  // A fresh session over the same files solves cold to the same bytes.
  StatusOr<SolveSession> fresh =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(fresh.ok());
  StatusOr<SolveReport> fresh_cold = fresh->Solve(kSolver, kArgs);
  ASSERT_TRUE(fresh_cold.ok());
  EXPECT_FALSE(fresh_cold->warm_start);
  EXPECT_EQ(fresh_cold->solution.chosen, warm->solution.chosen);
}

TEST(WarmStartTest, BenignMutationKeepsThePrefixAndCoversTheResidue) {
  Fixture fx(11);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->feasible);
  ASSERT_GE(cold->solution.size(), 1u);

  // Mutate around the solution: add two sets and remove a slot the
  // previous solution did not choose — every memoized pair survives.
  std::vector<bool> chosen_slot(session->overlay()->num_slots(), false);
  for (const SetId id : cold->solution.chosen) {
    chosen_slot[session->overlay()->live_to_slot(id)] = true;
  }
  std::uint64_t victim = chosen_slot.size();
  for (std::uint64_t slot = 0; slot < chosen_slot.size(); ++slot) {
    if (!chosen_slot[slot]) {
      victim = slot;
      break;
    }
  }
  ASSERT_LT(victim, chosen_slot.size()) << "solution chose every slot";
  {
    Rng rng(13);
    DeltaLogWriter writer(fx.delta_path);
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    ASSERT_TRUE(
        writer.AddSet(RandomSet(fx.base.universe_size(), 16, rng)).ok());
    ASSERT_TRUE(
        writer.AddSet(RandomSet(fx.base.universe_size(), 16, rng)).ok());
    ASSERT_TRUE(writer.RemoveSet(victim).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(session->RefreshDelta().ok());

  StatusOr<SolveReport> warm = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm_start);
  EXPECT_TRUE(warm->feasible);
  EXPECT_EQ(warm->surviving_prefix, cold->solution.size());
  EXPECT_TRUE(CoversLiveInstance(*session, *warm));
  EXPECT_EQ(DynCounter(*warm, "dynamic.warm_solves"), 1u);
}

TEST(WarmStartTest, GuttedPrefixFallsBackToAColdSolve) {
  Fixture fx(19);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->feasible);
  ASSERT_GE(cold->solution.size(), 1u);

  // Replace the *first* chosen set's slot: the surviving prefix is empty
  // (survival is a prefix property), so the warm threshold fails and the
  // session re-solves cold over the refreshed instance.
  const std::uint64_t first_slot =
      session->overlay()->live_to_slot(cold->solution.chosen[0]);
  {
    // The replacement is the full universe so the refreshed instance
    // stays trivially coverable — only the memo's validity is under test.
    DeltaLogWriter writer(fx.delta_path);
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    ASSERT_TRUE(
        writer
            .ReplaceSet(first_slot,
                        DynamicBitset::Full(fx.base.universe_size()))
            .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(session->RefreshDelta().ok());

  StatusOr<SolveReport> after = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->warm_start);
  EXPECT_TRUE(after->feasible);
  EXPECT_TRUE(CoversLiveInstance(*session, *after));
  EXPECT_EQ(DynCounter(*after, "dynamic.cold_solves"), 1u);
  EXPECT_EQ(DynCounter(*after, "dynamic.warm_solves"), 0u);
}

TEST(WarmStartTest, WarmZeroForcesAColdSolve) {
  Fixture fx(29);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  std::vector<std::string> args = kArgs;
  args.push_back("warm=0");
  StatusOr<SolveReport> forced = session->Solve(kSolver, args);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_FALSE(forced->warm_start);
  // Cold and warm answer over the same unchanged instance: same bytes.
  EXPECT_EQ(forced->solution.chosen, cold->solution.chosen);
}

TEST(WarmStartTest, ChangedSolverOptionsInvalidateTheMemo) {
  Fixture fx(31);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> first = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  StatusOr<SolveReport> other = session->Solve(kSolver, {"alpha=3"});
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_FALSE(other->warm_start);

  // …and the memo now answers for the *new* configuration.
  StatusOr<SolveReport> warm = session->Solve(kSolver, {"alpha=3"});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm_start);
  EXPECT_EQ(warm->solution.chosen, other->solution.chosen);
}

TEST(WarmStartTest, WarmSolvesComposeAcrossRepeatedMutations) {
  Fixture fx(37);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(session->Solve(kSolver, kArgs).ok());

  Rng rng(41);
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    {
      DeltaLogWriter writer(fx.delta_path);
      ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
      ASSERT_TRUE(
          writer.AddSet(RandomSet(fx.base.universe_size(), 24, rng)).ok());
      ASSERT_TRUE(writer.Finish().ok());
    }
    ASSERT_TRUE(session->RefreshDelta().ok());
    StatusOr<SolveReport> report = session->Solve(kSolver, kArgs);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Pure adds never invalidate a memoized pair: every re-solve is warm.
    EXPECT_TRUE(report->warm_start);
    EXPECT_TRUE(report->feasible);
    EXPECT_TRUE(CoversLiveInstance(*session, *report));
  }
}

TEST(WarmStartTest, RecreatedShrunkDeltaDropsTheMemoAndSolvesCold) {
  Fixture fx(47);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Grow the instance with dominant added sets so the memo is likely to
  // reference appended slots — the ids a shrunk log no longer has.
  {
    Rng rng(53);
    DeltaLogWriter writer(fx.delta_path);
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          writer.AddSet(RandomSet(fx.base.universe_size(), 300, rng)).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(session->RefreshDelta().ok());
  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->feasible);

  // Re-create the log from scratch (same base dims, zero records): every
  // appended slot is gone and slot versions restart, so memoized
  // (slot, version) pairs no longer identify content. The refresh itself
  // succeeds — and the next solve must run cold over the shrunk
  // instance, never index the overlay with a stale out-of-range slot.
  {
    DeltaLogWriter writer(fx.delta_path, fx.base.universe_size(),
                          fx.base.num_sets());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(session->RefreshDelta().ok());
  EXPECT_EQ(session->overlay()->num_sets(), fx.base.num_sets());
  StatusOr<SolveReport> after = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->warm_start);
  EXPECT_TRUE(after->feasible);
  EXPECT_TRUE(CoversLiveInstance(*session, *after));
  EXPECT_EQ(DynCounter(*after, "dynamic.cold_solves"), 1u);
}

TEST(WarmStartTest, FailedRefreshDropsTheMemoButKeepsTheInstance) {
  Fixture fx(59);
  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(fx.base_path, fx.delta_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> cold = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->feasible);

  // A torn write observed mid-poll: the refresh reports it, the overlay
  // retains the previous composition, and the suspect memo is dropped —
  // the next solve is cold but answers over the retained instance.
  {
    std::ofstream out(fx.delta_path, std::ios::binary | std::ios::app);
    out.write("torn", 4);
  }
  EXPECT_FALSE(session->RefreshDelta().ok());
  StatusOr<SolveReport> after = session->Solve(kSolver, kArgs);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->warm_start);
  EXPECT_TRUE(after->feasible);
  EXPECT_EQ(after->solution.chosen, cold->solution.chosen);
  EXPECT_TRUE(CoversLiveInstance(*session, *after));
}

TEST(WarmStartTest, RefreshDeltaOnNonOverlaySourcesIsTyped) {
  Fixture fx(43);
  StatusOr<SolveSession> session = SolveSession::Open(fx.base_path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->RefreshDelta().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->overlay(), nullptr);
}

}  // namespace
}  // namespace streamsc
