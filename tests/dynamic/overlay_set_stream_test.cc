// OverlaySetStream: one SetStream over (base + sscd1 delta). Pinned
// here: the composition contract (base-order-then-append-order, dense
// renumbering, tombstone suppression) against a hand-applied model, all
// three base kinds, RefreshDelta's retain-on-failure semantics,
// Materialize equivalence — and the acceptance-gate conformance matrix:
// solving the overlay is byte-identical to solving its materialized
// sscb1 across {none, 1, 8} threads x {heap, arena} x {untraced, traced}
// (the latter two axes via RegistrySolverFn's triple run).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dynamic/delta_log.h"
#include "dynamic/overlay_set_stream.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "instance/set_system.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/parallel_pass_engine.h"
#include "testing/scoped_temp_dir.h"
#include "testing/solver_matrix.h"
#include "util/bitset.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

// The fixture base: 10 sets over [64], written as both sscb1 and ssc1.
SetSystem FixtureBase() {
  Rng rng(17);
  return PlantedCoverInstance(64, 10, 4, rng);
}

DynamicBitset RandomSet(std::size_t n, std::size_t k, Rng& rng) {
  DynamicBitset set(n);
  while (set.CountSet() < k) {
    set.Set(static_cast<std::size_t>(rng.UniformInt(n)));
  }
  return set;
}

// Applies the fixture mutation script to a delta log at `path` and, in
// parallel, to a slot model: slots[i] == nullopt means tombstoned. The
// expected live instance is the engaged slots in slot order.
std::vector<std::optional<DynamicBitset>> WriteFixtureDelta(
    const SetSystem& base, const std::string& path) {
  std::vector<std::optional<DynamicBitset>> slots;
  for (SetId id = 0; id < base.num_sets(); ++id) {
    slots.emplace_back(base.set(id).ToDense());
  }
  Rng rng(99);
  DeltaLogWriter writer(path, base.universe_size(), base.num_sets());
  const DynamicBitset added0 = RandomSet(base.universe_size(), 6, rng);
  EXPECT_TRUE(writer.AddSet(SetView(added0)).ok());
  slots.emplace_back(added0);
  EXPECT_TRUE(writer.RemoveSet(3).ok());
  slots[3].reset();
  const DynamicBitset replacement = RandomSet(base.universe_size(), 9, rng);
  EXPECT_TRUE(writer.ReplaceSet(7, SetView(replacement)).ok());
  slots[7] = replacement;
  const DynamicBitset added1 = RandomSet(base.universe_size(), 2, rng);
  EXPECT_TRUE(writer.AddSet(SetView(added1)).ok());
  slots.emplace_back(added1);
  EXPECT_TRUE(writer.RemoveSet(10).ok());  // tombstone the first add
  slots[10].reset();
  EXPECT_TRUE(writer.Finish().ok());
  return slots;
}

// Every live slot, in slot order — what the overlay must enumerate.
std::vector<DynamicBitset> LiveSets(
    const std::vector<std::optional<DynamicBitset>>& slots) {
  std::vector<DynamicBitset> live;
  for (const auto& slot : slots) {
    if (slot.has_value()) live.push_back(*slot);
  }
  return live;
}

void ExpectStreamsModel(OverlaySetStream& overlay,
                        const std::vector<DynamicBitset>& expected) {
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();
  ASSERT_EQ(overlay.num_sets(), expected.size());
  // Random access...
  for (SetId id = 0; id < expected.size(); ++id) {
    EXPECT_TRUE(overlay.set(id) == SetView(expected[id])) << "set " << id;
  }
  // ...and stream order, twice (BeginPass rewinds).
  for (int pass = 0; pass < 2; ++pass) {
    overlay.BeginPass();
    StreamItem item;
    SetId next = 0;
    while (overlay.Next(&item)) {
      ASSERT_LT(next, expected.size());
      EXPECT_EQ(item.id, next);
      EXPECT_TRUE(item.set == SetView(expected[next])) << "set " << next;
      ++next;
    }
    EXPECT_EQ(next, expected.size());
  }
  EXPECT_EQ(overlay.passes(), 2u);
  EXPECT_TRUE(overlay.ItemsRemainValid());
}

TEST(OverlaySetStreamTest, ComposesOverEveryBaseKind) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  const std::string binary_path = dir.FilePath("base.sscb1");
  const std::string text_path = dir.FilePath("base.ssc");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(base, binary_path).ok());
  ASSERT_TRUE(SaveSetSystem(base, text_path).ok());
  const std::string delta_path = dir.FilePath("delta.sscd1");
  const auto slots = WriteFixtureDelta(base, delta_path);
  const std::vector<DynamicBitset> expected = LiveSets(slots);
  ASSERT_EQ(expected.size(), base.num_sets());  // +2 adds, -2 removes

  {
    SCOPED_TRACE("sscb1 base");
    OverlaySetStream overlay(binary_path, delta_path);
    ExpectStreamsModel(overlay, expected);
    EXPECT_EQ(overlay.base_num_sets(), base.num_sets());
    EXPECT_EQ(overlay.num_slots(), base.num_sets() + 2);
    EXPECT_EQ(overlay.delta_records(), 5u);
  }
  {
    SCOPED_TRACE("ssc1 text base");
    OverlaySetStream overlay(text_path, delta_path);
    ExpectStreamsModel(overlay, expected);
  }
  {
    SCOPED_TRACE("borrowed in-memory base");
    OverlaySetStream overlay(base, delta_path);
    ExpectStreamsModel(overlay, expected);
  }
}

TEST(OverlaySetStreamTest, SlotMappingIsConsistentBothWays) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  const std::string delta_path = dir.FilePath("delta.sscd1");
  const auto slots = WriteFixtureDelta(base, delta_path);
  OverlaySetStream overlay(base, delta_path);
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();

  SetId live = 0;
  for (std::uint64_t slot = 0; slot < overlay.num_slots(); ++slot) {
    ASSERT_EQ(overlay.slot_live(slot), slots[slot].has_value());
    if (slots[slot].has_value()) {
      EXPECT_EQ(overlay.slot_to_live(slot), live);
      EXPECT_EQ(overlay.live_to_slot(live), slot);
      ++live;
    } else {
      EXPECT_EQ(overlay.slot_to_live(slot), kInvalidSetId);
    }
  }
  EXPECT_EQ(live, overlay.num_sets());
}

TEST(OverlaySetStreamTest, MaterializeWritesTheLiveInstance) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  const std::string delta_path = dir.FilePath("delta.sscd1");
  const auto slots = WriteFixtureDelta(base, delta_path);
  const std::vector<DynamicBitset> expected = LiveSets(slots);
  OverlaySetStream overlay(base, delta_path);
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();

  const std::string out_path = dir.FilePath("compacted.sscb1");
  ASSERT_TRUE(overlay.Materialize(out_path).ok());
  MmapSetStream compacted(out_path);
  ASSERT_TRUE(compacted.status().ok()) << compacted.status().ToString();
  ASSERT_EQ(compacted.num_sets(), expected.size());
  EXPECT_EQ(compacted.universe_size(), base.universe_size());
  for (SetId id = 0; id < expected.size(); ++id) {
    EXPECT_TRUE(compacted.set(id) == SetView(expected[id])) << "set " << id;
  }
}

TEST(OverlaySetStreamTest, RefreshDeltaPicksUpAppendsAndRetainsOnFailure) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  const std::string delta_path = dir.FilePath("delta.sscd1");
  {
    DeltaLogWriter writer(delta_path, base.universe_size(), base.num_sets());
    ASSERT_TRUE(writer.Finish().ok());
  }
  OverlaySetStream overlay(base, delta_path);
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();
  EXPECT_EQ(overlay.num_sets(), base.num_sets());

  // Append a remove, refresh: one fewer live set.
  {
    DeltaLogWriter writer(delta_path);
    ASSERT_TRUE(writer.RemoveSet(0).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(overlay.RefreshDelta().ok());
  EXPECT_EQ(overlay.num_sets(), base.num_sets() - 1);
  EXPECT_FALSE(overlay.slot_live(0));
  // The renumbered id 0 is now base slot 1.
  EXPECT_TRUE(overlay.set(0) == base.set(1));

  // A torn log observed mid-poll: refresh fails, previous state retained.
  {
    std::ofstream out(delta_path, std::ios::binary | std::ios::app);
    out.write("torn", 4);
  }
  EXPECT_FALSE(overlay.RefreshDelta().ok());
  EXPECT_TRUE(overlay.status().ok());
  EXPECT_EQ(overlay.num_sets(), base.num_sets() - 1);
  EXPECT_TRUE(overlay.set(0) == base.set(1));
}

TEST(OverlaySetStreamTest, RefreshDeltaRetainsOnMismatchAndRecovers) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  const std::string delta_path = dir.FilePath("delta.sscd1");
  {
    DeltaLogWriter writer(delta_path, base.universe_size(), base.num_sets());
    ASSERT_TRUE(writer.RemoveSet(0).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  OverlaySetStream overlay(base, delta_path);
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();
  EXPECT_EQ(overlay.num_sets(), base.num_sets() - 1);

  // The log is re-created at the same path for the *wrong* base — a
  // well-formed sscd1 file that no longer matches. The refresh reports
  // the mismatch but retains the previous composition; the stream is not
  // poisoned.
  {
    DeltaLogWriter writer(delta_path, base.universe_size(),
                          base.num_sets() + 5);
    ASSERT_TRUE(writer.Finish().ok());
  }
  EXPECT_EQ(overlay.RefreshDelta().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(overlay.status().ok());
  EXPECT_EQ(overlay.num_sets(), base.num_sets() - 1);
  EXPECT_FALSE(overlay.slot_live(0));
  EXPECT_TRUE(overlay.set(0) == base.set(1));

  // And the failure is not sticky: once the file matches again, the next
  // poll refreshes — no base change or reopen needed.
  {
    DeltaLogWriter writer(delta_path, base.universe_size(), base.num_sets());
    ASSERT_TRUE(writer.Finish().ok());
  }
  ASSERT_TRUE(overlay.RefreshDelta().ok());
  EXPECT_EQ(overlay.num_sets(), base.num_sets());
  EXPECT_TRUE(overlay.set(0) == base.set(0));
}

TEST(OverlaySetStreamTest, RejectsBaseDeltaMismatch) {
  ScopedTempDir dir;
  const SetSystem base = FixtureBase();
  // Wrong universe size.
  {
    const std::string delta_path = dir.FilePath("wrong_n.sscd1");
    DeltaLogWriter writer(delta_path, base.universe_size() + 1,
                          base.num_sets());
    ASSERT_TRUE(writer.Finish().ok());
    OverlaySetStream overlay(base, delta_path);
    EXPECT_EQ(overlay.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(overlay.num_sets(), 0u);
  }
  // Wrong base set count.
  {
    const std::string delta_path = dir.FilePath("wrong_m.sscd1");
    DeltaLogWriter writer(delta_path, base.universe_size(),
                          base.num_sets() + 1);
    ASSERT_TRUE(writer.Finish().ok());
    OverlaySetStream overlay(base, delta_path);
    EXPECT_EQ(overlay.status().code(), StatusCode::kInvalidArgument);
  }
  // Missing pieces.
  {
    OverlaySetStream overlay(dir.FilePath("missing.sscb1"),
                             dir.FilePath("missing.sscd1"));
    EXPECT_FALSE(overlay.status().ok());
  }
}

// The acceptance gate: solving the overlay and solving its materialized
// sscb1 produce byte-identical solutions across {none, 1, 8} threads.
// RegistrySolverFn additionally runs every cell heap-backed,
// arena-backed, and traced, asserting the three agree — covering the
// arena on/off and trace on/off axes of the matrix.
TEST(OverlaySetStreamTest, OverlaySolvesByteIdenticalToMaterialized) {
  ScopedTempDir dir;
  Rng rng(5);
  const SetSystem base = PlantedCoverInstance(512, 32, 2, rng);
  const std::string binary_path = dir.FilePath("base.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(base, binary_path).ok());
  const std::string delta_path = dir.FilePath("delta.sscd1");
  {
    Rng delta_rng(6);
    DeltaLogWriter writer(delta_path, base.universe_size(), base.num_sets());
    for (int i = 0; i < 4; ++i) {
      const DynamicBitset set = RandomSet(base.universe_size(), 40, delta_rng);
      ASSERT_TRUE(writer.AddSet(SetView(set)).ok());
    }
    ASSERT_TRUE(writer.RemoveSet(3).ok());
    ASSERT_TRUE(
        writer.ReplaceSet(8, RandomSet(base.universe_size(), 64, delta_rng))
            .ok());
    ASSERT_TRUE(writer.Finish().ok());
  }

  OverlaySetStream overlay(binary_path, delta_path);
  ASSERT_TRUE(overlay.status().ok()) << overlay.status().ToString();
  const std::string compacted_path = dir.FilePath("compacted.sscb1");
  ASSERT_TRUE(overlay.Materialize(compacted_path).ok());

  const testing::SolverFn solve =
      testing::RegistrySolverFn("assadi", {"alpha=2"});
  MmapSetStream baseline_stream(compacted_path);
  ASSERT_TRUE(baseline_stream.status().ok());
  const testing::SolverOutcome baseline = solve(baseline_stream, nullptr);
  EXPECT_TRUE(baseline.feasible);
  EXPECT_FALSE(baseline.chosen.empty());

  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" +
                 (threads == 0 ? std::string("none")
                               : std::to_string(threads)));
    std::optional<ParallelPassEngine> engine;
    if (threads > 0) engine.emplace(threads);
    OverlaySetStream stream(binary_path, delta_path);
    ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
    const testing::SolverOutcome outcome =
        solve(stream, engine ? &*engine : nullptr);
    EXPECT_EQ(outcome.chosen, baseline.chosen);
    EXPECT_EQ(outcome.feasible, baseline.feasible);
    EXPECT_EQ(outcome.passes, baseline.passes);
    EXPECT_EQ(outcome.items_seen, baseline.items_seen);
    EXPECT_EQ(outcome.sets_taken, baseline.sets_taken);
    EXPECT_EQ(outcome.elements_covered, baseline.elements_covered);
    EXPECT_EQ(outcome.extra, baseline.extra);
  }
}

}  // namespace
}  // namespace streamsc
