// sscd1 delta-log reader/writer. Pinned here: the writer/reader
// round-trip (slot table, versions, payload views), append-mode reopen,
// write-time liveness typing, and — mirroring the sscb1 suite — the
// corruption matrix: every class of hostile or torn bytes is a typed
// InvalidArgument at open, never an over-read, hang, or abort.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dynamic/delta_format.h"
#include "dynamic/delta_log.h"
#include "instance/set_system.h"
#include "storage/binary_instance_writer.h"
#include "testing/scoped_temp_dir.h"
#include "util/bitset.h"

namespace streamsc {
namespace {

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// The fixed fixture the corruption matrix mutates: n=100, base m0=10,
// three records — a sparse add {1,2,3}, a remove of slot 5, and a dense
// replace of slot 0 (60 elements).
//
//   [header 48B][add 24+16=40B @48][remove 24B @88][replace 24+16=40B @112]
//
// (Dense payload over n=100 is 2 words = 16 bytes; sparse {1,2,3} is
// 12 bytes padded to 16.)
constexpr std::size_t kRec0 = sizeof(sscd1::FileHeader);
constexpr std::size_t kRec1 = kRec0 + 40;
constexpr std::size_t kRec2 = kRec1 + 24;

std::string FixtureBytes(const std::string& path) {
  DeltaLogWriter writer(path, 100, 10);
  DynamicBitset sparse(100);
  sparse.Set(1);
  sparse.Set(2);
  sparse.Set(3);
  EXPECT_TRUE(writer.AddSet(SetView(sparse)).ok());
  EXPECT_TRUE(writer.RemoveSet(5).ok());
  DynamicBitset dense(100);
  for (std::size_t e = 0; e < 60; ++e) dense.Set(e);
  EXPECT_TRUE(writer.ReplaceSet(0, SetView(dense)).ok());
  EXPECT_TRUE(writer.Finish().ok());
  const std::string bytes = ReadFile(path);
  EXPECT_EQ(bytes.size(), kRec2 + 40);
  return bytes;
}

void ExpectRejected(const std::string& path, const std::string& bytes,
                    const char* what) {
  WriteFile(path, bytes);
  DeltaLog log(path);
  EXPECT_FALSE(log.status().ok()) << what << ": should have been rejected";
  EXPECT_EQ(log.status().code(), StatusCode::kInvalidArgument) << what;
  EXPECT_EQ(log.num_slots(), 0u) << what << ": rejected log exposes slots";
}

// Overwrites sizeof(T) bytes at `offset` with `value`.
template <typename T>
std::string Patched(std::string bytes, std::size_t offset, T value) {
  std::memcpy(&bytes[offset], &value, sizeof(value));
  return bytes;
}

TEST(DeltaLogTest, RoundTripsSlotsVersionsAndViews) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("log.sscd1");
  FixtureBytes(path);

  DeltaLog log(path);
  ASSERT_TRUE(log.status().ok()) << log.status().ToString();
  EXPECT_EQ(log.universe_size(), 100u);
  EXPECT_EQ(log.base_num_sets(), 10u);
  EXPECT_EQ(log.record_count(), 3u);
  ASSERT_EQ(log.num_slots(), 11u);  // 10 base + 1 add

  // Liveness: slot 5 tombstoned, everything else live.
  for (std::uint64_t slot = 0; slot < 11; ++slot) {
    EXPECT_EQ(log.slot_live(slot), slot != 5) << "slot " << slot;
  }
  // Versions: 0 = base payload; else 1 + the index of the record that
  // *set the payload*. A remove leaves the version alone — the warm-start
  // survival test catches tombstones through liveness, not versions.
  EXPECT_EQ(log.slot_version(10), 1u);  // add     = record 0
  EXPECT_EQ(log.slot_version(5), 0u);   // removed, payload untouched
  EXPECT_EQ(log.slot_version(0), 3u);   // replace = record 2
  EXPECT_EQ(log.slot_version(1), 0u);
  // Payload residency + content.
  EXPECT_TRUE(log.slot_from_delta(10));
  EXPECT_TRUE(log.slot_from_delta(0));
  EXPECT_FALSE(log.slot_from_delta(1));
  EXPECT_EQ(log.slot_view(10).CountSet(), 3u);
  EXPECT_EQ(log.slot_view(0).CountSet(), 60u);
}

TEST(DeltaLogTest, AppendModeExtendsAnExistingLog) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("log.sscd1");
  {
    DeltaLogWriter writer(path, 64, 4);
    DynamicBitset set(64);
    set.Set(7);
    ASSERT_TRUE(writer.AddSet(SetView(set)).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    DeltaLogWriter writer(path);  // append mode: replays liveness
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    EXPECT_EQ(writer.record_count(), 1u);
    EXPECT_EQ(writer.num_slots(), 5u);
    ASSERT_TRUE(writer.RemoveSet(4).ok());  // the slot record 0 added
    ASSERT_TRUE(writer.Finish().ok());
  }
  DeltaLog log(path);
  ASSERT_TRUE(log.status().ok()) << log.status().ToString();
  EXPECT_EQ(log.record_count(), 2u);
  EXPECT_FALSE(log.slot_live(4));
}

TEST(DeltaLogTest, WriterTypesLivenessErrorsAtWriteTime) {
  testing::ScopedTempDir dir;
  DynamicBitset set(64);
  set.Set(1);
  {
    // Out-of-range and dead targets.
    DeltaLogWriter writer(dir.FilePath("a.sscd1"), 64, 4);
    EXPECT_EQ(writer.RemoveSet(4).code(), StatusCode::kInvalidArgument);
  }
  {
    DeltaLogWriter writer(dir.FilePath("b.sscd1"), 64, 4);
    ASSERT_TRUE(writer.RemoveSet(2).ok());
    EXPECT_EQ(writer.RemoveSet(2).code(), StatusCode::kInvalidArgument);
    // Errors are sticky: the writer refuses further work.
    EXPECT_FALSE(writer.ReplaceSet(0, SetView(set)).ok());
  }
  {
    // Universe mismatch on a payload.
    DeltaLogWriter writer(dir.FilePath("c.sscd1"), 100, 4);
    EXPECT_EQ(writer.AddSet(SetView(set)).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Append mode over a missing / corrupt log is a typed failure.
    DeltaLogWriter writer(dir.FilePath("missing.sscd1"));
    EXPECT_FALSE(writer.status().ok());
  }
}

TEST(DeltaLogTest, HugeBaseClaimDoesNotDriveAllocation) {
  // A 72-byte log whose header claims a base at the 2^31 format cap. The
  // claim is backed by no bytes of *this* file (unlike sscb1's offset
  // table), so the reader must stay O(records) in memory: opening it may
  // neither reject a valid log nor size a slot table off the claim —
  // before the sparse slot table this was a ~48GB allocation and an OOM
  // abort, violating the typed-error contract.
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("huge.sscd1");
  const std::uint64_t huge = sscd1::kMaxDimension;
  {
    DeltaLogWriter writer(path, 100, static_cast<std::size_t>(huge));
    ASSERT_TRUE(writer.status().ok()) << writer.status().ToString();
    ASSERT_TRUE(writer.RemoveSet(huge - 1).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  DeltaLog log(path);
  ASSERT_TRUE(log.status().ok()) << log.status().ToString();
  EXPECT_EQ(log.base_num_sets(), huge);
  EXPECT_EQ(log.num_slots(), huge);
  EXPECT_FALSE(log.slot_live(huge - 1));
  EXPECT_TRUE(log.slot_live(0));
  EXPECT_TRUE(log.slot_live(huge / 2));
  EXPECT_EQ(log.slot_version(huge / 2), 0u);
  // Append mode replays the same liveness without a slots-sized table.
  DeltaLogWriter append(path);
  ASSERT_TRUE(append.status().ok()) << append.status().ToString();
  EXPECT_EQ(append.num_slots(), huge);
  EXPECT_EQ(append.RemoveSet(huge - 1).code(),
            StatusCode::kInvalidArgument);  // already dead
}

TEST(DeltaLogTest, SniffsDeltaLogFiles) {
  testing::ScopedTempDir dir;
  const std::string log_path = dir.FilePath("log.sscd1");
  FixtureBytes(log_path);
  EXPECT_TRUE(IsDeltaLogFile(log_path));

  SetSystem system(8);
  system.AddSetFromIndices({0, 1});
  const std::string binary_path = dir.FilePath("base.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, binary_path).ok());
  EXPECT_FALSE(IsDeltaLogFile(binary_path));
  EXPECT_FALSE(IsDeltaLogFile(dir.FilePath("missing.sscd1")));
}

// ---- Corruption matrix ----------------------------------------------------

TEST(DeltaLogTest, RejectsBadMagicVersionAndDimensions) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("corrupt.sscd1");
  const std::string good = FixtureBytes(path);

  std::string bad_magic = good;
  bad_magic[0] = 'x';
  ExpectRejected(path, bad_magic, "bad magic");
  ExpectRejected(path, Patched<std::uint32_t>(good, 8, 9), "bad version");
  ExpectRejected(path,
                 Patched<std::uint64_t>(good, 16, sscd1::kMaxDimension + 1),
                 "huge universe");
  ExpectRejected(path,
                 Patched<std::uint64_t>(good, 24, sscd1::kMaxDimension + 1),
                 "huge base set count");
}

TEST(DeltaLogTest, RejectsTruncationAtEveryBoundary) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("trunc.sscd1");
  const std::string good = FixtureBytes(path);
  // Every strict prefix must be rejected: too small for the header, or a
  // header whose back-patched file_size no longer matches — the torn-
  // trailing-record case a crashed writer leaves behind.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, kRec0 - 1, kRec0, kRec0 + 1,
        kRec1 - 1, kRec1, kRec2, good.size() - 1}) {
    ExpectRejected(path, good.substr(0, keep),
                   ("kept " + std::to_string(keep) + " bytes").c_str());
  }
  // Trailing garbage is equally torn.
  ExpectRejected(path, good + std::string(8, '\0'), "trailing bytes");
}

TEST(DeltaLogTest, RejectsLyingCountsAndFraming) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("frame.sscd1");
  const std::string good = FixtureBytes(path);

  // Header record_count disagrees with the records present.
  ExpectRejected(path, Patched<std::uint64_t>(good, 32, 4), "record_count+1");
  ExpectRejected(path, Patched<std::uint64_t>(good, 32, 2), "record_count-1");
  // Record framing: misaligned, shrunk, and grown record_bytes.
  ExpectRejected(path, Patched<std::uint32_t>(good, kRec0, 41),
                 "misaligned record_bytes");
  ExpectRejected(path, Patched<std::uint32_t>(good, kRec0, 24),
                 "record_bytes too small for payload");
  ExpectRejected(path, Patched<std::uint32_t>(good, kRec0, 4096),
                 "record_bytes past file end");
}

TEST(DeltaLogTest, RejectsHostileRecordHeaders) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("record.sscd1");
  const std::string good = FixtureBytes(path);

  ExpectRejected(path, Patched<std::uint16_t>(good, kRec0 + 4, 0),
                 "type 0");
  ExpectRejected(path, Patched<std::uint16_t>(good, kRec0 + 4, 9),
                 "unknown type");
  ExpectRejected(path, Patched<std::uint16_t>(good, kRec0 + 6, 7),
                 "unknown rep");
  ExpectRejected(path, Patched<std::uint32_t>(good, kRec0 + 16, 101),
                 "count beyond universe");
  ExpectRejected(path, Patched<std::uint64_t>(good, kRec0 + 8, 1),
                 "add with nonzero target");
  // Remove records carry no payload: nonzero rep/count are hostile.
  ExpectRejected(path, Patched<std::uint16_t>(good, kRec1 + 6, 1),
                 "remove with a rep");
  ExpectRejected(path, Patched<std::uint32_t>(good, kRec1 + 16, 2),
                 "remove with a count");
}

TEST(DeltaLogTest, RejectsReplayLivenessViolations) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("replay.sscd1");
  const std::string good = FixtureBytes(path);

  // Remove of an out-of-range slot.
  ExpectRejected(path, Patched<std::uint64_t>(good, kRec1 + 8, 999),
                 "remove out-of-range slot");
  // Replace of the slot record 1 just tombstoned.
  ExpectRejected(path, Patched<std::uint64_t>(good, kRec2 + 8, 5),
                 "replace of a dead slot");
}

TEST(DeltaLogTest, RejectsCorruptPayloads) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("payload.sscd1");
  const std::string good = FixtureBytes(path);

  // Record 0's sparse payload {1,2,3} starts at kRec0 + 24.
  const std::size_t payload0 = kRec0 + sizeof(sscd1::RecordHeader);
  ExpectRejected(path, Patched<std::uint32_t>(good, payload0, 1000),
                 "sparse id beyond universe");
  std::string unsorted = Patched<std::uint32_t>(good, payload0, 2);
  ExpectRejected(path, Patched<std::uint32_t>(unsorted, payload0 + 4, 2),
                 "duplicate sparse ids");
  // Nonzero sparse padding (ids occupy 12 of the 16 payload bytes).
  ExpectRejected(path, Patched<std::uint32_t>(good, payload0 + 12, 1),
                 "nonzero sparse padding");
  // Record 2's dense payload: tail bits beyond n=100 must be zero.
  const std::size_t payload2 = kRec2 + sizeof(sscd1::RecordHeader);
  ExpectRejected(path,
                 Patched<std::uint64_t>(good, payload2 + 8,
                                        std::uint64_t{1} << 63),
                 "nonzero dense tail bits");
}

TEST(DeltaLogTest, RejectsNonLogFiles) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("not_a_log.sscd1");
  ExpectRejected(path, "", "empty file");
  ExpectRejected(path, "ssc1 8 0\n", "text instance");
  ExpectRejected(path, std::string(4096, '\0'), "zero page");

  DeltaLog missing(dir.FilePath("missing.sscd1"));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace streamsc
