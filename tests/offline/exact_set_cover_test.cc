#include "offline/exact_set_cover.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "offline/greedy.h"
#include "util/random.h"

namespace streamsc {
namespace {

TEST(ExactSetCoverTest, TrivialSingleSet) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1, 2, 3});
  const ExactSetCoverResult result = SolveExactSetCover(system);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.solution.size(), 1u);
}

TEST(ExactSetCoverTest, EmptyUniverse) {
  SetSystem system(4);
  system.AddSetFromIndices({0});
  const ExactSetCoverResult result =
      SolveExactSetCover(system, DynamicBitset(4));
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_TRUE(result.solution.empty());
}

TEST(ExactSetCoverTest, InfeasibleInstance) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  const ExactSetCoverResult result = SolveExactSetCover(system);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.complete);
}

TEST(ExactSetCoverTest, BeatsGreedyOnAdversarialInstance) {
  // Classic greedy-trap: greedy takes the big middle set, optimum is the
  // two halves.
  SetSystem system(8);
  system.AddSetFromIndices({0, 1, 2, 3});       // optimal half
  system.AddSetFromIndices({4, 5, 6, 7});       // optimal half
  system.AddSetFromIndices({1, 2, 3, 4, 5});    // greedy bait (size 5)
  const Solution greedy = GreedySetCover(system);
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.solution.size(), 2u);
  EXPECT_EQ(greedy.size(), 3u);  // greedy really does fall for it
}

TEST(ExactSetCoverTest, MatchesPlantedOptimum) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<SetId> planted;
    const SetSystem system =
        PlantedCoverInstance(60, 15, 3 + trial % 3, rng, &planted);
    const ExactSetCoverResult result = SolveExactSetCover(system);
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.solution.size(), planted.size());
  }
}

TEST(ExactSetCoverTest, SizeLimitTurnsIntoDecisionProcedure) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  // opt = 3; ask for <= 2.
  ExactSetCoverOptions options;
  options.size_limit = 2;
  const ExactSetCoverResult no = SolveExactSetCover(system, options);
  EXPECT_FALSE(no.feasible);
  EXPECT_TRUE(no.complete);  // provably no 2-cover
  options.size_limit = 3;
  const ExactSetCoverResult yes = SolveExactSetCover(system, options);
  EXPECT_TRUE(yes.feasible);
  EXPECT_EQ(yes.solution.size(), 3u);
}

TEST(ExactSetCoverTest, SolutionIsAlwaysFeasibleWhenReported) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSystem system = UniformRandomInstance(50, 12, 12, rng);
    const ExactSetCoverResult result = SolveExactSetCover(system);
    if (result.feasible) {
      EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
    }
  }
}

TEST(ExactSetCoverTest, NeverLargerThanGreedy) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSystem system = UniformRandomInstance(40, 10, 8, rng);
    const Solution greedy = GreedySetCover(system);
    const ExactSetCoverResult exact = SolveExactSetCover(system);
    if (exact.proven_optimal && system.IsFeasibleCover(greedy.chosen)) {
      EXPECT_LE(exact.solution.size(), greedy.size());
    }
  }
}

TEST(ExactSetCoverTest, NodeBudgetDegradesGracefully) {
  Rng rng(4);
  const SetSystem system = UniformRandomInstance(80, 25, 10, rng);
  ExactSetCoverOptions options;
  options.max_nodes = 3;  // absurdly small
  const ExactSetCoverResult result = SolveExactSetCover(system, options);
  EXPECT_FALSE(result.complete);
  // Still returns the greedy warm start when feasible.
  if (result.feasible) {
    EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
    EXPECT_FALSE(result.proven_optimal);
  }
}

TEST(ExactSetCoverTest, RestrictedUniverse) {
  SetSystem system(8);
  system.AddSetFromIndices({0, 1, 2, 3, 4});
  system.AddSetFromIndices({5});
  system.AddSetFromIndices({6, 7});
  DynamicBitset universe(8);
  universe.Set(5);
  const ExactSetCoverResult result = SolveExactSetCover(system, universe);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution.size(), 1u);
  EXPECT_EQ(result.solution.chosen[0], 1u);
}

TEST(ExactSetCoverTest, DuplicateSetsDoNotConfuse) {
  SetSystem system(4);
  for (int i = 0; i < 6; ++i) system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  const ExactSetCoverResult result = SolveExactSetCover(system);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution.size(), 2u);
}

TEST(ExactSetCoverTest, ReportsNodeCount) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1, 2, 3});
  const ExactSetCoverResult result = SolveExactSetCover(system);
  EXPECT_GE(result.nodes, 1u);
}

// Exhaustive cross-check against brute force on random tiny instances.
class ExactSetCoverBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactSetCoverBruteForceTest, MatchesBruteForce) {
  Rng rng(100 + GetParam());
  const std::size_t n = 10, m = 7;
  SetSystem system(n);
  for (std::size_t i = 0; i < m; ++i) {
    system.AddSet(rng.BernoulliSubset(n, 0.35));
  }
  // Brute force over all 2^m subsets.
  std::size_t best = m + 1;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    DynamicBitset u(n);
    std::size_t size = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) {
        system.set(i).OrInto(u);
        ++size;
      }
    }
    if (u.All()) best = std::min(best, size);
  }
  const ExactSetCoverResult result = SolveExactSetCover(system);
  if (best == m + 1) {
    EXPECT_FALSE(result.feasible);
  } else {
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.solution.size(), best);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactSetCoverBruteForceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace streamsc
