#include "offline/greedy.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "util/math.h"

namespace streamsc {
namespace {

TEST(GreedySetCoverTest, CoversSimpleInstance) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4});
  system.AddSetFromIndices({5});
  const Solution solution = GreedySetCover(system);
  EXPECT_TRUE(system.IsFeasibleCover(solution.chosen));
  EXPECT_EQ(solution.size(), 3u);
}

TEST(GreedySetCoverTest, PicksLargestFirst) {
  SetSystem system(6);
  system.AddSetFromIndices({0});
  system.AddSetFromIndices({0, 1, 2, 3, 4, 5});
  const Solution solution = GreedySetCover(system);
  ASSERT_EQ(solution.size(), 1u);
  EXPECT_EQ(solution.chosen[0], 1u);
}

TEST(GreedySetCoverTest, TieBreaksByLowerId) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({0, 1});
  const Solution solution = GreedySetCover(system);
  EXPECT_EQ(solution.chosen[0], 0u);
}

TEST(GreedySetCoverTest, RestrictedUniverse) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  DynamicBitset universe(6);
  universe.Set(0);
  universe.Set(2);
  const Solution solution = GreedySetCover(system, universe);
  EXPECT_EQ(solution.size(), 2u);
  EXPECT_TRUE(universe.IsSubsetOf(system.UnionOf(solution.chosen)));
}

TEST(GreedySetCoverTest, InfeasibleResidueStops) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  // Elements 2, 3 uncoverable.
  const Solution solution = GreedySetCover(system);
  EXPECT_EQ(solution.size(), 1u);
  EXPECT_FALSE(system.IsFeasibleCover(solution.chosen));
}

TEST(GreedySetCoverTest, EmptyUniverseNeedsNothing) {
  SetSystem system(4);
  system.AddSetFromIndices({0});
  const Solution solution = GreedySetCover(system, DynamicBitset(4));
  EXPECT_TRUE(solution.empty());
}

TEST(GreedySetCoverTest, LnNApproximationOnPlanted) {
  // Greedy is within H_n of optimal (classic guarantee).
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<SetId> planted;
    const SetSystem system = PlantedCoverInstance(200, 40, 5, rng, &planted);
    const Solution greedy = GreedySetCover(system);
    EXPECT_TRUE(system.IsFeasibleCover(greedy.chosen));
    EXPECT_LE(static_cast<double>(greedy.size()),
              HarmonicNumber(200) * 5.0 + 1.0);
  }
}

TEST(GreedyMaxCoverageTest, RespectsBudget) {
  SetSystem system(10);
  for (int i = 0; i < 5; ++i) {
    system.AddSetFromIndices({static_cast<ElementId>(2 * i),
                              static_cast<ElementId>(2 * i + 1)});
  }
  const Solution solution = GreedyMaxCoverage(system, 3);
  EXPECT_EQ(solution.size(), 3u);
  EXPECT_EQ(system.CoverageOf(solution.chosen), 6u);
}

TEST(GreedyMaxCoverageTest, StopsEarlyWhenCovered) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1, 2, 3});
  system.AddSetFromIndices({0});
  const Solution solution = GreedyMaxCoverage(system, 3);
  EXPECT_EQ(solution.size(), 1u);
}

TEST(GreedyMaxCoverageTest, MarginalGainNotRawSize) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2, 3});
  system.AddSetFromIndices({0, 1, 2});    // large but redundant
  system.AddSetFromIndices({4, 5});       // small but new
  const Solution solution = GreedyMaxCoverage(system, 2);
  ASSERT_EQ(solution.size(), 2u);
  EXPECT_EQ(solution.chosen[0], 0u);
  EXPECT_EQ(solution.chosen[1], 2u);
}

TEST(GreedyMaxCoverageTest, OneMinusOneOverEOnRandom) {
  // Greedy k-coverage is a (1 - 1/e) approximation; against the trivially
  // bounded optimum (full universe) on dense instances it comes close.
  Rng rng(2);
  const SetSystem system = UniformRandomInstance(100, 30, 40, rng);
  const Solution solution = GreedyMaxCoverage(system, 5);
  EXPECT_GE(static_cast<double>(system.CoverageOf(solution.chosen)),
            (1.0 - 1.0 / 2.718281828) * 100.0 * 0.9);
}

TEST(GreedyMaxCoverageTest, ZeroBudget) {
  SetSystem system(4);
  system.AddSetFromIndices({0});
  EXPECT_TRUE(GreedyMaxCoverage(system, 0).empty());
}

TEST(GreedyMaxCoverageTest, RestrictedUniverseCoverage) {
  SetSystem system(8);
  system.AddSetFromIndices({0, 1, 2, 3});
  system.AddSetFromIndices({4, 5});
  DynamicBitset universe(8);
  universe.Set(4);
  universe.Set(5);
  const Solution solution = GreedyMaxCoverage(system, universe, 1);
  ASSERT_EQ(solution.size(), 1u);
  EXPECT_EQ(solution.chosen[0], 1u);
}

}  // namespace
}  // namespace streamsc
