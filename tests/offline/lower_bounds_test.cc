#include "offline/lower_bounds.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "util/random.h"

namespace streamsc {
namespace {

TEST(SizeLowerBoundTest, PartitionInstance) {
  // 3 disjoint sets of size 2 over [6]: bound = ceil(6/2) = 3 = opt.
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  EXPECT_EQ(SizeLowerBound(system), 3u);
}

TEST(SizeLowerBoundTest, EmptyUniverseIsZero) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  EXPECT_EQ(SizeLowerBound(system, DynamicBitset(4)), 0u);
}

TEST(SizeLowerBoundTest, IgnoresUncoverableElements) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});  // elements 2, 3 uncoverable
  EXPECT_EQ(SizeLowerBound(system), 1u);
}

TEST(PackingLowerBoundTest, DisjointSingletonsPackFully) {
  SetSystem system(4);
  system.AddSetFromIndices({0});
  system.AddSetFromIndices({1});
  system.AddSetFromIndices({2});
  system.AddSetFromIndices({3});
  EXPECT_EQ(PackingLowerBound(system), 4u);
}

TEST(PackingLowerBoundTest, OneBigSetPacksOne) {
  SetSystem system(5);
  system.AddSet(DynamicBitset::Full(5));
  EXPECT_EQ(PackingLowerBound(system), 1u);
}

TEST(PackingLowerBoundTest, SkipsUncoverableElements) {
  SetSystem system(5);
  system.AddSetFromIndices({0, 1});
  // 2, 3, 4 uncoverable: packing over the coverable part only.
  EXPECT_EQ(PackingLowerBound(system), 1u);
}

TEST(DualLowerBoundTest, PartitionGivesExactBound) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4, 5});
  // y_e = 1/3 each: dual = 2 = opt.
  EXPECT_EQ(DualLowerBound(system), 2u);
}

TEST(DualLowerBoundTest, OverlapKeepsFeasibility) {
  // Element 0 in both a size-3 and a size-1 set: y_0 = 1/3 (max size).
  SetSystem system(3);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({0});
  // dual = 3 * 1/3 = 1.
  EXPECT_EQ(DualLowerBound(system), 1u);
}

TEST(BestLowerBoundTest, TakesTheMax) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  EXPECT_EQ(BestLowerBound(system), 3u);
}

// The defining property: every bound is a true lower bound on the proven
// optimum, across random instances.
class LowerBoundSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundSoundnessTest, NeverExceedsOptimum) {
  Rng rng(500 + GetParam());
  SetSystem system(0);
  switch (GetParam() % 3) {
    case 0:
      system = UniformRandomInstance(40, 10, 8, rng);
      break;
    case 1:
      system = PlantedCoverInstance(48, 12, 4, rng);
      break;
    default:
      system = ZipfInstance(40, 12, 1.2, 20, rng);
      break;
  }
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  if (!exact.proven_optimal || !exact.feasible) GTEST_SKIP();
  const std::size_t opt = exact.solution.size();
  EXPECT_LE(SizeLowerBound(system), opt);
  EXPECT_LE(PackingLowerBound(system), opt);
  EXPECT_LE(DualLowerBound(system), opt);
  EXPECT_LE(BestLowerBound(system), opt);
  EXPECT_GE(BestLowerBound(system), 1u);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LowerBoundSoundnessTest,
                         ::testing::Range(0, 15));

// Restricted-universe variants stay sound and monotone.
TEST(LowerBoundTest, RestrictedUniverseMonotonicity) {
  Rng rng(42);
  const SetSystem system = UniformRandomInstance(60, 12, 12, rng);
  const DynamicBitset full = DynamicBitset::Full(60);
  const DynamicBitset half = rng.BernoulliSubset(60, 0.5);
  // A smaller target cannot need more sets: bounds should not explode.
  EXPECT_LE(SizeLowerBound(system, half), SizeLowerBound(system, full) + 60);
  const ExactSetCoverResult exact = SolveExactSetCover(system, half);
  if (exact.proven_optimal && exact.feasible) {
    EXPECT_LE(BestLowerBound(system, half), exact.solution.size());
  }
}

TEST(LowerBoundTest, PackingBeatsSizeOnStarInstances) {
  // A "star": one hub set {0..9} plus singletons {10}, {11}, ..., {19}.
  // Max set size 10 -> size bound = 2; packing finds 11 (hub-private
  // element + each singleton), which is the true opt.
  SetSystem system(20);
  system.AddSetFromIndices({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (ElementId e = 10; e < 20; ++e) {
    system.AddSetFromIndices({e});
  }
  EXPECT_EQ(SizeLowerBound(system), 2u);
  EXPECT_EQ(PackingLowerBound(system), 11u);
  EXPECT_EQ(BestLowerBound(system), 11u);
}

}  // namespace
}  // namespace streamsc
