#include "offline/verifier.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamsc {
namespace {

SetSystem MakeSystem() {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2});
  system.AddSetFromIndices({3});
  return system;
}

TEST(VerifierTest, FeasibleFullCover) {
  const SetSystem system = MakeSystem();
  const CoverVerdict verdict = VerifyCover(system, Solution{{0, 1, 2}});
  EXPECT_TRUE(verdict.feasible);
  EXPECT_EQ(verdict.covered, 4u);
  EXPECT_EQ(verdict.universe_size, 4u);
  EXPECT_EQ(verdict.solution_size, 3u);
  EXPECT_DOUBLE_EQ(verdict.coverage_fraction(), 1.0);
}

TEST(VerifierTest, InfeasiblePartialCover) {
  const SetSystem system = MakeSystem();
  const CoverVerdict verdict = VerifyCover(system, Solution{{0}});
  EXPECT_FALSE(verdict.feasible);
  EXPECT_EQ(verdict.covered, 2u);
  EXPECT_DOUBLE_EQ(verdict.coverage_fraction(), 0.5);
}

TEST(VerifierTest, RestrictedUniverse) {
  const SetSystem system = MakeSystem();
  DynamicBitset universe(4);
  universe.Set(2);
  const CoverVerdict verdict = VerifyCover(system, Solution{{1}}, universe);
  EXPECT_TRUE(verdict.feasible);
  EXPECT_EQ(verdict.universe_size, 1u);
}

TEST(VerifierTest, EmptyUniverseAlwaysFeasible) {
  const SetSystem system = MakeSystem();
  const CoverVerdict verdict =
      VerifyCover(system, Solution{}, DynamicBitset(4));
  EXPECT_TRUE(verdict.feasible);
  EXPECT_DOUBLE_EQ(verdict.coverage_fraction(), 1.0);
}

TEST(VerifierTest, ApproximationRatio) {
  EXPECT_DOUBLE_EQ(ApproximationRatio(6, 3), 2.0);
  EXPECT_DOUBLE_EQ(ApproximationRatio(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(ApproximationRatio(0, 0), 1.0);
  EXPECT_TRUE(std::isinf(ApproximationRatio(1, 0)));
}

}  // namespace
}  // namespace streamsc
