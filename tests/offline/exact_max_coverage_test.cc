#include "offline/exact_max_coverage.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "offline/greedy.h"
#include "util/random.h"

namespace streamsc {
namespace {

TEST(ExactMaxCoverageTest, SingleBestSet) {
  SetSystem system(6);
  system.AddSetFromIndices({0});
  system.AddSetFromIndices({1, 2, 3});
  system.AddSetFromIndices({4, 5});
  const ExactMaxCoverageResult result = SolveExactMaxCoverage(system, 1);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.coverage, 3u);
  ASSERT_EQ(result.solution.size(), 1u);
  EXPECT_EQ(result.solution.chosen[0], 1u);
}

TEST(ExactMaxCoverageTest, ZeroBudget) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  const ExactMaxCoverageResult result = SolveExactMaxCoverage(system, 0);
  EXPECT_EQ(result.coverage, 0u);
  EXPECT_TRUE(result.solution.empty());
  EXPECT_TRUE(result.proven_optimal);
}

TEST(ExactMaxCoverageTest, BudgetLargerThanSets) {
  SetSystem system(4);
  system.AddSetFromIndices({0});
  system.AddSetFromIndices({1});
  const ExactMaxCoverageResult result = SolveExactMaxCoverage(system, 10);
  EXPECT_EQ(result.coverage, 2u);
}

TEST(ExactMaxCoverageTest, BeatsGreedyOnAdversarialInstance) {
  // Greedy takes the size-4 bait; the optimal pair covers 6.
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2, 3});
  system.AddSetFromIndices({0, 1, 2, 4});
  system.AddSetFromIndices({3, 4, 5});
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 5});
  const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, 2);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.coverage, 6u);
}

TEST(ExactMaxCoverageTest, NeverWorseThanGreedy) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSystem system = UniformRandomInstance(40, 12, 10, rng);
    const Solution greedy = GreedyMaxCoverage(system, 3);
    const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, 3);
    if (exact.proven_optimal) {
      EXPECT_GE(exact.coverage, system.CoverageOf(greedy.chosen));
    }
  }
}

TEST(ExactMaxCoverageTest, RestrictedUniverse) {
  SetSystem system(8);
  system.AddSetFromIndices({0, 1, 2, 3});  // big outside target
  system.AddSetFromIndices({6, 7});        // inside target
  DynamicBitset universe(8);
  universe.Set(6);
  universe.Set(7);
  const ExactMaxCoverageResult result =
      SolveExactMaxCoverage(system, universe, 1);
  ASSERT_EQ(result.solution.size(), 1u);
  EXPECT_EQ(result.solution.chosen[0], 1u);
  EXPECT_EQ(result.coverage, 2u);
}

TEST(ExactMaxCoverageTest, EmptySystem) {
  SetSystem system(4);
  const ExactMaxCoverageResult result = SolveExactMaxCoverage(system, 2);
  EXPECT_EQ(result.coverage, 0u);
  EXPECT_TRUE(result.proven_optimal);
}

// Brute-force cross-check on random tiny instances (all k-subsets).
class ExactMaxCoverageBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactMaxCoverageBruteForceTest, MatchesBruteForce) {
  Rng rng(200 + GetParam());
  const std::size_t n = 12, m = 8, k = 3;
  SetSystem system(n);
  for (std::size_t i = 0; i < m; ++i) {
    system.AddSet(rng.BernoulliSubset(n, 0.3));
  }
  Count best = 0;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != k) continue;
    DynamicBitset u(n);
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) system.set(i).OrInto(u);
    }
    best = std::max(best, u.CountSet());
  }
  const ExactMaxCoverageResult result = SolveExactMaxCoverage(system, k);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.coverage, best);
  // The reported solution matches the reported coverage.
  EXPECT_EQ(system.CoverageOf(result.solution.chosen), result.coverage);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactMaxCoverageBruteForceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace streamsc
