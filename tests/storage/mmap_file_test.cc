// MmapFile::Open hardening. The regression pinned here: Open on a
// non-regular file (FIFO, directory, device node) must return a clear
// InvalidArgument *without blocking* — an O_RDONLY open of an unfed FIFO
// hangs forever without O_NONBLOCK, which is exactly the bug a daemon
// fed an attacker-chosen path would trip on. And a successful Open must
// leave the fd table exactly as it found it (descriptor closed, CLOEXEC
// while it lived).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>
#include <string>

#include "storage/mmap_file.h"
#include "testing/scoped_temp_dir.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

// Lowest free descriptor number — a before/after probe for fd leaks.
int NextFreeFd() {
  const int fd = ::open("/dev/null", O_RDONLY);
  EXPECT_GE(fd, 0);
  ::close(fd);
  return fd;
}

TEST(MmapFileTest, OpensRegularFile) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("plain.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "sixteen byte file";
  }
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE(file->mapped());
  EXPECT_EQ(file->size(), 17u);
}

TEST(MmapFileTest, OpensEmptyFileWithZeroSize) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("empty.bin");
  { std::ofstream out(path, std::ios::binary); }
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE(file->mapped());
  EXPECT_EQ(file->size(), 0u);
}

TEST(MmapFileTest, MissingFileIsNotFound) {
  StatusOr<MmapFile> file = MmapFile::Open("/nonexistent/not/here.bin");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST(MmapFileTest, FifoIsRejectedWithoutHanging) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("pipe.fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << std::strerror(errno);
  // No writer ever attaches: a blocking open would hang here until the
  // test timeout. The hardened Open must come straight back.
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(file.status().message().find("FIFO"), std::string::npos)
      << file.status().ToString();
}

TEST(MmapFileTest, DirectoryIsRejected) {
  ScopedTempDir dir;
  StatusOr<MmapFile> file = MmapFile::Open(dir.path().string());
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(file.status().message().find("directory"), std::string::npos)
      << file.status().ToString();
}

TEST(MmapFileTest, CharacterDeviceIsRejected) {
  StatusOr<MmapFile> file = MmapFile::Open("/dev/null");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(file.status().message().find("character device"),
            std::string::npos)
      << file.status().ToString();
}

TEST(MmapFileTest, OpenLeavesTheFdTableUnchanged) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("plain.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "bytes";
  }
  const int before = NextFreeFd();
  {
    StatusOr<MmapFile> file = MmapFile::Open(path);
    ASSERT_TRUE(file.ok());
    // The descriptor is closed before Open returns (the mapping keeps
    // the pages), so even while the mapping is live the fd is free
    // again.
    EXPECT_EQ(NextFreeFd(), before);
  }
  EXPECT_EQ(NextFreeFd(), before);
  // Failed opens must not leak either.
  ASSERT_FALSE(MmapFile::Open(dir.path().string()).ok());
  EXPECT_EQ(NextFreeFd(), before);
}

TEST(MmapFileTest, NoInheritedDescriptorsAreCloexecClean) {
  // A paranoia sweep for the daemon: everything MmapFile touches is
  // transient, so no descriptor at or above the pre-Open floor may
  // survive Open at all (CLOEXEC moot once closed — the stronger
  // property holds).
  ScopedTempDir dir;
  const std::string path = dir.FilePath("plain.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "bytes";
  }
  const int floor = NextFreeFd();
  StatusOr<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  std::set<int> open_fds;
  for (int fd = floor; fd < floor + 16; ++fd) {
    if (::fcntl(fd, F_GETFD) != -1) open_fds.insert(fd);
  }
  EXPECT_TRUE(open_fds.empty())
      << "MmapFile::Open left " << open_fds.size() << " fd(s) open";
}

}  // namespace
}  // namespace streamsc
