// InstanceCache + MmapStreamView: the open-once / serve-many pair. The
// cache validates each sscb1 file exactly once and hands out shared
// read-only streams; views give every reader its own cursor. Pinned
// here: cache semantics (duplicate names, missing names, bad files cache
// nothing) and the core concurrency claim — N threads streaming passes
// through views over ONE mapping see exactly the same sets as a private
// MmapSetStream, with no help from any lock of ours.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "instance/generators.h"
#include "storage/binary_instance_writer.h"
#include "storage/instance_cache.h"
#include "storage/mmap_set_stream.h"
#include "testing/scoped_temp_dir.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

std::string WriteInstance(const ScopedTempDir& dir, const std::string& name,
                          std::uint64_t seed) {
  Rng rng(seed);
  const SetSystem system = PlantedCoverInstance(128, 16, 3, rng);
  const std::string path = dir.FilePath(name);
  EXPECT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());
  return path;
}

// One full pass through a stream, flattened to (id, size) pairs — cheap
// structural fingerprint that still depends on every set's payload.
std::vector<std::pair<SetId, Count>> Fingerprint(SetStream& stream) {
  std::vector<std::pair<SetId, Count>> out;
  StreamItem item;
  stream.BeginPass();
  while (stream.Next(&item)) {
    out.emplace_back(item.id, item.set.CountSet());
  }
  return out;
}

TEST(InstanceCacheTest, AddGetRoundTrip) {
  ScopedTempDir dir;
  const std::string path = WriteInstance(dir, "a.sscb1", 7);
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", path).ok());
  EXPECT_EQ(cache.size(), 1u);

  StatusOr<InstanceCache::Snapshot> snapshot = cache.Get("a");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->stream->universe_size(), 128u);
  EXPECT_EQ(snapshot->stream->num_sets(), 16u);
  EXPECT_NE(snapshot->generation, 0u);
}

TEST(InstanceCacheTest, DuplicateNameIsInvalidArgument) {
  ScopedTempDir dir;
  const std::string path = WriteInstance(dir, "a.sscb1", 7);
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", path).ok());
  const Status again = cache.Add("a", path);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(InstanceCacheTest, MissingNameIsNotFound) {
  InstanceCache cache;
  StatusOr<InstanceCache::Snapshot> missing = cache.Get("ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(InstanceCacheTest, BadFileCachesNothing) {
  ScopedTempDir dir;
  InstanceCache cache;
  EXPECT_FALSE(cache.Add("gone", dir.FilePath("missing.sscb1")).ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("gone").ok());
}

TEST(InstanceCacheTest, NamesAreSorted) {
  ScopedTempDir dir;
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("zeta", WriteInstance(dir, "z.sscb1", 1)).ok());
  ASSERT_TRUE(cache.Add("alpha", WriteInstance(dir, "a.sscb1", 2)).ok());
  ASSERT_TRUE(cache.Add("mid", WriteInstance(dir, "m.sscb1", 3)).ok());
  EXPECT_EQ(cache.Names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(InstanceCacheTest, ViewMatchesPrivateStream) {
  ScopedTempDir dir;
  const std::string path = WriteInstance(dir, "a.sscb1", 11);
  MmapSetStream direct(path);
  ASSERT_TRUE(direct.status().ok());
  const auto expected = Fingerprint(direct);

  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", path).ok());
  MmapStreamView view(*cache.Get("a")->stream);
  EXPECT_EQ(Fingerprint(view), expected);
  // A second pass through the same view re-streams from the top.
  EXPECT_EQ(Fingerprint(view), expected);
  EXPECT_EQ(view.passes(), 2u);
}

TEST(InstanceCacheTest, ConcurrentViewsOverOneMappingAgree) {
  ScopedTempDir dir;
  const std::string path = WriteInstance(dir, "a.sscb1", 23);
  MmapSetStream direct(path);
  ASSERT_TRUE(direct.status().ok());
  const auto expected = Fingerprint(direct);

  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", path).ok());
  const InstanceCache::Snapshot snapshot = *cache.Get("a");
  const MmapSetStream& shared = *snapshot.stream;

  constexpr int kThreads = 8;
  constexpr int kPassesPerThread = 4;
  std::vector<std::thread> threads;
  // vector<char>, not vector<bool>: the packed specialization would make
  // per-thread writes race on shared bytes.
  std::vector<char> agreed(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MmapStreamView view(shared);
      bool all_ok = true;
      for (int pass = 0; pass < kPassesPerThread; ++pass) {
        all_ok = all_ok && Fingerprint(view) == expected;
      }
      agreed[static_cast<std::size_t>(t)] = all_ok;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(agreed[static_cast<std::size_t>(t)]) << "thread " << t;
  }
  // The shared stream's own cursor was never touched by any view.
  EXPECT_EQ(shared.passes(), 0u);
}

TEST(InstanceCacheTest, RefreshSwapsMappingAndBumpsGeneration) {
  ScopedTempDir dir;
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", WriteInstance(dir, "v1.sscb1", 7)).ok());
  const InstanceCache::Snapshot before = *cache.Get("a");

  // Refresh may also *create* a name (upsert).
  ASSERT_TRUE(cache.Refresh("b", WriteInstance(dir, "b.sscb1", 9)).ok());
  EXPECT_EQ(cache.size(), 2u);

  ASSERT_TRUE(cache.Refresh("a", WriteInstance(dir, "v2.sscb1", 8)).ok());
  const InstanceCache::Snapshot after = *cache.Get("a");
  EXPECT_NE(after.generation, before.generation);
  EXPECT_NE(after.stream.get(), before.stream.get());
  // The old snapshot still reads: shared ownership pins the old mapping
  // across the swap (the in-flight-solve guarantee).
  MmapStreamView old_view(*before.stream);
  EXPECT_EQ(Fingerprint(old_view).size(), before.stream->num_sets());
}

TEST(InstanceCacheTest, FailedRefreshKeepsServingTheOldEntry) {
  ScopedTempDir dir;
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", WriteInstance(dir, "v1.sscb1", 7)).ok());
  const std::uint64_t generation = cache.Get("a")->generation;
  EXPECT_FALSE(cache.Refresh("a", dir.FilePath("missing.sscb1")).ok());
  StatusOr<InstanceCache::Snapshot> kept = cache.Get("a");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->generation, generation);
}

TEST(InstanceCacheTest, RemoveRetiresButSnapshotsSurvive) {
  ScopedTempDir dir;
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", WriteInstance(dir, "a.sscb1", 7)).ok());
  const InstanceCache::Snapshot held = *cache.Get("a");
  ASSERT_TRUE(cache.Remove("a").ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").ok());
  EXPECT_EQ(cache.Remove("a").code(), StatusCode::kNotFound);
  // Retire-then-re-add never aliases the retired generation.
  ASSERT_TRUE(cache.Add("a", WriteInstance(dir, "a2.sscb1", 8)).ok());
  EXPECT_NE(cache.Get("a")->generation, held.generation);
  // The held snapshot still streams after the remove.
  MmapStreamView view(*held.stream);
  EXPECT_EQ(Fingerprint(view).size(), held.stream->num_sets());
}

TEST(InstanceCacheTest, ConcurrentRefreshAndGetAreSafe) {
  ScopedTempDir dir;
  const std::string v1 = WriteInstance(dir, "v1.sscb1", 31);
  const std::string v2 = WriteInstance(dir, "v2.sscb1", 32);
  InstanceCache cache;
  ASSERT_TRUE(cache.Add("a", v1).ok());

  constexpr int kReaders = 6;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<char> readers_ok(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      bool all_ok = true;
      for (int i = 0; i < kOpsPerThread; ++i) {
        StatusOr<InstanceCache::Snapshot> snapshot = cache.Get("a");
        if (!snapshot.ok()) {
          all_ok = false;
          continue;
        }
        // Touch the mapping: a racing refresh must never unmap it.
        MmapStreamView view(*snapshot->stream);
        all_ok = all_ok &&
                 Fingerprint(view).size() == snapshot->stream->num_sets();
      }
      readers_ok[static_cast<std::size_t>(t)] = all_ok;
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kOpsPerThread; ++i) {
      ASSERT_TRUE(cache.Refresh("a", (i % 2) == 0 ? v2 : v1).ok());
    }
  });
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_TRUE(readers_ok[static_cast<std::size_t>(t)]) << "reader " << t;
  }
}

}  // namespace
}  // namespace streamsc
