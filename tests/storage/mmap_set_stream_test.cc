#include "storage/mmap_set_stream.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "instance/generators.h"
#include "storage/binary_instance_writer.h"
#include "stream/parallel_pass_engine.h"
#include "stream/set_stream.h"
#include "stream/stream_adapters.h"
#include "testing/scoped_temp_dir.h"
#include "util/random.h"

namespace streamsc {
namespace {

// A mixed-density instance: sparse planted blocks plus a few dense sets,
// so both payload representations are served from the mapping.
SetSystem MixedInstance(std::size_t n, Rng& rng) {
  SetSystem system = PlantedCoverInstance(n, 24, 4, rng);
  std::vector<ElementId> half;
  for (ElementId e = 0; e < n; e += 2) half.push_back(e);
  system.AddSetFromIndices(half);
  return system;
}

TEST(MmapSetStreamTest, MultiPassStreamingMatchesSource) {
  testing::ScopedTempDir dir;
  Rng rng(1);
  const SetSystem system = MixedInstance(256, rng);
  const std::string path = dir.FilePath("instance.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());

  MmapSetStream stream(path);
  ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
  EXPECT_TRUE(stream.ItemsRemainValid());
  EXPECT_EQ(stream.universe_size(), system.universe_size());
  EXPECT_EQ(stream.num_sets(), system.num_sets());

  for (int pass = 0; pass < 3; ++pass) {
    stream.BeginPass();
    StreamItem item;
    SetId expected = 0;
    while (stream.Next(&item)) {
      EXPECT_EQ(item.id, expected);
      EXPECT_TRUE(item.set == system.set(expected)) << "pass " << pass;
      ++expected;
    }
    EXPECT_EQ(expected, system.num_sets());
  }
  EXPECT_EQ(stream.passes(), 3u);
}

TEST(MmapSetStreamTest, ViewsSurviveAWholeBufferedPass) {
  testing::ScopedTempDir dir;
  Rng rng(2);
  const SetSystem system = MixedInstance(200, rng);
  const std::string path = dir.FilePath("buffered.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());

  MmapSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  // DrainPass CHECKs ItemsRemainValid() and buffers every view; comparing
  // the buffered views afterwards proves none was invalidated by later
  // Next() calls (the property FileSetStream cannot offer).
  const std::vector<StreamItem> items = DrainPass(stream);
  ASSERT_EQ(items.size(), system.num_sets());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(items[i].set == system.set(static_cast<SetId>(i)));
  }
}

// The cross-source, cross-thread solution-identity contract that used to
// be spot-checked here (Assadi, threshold-greedy) is now proven for every
// solver by the conformance matrix in tests/integration/
// solver_matrix_test.cc; this suite keeps to the stream itself.

TEST(MmapSetStreamTest, ComposesWithStreamAdapters) {
  testing::ScopedTempDir dir;
  Rng rng(9);
  const SetSystem whole = PlantedCoverInstance(128, 16, 4, rng);
  SetSystem alice(128), bob(128);
  for (SetId id = 0; id < whole.num_sets(); ++id) {
    (id % 2 == 0 ? alice : bob).AddSetFromView(whole.set(id));
  }
  const std::string path = dir.FilePath("alice.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(alice, path).ok());

  MmapSetStream a(path);
  ASSERT_TRUE(a.status().ok());
  VectorSetStream b(bob);
  ConcatSetStream concat(a, b);
  // mmap + vector both keep items valid, so the concat does too.
  EXPECT_TRUE(concat.ItemsRemainValid());
  const std::vector<StreamItem> items = DrainPass(concat);
  EXPECT_EQ(items.size(), whole.num_sets());
}

}  // namespace
}  // namespace streamsc
