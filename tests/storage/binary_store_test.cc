#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "instance/generators.h"
#include "instance/serialization.h"
#include "instance/set_system.h"
#include "storage/binary_format.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "testing/scoped_temp_dir.h"
#include "util/random.h"

namespace streamsc {
namespace {

// Writes raw bytes to a file (for corruption fixtures).
void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Full round-trip check: write `system` as sscb1, mmap it back, and
// require every set (and the shape) to match.
void ExpectRoundTrip(const SetSystem& system, const std::string& path) {
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());
  MmapSetStream stream(path);
  ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
  EXPECT_EQ(stream.universe_size(), system.universe_size());
  ASSERT_EQ(stream.num_sets(), system.num_sets());
  // Random access...
  for (SetId id = 0; id < system.num_sets(); ++id) {
    EXPECT_TRUE(stream.set(id) == system.set(id)) << "set " << id;
  }
  // ...and stream order.
  stream.BeginPass();
  StreamItem item;
  SetId expected = 0;
  while (stream.Next(&item)) {
    EXPECT_EQ(item.id, expected);
    EXPECT_TRUE(item.set == system.set(expected));
    ++expected;
  }
  EXPECT_EQ(expected, system.num_sets());
}

TEST(BinaryStoreTest, RoundTripsHandPickedEdgeCases) {
  testing::ScopedTempDir dir;
  // Universe sizes around word boundaries; empty, full, singleton sets.
  const std::size_t sizes[] = {1, 63, 64, 65, 128, 200};
  int file_index = 0;
  for (const std::size_t n : sizes) {
    SetSystem system(n);
    system.AddSet(DynamicBitset(n));       // empty
    system.AddSet(DynamicBitset::Full(n)); // full
    system.AddSetFromIndices({0});
    system.AddSetFromIndices({static_cast<ElementId>(n - 1)});
    ExpectRoundTrip(system,
                    dir.FilePath("edge" + std::to_string(file_index++) +
                                 ".sscb1"));
  }
}

TEST(BinaryStoreTest, RoundTripsEmptySystem) {
  testing::ScopedTempDir dir;
  ExpectRoundTrip(SetSystem(16), dir.FilePath("empty.sscb1"));
}

TEST(BinaryStoreTest, RoundTripPropertyOnRandomSystems) {
  testing::ScopedTempDir dir;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(1000 + seed);
    const std::size_t n = 16 + rng.UniformInt(300);
    const std::size_t m = 1 + rng.UniformInt(40);
    SetSystem system(n);
    for (std::size_t i = 0; i < m; ++i) {
      // Mix densities so both representations appear in one file.
      const double density = (seed + i) % 3 == 0 ? 0.5 : 0.01;
      std::vector<ElementId> members;
      for (std::size_t e = 0; e < n; ++e) {
        if (rng.Bernoulli(density)) {
          members.push_back(static_cast<ElementId>(e));
        }
      }
      system.AddSetFromIndices(members);
    }
    ExpectRoundTrip(system,
                    dir.FilePath("rand" + std::to_string(seed) + ".sscb1"));
  }
}

TEST(BinaryStoreTest, TranscodeMatchesDirectWrite) {
  testing::ScopedTempDir dir;
  Rng rng(5);
  const SetSystem system = PlantedCoverInstance(512, 48, 6, rng);

  const std::string text_path = dir.FilePath("instance.ssc");
  const std::string direct_path = dir.FilePath("direct.sscb1");
  const std::string transcoded_path = dir.FilePath("transcoded.sscb1");
  ASSERT_TRUE(SaveSetSystem(system, text_path).ok());
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, direct_path).ok());
  ASSERT_TRUE(
      BinaryInstanceWriter::TranscodeText(text_path, transcoded_path).ok());

  // The streaming transcode and the in-memory write must agree byte for
  // byte: representation choice depends only on (count, n).
  EXPECT_EQ(ReadFile(direct_path), ReadFile(transcoded_path));

  MmapSetStream stream(transcoded_path);
  ASSERT_TRUE(stream.status().ok());
  for (SetId id = 0; id < system.num_sets(); ++id) {
    EXPECT_TRUE(stream.set(id) == system.set(id));
  }
}

TEST(BinaryStoreTest, TranscodeRejectsMissingAndMalformedText) {
  testing::ScopedTempDir dir;
  EXPECT_EQ(BinaryInstanceWriter::TranscodeText(dir.FilePath("nope.ssc"),
                                                dir.FilePath("out.sscb1"))
                .code(),
            StatusCode::kNotFound);
  const std::string bad = dir.FilePath("bad.ssc");
  WriteFile(bad, "not an instance\n");
  EXPECT_EQ(
      BinaryInstanceWriter::TranscodeText(bad, dir.FilePath("out2.sscb1"))
          .code(),
      StatusCode::kInvalidArgument);
  // Truncated body: header promises 3 sets, file has 1.
  const std::string truncated = dir.FilePath("trunc.ssc");
  WriteFile(truncated, "ssc1 8 3\n2 0 1\n");
  EXPECT_EQ(BinaryInstanceWriter::TranscodeText(truncated,
                                                dir.FilePath("out3.sscb1"))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BinaryStoreTest, WriterEnforcesSetCountContract) {
  testing::ScopedTempDir dir;
  const DynamicBitset set(8);
  {
    BinaryInstanceWriter writer(dir.FilePath("short.sscb1"), 8, 2);
    ASSERT_TRUE(writer.AddSet(SetView(set)).ok());
    EXPECT_EQ(writer.Finish().code(), StatusCode::kFailedPrecondition);
  }
  {
    BinaryInstanceWriter writer(dir.FilePath("long.sscb1"), 8, 1);
    ASSERT_TRUE(writer.AddSet(SetView(set)).ok());
    EXPECT_EQ(writer.AddSet(SetView(set)).code(),
              StatusCode::kFailedPrecondition);
  }
  {
    BinaryInstanceWriter writer(dir.FilePath("mismatch.sscb1"), 8, 1);
    const DynamicBitset wrong(16);
    EXPECT_EQ(writer.AddSet(SetView(wrong)).code(),
              StatusCode::kInvalidArgument);
  }
}

// ---- Corrupt-file rejection ------------------------------------------------

// Builds a small valid file and returns its bytes.
std::string ValidFileBytes(const std::string& path) {
  SetSystem system(100);
  system.AddSetFromIndices({1, 2, 3});           // sparse
  std::vector<ElementId> dense_members;
  for (ElementId e = 0; e < 60; ++e) dense_members.push_back(e);
  system.AddSetFromIndices(dense_members);       // dense
  EXPECT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());
  return ReadFile(path);
}

void ExpectRejected(const std::string& path, const std::string& bytes) {
  WriteFile(path, bytes);
  MmapSetStream stream(path);
  EXPECT_FALSE(stream.status().ok()) << "should have been rejected";
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.num_sets(), 0u);  // rejected stream streams nothing
}

TEST(BinaryStoreTest, RejectsBadMagicAndVersion) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("corrupt.sscb1");
  const std::string good = ValidFileBytes(path);

  std::string bad_magic = good;
  bad_magic[0] = 'x';
  ExpectRejected(path, bad_magic);

  std::string bad_version = good;
  bad_version[8] = 9;  // version field right after the 8-byte magic
  ExpectRejected(path, bad_version);
}

TEST(BinaryStoreTest, RejectsTruncation) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("trunc.sscb1");
  const std::string good = ValidFileBytes(path);
  // Any strict prefix must be rejected: either too small for the header
  // or a header whose file_size no longer matches.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, sizeof(sscb1::FileHeader) - 1,
        sizeof(sscb1::FileHeader), good.size() - 1,
        good.size() - sizeof(sscb1::SetIndexEntry)}) {
    WriteFile(path, good.substr(0, keep));
    MmapSetStream stream(path);
    EXPECT_FALSE(stream.status().ok()) << "kept " << keep << " bytes";
  }
}

TEST(BinaryStoreTest, RejectsOutOfRangeOffsetsAndCounts) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("offsets.sscb1");
  const std::string good = ValidFileBytes(path);

  sscb1::FileHeader header;
  std::memcpy(&header, good.data(), sizeof(header));
  const std::size_t entry0 = static_cast<std::size_t>(header.index_offset);

  // Payload offset pointing past the index.
  std::string bad_offset = good;
  const std::uint64_t huge = good.size() + 1024;
  std::memcpy(&bad_offset[entry0], &huge, sizeof(huge));
  ExpectRejected(path, bad_offset);

  // Misaligned payload offset.
  std::string misaligned = good;
  const std::uint64_t odd = sizeof(sscb1::FileHeader) + 4;
  std::memcpy(&misaligned[entry0], &odd, sizeof(odd));
  ExpectRejected(path, misaligned);

  // Count larger than the universe.
  std::string bad_count = good;
  const std::uint32_t too_many = 101;  // n is 100
  std::memcpy(&bad_count[entry0 + 8], &too_many, sizeof(too_many));
  ExpectRejected(path, bad_count);

  // Unknown representation tag.
  std::string bad_rep = good;
  const std::uint16_t rep = 7;
  std::memcpy(&bad_rep[entry0 + 12], &rep, sizeof(rep));
  ExpectRejected(path, bad_rep);
}

TEST(BinaryStoreTest, RejectsCorruptPayloads) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("payload.sscb1");
  const std::string good = ValidFileBytes(path);

  // Set 0 is sparse {1,2,3}; its payload starts right after the header.
  const std::size_t payload0 = sizeof(sscb1::FileHeader);

  // Out-of-range element id.
  std::string bad_element = good;
  const std::uint32_t big = 1000;  // n is 100
  std::memcpy(&bad_element[payload0], &big, sizeof(big));
  ExpectRejected(path, bad_element);

  // Unsorted (duplicate) ids.
  std::string unsorted = good;
  const std::uint32_t dup = 2;
  std::memcpy(&unsorted[payload0], &dup, sizeof(dup));
  std::memcpy(&unsorted[payload0 + 4], &dup, sizeof(dup));
  ExpectRejected(path, unsorted);
}

TEST(BinaryStoreTest, RejectsNonInstanceFiles) {
  testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("not_binary.sscb1");
  ExpectRejected(path, "ssc1 8 0\n");  // a *text* instance
  ExpectRejected(path, "");
  ExpectRejected(path, std::string(4096, '\0'));

  MmapSetStream missing(dir.FilePath("missing.sscb1"));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(BinaryStoreTest, FormatSniffDistinguishesTextAndBinary) {
  testing::ScopedTempDir dir;
  Rng rng(2);
  const SetSystem system = PlantedCoverInstance(64, 8, 4, rng);
  const std::string text_path = dir.FilePath("w.ssc");
  const std::string binary_path = dir.FilePath("w.sscb1");
  ASSERT_TRUE(SaveSetSystem(system, text_path).ok());
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, binary_path).ok());
  EXPECT_FALSE(IsBinaryInstanceFile(text_path));
  EXPECT_TRUE(IsBinaryInstanceFile(binary_path));
  EXPECT_FALSE(IsBinaryInstanceFile(dir.FilePath("missing")));
}

TEST(BinaryStoreTest, LoadBinarySetSystemMaterializes) {
  testing::ScopedTempDir dir;
  Rng rng(3);
  const SetSystem system = PlantedCoverInstance(256, 24, 4, rng);
  const std::string path = dir.FilePath("mat.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());
  const StatusOr<SetSystem> loaded = LoadBinarySetSystem(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_sets(), system.num_sets());
  for (SetId id = 0; id < system.num_sets(); ++id) {
    EXPECT_TRUE(loaded->set(id) == system.set(id));
  }
}

}  // namespace
}  // namespace streamsc
