// SolveService end-to-end, in process: a daemon on a temp Unix socket,
// driven through real sockets by real client threads. The acceptance
// pins of the serve layer live here:
//   * concurrent clients get responses *byte-identical* (modulo wall
//     clock) to direct SolveSession runs over the same file;
//   * a filled ring answers a typed BUSY (kUnavailable) — it never
//     blocks the acceptor and never aborts;
//   * a per-request memory_budget overrun answers RESOURCE_EXHAUSTED and
//     the daemon keeps serving;
//   * malformed and hostile frames get a typed error + disconnect;
//   * stats scrape and shutdown work over the wire.
// Labeled parallel so the TSan lane replays the whole file at ctest
// widths 1 and 8.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "instance/generators.h"
#include "serve/solve_client.h"
#include "serve/solve_service.h"
#include "storage/binary_instance_writer.h"
#include "testing/scoped_temp_dir.h"
#include "util/random.h"

namespace streamsc::serve {
namespace {

using streamsc::testing::ScopedTempDir;

struct ServiceFixture {
  explicit ServiceFixture(ServiceOptions options = {}) {
    Rng rng(29);
    system = PlantedCoverInstance(192, 24, 3, rng);
    instance_path = dir.FilePath("inst.sscb1");
    EXPECT_TRUE(
        BinaryInstanceWriter::WriteSystem(system, instance_path).ok());
    options.endpoint = "unix:" + dir.FilePath("solve.sock");
    service = std::make_unique<SolveService>(std::move(options));
    EXPECT_TRUE(service->AddInstance("inst", instance_path).ok());
    const Status started = service->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    endpoint_spec = EndpointSpec(service->endpoint());
  }

  ~ServiceFixture() {
    if (service != nullptr) service->Stop();
  }

  ScopedTempDir dir;
  SetSystem system;
  std::string instance_path;
  std::string endpoint_spec;
  std::unique_ptr<SolveService> service;
};

// The wire bytes of a response with its wall-clock fields zeroed — the
// deterministic remainder must be byte-identical across clients, thread
// counts, and direct runs.
std::string DeterministicBytes(SolveResponse response) {
  response.wall_ns = 0;
  for (WireBreakdownRow& row : response.breakdown) row.wall_ns = 0;
  return EncodeResponse(response);
}

// What the daemon must answer for (solver, args): a direct SolveSession
// over the same file, marshalled through the same codec.
std::string ExpectedBytes(const std::string& path,
                          const std::string& solver,
                          std::vector<std::string> args) {
  StatusOr<SolveSession> session = SolveSession::Open(path);
  EXPECT_TRUE(session.ok());
  args.push_back("threads=1");  // the daemon's default engine width
  StatusOr<SolveReport> report = session->Solve(solver, args);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return DeterministicBytes(
      ResponseFromReport(*report, /*include_breakdown=*/false));
}

TEST(SolveServiceTest, PingStatsAndShutdownRoundTrip) {
  ServiceFixture fx;
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  StatusOr<std::string> stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("streamsc_serve_connections"), std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("streamsc_serve_ring_capacity"), std::string::npos);
  EXPECT_NE(stats->find("streamsc_serve_request_latency_ns"),
            std::string::npos);

  EXPECT_TRUE(client->Shutdown().ok());
  fx.service->Wait();  // returns: the wire shutdown stopped the daemon
}

TEST(SolveServiceTest, SolveMatchesDirectRunByteForByte) {
  ServiceFixture fx;
  const std::string expected =
      ExpectedBytes(fx.instance_path, "assadi", {"alpha=2"});

  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());
  StatusOr<SolveResponse> response =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->feasible);
  EXPECT_EQ(response->source, "mmap");
  EXPECT_GT(response->wall_ns, 0u);
  EXPECT_EQ(DeterministicBytes(*response), expected);

  // Same connection, repeated: the warm slot session must not drift.
  StatusOr<SolveResponse> again =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(DeterministicBytes(*again), expected);
}

TEST(SolveServiceTest, EightConcurrentClientsAreByteIdenticalToDirect) {
  ServiceOptions options;
  options.workers = 4;
  options.ring_capacity = 8;
  ServiceFixture fx(options);

  // Two distinct request shapes interleaved across clients, so slots
  // serve a mix (and per-slot sessions see both solver families).
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      requests = {{"assadi", {"alpha=2"}}, {"threshold_greedy", {"beta=4"}}};
  std::vector<std::string> expected;
  for (const auto& [solver, args] : requests) {
    expected.push_back(ExpectedBytes(fx.instance_path, solver, args));
  }

  constexpr int kClients = 8;
  constexpr int kSolvesPerClient = 3;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto fail = [&](const std::string& what) {
        failures[static_cast<std::size_t>(c)] = what;
      };
      StatusOr<SolveClient> client =
          SolveClient::Connect(fx.endpoint_spec);
      if (!client.ok()) return fail(client.status().ToString());
      const std::size_t shape = static_cast<std::size_t>(c) % requests.size();
      for (int i = 0; i < kSolvesPerClient; ++i) {
        StatusOr<SolveResponse> response = client->Solve(
            "inst", requests[shape].first, requests[shape].second);
        if (!response.ok()) return fail(response.status().ToString());
        if (DeterministicBytes(*response) != expected[shape]) {
          return fail("response bytes diverged from the direct run");
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[static_cast<std::size_t>(c)].empty())
        << "client " << c << ": " << failures[static_cast<std::size_t>(c)];
  }

  // The scrape reflects the fleet: 24 solves, all ok.
  StatusOr<SolveClient> scraper = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(scraper.ok());
  StatusOr<std::string> stats = scraper->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("streamsc_serve_requests_ok 24"),
            std::string::npos)
      << *stats;
}

TEST(SolveServiceTest, FullRingAnswersTypedBusy) {
  // One worker, one ring slot, deterministic fill: client A occupies the
  // worker, B occupies the single slot, so C must be turned away with
  // kUnavailable — immediately, not after a queue-forever.
  ServiceOptions options;
  options.workers = 1;
  options.ring_capacity = 1;
  ServiceFixture fx(options);

  StatusOr<SolveClient> a = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Ping().ok());  // the round-trip proves the worker holds A

  StatusOr<SolveClient> b = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(b.ok());
  // B sits queued; nothing to assert yet (any request would block behind
  // the busy worker). C now overflows the ring.
  StatusOr<SolveClient> c = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(c.ok());
  const Status busy = c->Ping();
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), StatusCode::kUnavailable) << busy.ToString();
  EXPECT_NE(busy.message().find("busy"), std::string::npos);

  // Release the worker: A hangs up, B gets served — BUSY was admission
  // control, not a service failure.
  a = SolveClient();  // move-assign an empty client closes A's socket
  EXPECT_TRUE(b->Ping().ok());
}

TEST(SolveServiceTest, OverBudgetRequestIsResourceExhaustedNotFatal) {
  ServiceFixture fx;  // no server-side cap: the client's budget rides
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());

  StatusOr<SolveResponse> tiny = client->Solve(
      "inst", "assadi", {"alpha=2", "memory_budget=64"});
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), StatusCode::kResourceExhausted)
      << tiny.status().ToString();

  // Same connection, same slot session: the unwound arena serves the
  // next request as if nothing happened.
  StatusOr<SolveResponse> fine =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_TRUE(fine->feasible);
}

TEST(SolveServiceTest, ServerBudgetCapOverridesTheClient) {
  ServiceOptions options;
  options.memory_budget = 64;  // operator-enforced ceiling
  ServiceFixture fx(options);
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());
  // The client asks for an unlimited budget; the server's cap wins.
  StatusOr<SolveResponse> response = client->Solve(
      "inst", "assadi", {"alpha=2", "memory_budget=0"});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
}

TEST(SolveServiceTest, UnknownInstanceAndSolverAreTypedErrors) {
  ServiceFixture fx;
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());
  StatusOr<SolveResponse> ghost = client->Solve("ghost", "assadi", {});
  ASSERT_FALSE(ghost.ok());
  EXPECT_EQ(ghost.status().code(), StatusCode::kNotFound);
  StatusOr<SolveResponse> nosolver = client->Solve("inst", "nope", {});
  ASSERT_FALSE(nosolver.ok());
  // Either way the connection (and daemon) survive.
  EXPECT_TRUE(client->Ping().ok());
}

TEST(SolveServiceTest, MalformedFramesGetTypedErrorAndDisconnect) {
  ServiceFixture fx;
  StatusOr<Endpoint> endpoint = ParseEndpoint(fx.endpoint_spec);
  ASSERT_TRUE(endpoint.ok());

  {
    // Garbage payload in a well-formed frame.
    StatusOr<int> fd = ConnectTo(*endpoint);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(*fd, "\xDE\xAD\xBE\xEF garbage").ok());
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(ReadFrame(*fd, &payload, &eof).ok());
    ASSERT_FALSE(eof);
    SolveResponse response;
    ASSERT_TRUE(DecodeResponse(payload, &response).ok());
    EXPECT_EQ(ResponseStatus(response).code(),
              StatusCode::kInvalidArgument);
    // The daemon then drops the unsynchronizable connection.
    ASSERT_TRUE(ReadFrame(*fd, &payload, &eof).ok());
    EXPECT_TRUE(eof);
    CloseFd(*fd);
  }
  {
    // A hostile length prefix announcing 4 GiB.
    StatusOr<int> fd = ConnectTo(*endpoint);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(SendAll(*fd, std::string("\xFF\xFF\xFF\xFF", 4)).ok());
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(ReadFrame(*fd, &payload, &eof).ok());
    ASSERT_FALSE(eof);
    SolveResponse response;
    ASSERT_TRUE(DecodeResponse(payload, &response).ok());
    EXPECT_EQ(ResponseStatus(response).code(),
              StatusCode::kInvalidArgument);
    CloseFd(*fd);
  }
  // And the daemon still serves honest clients.
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST(SolveServiceTest, TracedDaemonServesPerPassBreakdowns) {
  ServiceOptions options;
  options.enable_trace = true;
  ServiceFixture fx(options);
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());

  StatusOr<SolveResponse> traced = client->Solve(
      "inst", "assadi", {"alpha=2"}, /*want_breakdown=*/true);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_FALSE(traced->breakdown.empty());
  for (const WireBreakdownRow& row : traced->breakdown) {
    EXPECT_FALSE(row.name.empty());
  }
  // The deterministic remainder still matches an untraced direct run.
  SolveResponse stripped = *traced;
  stripped.breakdown.clear();
  EXPECT_EQ(DeterministicBytes(stripped),
            ExpectedBytes(fx.instance_path, "assadi", {"alpha=2"}));

  // Untraced requests on the same traced daemon skip the breakdown.
  StatusOr<SolveResponse> plain =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->breakdown.empty());
}

TEST(SolveServiceTest, AddInstanceAfterStartServesImmediately) {
  ServiceFixture fx;
  ASSERT_TRUE(fx.service->AddInstance("late", fx.instance_path).ok());
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());
  StatusOr<SolveResponse> response =
      client->Solve("late", "assadi", {"alpha=2"});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->feasible);
}

TEST(SolveServiceTest, ReloadAddsSwapsAndRetiresOverTheWire) {
  ServiceFixture fx;
  StatusOr<SolveClient> client = SolveClient::Connect(fx.endpoint_spec);
  ASSERT_TRUE(client.ok());

  // Add a brand-new instance by reload, solve it.
  Rng rng(41);
  const SetSystem other = PlantedCoverInstance(128, 16, 3, rng);
  const std::string other_path = fx.dir.FilePath("other.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(other, other_path).ok());
  ASSERT_TRUE(client->Reload("other", other_path).ok());
  StatusOr<SolveResponse> added = client->Solve("other", "assadi", {});
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_TRUE(added->feasible);

  // Swap an existing name to a different file: answers change with it.
  const std::string expected_other =
      ExpectedBytes(other_path, "assadi", {"alpha=2"});
  ASSERT_TRUE(client->Reload("inst", other_path).ok());
  StatusOr<SolveResponse> swapped =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(DeterministicBytes(*swapped), expected_other);

  // A failed reload (missing file) keeps the old binding serving.
  const Status bad = client->Reload("inst", fx.dir.FilePath("nope.sscb1"));
  ASSERT_FALSE(bad.ok());
  StatusOr<SolveResponse> still =
      client->Solve("inst", "assadi", {"alpha=2"});
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(DeterministicBytes(*still), expected_other);

  // Empty path retires: the next solve is NotFound, and the daemon keeps
  // serving everything else.
  ASSERT_TRUE(client->Reload("other", "").ok());
  StatusOr<SolveResponse> retired = client->Solve("other", "assadi", {});
  ASSERT_FALSE(retired.ok());
  EXPECT_EQ(retired.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());

  // The reload counters made it to the stats surface.
  StatusOr<std::string> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("streamsc_serve_reloads"), std::string::npos)
      << *stats;
}

TEST(SolveServiceTest, ReloadMidTrafficLosesNoRequests) {
  ServiceOptions options;
  options.workers = 4;
  options.ring_capacity = 64;
  ServiceFixture fx(options);

  // A second instance file with different contents under the same name,
  // swapped in and out while clients hammer solves: every request must
  // succeed and match one of the two files byte-for-byte.
  Rng rng(43);
  const SetSystem v2 = PlantedCoverInstance(192, 24, 4, rng);
  const std::string v2_path = fx.dir.FilePath("inst_v2.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(v2, v2_path).ok());
  const std::string expected_v1 =
      ExpectedBytes(fx.instance_path, "assadi", {"alpha=2"});
  const std::string expected_v2 =
      ExpectedBytes(v2_path, "assadi", {"alpha=2"});

  constexpr int kClients = 3;
  constexpr int kSolvesPerClient = 12;
  std::vector<std::thread> threads;
  std::vector<char> clients_ok(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      bool all_ok = true;
      for (int i = 0; i < kSolvesPerClient; ++i) {
        StatusOr<SolveClient> client =
            SolveClient::Connect(fx.endpoint_spec);
        if (!client.ok()) {
          all_ok = false;
          continue;
        }
        StatusOr<SolveResponse> response =
            client->Solve("inst", "assadi", {"alpha=2"});
        if (!response.ok()) {
          all_ok = false;
          continue;
        }
        const std::string bytes = DeterministicBytes(*response);
        all_ok = all_ok && (bytes == expected_v1 || bytes == expected_v2);
      }
      clients_ok[static_cast<std::size_t>(t)] = all_ok;
    });
  }
  // The reloader: swap the instance back and forth while traffic flows.
  threads.emplace_back([&] {
    StatusOr<SolveClient> reloader = SolveClient::Connect(fx.endpoint_spec);
    ASSERT_TRUE(reloader.ok());
    for (int i = 0; i < 10; ++i) {
      const Status swapped = reloader->Reload(
          "inst", (i % 2) == 0 ? v2_path : fx.instance_path);
      ASSERT_TRUE(swapped.ok()) << swapped.ToString();
    }
  });
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_TRUE(clients_ok[static_cast<std::size_t>(t)]) << "client " << t;
  }
}

TEST(SolveServiceTest, TcpLoopbackEndpointWorksWithKernelAssignedPort) {
  Rng rng(31);
  const SetSystem system = PlantedCoverInstance(96, 12, 3, rng);
  ScopedTempDir dir;
  const std::string path = dir.FilePath("inst.sscb1");
  ASSERT_TRUE(BinaryInstanceWriter::WriteSystem(system, path).ok());

  ServiceOptions options;
  options.endpoint = "tcp:0";
  SolveService service(std::move(options));
  ASSERT_TRUE(service.AddInstance("inst", path).ok());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_GT(service.endpoint().port, 0);

  StatusOr<SolveClient> client =
      SolveClient::Connect(EndpointSpec(service.endpoint()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  StatusOr<SolveResponse> response =
      client->Solve("inst", "threshold_greedy", {"beta=2"});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->feasible);
  service.Stop();
}

}  // namespace
}  // namespace streamsc::serve
