// serve/frame.h codec: round-trips for every request/response shape, and
// the totality contract — truncated, oversized, or garbage payloads are
// InvalidArgument, never an abort or out-of-bounds read. (The same
// surface is attacked randomly by fuzz/fuzz_serve_frame.cc; these are
// the deterministic pins.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/frame.h"

namespace streamsc::serve {
namespace {

SolveRequest RoundTripRequest(const SolveRequest& in) {
  SolveRequest out;
  const Status status = DecodeRequest(EncodeRequest(in), &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

SolveResponse RoundTripResponse(const SolveResponse& in) {
  SolveResponse out;
  const Status status = DecodeResponse(EncodeResponse(in), &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(FrameTest, SolveRequestRoundTrip) {
  SolveRequest request;
  request.type = RequestType::kSolve;
  request.want_breakdown = true;
  request.instance = "web-graph";
  request.solver = "assadi";
  request.args = {"alpha=2", "epsilon=0.5", "memory_budget=1048576"};

  const SolveRequest decoded = RoundTripRequest(request);
  EXPECT_EQ(decoded.type, RequestType::kSolve);
  EXPECT_TRUE(decoded.want_breakdown);
  EXPECT_EQ(decoded.instance, request.instance);
  EXPECT_EQ(decoded.solver, request.solver);
  EXPECT_EQ(decoded.args, request.args);
}

TEST(FrameTest, ControlRequestsRoundTrip) {
  for (const RequestType type :
       {RequestType::kStats, RequestType::kPing, RequestType::kShutdown}) {
    SolveRequest request;
    request.type = type;
    const SolveRequest decoded = RoundTripRequest(request);
    EXPECT_EQ(decoded.type, type);
    EXPECT_TRUE(decoded.instance.empty());
    EXPECT_TRUE(decoded.args.empty());
  }
}

TEST(FrameTest, ReportResponseRoundTrip) {
  SolveResponse response;
  response.type = ResponseType::kReport;
  response.feasible = true;
  response.kind = SolverKind::kMaxCoverage;
  response.passes = 5;
  response.extra = 96;
  response.peak_space_bytes = 4096;
  response.arena_high_water = 8192;
  response.wall_ns = 1234567;
  response.solver = "sieve_mc";
  response.algorithm = "sieve_mc(k=2)";
  response.source = "mmap";
  response.solution = {3, 1, 4, 1, 5};
  response.counters = {
      {"engine.items_scanned", CounterKind::kCounter, 640},
      {"arena.high_water_bytes", CounterKind::kGauge, 8192}};
  response.breakdown = {{"threshold", 900, 128, 8, 2, 77},
                        {"subtract", 450, 128, 8, 0, 0}};

  const SolveResponse decoded = RoundTripResponse(response);
  EXPECT_EQ(decoded.type, ResponseType::kReport);
  EXPECT_TRUE(decoded.feasible);
  EXPECT_EQ(decoded.kind, SolverKind::kMaxCoverage);
  EXPECT_EQ(decoded.passes, 5u);
  EXPECT_EQ(decoded.extra, 96u);
  EXPECT_EQ(decoded.peak_space_bytes, 4096u);
  EXPECT_EQ(decoded.arena_high_water, 8192u);
  EXPECT_EQ(decoded.wall_ns, 1234567u);
  EXPECT_EQ(decoded.solver, "sieve_mc");
  EXPECT_EQ(decoded.algorithm, "sieve_mc(k=2)");
  EXPECT_EQ(decoded.source, "mmap");
  EXPECT_EQ(decoded.solution, response.solution);
  ASSERT_EQ(decoded.counters.size(), 2u);
  EXPECT_EQ(decoded.counters[0].name, "engine.items_scanned");
  EXPECT_EQ(decoded.counters[0].kind, CounterKind::kCounter);
  EXPECT_EQ(decoded.counters[0].value, 640u);
  EXPECT_EQ(decoded.counters[1].kind, CounterKind::kGauge);
  ASSERT_EQ(decoded.breakdown.size(), 2u);
  EXPECT_EQ(decoded.breakdown[0].name, "threshold");
  EXPECT_EQ(decoded.breakdown[0].wall_ns, 900u);
  EXPECT_EQ(decoded.breakdown[1].elements_covered, 0u);
}

TEST(FrameTest, ErrorResponseRoundTripAndStatusMapping) {
  const Status busy = Status::Unavailable("service busy: retry");
  const SolveResponse encoded = ErrorResponse(busy);
  const SolveResponse decoded = RoundTripResponse(encoded);
  EXPECT_EQ(decoded.type, ResponseType::kError);
  const Status back = ResponseStatus(decoded);
  EXPECT_EQ(back.code(), StatusCode::kUnavailable);
  EXPECT_EQ(back.message(), "service busy: retry");

  // Every distinct failure code survives the wire.
  for (const Status& status :
       {Status::InvalidArgument("a"), Status::NotFound("b"),
        Status::ResourceExhausted("c"), Status::FailedPrecondition("d"),
        Status::Internal("e")}) {
    const SolveResponse round = RoundTripResponse(ErrorResponse(status));
    EXPECT_EQ(ResponseStatus(round).code(), status.code());
  }
}

TEST(FrameTest, StatsAndControlResponsesRoundTrip) {
  SolveResponse stats;
  stats.type = ResponseType::kStatsText;
  stats.stats_text = "# TYPE streamsc_serve_requests counter\n"
                     "streamsc_serve_requests 42\n";
  EXPECT_EQ(RoundTripResponse(stats).stats_text, stats.stats_text);

  SolveResponse pong;
  pong.type = ResponseType::kPong;
  EXPECT_EQ(RoundTripResponse(pong).type, ResponseType::kPong);
  SolveResponse bye;
  bye.type = ResponseType::kBye;
  EXPECT_EQ(RoundTripResponse(bye).type, ResponseType::kBye);
}

TEST(FrameTest, EveryTruncationOfAValidRequestIsRejected) {
  SolveRequest request;
  request.type = RequestType::kSolve;
  request.instance = "inst";
  request.solver = "assadi";
  request.args = {"alpha=2"};
  const std::string wire = EncodeRequest(request);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    SolveRequest decoded;
    const Status status =
        DecodeRequest(std::string_view(wire).substr(0, cut), &decoded);
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " accepted";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(FrameTest, EveryTruncationOfAValidResponseIsRejected) {
  SolveResponse response;
  response.type = ResponseType::kReport;
  response.solver = "assadi";
  response.algorithm = "assadi(alpha=2)";
  response.source = "mmap";
  response.solution = {1, 2, 3};
  response.counters = {{"engine.items_scanned", CounterKind::kCounter, 9}};
  response.breakdown = {{"threshold", 10, 1, 1, 1, 1}};
  const std::string wire = EncodeResponse(response);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    SolveResponse decoded;
    const Status status =
        DecodeResponse(std::string_view(wire).substr(0, cut), &decoded);
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " accepted";
  }
}

TEST(FrameTest, TrailingGarbageIsRejected) {
  SolveRequest ping;
  ping.type = RequestType::kPing;
  std::string wire = EncodeRequest(ping);
  wire.push_back('\x00');
  SolveRequest decoded;
  EXPECT_FALSE(DecodeRequest(wire, &decoded).ok());

  SolveResponse pong;
  pong.type = ResponseType::kPong;
  std::string rwire = EncodeResponse(pong);
  rwire += "junk";
  SolveResponse rdecoded;
  EXPECT_FALSE(DecodeResponse(rwire, &rdecoded).ok());
}

TEST(FrameTest, BadVersionTypeAndEnumBytesAreRejected) {
  SolveRequest ping;
  ping.type = RequestType::kPing;
  std::string wire = EncodeRequest(ping);
  {
    std::string bad = wire;
    bad[0] = static_cast<char>(kProtocolVersion + 1);
    SolveRequest decoded;
    const Status status = DecodeRequest(bad, &decoded);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("version"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[1] = '\x7F';  // no such RequestType
    SolveRequest decoded;
    EXPECT_FALSE(DecodeRequest(bad, &decoded).ok());
  }
  {
    // An error response must carry a known non-Ok status code.
    SolveResponse error = ErrorResponse(Status::Internal("x"));
    std::string bad = EncodeResponse(error);
    bad[4] = '\x63';  // status code 99
    SolveResponse decoded;
    EXPECT_FALSE(DecodeResponse(bad, &decoded).ok());
    bad[4] = '\x00';  // StatusCode::kOk is not an error
    EXPECT_FALSE(DecodeResponse(bad, &decoded).ok());
  }
}

TEST(FrameTest, HostileSolutionCountCannotBalloonMemory) {
  // A report announcing 4 billion solution ids with a 50-byte payload
  // must be rejected before any resize happens.
  SolveResponse response;
  response.type = ResponseType::kReport;
  std::string wire = EncodeResponse(response);
  // The u32 solution count sits right after the fixed scalars and the
  // three (empty) strings; find it by rebuilding: empty response layout
  // is deterministic, count field is the 4 bytes before the final two
  // u16 zero counts.
  ASSERT_GE(wire.size(), 8u);
  const std::size_t count_at = wire.size() - 8;
  wire[count_at] = '\xFF';
  wire[count_at + 1] = '\xFF';
  wire[count_at + 2] = '\xFF';
  wire[count_at + 3] = '\xFF';
  SolveResponse decoded;
  const Status status = DecodeResponse(wire, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("solution count"), std::string::npos)
      << status.ToString();
}

TEST(FrameTest, GarbagePayloadsNeverAbort) {
  // Deterministic pseudo-garbage across a range of lengths; decoders
  // must return (any) Status without crashing.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t len = 0; len < 300; ++len) {
    std::string payload(len, '\0');
    for (char& c : payload) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<char>(state >> 56);
    }
    SolveRequest request;
    (void)DecodeRequest(payload, &request);
    SolveResponse response;
    (void)DecodeResponse(payload, &response);
  }
  SUCCEED();
}

}  // namespace
}  // namespace streamsc::serve
