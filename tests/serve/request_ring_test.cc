// RequestRing: the daemon's bounded admission queue. Pinned here: FIFO
// order, TryPush's never-blocking full/closed behaviour (the BUSY
// policy), drain-then-exit shutdown, and a producer/consumer stress run
// that the TSan lane (label parallel) replays at engine widths 1 and 8.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "serve/request_ring.h"

namespace streamsc::serve {
namespace {

TEST(RequestRingTest, FifoWithinCapacity) {
  RequestRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  for (int fd = 10; fd < 14; ++fd) EXPECT_TRUE(ring.TryPush(fd));
  EXPECT_EQ(ring.size(), 4u);
  int fd = -1;
  for (int expected = 10; expected < 14; ++expected) {
    ASSERT_TRUE(ring.Pop(&fd));
    EXPECT_EQ(fd, expected);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(RequestRingTest, FullRingRejectsImmediately) {
  RequestRing ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  // Never blocks, just reports no room — the acceptor's BUSY trigger.
  EXPECT_FALSE(ring.TryPush(3));
  int fd = -1;
  ASSERT_TRUE(ring.Pop(&fd));
  EXPECT_EQ(fd, 1);
  // Freed a slot: admission resumes, wrap-around included.
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_FALSE(ring.TryPush(4));
}

TEST(RequestRingTest, CloseDrainsThenStops) {
  RequestRing ring(4);
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_TRUE(ring.TryPush(8));
  ring.Close();
  // Closed: no new admissions...
  EXPECT_FALSE(ring.TryPush(9));
  // ...but queued connections still drain in order.
  int fd = -1;
  ASSERT_TRUE(ring.Pop(&fd));
  EXPECT_EQ(fd, 7);
  ASSERT_TRUE(ring.Pop(&fd));
  EXPECT_EQ(fd, 8);
  // Then Pop reports end-of-service instead of blocking forever.
  EXPECT_FALSE(ring.Pop(&fd));
  // Idempotent.
  ring.Close();
  EXPECT_FALSE(ring.Pop(&fd));
}

TEST(RequestRingTest, CloseWakesBlockedConsumers) {
  RequestRing ring(2);
  std::atomic<int> woken{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      int fd = -1;
      while (ring.Pop(&fd)) {
      }
      woken.fetch_add(1);
    });
  }
  ring.Close();
  for (std::thread& consumer : consumers) consumer.join();
  EXPECT_EQ(woken.load(), 4);
}

TEST(RequestRingTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  RequestRing ring(8);

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      int fd = -1;
      while (ring.Pop(&fd)) received[static_cast<std::size_t>(c)].push_back(fd);
    });
  }

  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int fd = p * kPerProducer + i;
        // Spin on the full ring like the acceptor would retry a BUSY
        // client: every value must eventually be admitted exactly once.
        while (!ring.TryPush(fd)) {
          std::this_thread::yield();
          ++rejected;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  ring.Close();
  for (std::thread& consumer : consumers) consumer.join();

  std::set<int> all;
  std::size_t total = 0;
  for (const std::vector<int>& batch : received) {
    total += batch.size();
    all.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(all.size(), total) << "a queued fd was duplicated or lost";
}

}  // namespace
}  // namespace streamsc::serve
