#include <gtest/gtest.h>

#include <string>

#include "instance/generators.h"
#include "instance/serialization.h"
#include "util/random.h"

namespace streamsc {
namespace {

// Failure-injection suite: the parser must never crash, hang, or return a
// malformed SetSystem on corrupted input — only Ok-with-valid-system or a
// clean InvalidArgument.

std::string BaseDocument() {
  Rng rng(1);
  return SetSystemToString(UniformRandomInstance(64, 8, 12, rng));
}

// Parsing either succeeds with a self-consistent system or fails cleanly.
void ExpectParseIsTotal(const std::string& text) {
  const StatusOr<SetSystem> parsed = SetSystemFromString(text);
  if (parsed.ok()) {
    EXPECT_TRUE(parsed->Validate().ok());
    for (SetId id = 0; id < parsed->num_sets(); ++id) {
      EXPECT_EQ(parsed->set(id).size(), parsed->universe_size());
    }
  } else {
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

class SerializationMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationMutationTest, SingleByteMutationsAreHandled) {
  const std::string base = BaseDocument();
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    const std::size_t pos =
        static_cast<std::size_t>(rng.UniformInt(mutated.size()));
    // Mutate into a printable byte or newline: structural damage without
    // leaving the text domain the format is defined on.
    const char replacement =
        "0123456789 \n#x-"[rng.UniformInt(15)];
    mutated[pos] = replacement;
    ExpectParseIsTotal(mutated);
  }
}

TEST_P(SerializationMutationTest, TruncationsAreHandled) {
  const std::string base = BaseDocument();
  Rng rng(200 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t keep =
        static_cast<std::size_t>(rng.UniformInt(base.size()));
    ExpectParseIsTotal(base.substr(0, keep));
  }
}

TEST_P(SerializationMutationTest, LineDeletionsAreHandled) {
  const std::string base = BaseDocument();
  Rng rng(300 + GetParam());
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < base.size()) {
    const std::size_t end = base.find('\n', start);
    lines.push_back(base.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t victim =
        static_cast<std::size_t>(rng.UniformInt(lines.size()));
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == victim) continue;
      mutated += lines[i];
      mutated += '\n';
    }
    ExpectParseIsTotal(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationMutationTest,
                         ::testing::Range(0, 4));

TEST(SerializationRobustnessTest, AdversarialDocuments) {
  ExpectParseIsTotal("ssc1 18446744073709551615 1\n1 0\n");  // huge n
  ExpectParseIsTotal("ssc1 4 18446744073709551615\n");       // huge m
  ExpectParseIsTotal("ssc1 -4 1\n1 0\n");                    // negative n
  ExpectParseIsTotal("ssc1 4 1\n-1 0\n");                    // negative k
  ExpectParseIsTotal("ssc1 4 1\n1 -2\n");                    // negative elem
  ExpectParseIsTotal(std::string(1 << 16, '#'));             // comment blob
  ExpectParseIsTotal("ssc1 4 2\n0\n0\n");                    // empty sets
}

TEST(SerializationEdgeCaseTest, EmptySetsParse) {
  const StatusOr<SetSystem> parsed =
      SetSystemFromString("ssc1 4 3\n0\n2 1 2\n0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_sets(), 3u);
  EXPECT_EQ(parsed->set(0).CountSet(), 0u);
  EXPECT_EQ(parsed->set(1).CountSet(), 2u);
  EXPECT_EQ(parsed->set(2).CountSet(), 0u);
}

TEST(SerializationEdgeCaseTest, CrlfLineEndingsParse) {
  // Windows-authored files: every line ends \r\n. The \r must neither
  // corrupt the last token nor count as content.
  const StatusOr<SetSystem> parsed =
      SetSystemFromString("ssc1 4 2\r\n2 0 1\r\n1 3\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->universe_size(), 4u);
  ASSERT_EQ(parsed->num_sets(), 2u);
  EXPECT_TRUE(parsed->set(0).Test(0));
  EXPECT_TRUE(parsed->set(0).Test(1));
  EXPECT_TRUE(parsed->set(1).Test(3));
}

TEST(SerializationEdgeCaseTest, CommentOnlyTrailingLinesParse) {
  const StatusOr<SetSystem> parsed = SetSystemFromString(
      "# leading comment\nssc1 4 1\n2 0 1\n# trailing comment\n\n   \n"
      "# another\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_sets(), 1u);
}

TEST(SerializationEdgeCaseTest, HeaderSetCountMismatchRejected) {
  // Header promises more sets than the body provides...
  const StatusOr<SetSystem> missing =
      SetSystemFromString("ssc1 4 3\n1 0\n1 1\n");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  // ...or fewer (trailing non-comment content after the last set).
  const StatusOr<SetSystem> extra =
      SetSystemFromString("ssc1 4 1\n1 0\n1 1\n");
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationEdgeCaseTest, SetElementCountMismatchRejected) {
  // The per-line k must match the listed elements exactly.
  EXPECT_FALSE(SetSystemFromString("ssc1 4 1\n3 0 1\n").ok());   // too few
  EXPECT_FALSE(SetSystemFromString("ssc1 4 1\n1 0 1\n").ok());   // too many
  EXPECT_FALSE(SetSystemFromString("ssc1 4 1\n2 1 1\n").ok());   // duplicate
}

TEST(SerializationRobustnessTest, HugeDeclaredCountsDoNotAllocate) {
  // m = 2^60 with no set lines must fail fast (line-by-line parsing), not
  // try to reserve memory for 2^60 sets.
  const StatusOr<SetSystem> parsed =
      SetSystemFromString("ssc1 8 1152921504606846976\n");
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace streamsc
