#include "instance/set_system.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

SetSystem MakeSmall() {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  return system;
}

TEST(SetSystemTest, BasicAccessors) {
  const SetSystem system = MakeSmall();
  EXPECT_EQ(system.universe_size(), 6u);
  EXPECT_EQ(system.num_sets(), 3u);
  EXPECT_TRUE(system.set(0).Test(1));
  EXPECT_FALSE(system.set(1).Test(1));
}

TEST(SetSystemTest, AddSetReturnsSequentialIds) {
  SetSystem system(4);
  EXPECT_EQ(system.AddSetFromIndices({0}), 0u);
  EXPECT_EQ(system.AddSetFromIndices({1}), 1u);
  EXPECT_EQ(system.AddSetFromIndices({}), 2u);
}

TEST(SetSystemTest, UnionOf) {
  const SetSystem system = MakeSmall();
  const DynamicBitset u = system.UnionOf({0, 1});
  EXPECT_EQ(u.CountSet(), 4u);
  EXPECT_TRUE(u.Test(3));
  EXPECT_FALSE(u.Test(4));
}

TEST(SetSystemTest, UnionOfEmptyListIsEmpty) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.UnionOf({}).None());
}

TEST(SetSystemTest, UnionAll) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.UnionAll().All());
}

TEST(SetSystemTest, CoverageOf) {
  const SetSystem system = MakeSmall();
  EXPECT_EQ(system.CoverageOf({0}), 3u);
  EXPECT_EQ(system.CoverageOf({0, 1, 2}), 6u);
}

TEST(SetSystemTest, IsFeasibleCover) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.IsFeasibleCover({0, 1, 2}));
  EXPECT_FALSE(system.IsFeasibleCover({0, 1}));
}

TEST(SetSystemTest, IsCoverable) {
  EXPECT_TRUE(MakeSmall().IsCoverable());
  SetSystem gap(3);
  gap.AddSetFromIndices({0});
  EXPECT_FALSE(gap.IsCoverable());
}

TEST(SetSystemTest, ValidateOk) {
  EXPECT_TRUE(MakeSmall().Validate().ok());
}

TEST(SetSystemTest, TotalIncidences) {
  EXPECT_EQ(MakeSmall().TotalIncidences(), 7u);
}

TEST(SetSystemTest, DebugString) {
  EXPECT_EQ(MakeSmall().DebugString(), "SetSystem(n=6, m=3)");
}

TEST(SetSystemTest, EmptySystem) {
  SetSystem system(0);
  EXPECT_TRUE(system.IsCoverable());  // nothing to cover
  EXPECT_TRUE(system.UnionAll().All());
}

}  // namespace
}  // namespace streamsc
