#include "instance/set_system.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

SetSystem MakeSmall() {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  return system;
}

TEST(SetSystemTest, BasicAccessors) {
  const SetSystem system = MakeSmall();
  EXPECT_EQ(system.universe_size(), 6u);
  EXPECT_EQ(system.num_sets(), 3u);
  EXPECT_TRUE(system.set(0).Test(1));
  EXPECT_FALSE(system.set(1).Test(1));
}

TEST(SetSystemTest, AddSetReturnsSequentialIds) {
  SetSystem system(4);
  EXPECT_EQ(system.AddSetFromIndices({0}), 0u);
  EXPECT_EQ(system.AddSetFromIndices({1}), 1u);
  EXPECT_EQ(system.AddSetFromIndices({}), 2u);
}

TEST(SetSystemTest, UnionOf) {
  const SetSystem system = MakeSmall();
  const DynamicBitset u = system.UnionOf({0, 1});
  EXPECT_EQ(u.CountSet(), 4u);
  EXPECT_TRUE(u.Test(3));
  EXPECT_FALSE(u.Test(4));
}

TEST(SetSystemTest, UnionOfEmptyListIsEmpty) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.UnionOf({}).None());
}

TEST(SetSystemTest, UnionAll) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.UnionAll().All());
}

TEST(SetSystemTest, CoverageOf) {
  const SetSystem system = MakeSmall();
  EXPECT_EQ(system.CoverageOf({0}), 3u);
  EXPECT_EQ(system.CoverageOf({0, 1, 2}), 6u);
}

TEST(SetSystemTest, IsFeasibleCover) {
  const SetSystem system = MakeSmall();
  EXPECT_TRUE(system.IsFeasibleCover({0, 1, 2}));
  EXPECT_FALSE(system.IsFeasibleCover({0, 1}));
}

TEST(SetSystemTest, IsCoverable) {
  EXPECT_TRUE(MakeSmall().IsCoverable());
  SetSystem gap(3);
  gap.AddSetFromIndices({0});
  EXPECT_FALSE(gap.IsCoverable());
}

TEST(SetSystemTest, ValidateOk) {
  EXPECT_TRUE(MakeSmall().Validate().ok());
}

TEST(SetSystemTest, TotalIncidences) {
  EXPECT_EQ(MakeSmall().TotalIncidences(), 7u);
}

TEST(SetSystemTest, DebugString) {
  EXPECT_EQ(MakeSmall().DebugString(), "SetSystem(n=6, m=3)");
}

TEST(SetSystemTest, EmptySystem) {
  SetSystem system(0);
  EXPECT_TRUE(system.IsCoverable());  // nothing to cover
  EXPECT_TRUE(system.UnionAll().All());
}

// Regression: a bitset whose size mismatches the universe used to slip
// through in release builds (debug-only assert) and corrupt every later
// word-wise operation. AddSet must fail loudly in every build mode.
TEST(SetSystemDeathTest, AddSetRejectsMismatchedUniverse) {
  SetSystem system(6);
  EXPECT_DEATH(system.AddSet(DynamicBitset(5)), "universe size");
  EXPECT_DEATH(system.AddSet(DynamicBitset(7)), "universe size");
}

TEST(SetSystemDeathTest, AddSetFromIndicesRejectsOutOfRangeElement) {
  SetSystem system(6);
  EXPECT_DEATH(system.AddSetFromIndices({6}), "outside the universe");
}

TEST(SetSystemTest, HybridStoragePicksRepByDensity) {
  // Universe 1000 with the default 1/32 threshold: sets below ~31
  // elements go sparse, bigger ones stay dense.
  SetSystem system(1000);
  const SetId small = system.AddSetFromIndices({1, 2, 3});
  std::vector<ElementId> big;
  for (ElementId e = 0; e < 500; ++e) big.push_back(e);
  const SetId large = system.AddSetFromIndices(big);
  EXPECT_TRUE(system.IsSparse(small));
  EXPECT_FALSE(system.IsSparse(large));
  EXPECT_TRUE(system.set(small).Test(2));
  EXPECT_TRUE(system.set(large).Test(499));
  EXPECT_EQ(system.TotalIncidences(), 503u);
  EXPECT_TRUE(system.Validate().ok());
}

TEST(SetSystemTest, SparsityThresholdIsConfigurable) {
  SetSystem all_dense(1000, /*sparsity_threshold=*/0.0);
  EXPECT_FALSE(all_dense.IsSparse(all_dense.AddSetFromIndices({1})));
  SetSystem all_sparse(1000, /*sparsity_threshold=*/1.1);
  std::vector<ElementId> everything;
  for (ElementId e = 0; e < 1000; ++e) everything.push_back(e);
  EXPECT_TRUE(all_sparse.IsSparse(all_sparse.AddSetFromIndices(everything)));
}

TEST(SetSystemTest, MemoryUsageReportsBothRepresentations) {
  SetSystem system(1000);
  system.AddSetFromIndices({1, 2, 3});  // sparse: 3 * 4 bytes
  std::vector<ElementId> big;
  for (ElementId e = 0; e < 500; ++e) big.push_back(e);
  system.AddSetFromIndices(big);  // dense: 1000 bits -> 128 bytes
  const SetSystem::Memory memory = system.MemoryUsage();
  EXPECT_EQ(memory.sparse_sets, 1u);
  EXPECT_EQ(memory.sparse_bytes, 3u * sizeof(ElementId));
  EXPECT_EQ(memory.dense_sets, 1u);
  EXPECT_EQ(memory.dense_bytes, 128u);
  EXPECT_EQ(memory.total_bytes(), memory.dense_bytes + memory.sparse_bytes);
}

TEST(SetSystemTest, AddSetFromViewCopiesAcrossSystems) {
  SetSystem source(1000);
  const SetId sparse_id = source.AddSetFromIndices({5, 10});
  std::vector<ElementId> big;
  for (ElementId e = 0; e < 400; ++e) big.push_back(e);
  const SetId dense_id = source.AddSetFromIndices(big);

  SetSystem copy(1000);
  const SetId a = copy.AddSetFromView(source.set(sparse_id));
  const SetId b = copy.AddSetFromView(source.set(dense_id));
  EXPECT_TRUE(copy.set(a) == source.set(sparse_id));
  EXPECT_TRUE(copy.set(b) == source.set(dense_id));
}

TEST(SetSystemTest, MixedRepresentationUnionAndCoverage) {
  SetSystem system(64, /*sparsity_threshold=*/0.1);
  system.AddSetFromIndices({0, 1, 2});  // sparse (3/64 < 0.1)
  std::vector<ElementId> rest;
  for (ElementId e = 3; e < 64; ++e) rest.push_back(e);
  system.AddSetFromIndices(rest);  // dense
  EXPECT_TRUE(system.IsSparse(0));
  EXPECT_FALSE(system.IsSparse(1));
  EXPECT_TRUE(system.IsCoverable());
  EXPECT_TRUE(system.IsFeasibleCover({0, 1}));
  EXPECT_EQ(system.CoverageOf({0}), 3u);
}

}  // namespace
}  // namespace streamsc
