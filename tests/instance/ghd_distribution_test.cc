#include "instance/ghd_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamsc {
namespace {

TEST(GhdDistributionTest, Thresholds) {
  GhdDistribution dist(100, 50, 50);
  EXPECT_DOUBLE_EQ(dist.YesThreshold(), 60.0);
  EXPECT_DOUBLE_EQ(dist.NoThreshold(), 40.0);
}

TEST(GhdDistributionTest, ClassifyRespectsGap) {
  GhdDistribution dist(100, 50, 50);
  // Distance 0: No.
  GhdInstance same{DynamicBitset(100), DynamicBitset(100)};
  EXPECT_EQ(dist.Classify(same), GhdAnswer::kNo);
  // Distance 100: Yes.
  GhdInstance far{DynamicBitset::Full(100), DynamicBitset(100)};
  EXPECT_EQ(dist.Classify(far), GhdAnswer::kYes);
  // Distance 50 (inside the gap): star.
  DynamicBitset half(100);
  for (std::size_t i = 0; i < 50; ++i) half.Set(i);
  GhdInstance mid{half, DynamicBitset(100)};
  EXPECT_EQ(dist.Classify(mid), GhdAnswer::kStar);
}

TEST(GhdDistributionTest, YesSamplesSatisfyPromise) {
  GhdDistribution dist(64, 32, 32);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const GhdInstance inst = dist.SampleYes(rng);
    EXPECT_GE(static_cast<double>(inst.Distance()), dist.YesThreshold());
    EXPECT_EQ(inst.a.CountSet(), 32u);
    EXPECT_EQ(inst.b.CountSet(), 32u);
  }
}

TEST(GhdDistributionTest, NoSamplesSatisfyPromise) {
  GhdDistribution dist(64, 32, 32);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const GhdInstance inst = dist.SampleNo(rng);
    EXPECT_LE(static_cast<double>(inst.Distance()), dist.NoThreshold());
    EXPECT_EQ(inst.a.CountSet(), 32u);
    EXPECT_EQ(inst.b.CountSet(), 32u);
  }
}

TEST(GhdDistributionTest, MixedReportsBranch) {
  GhdDistribution dist(64, 32, 32);
  Rng rng(3);
  int yes_count = 0;
  for (int i = 0; i < 300; ++i) {
    bool yes = false;
    const GhdInstance inst = dist.Sample(rng, &yes);
    if (yes) {
      ++yes_count;
      EXPECT_EQ(dist.Classify(inst), GhdAnswer::kYes);
    } else {
      EXPECT_EQ(dist.Classify(inst), GhdAnswer::kNo);
    }
  }
  EXPECT_NEAR(yes_count / 300.0, 0.5, 0.12);
}

TEST(GhdDistributionTest, AsymmetricSizes) {
  // (t, a, b) must keep both promises satisfiable: Δ ∈ [|a-b|, a+b]
  // needs to straddle both thresholds (24 and 40 here).
  GhdDistribution dist(64, 24, 40);
  Rng rng(4);
  const GhdInstance no = dist.SampleNo(rng);
  EXPECT_EQ(no.a.CountSet(), 24u);
  EXPECT_EQ(no.b.CountSet(), 40u);
  const GhdInstance yes = dist.SampleYes(rng);
  EXPECT_GE(static_cast<double>(yes.Distance()), dist.YesThreshold());
}

TEST(GhdDistributionTest, DistanceFormula) {
  // Δ(A,B) = |A| + |B| - 2|A ∩ B| (used in the Lemma 4.3 proof).
  GhdDistribution dist(64, 32, 32);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const GhdInstance inst = dist.SampleYes(rng);
    const Count inter = inst.a.CountAnd(inst.b);
    EXPECT_EQ(inst.Distance(),
              inst.a.CountSet() + inst.b.CountSet() - 2 * inter);
  }
}

TEST(GhdDistributionTest, SmallUniverse) {
  GhdDistribution dist(4, 2, 2);
  Rng rng(6);
  // Yes needs distance >= 4; No needs distance <= 0. Both are achievable
  // with |A| = |B| = 2 over [4] (complementary / identical pairs).
  const GhdInstance yes = dist.SampleYes(rng);
  EXPECT_GE(yes.Distance(), 4u);
  const GhdInstance no = dist.SampleNo(rng);
  EXPECT_EQ(no.Distance(), 0u);
}

}  // namespace
}  // namespace streamsc
