#include "instance/hard_set_cover.h"

#include <gtest/gtest.h>

#include "offline/exact_set_cover.h"
#include "offline/greedy.h"

namespace streamsc {
namespace {

HardSetCoverParams SmallParams() {
  HardSetCoverParams params;
  params.n = 256;
  params.m = 12;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  return params;
}

TEST(HardSetCoverTest, ShapeMatchesParams) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(1);
  const HardSetCoverInstance inst = dist.Sample(rng);
  EXPECT_EQ(inst.m(), 12u);
  EXPECT_EQ(inst.s_sets.size(), 12u);
  EXPECT_EQ(inst.t_sets.size(), 12u);
  EXPECT_EQ(inst.disj.size(), 12u);
  EXPECT_EQ(inst.t, dist.DisjT());
  for (const auto& s : inst.s_sets) EXPECT_EQ(s.size(), 256u);
}

TEST(HardSetCoverTest, ThetaOnePlantsASizeTwoCover) {
  // Remark 3.1(iii): when (A,B) ~ D^Y, S_i⋆ ∪ T_i⋆ = [n].
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
    ASSERT_EQ(inst.theta, 1);
    ASSERT_LT(inst.i_star, inst.m());
    const DynamicBitset u = inst.s_sets[inst.i_star] | inst.t_sets[inst.i_star];
    EXPECT_TRUE(u.All());
  }
}

TEST(HardSetCoverTest, ThetaZeroPairsMissExactlyOneBlock) {
  // Remark 3.1(iii): S_i ∪ T_i = [n] \ f_i(A_i ∩ B_i), a block of ~n/t
  // elements, for every i under θ = 0.
  HardSetCoverParams params = SmallParams();
  HardSetCoverDistribution dist(params);
  Rng rng(3);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  const std::size_t expected_block = params.n / inst.t;
  for (std::size_t i = 0; i < inst.m(); ++i) {
    DynamicBitset missing = inst.s_sets[i] | inst.t_sets[i];
    missing.Complement();
    // Block sizes differ by at most one when t does not divide n.
    EXPECT_GE(missing.CountSet(), expected_block);
    EXPECT_LE(missing.CountSet(), expected_block + 1);
  }
}

TEST(HardSetCoverTest, ThetaZeroNoPairCovers) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(4);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    EXPECT_FALSE((inst.s_sets[i] | inst.t_sets[i]).All());
  }
}

TEST(HardSetCoverTest, SetSizesNearTwoThirds) {
  // Remark 3.1(i): |S_i| = 2n/3 ± o(n).
  HardSetCoverParams params;
  params.n = 2048;
  params.m = 16;
  params.alpha = 2.0;
  params.t_scale = 4.0;  // larger t tightens concentration
  HardSetCoverDistribution dist(params);
  Rng rng(5);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    const double frac = static_cast<double>(inst.s_sets[i].CountSet()) /
                        static_cast<double>(params.n);
    EXPECT_NEAR(frac, 2.0 / 3.0, 0.25);
  }
}

TEST(HardSetCoverTest, SetsAreComplementExtensionsOfDisjHalves) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(6);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    // |S_i| = n - |A_i| * block (± rounding across blocks).
    const double block = static_cast<double>(inst.params.n) /
                         static_cast<double>(inst.t);
    const double expected = static_cast<double>(inst.params.n) -
                            static_cast<double>(inst.disj[i].a.CountSet()) *
                                block;
    EXPECT_NEAR(static_cast<double>(inst.s_sets[i].CountSet()), expected,
                static_cast<double>(inst.disj[i].a.CountSet()) + 1.0);
  }
}

TEST(HardSetCoverTest, ToSetSystemLayout) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(7);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  EXPECT_EQ(system.num_sets(), 2 * inst.m());
  for (std::size_t i = 0; i < inst.m(); ++i) {
    EXPECT_EQ(system.set(i), inst.s_sets[i]);
    EXPECT_EQ(system.set(inst.m() + i), inst.t_sets[i]);
  }
}

TEST(HardSetCoverTest, ThetaOneSystemHasOptTwo) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(8);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  // The planted pair is feasible...
  EXPECT_TRUE(system.IsFeasibleCover(
      {inst.i_star, static_cast<SetId>(inst.m() + inst.i_star)}));
  // ...and no single set covers (every set misses >= one block... in fact
  // every S_i/T_i has |A_i| >= 1, hence misses >= one element).
  for (SetId i = 0; i < system.num_sets(); ++i) {
    EXPECT_FALSE(system.set(i).All());
  }
}

TEST(HardSetCoverTest, IsPlantedPair) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(9);
  const HardSetCoverInstance one = dist.SampleThetaOne(rng);
  EXPECT_TRUE(one.IsPlantedPair(
      one.i_star, static_cast<SetId>(one.m() + one.i_star)));
  EXPECT_FALSE(one.IsPlantedPair(one.i_star, one.i_star));
  const HardSetCoverInstance zero = dist.SampleThetaZero(rng);
  EXPECT_FALSE(zero.IsPlantedPair(0, static_cast<SetId>(zero.m())));
}

TEST(HardSetCoverTest, MixedSamplesAreFairOnTheta) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(10);
  int ones = 0;
  for (int i = 0; i < 200; ++i) ones += dist.Sample(rng).theta;
  EXPECT_NEAR(ones / 200.0, 0.5, 0.12);
}

TEST(HardSetCoverTest, ThetaZeroOptExceedsTwoAlphaOnSmallInstances) {
  // Lemma 3.2 (the heart of the lower bound): under θ = 0 there is no
  // cover of size <= 2α w.h.p. Verified exactly by branch-and-bound with
  // size_limit = 2α on small instances. The gap needs n/t^α ≫ 1 (two
  // pair-unions must intersect in their missing blocks) and n·3^{-2α} ≫ 1
  // (singleton residue), which fixes the (n, t) regime below — the paper's
  // 2^{-15} t_scale serves exactly this purpose at its own scale.
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 8;
  params.alpha = 2.0;
  params.t_scale = 0.34;  // t ≈ 15, so n/t² ≈ 18 expected double-misses
  HardSetCoverDistribution dist(params);
  Rng rng(11);
  int exceeded = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
    const SetSystem system = inst.ToSetSystem();
    ExactSetCoverOptions options;
    options.size_limit = static_cast<std::size_t>(2 * params.alpha);
    const ExactSetCoverResult result = SolveExactSetCover(system, options);
    if (result.complete && !result.feasible) ++exceeded;
  }
  // At laptop scale we ask for a strong majority rather than 1 - o(1).
  EXPECT_GE(exceeded, 8);
}

TEST(RandomPartitionTest, PartitionCoversAllSets) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(12);
  const HardSetCoverInstance inst = dist.Sample(rng);
  const RandomPartition partition = SampleRandomPartition(inst, rng);
  EXPECT_EQ(partition.alice.size() + partition.bob.size(), 2 * inst.m());
  std::vector<bool> seen(2 * inst.m(), false);
  for (SetId id : partition.alice) seen[id] = true;
  for (SetId id : partition.bob) seen[id] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RandomPartitionTest, GoodIndicesAreSplitPairs) {
  HardSetCoverDistribution dist(SmallParams());
  Rng rng(13);
  const HardSetCoverInstance inst = dist.Sample(rng);
  const RandomPartition partition = SampleRandomPartition(inst, rng);
  const SetId m = static_cast<SetId>(inst.m());
  for (SetId i : partition.good_indices) {
    const bool s_alice =
        std::find(partition.alice.begin(), partition.alice.end(), i) !=
        partition.alice.end();
    const bool t_alice =
        std::find(partition.alice.begin(), partition.alice.end(),
                  static_cast<SetId>(m + i)) != partition.alice.end();
    EXPECT_NE(s_alice, t_alice);
  }
}

TEST(RandomPartitionTest, AboutHalfTheIndicesAreGood) {
  // Lemma 3.7: |G| >= m/2 - o(m) w.h.p.
  HardSetCoverParams params = SmallParams();
  params.m = 64;
  HardSetCoverDistribution dist(params);
  Rng rng(14);
  double total_good = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const HardSetCoverInstance inst = dist.Sample(rng);
    total_good += static_cast<double>(
        SampleRandomPartition(inst, rng).good_indices.size());
  }
  EXPECT_NEAR(total_good / trials / params.m, 0.5, 0.08);
}

}  // namespace
}  // namespace streamsc
