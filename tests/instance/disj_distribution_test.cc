#include "instance/disj_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamsc {
namespace {

TEST(DisjDistributionTest, YesInstancesAreDisjoint) {
  DisjDistribution dist(32);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const DisjInstance inst = dist.SampleYes(rng);
    EXPECT_TRUE(inst.IsDisjoint());
    EXPECT_FALSE(inst.a.Intersects(inst.b));
  }
}

TEST(DisjDistributionTest, NoInstancesIntersectInExactlyOneElement) {
  // The construction intersects base-disjoint sets in the single planted
  // element e* (paper, D_Disj with Z = 1).
  DisjDistribution dist(32);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    ElementId e_star = kInvalidElementId;
    const DisjInstance inst = dist.SampleNo(rng, &e_star);
    EXPECT_FALSE(inst.IsDisjoint());
    const DynamicBitset common = inst.a & inst.b;
    EXPECT_EQ(common.CountSet(), 1u);
    EXPECT_TRUE(common.Test(e_star));
  }
}

TEST(DisjDistributionTest, MixedSamplesReportLatentZ) {
  DisjDistribution dist(16);
  Rng rng(3);
  int z_ones = 0;
  for (int i = 0; i < 400; ++i) {
    int z = -1;
    const DisjInstance inst = dist.Sample(rng, &z);
    ASSERT_TRUE(z == 0 || z == 1);
    z_ones += z;
    // Z = 0 -> disjoint (Yes); Z = 1 -> intersecting (No).
    EXPECT_EQ(inst.IsDisjoint(), z == 0);
  }
  // Fair coin on Z.
  EXPECT_NEAR(z_ones / 400.0, 0.5, 0.1);
}

TEST(DisjDistributionTest, ElementMarginalsAreOneThird) {
  // Under the base process each element lands in A w.p. 1/3.
  const std::size_t t = 48;
  DisjDistribution dist(t);
  Rng rng(4);
  const int trials = 4000;
  std::uint64_t a_total = 0, b_total = 0;
  for (int i = 0; i < trials; ++i) {
    const DisjInstance inst = dist.SampleYes(rng);
    a_total += inst.a.CountSet();
    b_total += inst.b.CountSet();
  }
  EXPECT_NEAR(static_cast<double>(a_total) / (trials * t), 1.0 / 3, 0.02);
  EXPECT_NEAR(static_cast<double>(b_total) / (trials * t), 1.0 / 3, 0.02);
}

TEST(DisjDistributionTest, UniverseSizeOne) {
  DisjDistribution dist(1);
  Rng rng(5);
  const DisjInstance no = dist.SampleNo(rng);
  EXPECT_TRUE(no.a.Test(0));
  EXPECT_TRUE(no.b.Test(0));
  const DisjInstance yes = dist.SampleYes(rng);
  EXPECT_TRUE(yes.IsDisjoint());
}

TEST(DisjDistributionTest, PlantedElementUniform) {
  const std::size_t t = 8;
  DisjDistribution dist(t);
  Rng rng(6);
  std::vector<int> hits(t, 0);
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    ElementId e_star = kInvalidElementId;
    dist.SampleNo(rng, &e_star);
    ASSERT_LT(e_star, t);
    ++hits[e_star];
  }
  for (int h : hits) {
    EXPECT_NEAR(h, trials / static_cast<double>(t), 6 * std::sqrt(trials / 8.0));
  }
}

TEST(DisjInstanceTest, IsDisjointSemantics) {
  DisjInstance inst{DynamicBitset(4), DynamicBitset(4)};
  EXPECT_TRUE(inst.IsDisjoint());
  inst.a.Set(2);
  EXPECT_TRUE(inst.IsDisjoint());
  inst.b.Set(2);
  EXPECT_FALSE(inst.IsDisjoint());
}

}  // namespace
}  // namespace streamsc
