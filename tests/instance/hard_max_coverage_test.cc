#include "instance/hard_max_coverage.h"

#include <gtest/gtest.h>

#include "offline/exact_max_coverage.h"

namespace streamsc {
namespace {

HardMaxCoverageParams SmallParams() {
  HardMaxCoverageParams params;
  params.epsilon = 0.2;  // t1 = 25
  params.m = 10;
  return params;
}

TEST(HardMaxCoverageTest, UniverseSplit) {
  HardMaxCoverageDistribution dist(SmallParams());
  EXPECT_EQ(dist.t1(), 25u);
  EXPECT_EQ(dist.t2(), 250u);
  Rng rng(1);
  const HardMaxCoverageInstance inst = dist.Sample(rng);
  EXPECT_EQ(inst.n(), 275u);
  EXPECT_EQ(inst.m(), 10u);
  EXPECT_EQ(inst.t1, 25u);
  EXPECT_EQ(inst.t2, 250u);
}

TEST(HardMaxCoverageTest, TinyEpsilonClampsT1) {
  HardMaxCoverageParams params;
  params.epsilon = 0.9;
  params.m = 4;
  HardMaxCoverageDistribution dist(params);
  EXPECT_GE(dist.t1(), 4u);  // GHD needs a minimal universe
  EXPECT_EQ(dist.t2(), 10 * dist.t1());
}

TEST(HardMaxCoverageTest, U2IsPartitionedBetweenPairs) {
  // Claim 4.4(a): S_i ∪ T_i ⊇ U2, and within U2 they are disjoint.
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(2);
  const HardMaxCoverageInstance inst = dist.SampleThetaZero(rng);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    Count u2_in_s = 0, u2_in_t = 0, u2_in_both = 0;
    for (std::size_t e = inst.t1; e < inst.n(); ++e) {
      const bool in_s = inst.s_sets[i].Test(e);
      const bool in_t = inst.t_sets[i].Test(e);
      u2_in_s += in_s;
      u2_in_t += in_t;
      u2_in_both += in_s && in_t;
    }
    EXPECT_EQ(u2_in_s + u2_in_t, inst.t2);
    EXPECT_EQ(u2_in_both, 0u);
  }
}

TEST(HardMaxCoverageTest, PairUnionAtLeastT2) {
  // Claim 4.4(a): |S_i ∪ T_i| >= t2.
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(3);
  const HardMaxCoverageInstance inst = dist.Sample(rng);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    EXPECT_GE((inst.s_sets[i] | inst.t_sets[i]).CountSet(), inst.t2);
  }
}

TEST(HardMaxCoverageTest, CrossPairsCoverRoughlyThreeQuartersOfU2) {
  // Claim 4.4(b): mixing sets from different indices covers about 3/4 of
  // U2 (each U2 element is missed by both w.p. 1/4).
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(4);
  const HardMaxCoverageInstance inst = dist.SampleThetaZero(rng);
  const double bound = (0.75 + 0.2) * static_cast<double>(inst.t2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      const DynamicBitset u = inst.s_sets[i] | inst.s_sets[j];
      Count u2_covered = 0;
      for (std::size_t e = inst.t1; e < inst.n(); ++e) {
        u2_covered += u.Test(e);
      }
      EXPECT_LE(static_cast<double>(u2_covered), bound);
    }
  }
}

TEST(HardMaxCoverageTest, ThetaSeparatesPlantedPairValue) {
  // Lemma 4.3's engine: |S_i⋆ ∪ T_i⋆| lands above τ under θ = 1 and below
  // under θ = 0 (for the planted/typical pair resp.).
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const HardMaxCoverageInstance one = dist.SampleThetaOne(rng);
    const Count planted =
        (one.s_sets[one.i_star] | one.t_sets[one.i_star]).CountSet();
    EXPECT_GT(static_cast<double>(planted), one.tau);

    const HardMaxCoverageInstance zero = dist.SampleThetaZero(rng);
    for (std::size_t i = 0; i < zero.m(); ++i) {
      const Count pair = (zero.s_sets[i] | zero.t_sets[i]).CountSet();
      EXPECT_LT(static_cast<double>(pair), zero.tau);
    }
  }
}

TEST(HardMaxCoverageTest, TauFormula) {
  HardMaxCoverageDistribution dist(SmallParams());
  const double a = static_cast<double>(dist.t1()) / 2.0;
  EXPECT_NEAR(dist.Tau(),
              static_cast<double>(dist.t2()) + a +
                  static_cast<double>(dist.t1()) / 4.0,
              1.0);
}

TEST(HardMaxCoverageTest, ExactOptSeparation) {
  // End-to-end Lemma 4.3: exact k=2 max coverage lands on the correct
  // side of τ depending on θ.
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(6);
  int correct = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const bool theta_one = trial % 2 == 0;
    const HardMaxCoverageInstance inst =
        theta_one ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
    const SetSystem system = inst.ToSetSystem();
    const ExactMaxCoverageResult result = SolveExactMaxCoverage(
        system, HardMaxCoverageInstance::kCoverageBudget);
    const bool above = static_cast<double>(result.coverage) > inst.tau;
    if (above == theta_one) ++correct;
  }
  EXPECT_GE(correct, 8);
}

TEST(HardMaxCoverageTest, GhdPairsKeptInInstance) {
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(7);
  const HardMaxCoverageInstance inst = dist.SampleThetaOne(rng);
  ASSERT_EQ(inst.ghd.size(), inst.m());
  // The planted pair must satisfy the Yes promise; others the No promise.
  GhdDistribution ghd(inst.t1, inst.a, inst.b);
  for (std::size_t i = 0; i < inst.m(); ++i) {
    const GhdAnswer answer = ghd.Classify(inst.ghd[i]);
    if (i == inst.i_star) {
      EXPECT_EQ(answer, GhdAnswer::kYes);
    } else {
      EXPECT_EQ(answer, GhdAnswer::kNo);
    }
  }
}

TEST(HardMaxCoverageTest, ToSetSystemLayout) {
  HardMaxCoverageDistribution dist(SmallParams());
  Rng rng(8);
  const HardMaxCoverageInstance inst = dist.Sample(rng);
  const SetSystem system = inst.ToSetSystem();
  EXPECT_EQ(system.num_sets(), 2 * inst.m());
  EXPECT_EQ(system.universe_size(), inst.n());
  EXPECT_EQ(system.set(3), inst.s_sets[3]);
  EXPECT_EQ(system.set(inst.m() + 3), inst.t_sets[3]);
}

}  // namespace
}  // namespace streamsc
