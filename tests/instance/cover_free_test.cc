#include "instance/cover_free.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

TEST(CoverFreeTest, ExhaustiveFindsObviousViolation) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});       // 0
  system.AddSetFromIndices({0});          // 1
  system.AddSetFromIndices({1});          // 2
  system.AddSetFromIndices({2, 3, 4, 5}); // 3
  // Sets 1 and 2 cover set 0.
  const auto violation = FindCoveringViolationExhaustive(system, 2);
  ASSERT_TRUE(violation.has_value());
  const DynamicBitset covered = system.set(violation->covered).ToDense();
  const DynamicBitset coverers = system.UnionOf(violation->coverers);
  EXPECT_TRUE(covered.IsSubsetOf(coverers));
  EXPECT_LE(violation->coverers.size(), 2u);
}

TEST(CoverFreeTest, ExhaustiveRespectsBudget) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2, 3});
  system.AddSetFromIndices({4, 5});
  system.AddSetFromIndices({0, 2, 4});
  // Covering {0,2,4} needs all three disjoint pairs; no other set is
  // covered by any two. r = 2 finds nothing, r = 3 does.
  EXPECT_FALSE(FindCoveringViolationExhaustive(system, 2).has_value());
  EXPECT_TRUE(FindCoveringViolationExhaustive(system, 3).has_value());
}

TEST(CoverFreeTest, NoViolationOnDisjointFamily) {
  SetSystem system(9);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4, 5});
  system.AddSetFromIndices({6, 7, 8});
  EXPECT_FALSE(FindCoveringViolationExhaustive(system, 2).has_value());
}

TEST(CoverFreeTest, RandomSearchFindsEasyViolation) {
  SetSystem system(4);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({0, 2});
  system.AddSetFromIndices({1, 3});
  Rng rng(1);
  // Sets 1 and 2 jointly cover set 0; random probes should find it.
  const auto violation = FindCoveringViolationRandom(system, 2, 500, rng);
  ASSERT_TRUE(violation.has_value());
  EXPECT_TRUE(system.set(violation->covered)
                  .IsSubsetOf(system.UnionOf(violation->coverers)));
}

TEST(CoverFreeTest, RandomCandidateFamiliesAreCoverFreeWhenSparse) {
  // Probabilistic method regime: small sets, few of them -> r-cover-free.
  Rng rng(2);
  const SetSystem system = RandomCoverFreeCandidate(400, 12, 20, rng);
  EXPECT_FALSE(FindCoveringViolationExhaustive(system, 2).has_value());
}

TEST(CoverFreeTest, DenseFamiliesViolate) {
  // Huge sets over a tiny universe cannot be cover-free.
  Rng rng(3);
  const SetSystem system = RandomCoverFreeCandidate(10, 8, 9, rng);
  EXPECT_TRUE(FindCoveringViolationExhaustive(system, 2).has_value());
}

TEST(CoverFreeTest, SingleSetHasNoViolation) {
  SetSystem system(5);
  system.AddSetFromIndices({0, 1});
  EXPECT_FALSE(FindCoveringViolationExhaustive(system, 3).has_value());
  Rng rng(4);
  EXPECT_FALSE(FindCoveringViolationRandom(system, 3, 100, rng).has_value());
}

}  // namespace
}  // namespace streamsc
