#include "instance/mapping_extension.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

TEST(MappingExtensionTest, BlocksPartitionUniverse) {
  Rng rng(1);
  MappingExtension f(4, 100, rng);
  DynamicBitset all(100);
  Count total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    // Pairwise disjoint.
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_FALSE(f.Block(i).Intersects(f.Block(j)));
    }
    total += f.Block(i).CountSet();
    all |= f.Block(i);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(all.All());
}

TEST(MappingExtensionTest, EqualBlockSizesWhenDivisible) {
  Rng rng(2);
  MappingExtension f(5, 100, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.Block(i).CountSet(), 20u);
  }
}

TEST(MappingExtensionTest, NearEqualBlockSizesWhenNotDivisible) {
  Rng rng(3);
  MappingExtension f(3, 10, rng);
  Count min_size = 100, max_size = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    min_size = std::min(min_size, f.Block(i).CountSet());
    max_size = std::max(max_size, f.Block(i).CountSet());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(MappingExtensionTest, ExtendUnionsBlocks) {
  Rng rng(4);
  MappingExtension f(4, 64, rng);
  DynamicBitset a(4);
  a.Set(1);
  a.Set(3);
  const DynamicBitset ext = f.Extend(a);
  EXPECT_EQ(ext, f.Block(1) | f.Block(3));
  EXPECT_EQ(ext.CountSet(), 32u);
}

TEST(MappingExtensionTest, ExtendEmptyIsEmpty) {
  Rng rng(5);
  MappingExtension f(4, 64, rng);
  EXPECT_TRUE(f.Extend(DynamicBitset(4)).None());
}

TEST(MappingExtensionTest, ExtendDistributesOverUnion) {
  // f(A ∪ B) = f(A) ∪ f(B) — Definition 3's homomorphism property.
  Rng rng(6);
  MappingExtension f(8, 128, rng);
  Rng sets(7);
  const DynamicBitset a = sets.BernoulliSubset(8, 0.5);
  const DynamicBitset b = sets.BernoulliSubset(8, 0.5);
  EXPECT_EQ(f.Extend(a | b), f.Extend(a) | f.Extend(b));
}

TEST(MappingExtensionTest, ExtendComplementIsComplementOfExtend) {
  Rng rng(8);
  MappingExtension f(6, 60, rng);
  Rng sets(9);
  const DynamicBitset a = sets.BernoulliSubset(6, 0.4);
  DynamicBitset expected = f.Extend(a);
  expected.Complement();
  EXPECT_EQ(f.ExtendComplement(a), expected);
}

TEST(MappingExtensionTest, BlockOfInvertsBlocks) {
  Rng rng(10);
  MappingExtension f(7, 70, rng);
  for (std::size_t i = 0; i < 7; ++i) {
    f.Block(i).ForEach([&](ElementId e) { EXPECT_EQ(f.BlockOf(e), i); });
  }
}

TEST(MappingExtensionTest, SingleBlockDegenerate) {
  Rng rng(11);
  MappingExtension f(1, 10, rng);
  EXPECT_TRUE(f.Block(0).All());
  DynamicBitset a(1);
  a.Set(0);
  EXPECT_TRUE(f.Extend(a).All());
  EXPECT_TRUE(f.ExtendComplement(a).None());
}

TEST(MappingExtensionTest, TEqualsNIsPermutation) {
  Rng rng(12);
  MappingExtension f(16, 16, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(f.Block(i).CountSet(), 1u);
  }
}

TEST(MappingExtensionTest, RandomnessVariesAcrossSamples) {
  Rng rng(13);
  MappingExtension f1(4, 64, rng);
  MappingExtension f2(4, 64, rng);
  // Extremely unlikely to coincide.
  EXPECT_FALSE(f1.Block(0) == f2.Block(0));
}

}  // namespace
}  // namespace streamsc
