#include "instance/generators.h"

#include <gtest/gtest.h>

#include "offline/exact_set_cover.h"
#include "offline/greedy.h"

namespace streamsc {
namespace {

TEST(GeneratorsTest, UniformRandomShape) {
  Rng rng(1);
  const SetSystem system = UniformRandomInstance(100, 20, 10, rng);
  EXPECT_GE(system.num_sets(), 20u);
  EXPECT_LE(system.num_sets(), 21u);  // + optional patch set
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(system.set(i).CountSet(), 10u);
  }
  EXPECT_TRUE(system.IsCoverable());
}

TEST(GeneratorsTest, UniformRandomNoPatchWhenDense) {
  Rng rng(2);
  // 40 sets of size 50 over 100 elements cover everything w.h.p.
  const SetSystem system = UniformRandomInstance(100, 40, 50, rng);
  EXPECT_EQ(system.num_sets(), 40u);
}

TEST(GeneratorsTest, PlantedCoverIsFeasibleAndOptimal) {
  Rng rng(3);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(120, 30, 4, rng, &planted);
  ASSERT_EQ(planted.size(), 4u);
  EXPECT_TRUE(system.IsFeasibleCover(planted));
  // The planted cover is exactly optimal (private elements force it).
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.solution.size(), 4u);
}

TEST(GeneratorsTest, PlantedBlocksPartition) {
  Rng rng(4);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(100, 10, 5, rng, &planted);
  DynamicBitset all(100);
  Count total = 0;
  for (SetId id : planted) {
    system.set(id).OrInto(all);
    total += system.set(id).CountSet();
  }
  EXPECT_TRUE(all.All());
  EXPECT_EQ(total, 100u);  // disjoint blocks
}

TEST(GeneratorsTest, PlantedCoverSizeOne) {
  Rng rng(5);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(50, 8, 1, rng, &planted);
  ASSERT_EQ(planted.size(), 1u);
  EXPECT_TRUE(system.set(planted[0]).All());
}

TEST(GeneratorsTest, ZipfSizesDecay) {
  Rng rng(6);
  const SetSystem system = ZipfInstance(200, 30, 1.0, 100, rng);
  EXPECT_GE(system.set(0).CountSet(), system.set(10).CountSet());
  EXPECT_GE(system.set(10).CountSet(), system.set(29).CountSet());
  EXPECT_TRUE(system.IsCoverable());
}

TEST(GeneratorsTest, ZipfMinimumSizeOne) {
  Rng rng(7);
  const SetSystem system = ZipfInstance(100, 50, 2.0, 50, rng);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(system.set(i).CountSet(), 1u);
  }
}

TEST(GeneratorsTest, BlogTopicFeasibleWithHubs) {
  Rng rng(8);
  const SetSystem system = BlogTopicInstance(150, 40, 0.1, rng);
  EXPECT_TRUE(system.IsCoverable());
  EXPECT_GE(system.num_sets(), 40u);
  // Hubs are big: the first set covers at least a quarter of topics.
  EXPECT_GE(system.set(0).CountSet(), 150u / 4);
}

TEST(GeneratorsTest, NeedleOptimumIsExactlyK) {
  Rng rng(9);
  const SetSystem system = NeedleInstance(80, 20, 4, rng);
  EXPECT_TRUE(system.IsCoverable());
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.solution.size(), 4u);
}

TEST(GeneratorsTest, NeedleHaystackSetsMissPrivates) {
  Rng rng(10);
  const SetSystem system = NeedleInstance(60, 12, 3, rng);
  // The first 3 sets are the needles (a partition); the rest never cover
  // all of any needle's private residue, so greedy still needs needles.
  const Solution greedy = GreedySetCover(system);
  EXPECT_TRUE(system.IsFeasibleCover(greedy.chosen));
}

TEST(GeneratorsTest, DeterministicUnderSameSeed) {
  Rng rng1(42), rng2(42);
  const SetSystem a = UniformRandomInstance(64, 10, 8, rng1);
  const SetSystem b = UniformRandomInstance(64, 10, 8, rng2);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  for (std::size_t i = 0; i < a.num_sets(); ++i) {
    EXPECT_EQ(a.set(i), b.set(i));
  }
}

}  // namespace
}  // namespace streamsc
