#!/usr/bin/env python3
"""Tests for scripts/lint_streamsc.py.

Runs the linter as a subprocess (the same way check.sh and CI invoke it)
against fixture trees with planted violations and asserts every planted
violation is reported at its exact file:line with the right rule id —
and that a clean fixture and the real repo tree both pass. This is the
proof required by the tooling wall: the linter demonstrably fails on
each class of violation it claims to enforce, so a green run means
something.

Locations are resolved from STREAMSC_REPO_ROOT (set by the ctest
registration) and fall back to path-relative lookup so the test also
runs directly: `python3 tests/tooling/lint_streamsc_test.py`.
"""

import os
import pathlib
import subprocess
import sys
import unittest

REPO_ROOT = pathlib.Path(
    os.environ.get("STREAMSC_REPO_ROOT",
                   pathlib.Path(__file__).resolve().parents[2]))
LINTER = REPO_ROOT / "scripts" / "lint_streamsc.py"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def run_linter(*args):
    return subprocess.run(
        [sys.executable, str(LINTER), *args],
        capture_output=True, text=True, check=False)


class LintStreamscTest(unittest.TestCase):
    def assert_reported(self, result, rel_path, line, rule):
        """The violation shows up as `<path>:<line>: [<rule>]...`."""
        needle = f"{rel_path}:{line}: [{rule}]"
        self.assertIn(needle, result.stdout,
                      f"expected {needle!r} in linter output:\n"
                      f"{result.stdout}")

    def test_clean_fixture_passes(self):
        result = run_linter("--root", str(FIXTURES / "clean"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertEqual(result.stdout, "")

    def test_violations_fixture_fails_with_located_reports(self):
        result = run_linter("--root", str(FIXTURES / "violations"))
        self.assertEqual(result.returncode, 1,
                         "planted violations must fail the linter")
        # Upward include: util -> stream.
        self.assert_reported(result, "src/util/upward.h", 3, "layer-dag")
        # Sideways include: storage -> core.
        self.assert_reported(result, "src/storage/sideways.cc", 1,
                             "layer-dag")
        # cassert include and raw assert in a solver layer.
        self.assert_reported(result, "src/core/bad_config.h", 3,
                             "raw-assert")
        self.assert_reported(result, "src/core/bad_config.h", 9,
                             "raw-assert")
        # Non-owning engine and arena pointer members in a config struct.
        self.assert_reported(result, "src/core/bad_config.h", 5,
                             "engine-ptr")
        self.assert_reported(result, "src/core/bad_config.h", 6,
                             "arena-ptr")
        # rand() and std::random_device.
        self.assert_reported(result, "src/core/bad_config.h", 11,
                             "determinism")
        self.assert_reported(result, "src/core/bad_random.cc", 3,
                             "determinism")
        # Direct chrono outside util//obs/: the include and the use.
        self.assert_reported(result, "src/stream/bad_chrono.cc", 1,
                             "chrono")
        self.assert_reported(result, "src/stream/bad_chrono.cc", 4,
                             "chrono")
        # serve/ reaching into comm/ (unreachable in the DAG) and timing
        # with raw chrono instead of util/stopwatch.h.
        self.assert_reported(result, "src/serve/bad_daemon.cc", 1,
                             "layer-dag")
        self.assert_reported(result, "src/serve/bad_daemon.cc", 2,
                             "chrono")
        self.assert_reported(result, "src/serve/bad_daemon.cc", 5,
                             "chrono")
        # dynamic/ reaching up into serve/ and timing with raw chrono
        # instead of util/stopwatch.h.
        self.assert_reported(result, "src/dynamic/bad_overlay.cc", 1,
                             "layer-dag")
        self.assert_reported(result, "src/dynamic/bad_overlay.cc", 2,
                             "chrono")
        self.assert_reported(result, "src/dynamic/bad_overlay.cc", 5,
                             "chrono")

    def test_violation_count_is_exact(self):
        """No over-reporting: exactly the planted violations, nothing
        from comments, string literals, or the clean lines around them."""
        result = run_linter("--root", str(FIXTURES / "violations"))
        reported = [l for l in result.stdout.splitlines() if "[" in l]
        self.assertEqual(len(reported), 16, result.stdout)

    def test_real_tree_is_clean(self):
        """The wall starts (and stays) at zero violations on the repo."""
        result = run_linter("--root", str(REPO_ROOT))
        self.assertEqual(
            result.returncode, 0,
            "the real src/ tree must stay lint-clean:\n" + result.stdout)

    def test_list_rules(self):
        result = run_linter("--list-rules")
        self.assertEqual(result.returncode, 0)
        rules = result.stdout.split()
        self.assertEqual(
            rules, ["layer-dag", "raw-assert", "determinism", "engine-ptr",
                    "arena-ptr", "chrono"])


class TidyGatingTest(unittest.TestCase):
    """scripts/tidy.sh missing-tool policy: skip-with-warning locally,
    hard-fail under REQUIRE_TOOLS=1 (the CI posture). Run with an empty
    PATH stub dir so clang-tidy is absent even on boxes that carry it."""

    def run_tidy(self, require_tools):
        stub_path = "/usr/bin:/bin"  # sh, coreutils — but no clang-tidy
        env = dict(os.environ)
        env["PATH"] = stub_path
        env.pop("CLANG_TIDY", None)
        env["REQUIRE_TOOLS"] = "1" if require_tools else "0"
        return subprocess.run(
            ["bash", str(REPO_ROOT / "scripts" / "tidy.sh")],
            capture_output=True, text=True, check=False, env=env,
            cwd=REPO_ROOT)

    @unittest.skipIf(
        subprocess.run(["sh", "-c", "command -v clang-tidy"],
                       capture_output=True,
                       env={"PATH": "/usr/bin:/bin"}).returncode == 0,
        "clang-tidy present in the stub PATH; gating not testable here")
    def test_missing_tool_skips_with_warning_locally(self):
        result = self.run_tidy(require_tools=False)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARNING", result.stderr)

    @unittest.skipIf(
        subprocess.run(["sh", "-c", "command -v clang-tidy"],
                       capture_output=True,
                       env={"PATH": "/usr/bin:/bin"}).returncode == 0,
        "clang-tidy present in the stub PATH; gating not testable here")
    def test_missing_tool_fails_in_ci_posture(self):
        result = self.run_tidy(require_tools=True)
        self.assertEqual(result.returncode, 1)
        self.assertIn("FATAL", result.stderr)


if __name__ == "__main__":
    unittest.main()
