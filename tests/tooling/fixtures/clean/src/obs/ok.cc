// obs/ is chrono-exempt: it owns the trace clock. This file must lint
// clean even though it reads std::chrono directly.
#include <chrono>
#include "util/ok.h"
namespace streamsc {
inline long ObsNowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace streamsc
