#include "stream/ok.h"
#include "instance/thing.h"
#include "util/check.h"
const char* kDoc = "assert( and std::random_device inside a string literal";
