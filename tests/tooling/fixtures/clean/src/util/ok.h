#ifndef CLEAN_UTIL_OK_H_
#define CLEAN_UTIL_OK_H_
#include "util/check.h"
// A comment mentioning assert( and rand() must not trip the linter.
inline int Clamp(int v) {
  STREAMSC_DCHECK(v >= 0);
  return v;
}
#endif
