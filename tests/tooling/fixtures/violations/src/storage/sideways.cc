#include "core/assadi_set_cover.h"
