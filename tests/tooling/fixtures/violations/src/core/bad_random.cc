#include <random>
int Seed() {
  std::random_device device;
  return static_cast<int>(device());
}
