#ifndef BAD_CORE_CONFIG_H_
#define BAD_CORE_CONFIG_H_
#include <cassert>
struct BadConfig {
  ParallelPassEngine* engine = nullptr;
  MonotonicArena* arena = nullptr;
};
inline void Validate(int alpha) {
  assert(alpha > 0);
}
inline unsigned Jitter() { return rand(); }
#endif
