#include "comm/protocol.h"
#include <chrono>
namespace streamsc::serve {
inline long DeadlineNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace streamsc::serve
