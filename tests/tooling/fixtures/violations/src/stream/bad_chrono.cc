#include <chrono>
namespace streamsc {
inline long NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace streamsc
