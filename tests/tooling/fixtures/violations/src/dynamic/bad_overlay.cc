#include "serve/solve_service.h"
#include <chrono>
namespace streamsc {
inline long DeltaPollNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace streamsc
