#ifndef BAD_UTIL_UPWARD_H_
#define BAD_UTIL_UPWARD_H_
#include "stream/set_stream.h"
#endif
