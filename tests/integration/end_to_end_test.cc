#include <gtest/gtest.h>

#include <memory>

#include "comm/reductions.h"
#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/max_coverage.h"
#include "core/one_pass_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "offline/lower_bounds.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

// Full pipeline: generate -> stream -> solve -> verify, across every
// streaming set cover algorithm in the library.
TEST(EndToEndTest, AllAlgorithmsCoverAllGenerators) {
  Rng rng(1);
  std::vector<SetSystem> instances;
  instances.push_back(PlantedCoverInstance(300, 30, 4, rng));
  instances.push_back(UniformRandomInstance(200, 25, 40, rng));
  instances.push_back(ZipfInstance(250, 30, 1.0, 120, rng));
  instances.push_back(BlogTopicInstance(200, 30, 0.15, rng));
  instances.push_back(NeedleInstance(150, 20, 3, rng));

  std::vector<std::unique_ptr<StreamingSetCoverAlgorithm>> algorithms;
  {
    AssadiConfig config;
    config.alpha = 2;
    config.epsilon = 0.5;
    algorithms.push_back(std::make_unique<AssadiSetCover>(config));
  }
  {
    HarPeledConfig config;
    config.alpha = 2;
    algorithms.push_back(std::make_unique<HarPeledSetCover>(config));
  }
  {
    DemaineConfig config;
    config.alpha = 4;
    algorithms.push_back(std::make_unique<DemaineSetCover>(config));
  }
  algorithms.push_back(std::make_unique<EmekRosenSetCover>());
  algorithms.push_back(std::make_unique<ThresholdGreedySetCover>());
  algorithms.push_back(std::make_unique<OnePassSetCover>());

  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (auto& algorithm : algorithms) {
      VectorSetStream stream(instances[i]);
      const SetCoverRunResult result = algorithm->Run(stream);
      ASSERT_TRUE(result.feasible)
          << algorithm->name() << " failed on instance " << i;
      const CoverVerdict verdict =
          VerifyCover(instances[i], result.solution);
      EXPECT_TRUE(verdict.feasible)
          << algorithm->name() << " reported an infeasible cover";
      EXPECT_GE(result.stats.passes, 1u);
      EXPECT_GT(result.stats.peak_space_bytes, 0u);
    }
  }
}

TEST(EndToEndTest, ApproximationOrderingOnPlantedInstances) {
  // On planted instances: exact <= assadi <= threshold-greedy (typically),
  // and everything within its guarantee.
  Rng rng(2);
  const std::size_t opt = 5;
  const SetSystem system = PlantedCoverInstance(500, 50, opt, rng);
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  ASSERT_TRUE(exact.proven_optimal);
  ASSERT_EQ(exact.solution.size(), opt);

  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  config.known_opt = opt;
  AssadiSetCover assadi(config);
  VectorSetStream stream(system);
  const SetCoverRunResult result = assadi.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.solution.size(), opt);
  EXPECT_LE(static_cast<double>(result.solution.size()), 2.5 * opt);
}

TEST(EndToEndTest, HardInstanceThroughFullStack) {
  // D_SC instance -> random partition -> streaming protocol -> reduction:
  // the entire lower-bound machinery glued together. Gap-regime t (see
  // Lemma32OptGap) and the (α+ε)-aware Yes cutoff.
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 6;
  params.alpha = 2.0;
  params.t_scale = 0.34;
  const double epsilon = 0.4;
  StreamingSetCoverValueProtocol backend(
      [epsilon]() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
        AssadiConfig config;
        config.alpha = 2;
        config.epsilon = epsilon;
        return std::make_unique<AssadiSetCover>(config);
      },
      /*shuffle_stream=*/true);
  DisjFromSetCoverProtocol reduction(params, &backend,
                                     2.0 * (params.alpha + epsilon));
  DisjDistribution dist(reduction.DisjT());
  Rng rng(3);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(reduction, dist, 30, rng);
  EXPECT_LT(eval.error_rate, 0.4);  // clearly better than coin flip
  EXPECT_GT(eval.mean_bits, 0.0);
}

TEST(EndToEndTest, MaxCoverageSketchVsExactOnBlogWorkload) {
  Rng rng(4);
  const SetSystem system = BlogTopicInstance(300, 40, 0.1, rng);
  const std::size_t k = 3;
  ElementSamplingMcConfig config;
  config.epsilon = 0.15;
  ElementSamplingMaxCoverage sketch(config);
  VectorSetStream stream(system);
  const MaxCoverageRunResult result = sketch.Run(stream, k);
  EXPECT_LE(result.solution.size(), k);
  // Sanity: covers a sizable fraction of the topics a greedy would.
  EXPECT_GT(result.coverage, 0u);
}

TEST(EndToEndTest, CertifiedRatioViaLowerBounds) {
  // Exact-solver-free certification: on a planted partition instance the
  // counting lower bound is exactly opt (max set size = n/opt), so
  // solution / BestLowerBound is a *certified* approximation ratio.
  Rng rng(7);
  const std::size_t opt = 4;
  const SetSystem system = PlantedCoverInstance(1024, 48, opt, rng);
  EXPECT_EQ(BestLowerBound(system), opt);

  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  AssadiSetCover algorithm(config);
  VectorSetStream stream(system);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  const double certified_ratio =
      static_cast<double>(result.solution.size()) /
      static_cast<double>(BestLowerBound(system));
  // (alpha+eps) plus the driver's (1+eps) guessing slack.
  EXPECT_LE(certified_ratio, 2.5 * 1.5);
}

TEST(EndToEndTest, RandomOrderMatchesAdversarialFeasibility) {
  Rng rng(5);
  const SetSystem system = PlantedCoverInstance(400, 40, 4, rng);
  for (const StreamOrder order :
       {StreamOrder::kAdversarial, StreamOrder::kRandomOnce}) {
    Rng order_rng(6);
    VectorSetStream stream(system, order, &order_rng);
    AssadiConfig config;
    config.alpha = 2;
    config.epsilon = 0.5;
    AssadiSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    EXPECT_TRUE(result.feasible);
  }
}

}  // namespace
}  // namespace streamsc
